//! Minimal CSV import/export for datasets.
//!
//! The harness persists generated datasets and selected samples so that
//! experiments can be re-run without re-generating data, and so outputs can be
//! inspected with external tools. The format is a plain three-column CSV
//! (`x,y,value`) with an optional header; no external CSV crate is required.

use crate::dataset::{Dataset, DatasetKind};
use crate::point::Point;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Writes a dataset as `x,y,value` CSV with a header row.
pub fn write_csv(dataset: &Dataset, path: impl AsRef<Path>) -> io::Result<()> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    writeln!(w, "x,y,value")?;
    for p in &dataset.points {
        writeln!(w, "{},{},{}", p.x, p.y, p.value)?;
    }
    w.flush()
}

/// Reads a dataset from `x,y[,value]` CSV.
///
/// Header detection is explicit: the first non-blank line is skipped as a
/// header if and only if its first field does not parse as a number (e.g.
/// `x,y,value`). Every other malformed row — including a malformed *data*
/// row on line 1, which an earlier version silently swallowed as a
/// "header" — produces an error naming the line.
pub fn read_csv(path: impl AsRef<Path>, name: impl Into<String>) -> io::Result<Dataset> {
    let file = File::open(path)?;
    let reader = BufReader::new(file);
    let mut points = Vec::new();
    let mut seen_content = false;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let first_content = !seen_content;
        seen_content = true;
        if first_content && is_header_line(trimmed) {
            continue;
        }
        match parse_point_line(trimmed) {
            Some(p) => points.push(p),
            None => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("malformed CSV row at line {}: {trimmed:?}", lineno + 1),
                ))
            }
        }
    }
    Ok(Dataset::new(name, DatasetKind::External, points))
}

/// Returns `true` when `line` looks like a CSV header row: its first field is
/// non-empty and does not parse as a number. Shared by [`read_csv`] and the
/// streaming CSV source in `vas-stream` so both agree on what a header is.
pub fn is_header_line(line: &str) -> bool {
    match line.split(',').next().map(str::trim) {
        Some(first) if !first.is_empty() => first.parse::<f64>().is_err(),
        _ => false,
    }
}

/// Parses one `x,y[,value]` row; `None` if a coordinate is missing or any
/// present field is not a number.
pub fn parse_point_line(line: &str) -> Option<Point> {
    let mut fields = line.split(',').map(str::trim);
    let x: f64 = fields.next()?.parse().ok()?;
    let y: f64 = fields.next()?.parse().ok()?;
    let value: f64 = match fields.next() {
        Some(v) if !v.is_empty() => v.parse().ok()?,
        _ => 0.0,
    };
    Some(Point::with_value(x, y, value))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut dir = std::env::temp_dir();
        dir.push(format!("vas-data-io-{}-{}", std::process::id(), name));
        dir
    }

    #[test]
    fn round_trip() {
        let d = Dataset::from_points(
            "rt",
            vec![
                Point::with_value(1.5, -2.25, 3.0),
                Point::with_value(0.0, 0.0, 0.0),
                Point::with_value(-7.125, 9.5, -1.5),
            ],
        );
        let path = temp_path("roundtrip.csv");
        write_csv(&d, &path).unwrap();
        let back = read_csv(&path, "rt").unwrap();
        assert_eq!(back.points, d.points);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn reads_headerless_and_two_column_rows() {
        let path = temp_path("noheader.csv");
        {
            let mut f = File::create(&path).unwrap();
            writeln!(f, "1.0,2.0").unwrap();
            writeln!(f, "3.0,4.0,5.0").unwrap();
            writeln!(f).unwrap();
        }
        let d = read_csv(&path, "nh").unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.points[0], Point::new(1.0, 2.0));
        assert_eq!(d.points[1], Point::with_value(3.0, 4.0, 5.0));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_malformed_rows_after_header() {
        let path = temp_path("bad.csv");
        {
            let mut f = File::create(&path).unwrap();
            writeln!(f, "x,y,value").unwrap();
            writeln!(f, "1.0,2.0,3.0").unwrap();
            writeln!(f, "oops,not,numbers").unwrap();
        }
        let err = read_csv(&path, "bad").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("line 3"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_file_is_an_error() {
        assert!(read_csv("/nonexistent/definitely/not/here.csv", "x").is_err());
    }

    #[test]
    fn malformed_first_data_row_is_an_error_not_a_header() {
        // "1.0,oops" starts with a number, so it is a (broken) data row, not
        // a header — the old implementation silently skipped it.
        let path = temp_path("bad-first.csv");
        {
            let mut f = File::create(&path).unwrap();
            writeln!(f, "1.0,oops").unwrap();
            writeln!(f, "2.0,3.0").unwrap();
        }
        let err = read_csv(&path, "bad-first").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("line 1"), "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn header_after_leading_blank_lines_is_still_skipped() {
        let path = temp_path("blank-then-header.csv");
        {
            let mut f = File::create(&path).unwrap();
            writeln!(f).unwrap();
            writeln!(f, "x,y,value").unwrap();
            writeln!(f, "1.0,2.0,3.0").unwrap();
        }
        let d = read_csv(&path, "blank").unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d.points[0], Point::with_value(1.0, 2.0, 3.0));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn header_detection_is_first_field_based() {
        assert!(is_header_line("x,y,value"));
        assert!(is_header_line("lon,lat"));
        assert!(!is_header_line("1.0,y"));
        assert!(!is_header_line("-3.5,2.0,1.0"));
        assert!(!is_header_line(""));
        assert!(!is_header_line(",y"));
    }

    #[test]
    fn headerless_malformed_later_row_names_its_line() {
        let path = temp_path("bad-middle.csv");
        {
            let mut f = File::create(&path).unwrap();
            writeln!(f, "1.0,2.0").unwrap();
            writeln!(f, "not,a,row").unwrap();
        }
        let err = read_csv(&path, "bad-middle").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("line 2"), "{err}");
        std::fs::remove_file(path).ok();
    }
}
