//! # vas-data
//!
//! Dataset substrate for the Visualization-Aware Sampling (VAS) reproduction.
//!
//! The original paper evaluates VAS on two datasets:
//!
//! * **Geolife** — 24.4M GPS (latitude, longitude, altitude) triples recorded
//!   around Beijing. The raw dataset is not redistributable, so this crate
//!   provides [`geolife::GeolifeGenerator`], a synthetic trajectory generator
//!   that reproduces the *spatial skew* that matters to the experiments:
//!   dense urban cores, road-like trajectories, and sparse long-distance
//!   trips with an altitude field.
//! * **SPLOM** — a synthetic dataset of five Gaussian-derived columns used in
//!   previous visualization work; [`splom::SplomGenerator`] builds the same
//!   family of distributions.
//!
//! In addition the crate provides Gaussian-mixture datasets used for the
//! clustering user study ([`gaussian`]), zoom-region workload generation
//! ([`workload`]) and simple CSV import/export ([`io`]).
//!
//! All generators are deterministic given a `u64` seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod gaussian;
pub mod geolife;
pub mod io;
pub mod point;
pub mod splom;
pub mod workload;

pub use dataset::{Dataset, DatasetKind};
pub use gaussian::{GaussianCluster, GaussianMixtureGenerator, GaussianMixturePoints};
pub use geolife::{GeolifeConfig, GeolifeGenerator, GeolifePoints};
pub use point::{BoundingBox, Point};
pub use splom::{SplomConfig, SplomGenerator, SplomPoints, SplomRows};
pub use workload::{ZoomLevel, ZoomRegion, ZoomWorkload};
