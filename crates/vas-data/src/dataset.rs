//! The [`Dataset`] container: an ordered collection of [`Point`]s plus
//! provenance metadata.
//!
//! A `Dataset` is the *fully materialized* form — a `Vec<Point>` — and stays
//! deliberately simple because every sampler in this reproduction is
//! single-pass and order-insensitive, matching the offline
//! sample-construction model in Section II-B of the paper. It is no longer
//! the only form: workloads too large to materialize flow through the
//! `vas-stream` crate instead, whose `PointSource` trait streams the same
//! points chunk-by-chunk in bounded memory (from the chunked columnar spill
//! format, CSV, or the streaming generator iterators such as
//! [`GeolifeGenerator::points`](crate::geolife::GeolifeGenerator::points)),
//! with an in-memory adapter wrapping any `Dataset`.

use crate::point::{BoundingBox, Point};
use serde::{Deserialize, Serialize};

/// Which generator (or external source) produced a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DatasetKind {
    /// Synthetic GPS trajectories mimicking the Geolife collection.
    GeolifeSim,
    /// SPLOM-style Gaussian columns.
    Splom,
    /// Gaussian-mixture clusters (clustering user study).
    GaussianMixture,
    /// Loaded from CSV or constructed directly by the caller.
    External,
}

impl DatasetKind {
    /// Human-readable label used by the experiment harness.
    pub fn label(&self) -> &'static str {
        match self {
            DatasetKind::GeolifeSim => "geolife-sim",
            DatasetKind::Splom => "splom",
            DatasetKind::GaussianMixture => "gaussian-mixture",
            DatasetKind::External => "external",
        }
    }
}

/// An in-memory dataset of 2-D points.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// Short name used in logs and experiment output.
    pub name: String,
    /// Provenance of the data.
    pub kind: DatasetKind,
    /// The points themselves.
    pub points: Vec<Point>,
}

impl Dataset {
    /// Wraps a vector of points into a dataset.
    pub fn new(name: impl Into<String>, kind: DatasetKind, points: Vec<Point>) -> Self {
        Self {
            name: name.into(),
            kind,
            points,
        }
    }

    /// Builds an [`DatasetKind::External`] dataset from raw points.
    pub fn from_points(name: impl Into<String>, points: Vec<Point>) -> Self {
        Self::new(name, DatasetKind::External, points)
    }

    /// Number of points (the paper's `N`).
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if the dataset holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Iterator over the points in storage order.
    pub fn iter(&self) -> impl Iterator<Item = &Point> {
        self.points.iter()
    }

    /// Spatial extent of the dataset.
    pub fn bounds(&self) -> BoundingBox {
        BoundingBox::from_points(&self.points)
    }

    /// The points whose coordinates fall inside `region`.
    pub fn filter_region(&self, region: &BoundingBox) -> Vec<Point> {
        self.points
            .iter()
            .filter(|p| region.contains(p))
            .copied()
            .collect()
    }

    /// Returns a new dataset holding only the first `n` points.
    ///
    /// Used by the harness to build size sweeps from a single expensive
    /// generation run.
    pub fn truncated(&self, n: usize) -> Dataset {
        Dataset {
            name: format!("{}[..{}]", self.name, n.min(self.len())),
            kind: self.kind,
            points: self.points.iter().take(n).copied().collect(),
        }
    }

    /// Mean of the attribute value across all points (0 for an empty set).
    pub fn mean_value(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|p| p.value).sum::<f64>() / self.points.len() as f64
    }

    /// Removes points with non-finite coordinates, returning how many were
    /// dropped. Generators never produce such points but CSV imports might.
    pub fn sanitize(&mut self) -> usize {
        let before = self.points.len();
        self.points.retain(|p| p.is_finite() && p.value.is_finite());
        before - self.points.len()
    }
}

impl<'a> IntoIterator for &'a Dataset {
    type Item = &'a Point;
    type IntoIter = std::slice::Iter<'a, Point>;

    fn into_iter(self) -> Self::IntoIter {
        self.points.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dataset() -> Dataset {
        Dataset::from_points(
            "test",
            vec![
                Point::with_value(0.0, 0.0, 1.0),
                Point::with_value(1.0, 1.0, 2.0),
                Point::with_value(2.0, 2.0, 3.0),
                Point::with_value(3.0, 3.0, 6.0),
            ],
        )
    }

    #[test]
    fn len_bounds_mean() {
        let d = sample_dataset();
        assert_eq!(d.len(), 4);
        assert!(!d.is_empty());
        assert_eq!(d.bounds(), BoundingBox::new(0.0, 0.0, 3.0, 3.0));
        assert_eq!(d.mean_value(), 3.0);
    }

    #[test]
    fn empty_dataset() {
        let d = Dataset::from_points("empty", vec![]);
        assert!(d.is_empty());
        assert_eq!(d.mean_value(), 0.0);
        assert!(d.bounds().is_empty());
    }

    #[test]
    fn filter_region_selects_inside_points() {
        let d = sample_dataset();
        let region = BoundingBox::new(0.5, 0.5, 2.5, 2.5);
        let inside = d.filter_region(&region);
        assert_eq!(inside.len(), 2);
        assert!(inside.iter().all(|p| region.contains(p)));
    }

    #[test]
    fn truncated_keeps_prefix() {
        let d = sample_dataset();
        let t = d.truncated(2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.points[0], d.points[0]);
        assert_eq!(t.points[1], d.points[1]);
        // truncating beyond the length is a no-op on the contents
        assert_eq!(d.truncated(100).len(), 4);
    }

    #[test]
    fn sanitize_removes_non_finite() {
        let mut d = sample_dataset();
        d.points.push(Point::new(f64::NAN, 0.0));
        d.points.push(Point::with_value(0.0, 0.0, f64::INFINITY));
        let removed = d.sanitize();
        assert_eq!(removed, 2);
        assert_eq!(d.len(), 4);
    }

    #[test]
    fn iterates_in_order() {
        let d = sample_dataset();
        let xs: Vec<f64> = d.iter().map(|p| p.x).collect();
        assert_eq!(xs, vec![0.0, 1.0, 2.0, 3.0]);
        let ys: Vec<f64> = (&d).into_iter().map(|p| p.y).collect();
        assert_eq!(ys, vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn kind_labels() {
        assert_eq!(DatasetKind::GeolifeSim.label(), "geolife-sim");
        assert_eq!(DatasetKind::Splom.label(), "splom");
        assert_eq!(DatasetKind::GaussianMixture.label(), "gaussian-mixture");
        assert_eq!(DatasetKind::External.label(), "external");
    }
}
