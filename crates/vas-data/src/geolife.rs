//! Synthetic stand-in for the Geolife GPS dataset.
//!
//! The original evaluation uses the Geolife collection: 24.4M
//! (latitude, longitude, altitude) triples recorded by GPS loggers carried by
//! people living in and around Beijing. The raw data cannot be shipped with
//! this reproduction, so [`GeolifeGenerator`] synthesizes trajectories with
//! the statistical properties the VAS experiments actually depend on:
//!
//! * **Heavy spatial skew** — most points concentrate in a handful of urban
//!   "hotspots" (the paper's motivation for why uniform sampling starves
//!   sparse regions).
//! * **Trajectory structure** — points come from random-walk trips, so local
//!   neighbourhoods look like road segments rather than i.i.d. noise.
//! * **Occasional long-distance trips** — sparse filaments connecting
//!   hotspots, which are precisely the features a zoomed-in view reveals and
//!   that VAS preserves better than uniform/stratified sampling (Figure 1).
//! * **An altitude attribute** correlated with location, used by the
//!   regression user task ("what is the altitude at X?").
//!
//! Coordinates are produced in a longitude/latitude-like range around
//! (116.4, 39.9), i.e. Beijing, purely for cosmetic fidelity; the algorithms
//! are unit-agnostic.

use crate::dataset::{Dataset, DatasetKind};
use crate::point::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

/// A population centre around which trajectories concentrate.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Hotspot {
    /// Longitude-like coordinate of the centre.
    pub x: f64,
    /// Latitude-like coordinate of the centre.
    pub y: f64,
    /// Standard deviation of trip start positions around the centre.
    pub spread: f64,
    /// Relative probability that a trip starts at this hotspot.
    pub weight: f64,
    /// Base altitude (metres) of the area.
    pub base_altitude: f64,
}

/// Configuration for the synthetic Geolife generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeolifeConfig {
    /// Total number of points to generate (the paper's `N`).
    pub n_points: usize,
    /// RNG seed; identical seeds yield identical datasets.
    pub seed: u64,
    /// Mean number of points per trip (trip lengths are geometric-ish).
    pub mean_trip_len: usize,
    /// Random-walk step standard deviation, in coordinate units.
    pub step_sigma: f64,
    /// Probability that a trip is a long-distance excursion towards another
    /// hotspot instead of a local wander.
    pub long_trip_prob: f64,
    /// GPS measurement noise added to every emitted point.
    pub gps_noise: f64,
    /// Amplitude (metres) of the synthetic terrain undulation that modulates
    /// altitude with location.
    pub terrain_amplitude: f64,
    /// Population centres. Defaults to a Beijing-like constellation.
    pub hotspots: Vec<Hotspot>,
}

impl Default for GeolifeConfig {
    fn default() -> Self {
        Self {
            n_points: 100_000,
            seed: 42,
            mean_trip_len: 200,
            step_sigma: 0.0015,
            long_trip_prob: 0.08,
            gps_noise: 0.0002,
            terrain_amplitude: 120.0,
            hotspots: default_hotspots(),
        }
    }
}

impl GeolifeConfig {
    /// Convenience constructor: `n_points` points with the given seed and
    /// default Beijing-like hotspots.
    pub fn new(n_points: usize, seed: u64) -> Self {
        Self {
            n_points,
            seed,
            ..Self::default()
        }
    }
}

/// A Beijing-like constellation: one dominant urban core, a few satellite
/// towns, and two far-away destinations that create sparse filaments.
fn default_hotspots() -> Vec<Hotspot> {
    vec![
        Hotspot {
            x: 116.40,
            y: 39.90,
            spread: 0.06,
            weight: 0.55,
            base_altitude: 45.0,
        },
        Hotspot {
            x: 116.60,
            y: 40.07,
            spread: 0.03,
            weight: 0.15,
            base_altitude: 35.0,
        },
        Hotspot {
            x: 116.18,
            y: 39.75,
            spread: 0.03,
            weight: 0.12,
            base_altitude: 55.0,
        },
        Hotspot {
            x: 115.95,
            y: 40.45,
            spread: 0.025,
            weight: 0.08,
            base_altitude: 480.0,
        },
        Hotspot {
            x: 117.20,
            y: 39.12,
            spread: 0.05,
            weight: 0.07,
            base_altitude: 5.0,
        },
        Hotspot {
            x: 115.48,
            y: 38.87,
            spread: 0.02,
            weight: 0.03,
            base_altitude: 20.0,
        },
    ]
}

/// Deterministic synthetic GPS trajectory generator.
#[derive(Debug, Clone)]
pub struct GeolifeGenerator {
    config: GeolifeConfig,
}

impl GeolifeGenerator {
    /// Creates a generator from an explicit configuration.
    pub fn new(config: GeolifeConfig) -> Self {
        assert!(
            !config.hotspots.is_empty(),
            "GeolifeConfig requires at least one hotspot"
        );
        Self { config }
    }

    /// Creates a generator with default hotspots.
    pub fn with_size(n_points: usize, seed: u64) -> Self {
        Self::new(GeolifeConfig::new(n_points, seed))
    }

    /// Access to the configuration.
    pub fn config(&self) -> &GeolifeConfig {
        &self.config
    }

    /// Generates the dataset by materializing [`GeolifeGenerator::points`].
    pub fn generate(&self) -> Dataset {
        let points: Vec<Point> = self.points().collect();
        Dataset::new(
            format!("geolife-sim-{}", self.config.n_points),
            DatasetKind::GeolifeSim,
            points,
        )
    }

    /// Streaming variant of [`generate`](Self::generate): an iterator that
    /// yields the exact same `n_points` points (bit-for-bit, same RNG draws)
    /// one at a time, so callers can spill or sample arbitrarily large
    /// trajectory streams without ever holding the dataset in memory.
    /// `generate` itself collects this iterator, so the two paths cannot
    /// drift apart.
    pub fn points(&self) -> GeolifePoints {
        GeolifePoints::new(self.clone())
    }

    /// Samples a hotspot index proportionally to weight.
    fn pick_hotspot(&self, rng: &mut StdRng, total_weight: f64) -> usize {
        let mut target = rng.gen_range(0.0..total_weight);
        for (i, h) in self.config.hotspots.iter().enumerate() {
            if target < h.weight {
                return i;
            }
            target -= h.weight;
        }
        self.config.hotspots.len() - 1
    }

    /// Synthetic terrain model: the altitude of the nearest hotspot plus a
    /// smooth sinusoidal undulation and small measurement noise. This gives
    /// the regression task a ground truth that varies with location but is
    /// locally smooth, like real terrain.
    fn altitude_at(&self, x: f64, y: f64, rng: &mut StdRng) -> f64 {
        let cfg = &self.config;
        // Inverse-distance-weighted blend of hotspot base altitudes.
        let mut num = 0.0;
        let mut den = 0.0;
        for h in &cfg.hotspots {
            let d2 = (x - h.x).powi(2) + (y - h.y).powi(2);
            let w = 1.0 / (d2 + 1e-4);
            num += w * h.base_altitude;
            den += w;
        }
        let base = num / den;
        let undulation = cfg.terrain_amplitude
            * ((x * 23.0).sin() * (y * 31.0).cos() * 0.5 + (x * 7.0 + y * 11.0).sin() * 0.5);
        base + undulation + rng.gen_range(-2.0..2.0)
    }
}

/// Streaming point iterator behind [`GeolifeGenerator::points`].
///
/// Holds only the RNG and the state of the trip currently being walked, so
/// the memory footprint is constant regardless of `n_points`. Yields exactly
/// `config.n_points` points and then ends.
#[derive(Debug, Clone)]
pub struct GeolifePoints {
    generator: GeolifeGenerator,
    rng: StdRng,
    step: Normal,
    noise: Normal,
    total_weight: f64,
    emitted: usize,
    // State of the trip currently being emitted. `step_idx >= trip_len`
    // means "no active trip"; the next call starts one.
    x: f64,
    y: f64,
    heading: f64,
    destination: Option<Hotspot>,
    trip_len: usize,
    step_idx: usize,
}

impl GeolifePoints {
    fn new(generator: GeolifeGenerator) -> Self {
        let cfg = generator.config();
        Self {
            rng: StdRng::seed_from_u64(cfg.seed),
            step: Normal::new(0.0, cfg.step_sigma).expect("valid sigma"),
            noise: Normal::new(0.0, cfg.gps_noise).expect("valid sigma"),
            total_weight: cfg.hotspots.iter().map(|h| h.weight).sum(),
            emitted: 0,
            x: 0.0,
            y: 0.0,
            heading: 0.0,
            destination: None,
            trip_len: 0,
            step_idx: 0,
            generator,
        }
    }

    /// Performs the trip-start draws, in the exact order the materializing
    /// loop performed them.
    fn begin_trip(&mut self) {
        let start_idx = self
            .generator
            .pick_hotspot(&mut self.rng, self.total_weight);
        let cfg = &self.generator.config;
        let start = cfg.hotspots[start_idx];

        // Trip length: geometric-ish around the configured mean.
        self.trip_len = 1 + self
            .rng
            .gen_range(cfg.mean_trip_len / 2..=cfg.mean_trip_len * 3 / 2);
        self.step_idx = 0;

        self.x = start.x + self.step.sample(&mut self.rng) * (start.spread / cfg.step_sigma);
        self.y = start.y + self.step.sample(&mut self.rng) * (start.spread / cfg.step_sigma);

        // Long trips head towards another hotspot; local trips wander.
        self.destination = if self.rng.gen_bool(cfg.long_trip_prob) {
            let mut dest = self
                .generator
                .pick_hotspot(&mut self.rng, self.total_weight);
            if dest == start_idx {
                dest = (dest + 1) % self.generator.config.hotspots.len();
            }
            Some(self.generator.config.hotspots[dest])
        } else {
            None
        };

        // A persistent per-trip heading makes local trips look like road
        // segments rather than Brownian blobs.
        self.heading = self.rng.gen_range(0.0..std::f64::consts::TAU);
    }
}

impl Iterator for GeolifePoints {
    type Item = Point;

    fn next(&mut self) -> Option<Point> {
        if self.emitted >= self.generator.config.n_points {
            return None;
        }
        if self.step_idx >= self.trip_len {
            self.begin_trip();
        }
        let cfg = &self.generator.config;
        match self.destination {
            Some(dest) => {
                // Move a fixed fraction of the remaining way plus noise.
                let frac = 1.0 / (self.trip_len - self.step_idx) as f64;
                self.x += (dest.x - self.x) * frac + self.step.sample(&mut self.rng) * 0.3;
                self.y += (dest.y - self.y) * frac + self.step.sample(&mut self.rng) * 0.3;
            }
            None => {
                // Slowly-turning correlated random walk.
                self.heading += self.rng.gen_range(-0.35..0.35);
                let len = cfg.step_sigma * (1.0 + self.rng.gen_range(0.0..1.0));
                self.x += self.heading.cos() * len;
                self.y += self.heading.sin() * len;
            }
        }
        self.step_idx += 1;
        let px = self.x + self.noise.sample(&mut self.rng);
        let py = self.y + self.noise.sample(&mut self.rng);
        let altitude = self.generator.altitude_at(px, py, &mut self.rng);
        self.emitted += 1;
        Some(Point::with_value(px, py, altitude))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.generator.config.n_points - self.emitted;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for GeolifePoints {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::BoundingBox;

    #[test]
    fn generates_requested_count() {
        let d = GeolifeGenerator::with_size(5_000, 1).generate();
        assert_eq!(d.len(), 5_000);
        assert_eq!(d.kind, DatasetKind::GeolifeSim);
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let a = GeolifeGenerator::with_size(2_000, 7).generate();
        let b = GeolifeGenerator::with_size(2_000, 7).generate();
        assert_eq!(a.points, b.points);
    }

    #[test]
    fn different_seeds_differ() {
        let a = GeolifeGenerator::with_size(1_000, 1).generate();
        let b = GeolifeGenerator::with_size(1_000, 2).generate();
        assert_ne!(a.points, b.points);
    }

    #[test]
    fn points_are_finite_and_near_beijing() {
        let d = GeolifeGenerator::with_size(10_000, 3).generate();
        assert!(d.points.iter().all(|p| p.is_finite()));
        let bounds = d.bounds();
        // Everything should stay within a loose box around the hotspots.
        let plausible = BoundingBox::new(110.0, 34.0, 122.0, 45.0);
        assert!(
            plausible.contains_box(&bounds),
            "unexpected extent {bounds:?}"
        );
    }

    #[test]
    fn spatially_skewed_towards_main_hotspot() {
        let d = GeolifeGenerator::with_size(20_000, 5).generate();
        let core = BoundingBox::new(116.40 - 0.2, 39.90 - 0.2, 116.40 + 0.2, 39.90 + 0.2);
        let in_core = d.points.iter().filter(|p| core.contains(p)).count();
        let core_fraction = in_core as f64 / d.len() as f64;
        let bounds = d.bounds();
        let area_fraction = core.area() / bounds.area();
        // The urban core holds far more than its fair (area-proportional) share.
        assert!(
            core_fraction > 5.0 * area_fraction,
            "core fraction {core_fraction:.3} vs area fraction {area_fraction:.3}"
        );
    }

    #[test]
    fn altitude_is_location_dependent_but_locally_smooth() {
        let gen = GeolifeGenerator::with_size(1_000, 11);
        let d = gen.generate();
        // Points within a tiny neighbourhood should have similar altitude.
        let p0 = d.points[0];
        let nearby: Vec<&Point> = d
            .points
            .iter()
            .filter(|p| p.dist(&p0) < 0.002 && p.dist(&p0) > 0.0)
            .collect();
        if !nearby.is_empty() {
            let max_dev = nearby
                .iter()
                .map(|p| (p.value - p0.value).abs())
                .fold(0.0_f64, f64::max);
            assert!(max_dev < 60.0, "altitude not locally smooth: {max_dev}");
        }
        // But across the whole extent there is substantial variation.
        let min = d
            .points
            .iter()
            .map(|p| p.value)
            .fold(f64::INFINITY, f64::min);
        let max = d
            .points
            .iter()
            .map(|p| p.value)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(max - min > 50.0, "altitude range too small: {}", max - min);
    }

    #[test]
    fn streaming_iterator_matches_generate_bitwise() {
        let gen = GeolifeGenerator::with_size(7_123, 13);
        let materialized = gen.generate();
        let streamed: Vec<Point> = gen.points().collect();
        assert_eq!(streamed.len(), materialized.len());
        for (i, (a, b)) in streamed.iter().zip(&materialized.points).enumerate() {
            assert!(
                a.x.to_bits() == b.x.to_bits()
                    && a.y.to_bits() == b.y.to_bits()
                    && a.value.to_bits() == b.value.to_bits(),
                "point {i} diverged: {a:?} vs {b:?}"
            );
        }
    }

    #[test]
    fn streaming_iterator_reports_exact_length() {
        let gen = GeolifeGenerator::with_size(500, 2);
        let mut iter = gen.points();
        assert_eq!(iter.len(), 500);
        for consumed in 1..=500 {
            assert!(iter.next().is_some());
            assert_eq!(iter.len(), 500 - consumed);
        }
        assert!(iter.next().is_none());
        assert_eq!(iter.len(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one hotspot")]
    fn rejects_empty_hotspots() {
        let cfg = GeolifeConfig {
            hotspots: vec![],
            ..GeolifeConfig::default()
        };
        let _ = GeolifeGenerator::new(cfg);
    }
}
