//! Zoom workloads: the sequences of viewport requests a visualization tool
//! issues while a user explores a scatter/map plot.
//!
//! The user study (Section VI-B) evaluates each sampling method at several
//! randomly chosen zoomed-in regions. [`ZoomWorkload`] generates those regions
//! deterministically: a set of viewports at a given zoom level whose placement
//! is biased towards where the data actually is, so zoomed views are not
//! mostly empty (mirroring how the paper picked regions containing data).

use crate::dataset::Dataset;
use crate::point::{BoundingBox, Point};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How far a viewport zooms into the full dataset extent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ZoomLevel {
    /// The full extent (1× zoom).
    Overview,
    /// Each viewport covers 1/4 of the extent per axis (4× zoom).
    Medium,
    /// Each viewport covers 1/10 of the extent per axis (10× zoom).
    Deep,
    /// Custom zoom: the viewport covers `1/factor` of the extent per axis.
    Custom(u32),
}

impl ZoomLevel {
    /// The linear shrink factor of the viewport relative to the full extent.
    pub fn factor(&self) -> f64 {
        match self {
            ZoomLevel::Overview => 1.0,
            ZoomLevel::Medium => 4.0,
            ZoomLevel::Deep => 10.0,
            ZoomLevel::Custom(f) => (*f).max(1) as f64,
        }
    }
}

/// A single viewport request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZoomRegion {
    /// Viewport rectangle in data coordinates.
    pub viewport: BoundingBox,
    /// Zoom level that produced this viewport.
    pub level: ZoomLevel,
    /// The anchor point the viewport was centred on.
    pub anchor: Point,
}

/// Deterministic generator of zoom regions anchored on data points.
#[derive(Debug, Clone)]
pub struct ZoomWorkload {
    seed: u64,
}

impl ZoomWorkload {
    /// Creates a workload generator with the given seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Generates `count` zoom regions at `level`, each centred on a randomly
    /// chosen data point (so regions are guaranteed to contain data), clamped
    /// to the dataset extent.
    ///
    /// Returns an empty vector for an empty dataset.
    pub fn regions(&self, dataset: &Dataset, level: ZoomLevel, count: usize) -> Vec<ZoomRegion> {
        if dataset.is_empty() || count == 0 {
            return Vec::new();
        }
        let bounds = dataset.bounds();
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x5eed_2004_u64);
        let width = bounds.width() / level.factor();
        let height = bounds.height() / level.factor();

        (0..count)
            .map(|_| {
                let anchor = dataset.points[rng.gen_range(0..dataset.len())];
                let viewport = clamp_viewport(&bounds, &anchor, width, height);
                ZoomRegion {
                    viewport,
                    level,
                    anchor,
                }
            })
            .collect()
    }

    /// A standard exploration session: one overview plus `zoomed` deep-zoom
    /// regions — the shape of the workloads used for Table I and Figure 1.
    pub fn session(&self, dataset: &Dataset, zoomed: usize) -> Vec<ZoomRegion> {
        if dataset.is_empty() {
            return Vec::new();
        }
        let bounds = dataset.bounds();
        let mut out = vec![ZoomRegion {
            viewport: bounds,
            level: ZoomLevel::Overview,
            anchor: bounds.center(),
        }];
        out.extend(self.regions(dataset, ZoomLevel::Deep, zoomed));
        out
    }
}

/// Centres a `width` × `height` viewport on `anchor`, sliding it as needed so
/// it stays inside `bounds`.
fn clamp_viewport(bounds: &BoundingBox, anchor: &Point, width: f64, height: f64) -> BoundingBox {
    let mut min_x = anchor.x - width / 2.0;
    let mut min_y = anchor.y - height / 2.0;
    min_x = min_x.max(bounds.min_x).min(bounds.max_x - width);
    min_y = min_y.max(bounds.min_y).min(bounds.max_y - height);
    // If the viewport is larger than the extent, fall back to the extent.
    if width >= bounds.width() || height >= bounds.height() {
        return *bounds;
    }
    BoundingBox::new(min_x, min_y, min_x + width, min_y + height)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geolife::GeolifeGenerator;

    fn dataset() -> Dataset {
        GeolifeGenerator::with_size(5_000, 3).generate()
    }

    #[test]
    fn zoom_factors() {
        assert_eq!(ZoomLevel::Overview.factor(), 1.0);
        assert_eq!(ZoomLevel::Medium.factor(), 4.0);
        assert_eq!(ZoomLevel::Deep.factor(), 10.0);
        assert_eq!(ZoomLevel::Custom(25).factor(), 25.0);
        assert_eq!(ZoomLevel::Custom(0).factor(), 1.0);
    }

    #[test]
    fn regions_are_inside_bounds_and_contain_anchor() {
        let d = dataset();
        let bounds = d.bounds();
        let regions = ZoomWorkload::new(1).regions(&d, ZoomLevel::Deep, 8);
        assert_eq!(regions.len(), 8);
        for r in &regions {
            assert!(bounds.contains_box(&r.viewport), "viewport escapes bounds");
            assert!(r.viewport.contains(&r.anchor) || r.viewport.width() < bounds.width());
            // Viewport should be roughly 1/10 of the extent per axis.
            assert!((r.viewport.width() - bounds.width() / 10.0).abs() < 1e-9);
        }
    }

    #[test]
    fn regions_contain_data() {
        let d = dataset();
        let regions = ZoomWorkload::new(2).regions(&d, ZoomLevel::Deep, 6);
        for r in &regions {
            assert!(
                !d.filter_region(&r.viewport).is_empty(),
                "zoom region unexpectedly empty"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let d = dataset();
        let a = ZoomWorkload::new(9).regions(&d, ZoomLevel::Medium, 5);
        let b = ZoomWorkload::new(9).regions(&d, ZoomLevel::Medium, 5);
        assert_eq!(a, b);
        let c = ZoomWorkload::new(10).regions(&d, ZoomLevel::Medium, 5);
        assert_ne!(a, c);
    }

    #[test]
    fn session_starts_with_overview() {
        let d = dataset();
        let s = ZoomWorkload::new(4).session(&d, 6);
        assert_eq!(s.len(), 7);
        assert_eq!(s[0].level, ZoomLevel::Overview);
        assert_eq!(s[0].viewport, d.bounds());
        assert!(s[1..].iter().all(|r| r.level == ZoomLevel::Deep));
    }

    #[test]
    fn empty_dataset_yields_no_regions() {
        let d = Dataset::from_points("empty", vec![]);
        assert!(ZoomWorkload::new(0)
            .regions(&d, ZoomLevel::Deep, 3)
            .is_empty());
        assert!(ZoomWorkload::new(0).session(&d, 3).is_empty());
    }

    #[test]
    fn overview_regions_cover_full_extent() {
        let d = dataset();
        let r = ZoomWorkload::new(5).regions(&d, ZoomLevel::Overview, 1);
        assert_eq!(r[0].viewport, d.bounds());
    }
}
