//! SPLOM-style synthetic data.
//!
//! The paper's second dataset, "SPLOM", is a synthetic table of five columns
//! drawn from Gaussian distributions, originally used by the imMens and
//! Profiler visualization projects. A scatter-plot matrix (SPLOM) views every
//! pair of columns as a scatter plot; the VAS experiments visualize one such
//! pair at a time.
//!
//! [`SplomGenerator`] reproduces the same construction: five correlated
//! columns built from Gaussian draws with per-column scaling and pairwise
//! correlation, then exposes any column pair as a [`Dataset`] of 2-D points.

use crate::dataset::{Dataset, DatasetKind};
use crate::point::Point;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

/// Number of columns in the SPLOM table (matches the paper).
pub const SPLOM_COLUMNS: usize = 5;

/// Configuration for the SPLOM generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SplomConfig {
    /// Number of rows to generate.
    pub n_rows: usize,
    /// RNG seed.
    pub seed: u64,
    /// Per-column standard deviations.
    pub sigmas: [f64; SPLOM_COLUMNS],
    /// Per-column means.
    pub means: [f64; SPLOM_COLUMNS],
    /// Correlation factor in `[0, 1)` mixing a shared latent factor into every
    /// column, which produces the elongated Gaussian clouds seen in the
    /// original SPLOM plots.
    pub correlation: f64,
}

impl Default for SplomConfig {
    fn default() -> Self {
        Self {
            n_rows: 100_000,
            seed: 7,
            sigmas: [1.0, 2.0, 0.5, 1.5, 3.0],
            means: [0.0, 5.0, -2.0, 10.0, 0.0],
            correlation: 0.6,
        }
    }
}

impl SplomConfig {
    /// Convenience constructor for an `n_rows`-row table with default shape.
    pub fn new(n_rows: usize, seed: u64) -> Self {
        Self {
            n_rows,
            seed,
            ..Self::default()
        }
    }
}

/// Generator producing the five-column SPLOM table.
#[derive(Debug, Clone)]
pub struct SplomGenerator {
    config: SplomConfig,
}

/// The materialized five-column table.
#[derive(Debug, Clone)]
pub struct SplomTable {
    /// Column-major storage: `columns[c][row]`.
    pub columns: Vec<Vec<f64>>,
}

impl SplomTable {
    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.columns.first().map_or(0, Vec::len)
    }

    /// Projects a pair of columns into a 2-D dataset. The third SPLOM column
    /// is attached as the point value so map-plot style color encoding has
    /// something to show.
    ///
    /// # Panics
    /// Panics if `cx` or `cy` is out of range or if `cx == cy`.
    pub fn project(&self, cx: usize, cy: usize) -> Dataset {
        assert!(
            cx < SPLOM_COLUMNS && cy < SPLOM_COLUMNS,
            "column out of range"
        );
        assert_ne!(cx, cy, "projection requires two distinct columns");
        let value_col = (0..SPLOM_COLUMNS).find(|&c| c != cx && c != cy).unwrap();
        let points = (0..self.n_rows())
            .map(|r| {
                Point::with_value(
                    self.columns[cx][r],
                    self.columns[cy][r],
                    self.columns[value_col][r],
                )
            })
            .collect();
        Dataset::new(format!("splom-{}x{}", cx, cy), DatasetKind::Splom, points)
    }
}

impl SplomGenerator {
    /// Creates a generator from an explicit configuration.
    pub fn new(config: SplomConfig) -> Self {
        assert!(
            (0.0..1.0).contains(&config.correlation),
            "correlation must be in [0, 1)"
        );
        Self { config }
    }

    /// Creates a generator with default column shapes.
    pub fn with_size(n_rows: usize, seed: u64) -> Self {
        Self::new(SplomConfig::new(n_rows, seed))
    }

    /// Access to the configuration.
    pub fn config(&self) -> &SplomConfig {
        &self.config
    }

    /// Generates the full five-column table by materializing
    /// [`rows`](Self::rows).
    pub fn generate_table(&self) -> SplomTable {
        let mut columns: Vec<Vec<f64>> = (0..SPLOM_COLUMNS)
            .map(|_| Vec::with_capacity(self.config.n_rows))
            .collect();
        for row in self.rows() {
            for (c, column) in columns.iter_mut().enumerate() {
                column.push(row[c]);
            }
        }
        SplomTable { columns }
    }

    /// Generates the table and immediately projects the conventional (0, 1)
    /// column pair used by the paper's scatter-plot experiments.
    pub fn generate(&self) -> Dataset {
        self.generate_table().project(0, 1)
    }

    /// Streaming row iterator: yields each five-column row (bit-for-bit the
    /// same draws as [`generate_table`](Self::generate_table), which collects
    /// this iterator) without materializing the table.
    pub fn rows(&self) -> SplomRows {
        SplomRows {
            rng: StdRng::seed_from_u64(self.config.seed),
            std_normal: Normal::new(0.0, 1.0).expect("valid normal"),
            emitted: 0,
            generator: self.clone(),
        }
    }

    /// Streaming variant of `generate_table().project(cx, cy)`: yields the
    /// exact same projected points one at a time in bounded memory.
    ///
    /// # Panics
    /// Panics if `cx` or `cy` is out of range or if `cx == cy`.
    pub fn points(&self, cx: usize, cy: usize) -> SplomPoints {
        assert!(
            cx < SPLOM_COLUMNS && cy < SPLOM_COLUMNS,
            "column out of range"
        );
        assert_ne!(cx, cy, "projection requires two distinct columns");
        let value_col = (0..SPLOM_COLUMNS).find(|&c| c != cx && c != cy).unwrap();
        SplomPoints {
            rows: self.rows(),
            cx,
            cy,
            value_col,
        }
    }
}

/// Streaming row iterator behind [`SplomGenerator::rows`].
#[derive(Debug, Clone)]
pub struct SplomRows {
    generator: SplomGenerator,
    rng: StdRng,
    std_normal: Normal,
    emitted: usize,
}

impl Iterator for SplomRows {
    type Item = [f64; SPLOM_COLUMNS];

    fn next(&mut self) -> Option<[f64; SPLOM_COLUMNS]> {
        let cfg = &self.generator.config;
        if self.emitted >= cfg.n_rows {
            return None;
        }
        let rho = cfg.correlation;
        let independent_scale = (1.0 - rho * rho).sqrt();
        // Shared latent factor injects correlation between columns.
        let latent = self.std_normal.sample(&mut self.rng);
        let mut row = [0.0; SPLOM_COLUMNS];
        for (c, cell) in row.iter_mut().enumerate() {
            let own = self.std_normal.sample(&mut self.rng);
            let z = rho * latent + independent_scale * own;
            *cell = cfg.means[c] + cfg.sigmas[c] * z;
        }
        self.emitted += 1;
        Some(row)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.generator.config.n_rows - self.emitted;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for SplomRows {}

/// Streaming projected-point iterator behind [`SplomGenerator::points`].
#[derive(Debug, Clone)]
pub struct SplomPoints {
    rows: SplomRows,
    cx: usize,
    cy: usize,
    value_col: usize,
}

impl Iterator for SplomPoints {
    type Item = Point;

    fn next(&mut self) -> Option<Point> {
        self.rows
            .next()
            .map(|row| Point::with_value(row[self.cx], row[self.cy], row[self.value_col]))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.rows.size_hint()
    }
}

impl ExactSizeIterator for SplomPoints {}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean(v: &[f64]) -> f64 {
        v.iter().sum::<f64>() / v.len() as f64
    }

    fn std_dev(v: &[f64]) -> f64 {
        let m = mean(v);
        (v.iter().map(|x| (x - m).powi(2)).sum::<f64>() / v.len() as f64).sqrt()
    }

    fn pearson(a: &[f64], b: &[f64]) -> f64 {
        let ma = mean(a);
        let mb = mean(b);
        let cov: f64 = a
            .iter()
            .zip(b)
            .map(|(x, y)| (x - ma) * (y - mb))
            .sum::<f64>()
            / a.len() as f64;
        cov / (std_dev(a) * std_dev(b))
    }

    #[test]
    fn generates_five_columns_with_requested_rows() {
        let t = SplomGenerator::with_size(10_000, 1).generate_table();
        assert_eq!(t.columns.len(), SPLOM_COLUMNS);
        assert_eq!(t.n_rows(), 10_000);
    }

    #[test]
    fn deterministic() {
        let a = SplomGenerator::with_size(5_000, 9).generate();
        let b = SplomGenerator::with_size(5_000, 9).generate();
        assert_eq!(a.points, b.points);
    }

    #[test]
    fn column_moments_match_config() {
        let cfg = SplomConfig::new(50_000, 3);
        let t = SplomGenerator::new(cfg.clone()).generate_table();
        for c in 0..SPLOM_COLUMNS {
            let m = mean(&t.columns[c]);
            let s = std_dev(&t.columns[c]);
            assert!(
                (m - cfg.means[c]).abs() < 0.1 * cfg.sigmas[c].max(1.0),
                "column {c}: mean {m} vs {}",
                cfg.means[c]
            );
            assert!(
                (s - cfg.sigmas[c]).abs() < 0.1 * cfg.sigmas[c],
                "column {c}: sigma {s} vs {}",
                cfg.sigmas[c]
            );
        }
    }

    #[test]
    fn columns_are_positively_correlated() {
        let t = SplomGenerator::with_size(50_000, 5).generate_table();
        let r = pearson(&t.columns[0], &t.columns[1]);
        // correlation = 0.6 injected via shared latent factor → r ≈ 0.36
        assert!(r > 0.2, "expected positive correlation, got {r}");
    }

    #[test]
    fn projection_attaches_third_column_as_value() {
        let t = SplomGenerator::with_size(100, 2).generate_table();
        let d = t.project(0, 1);
        assert_eq!(d.kind, DatasetKind::Splom);
        assert_eq!(d.len(), 100);
        // value column is column 2 (first column that is neither 0 nor 1)
        assert_eq!(d.points[10].value, t.columns[2][10]);
    }

    #[test]
    fn streaming_points_match_projection_bitwise() {
        let g = SplomGenerator::with_size(2_345, 11);
        for (cx, cy) in [(0usize, 1usize), (3, 2)] {
            let materialized = g.generate_table().project(cx, cy);
            let streamed: Vec<Point> = g.points(cx, cy).collect();
            assert_eq!(streamed.len(), materialized.len());
            for (i, (a, b)) in streamed.iter().zip(&materialized.points).enumerate() {
                assert!(
                    a.x.to_bits() == b.x.to_bits()
                        && a.y.to_bits() == b.y.to_bits()
                        && a.value.to_bits() == b.value.to_bits(),
                    "({cx},{cy}) point {i} diverged: {a:?} vs {b:?}"
                );
            }
        }
        assert_eq!(g.points(0, 1).len(), 2_345);
    }

    #[test]
    #[should_panic(expected = "distinct columns")]
    fn projection_rejects_identical_columns() {
        let t = SplomGenerator::with_size(10, 2).generate_table();
        let _ = t.project(3, 3);
    }

    #[test]
    #[should_panic(expected = "correlation")]
    fn rejects_invalid_correlation() {
        let cfg = SplomConfig {
            correlation: 1.5,
            ..SplomConfig::default()
        };
        let _ = SplomGenerator::new(cfg);
    }
}
