//! Gaussian-mixture datasets for the clustering user study.
//!
//! Section VI-B of the paper builds four synthetic datasets from one or two
//! 2-D Gaussian distributions with different covariances and asks users to
//! count the number of underlying clusters from sampled visualizations.
//! [`GaussianMixtureGenerator`] reproduces those datasets (and arbitrary
//! generalizations of them) with full control over cluster placement,
//! covariance and mixing weights.

use crate::dataset::{Dataset, DatasetKind};
use crate::point::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

/// One component of a Gaussian mixture.
///
/// The covariance is expressed as axis-aligned standard deviations plus a
/// rotation angle, which is enough to express any 2-D Gaussian.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GaussianCluster {
    /// Cluster centre, x coordinate.
    pub cx: f64,
    /// Cluster centre, y coordinate.
    pub cy: f64,
    /// Standard deviation along the (pre-rotation) x axis.
    pub sigma_x: f64,
    /// Standard deviation along the (pre-rotation) y axis.
    pub sigma_y: f64,
    /// Rotation of the principal axes, radians.
    pub rotation: f64,
    /// Relative share of points drawn from this cluster.
    pub weight: f64,
}

impl GaussianCluster {
    /// An isotropic cluster at `(cx, cy)` with standard deviation `sigma`.
    pub fn isotropic(cx: f64, cy: f64, sigma: f64) -> Self {
        Self {
            cx,
            cy,
            sigma_x: sigma,
            sigma_y: sigma,
            rotation: 0.0,
            weight: 1.0,
        }
    }

    /// Returns a copy with a different mixing weight.
    pub fn with_weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }

    /// Returns a copy with anisotropic spread and rotation.
    pub fn with_shape(mut self, sigma_x: f64, sigma_y: f64, rotation: f64) -> Self {
        self.sigma_x = sigma_x;
        self.sigma_y = sigma_y;
        self.rotation = rotation;
        self
    }
}

/// Generator drawing points from a mixture of 2-D Gaussians.
#[derive(Debug, Clone)]
pub struct GaussianMixtureGenerator {
    clusters: Vec<GaussianCluster>,
    n_points: usize,
    seed: u64,
}

impl GaussianMixtureGenerator {
    /// Creates a mixture generator.
    ///
    /// # Panics
    /// Panics if `clusters` is empty or any weight is non-positive.
    pub fn new(clusters: Vec<GaussianCluster>, n_points: usize, seed: u64) -> Self {
        assert!(
            !clusters.is_empty(),
            "mixture requires at least one cluster"
        );
        assert!(
            clusters.iter().all(|c| c.weight > 0.0),
            "cluster weights must be positive"
        );
        Self {
            clusters,
            n_points,
            seed,
        }
    }

    /// The four clustering-study datasets from the paper: two datasets drawn
    /// from a single Gaussian and two drawn from a pair of Gaussians with
    /// different covariances. `variant` selects one of `0..4`.
    pub fn paper_clustering_dataset(variant: usize, n_points: usize, seed: u64) -> Self {
        let clusters = match variant % 4 {
            // Single compact blob.
            0 => vec![GaussianCluster::isotropic(0.0, 0.0, 1.0)],
            // Single elongated blob.
            1 => vec![GaussianCluster::isotropic(0.0, 0.0, 1.0).with_shape(2.5, 0.8, 0.6)],
            // Two well-separated blobs of equal size.
            2 => vec![
                GaussianCluster::isotropic(-3.0, 0.0, 0.9),
                GaussianCluster::isotropic(3.0, 0.5, 0.9),
            ],
            // Two blobs with unequal spread and weight (partially overlapping
            // outline, the harder case discussed in the paper).
            _ => vec![
                GaussianCluster::isotropic(-1.8, -0.5, 1.2).with_weight(0.65),
                GaussianCluster::isotropic(2.2, 1.0, 0.7).with_weight(0.35),
            ],
        };
        Self::new(clusters, n_points, seed)
    }

    /// Number of mixture components (the ground truth for the clustering task).
    pub fn n_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// The configured components.
    pub fn clusters(&self) -> &[GaussianCluster] {
        &self.clusters
    }

    /// Generates the dataset by materializing [`points`](Self::points). Each
    /// point's `value` records the index of the component it was drawn from,
    /// providing ground-truth labels for evaluation (renderers ignore it
    /// unless asked to color by value).
    pub fn generate(&self) -> Dataset {
        let points: Vec<Point> = self.points().collect();
        Dataset::new(
            format!(
                "gaussian-mixture-{}c-{}",
                self.clusters.len(),
                self.n_points
            ),
            DatasetKind::GaussianMixture,
            points,
        )
    }

    /// Streaming variant of [`generate`](Self::generate): yields the exact
    /// same `n_points` points (bit-for-bit, same RNG draws) one at a time
    /// without materializing the dataset. `generate` collects this iterator.
    pub fn points(&self) -> GaussianMixturePoints {
        GaussianMixturePoints {
            rng: StdRng::seed_from_u64(self.seed),
            std_normal: Normal::new(0.0, 1.0).expect("valid normal"),
            total_weight: self.clusters.iter().map(|c| c.weight).sum(),
            emitted: 0,
            generator: self.clone(),
        }
    }
}

/// Streaming point iterator behind [`GaussianMixtureGenerator::points`].
#[derive(Debug, Clone)]
pub struct GaussianMixturePoints {
    generator: GaussianMixtureGenerator,
    rng: StdRng,
    std_normal: Normal,
    total_weight: f64,
    emitted: usize,
}

impl Iterator for GaussianMixturePoints {
    type Item = Point;

    fn next(&mut self) -> Option<Point> {
        if self.emitted >= self.generator.n_points {
            return None;
        }
        let clusters = &self.generator.clusters;
        let cluster_idx = {
            let mut target = self.rng.gen_range(0.0..self.total_weight);
            let mut chosen = clusters.len() - 1;
            for (i, c) in clusters.iter().enumerate() {
                if target < c.weight {
                    chosen = i;
                    break;
                }
                target -= c.weight;
            }
            chosen
        };
        let c = clusters[cluster_idx];
        let u = self.std_normal.sample(&mut self.rng) * c.sigma_x;
        let v = self.std_normal.sample(&mut self.rng) * c.sigma_y;
        let (sin, cos) = c.rotation.sin_cos();
        let x = c.cx + u * cos - v * sin;
        let y = c.cy + u * sin + v * cos;
        self.emitted += 1;
        Some(Point::with_value(x, y, cluster_idx as f64))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.generator.n_points - self.emitted;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for GaussianMixturePoints {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count_and_kind() {
        let g = GaussianMixtureGenerator::paper_clustering_dataset(2, 5_000, 1);
        let d = g.generate();
        assert_eq!(d.len(), 5_000);
        assert_eq!(d.kind, DatasetKind::GaussianMixture);
    }

    #[test]
    fn deterministic() {
        let a = GaussianMixtureGenerator::paper_clustering_dataset(3, 1_000, 5).generate();
        let b = GaussianMixtureGenerator::paper_clustering_dataset(3, 1_000, 5).generate();
        assert_eq!(a.points, b.points);
    }

    #[test]
    fn paper_variants_have_expected_cluster_counts() {
        for (variant, expected) in [(0, 1), (1, 1), (2, 2), (3, 2)] {
            let g = GaussianMixtureGenerator::paper_clustering_dataset(variant, 10, 0);
            assert_eq!(g.n_clusters(), expected, "variant {variant}");
        }
    }

    #[test]
    fn labels_match_cluster_geometry() {
        // Two well-separated blobs: points labelled 0 should be mostly near
        // (-3, 0) and points labelled 1 near (3, 0.5).
        let g = GaussianMixtureGenerator::paper_clustering_dataset(2, 20_000, 9);
        let d = g.generate();
        let mut correct = 0usize;
        for p in &d.points {
            let near_left = (p.x + 3.0).abs() < (p.x - 3.0).abs();
            let labelled_left = p.value == 0.0;
            if near_left == labelled_left {
                correct += 1;
            }
        }
        assert!(correct as f64 / d.len() as f64 > 0.99);
    }

    #[test]
    fn weights_control_cluster_shares() {
        let clusters = vec![
            GaussianCluster::isotropic(-10.0, 0.0, 0.5).with_weight(0.8),
            GaussianCluster::isotropic(10.0, 0.0, 0.5).with_weight(0.2),
        ];
        let d = GaussianMixtureGenerator::new(clusters, 20_000, 3).generate();
        let left = d.points.iter().filter(|p| p.x < 0.0).count() as f64 / d.len() as f64;
        assert!((left - 0.8).abs() < 0.03, "left share {left}");
    }

    #[test]
    fn anisotropic_clusters_are_elongated() {
        let clusters = vec![GaussianCluster::isotropic(0.0, 0.0, 1.0).with_shape(4.0, 0.5, 0.0)];
        let d = GaussianMixtureGenerator::new(clusters, 20_000, 4).generate();
        let var_x = d.points.iter().map(|p| p.x * p.x).sum::<f64>() / d.len() as f64;
        let var_y = d.points.iter().map(|p| p.y * p.y).sum::<f64>() / d.len() as f64;
        assert!(var_x > 10.0 * var_y, "var_x {var_x} var_y {var_y}");
    }

    #[test]
    fn streaming_iterator_matches_generate_bitwise() {
        let g = GaussianMixtureGenerator::paper_clustering_dataset(3, 4_321, 17);
        let materialized = g.generate();
        let streamed: Vec<Point> = g.points().collect();
        assert_eq!(streamed.len(), materialized.len());
        for (i, (a, b)) in streamed.iter().zip(&materialized.points).enumerate() {
            assert!(
                a.x.to_bits() == b.x.to_bits()
                    && a.y.to_bits() == b.y.to_bits()
                    && a.value.to_bits() == b.value.to_bits(),
                "point {i} diverged: {a:?} vs {b:?}"
            );
        }
        assert_eq!(g.points().len(), 4_321);
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn rejects_empty_mixture() {
        let _ = GaussianMixtureGenerator::new(vec![], 10, 0);
    }

    #[test]
    #[should_panic(expected = "weights must be positive")]
    fn rejects_non_positive_weight() {
        let _ = GaussianMixtureGenerator::new(
            vec![GaussianCluster::isotropic(0.0, 0.0, 1.0).with_weight(0.0)],
            10,
            0,
        );
    }
}
