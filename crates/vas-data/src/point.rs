//! Fundamental geometric types: [`Point`] and [`BoundingBox`].
//!
//! Every dataset handled by the VAS reproduction is a collection of 2-D
//! points. Points optionally carry a scalar `value` (e.g. altitude in a map
//! plot) which is encoded by color or dot size at render time but is never
//! consulted by the sampling algorithms themselves — exactly as in the paper,
//! where the sample is selected purely from the (x, y) coordinates.

use serde::{Deserialize, Serialize};

/// A 2-D data point with an optional scalar attribute.
///
/// `x` and `y` are the plot coordinates (e.g. longitude / latitude);
/// `value` is an attached measure (e.g. altitude) used for color encoding.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal plot coordinate.
    pub x: f64,
    /// Vertical plot coordinate.
    pub y: f64,
    /// Attached scalar attribute (altitude, measurement, ...). Defaults to 0.
    pub value: f64,
}

impl Point {
    /// Creates a point with a zero attribute value.
    #[inline]
    pub fn new(x: f64, y: f64) -> Self {
        Self { x, y, value: 0.0 }
    }

    /// Creates a point carrying a scalar attribute.
    #[inline]
    pub fn with_value(x: f64, y: f64, value: f64) -> Self {
        Self { x, y, value }
    }

    /// Squared Euclidean distance between the plot coordinates of two points.
    ///
    /// The attribute value does not participate in distances; VAS only reasons
    /// about where a point lands on the 2-D canvas.
    #[inline]
    pub fn dist2(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean distance between the plot coordinates of two points.
    #[inline]
    pub fn dist(&self, other: &Point) -> f64 {
        self.dist2(other).sqrt()
    }

    /// Returns `true` if both coordinates are finite numbers.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<(f64, f64, f64)> for Point {
    fn from((x, y, value): (f64, f64, f64)) -> Self {
        Point::with_value(x, y, value)
    }
}

/// An axis-aligned rectangle in plot coordinates.
///
/// Bounding boxes describe dataset extents, zoom viewports, stratification
/// bins and R-tree node regions. An *empty* box (`min > max`) is the identity
/// element of [`BoundingBox::union`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundingBox {
    /// Smallest x coordinate contained in the box.
    pub min_x: f64,
    /// Smallest y coordinate contained in the box.
    pub min_y: f64,
    /// Largest x coordinate contained in the box.
    pub max_x: f64,
    /// Largest y coordinate contained in the box.
    pub max_y: f64,
}

impl BoundingBox {
    /// A degenerate, empty bounding box: the identity for [`union`](Self::union).
    pub const EMPTY: BoundingBox = BoundingBox {
        min_x: f64::INFINITY,
        min_y: f64::INFINITY,
        max_x: f64::NEG_INFINITY,
        max_y: f64::NEG_INFINITY,
    };

    /// Creates a box from explicit bounds. Bounds are not reordered; callers
    /// should pass `min <= max` unless they intend an empty box.
    #[inline]
    pub fn new(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        Self {
            min_x,
            min_y,
            max_x,
            max_y,
        }
    }

    /// The degenerate box containing exactly one point.
    #[inline]
    pub fn from_point(p: &Point) -> Self {
        Self::new(p.x, p.y, p.x, p.y)
    }

    /// Smallest box containing every point of `points`; [`EMPTY`](Self::EMPTY)
    /// if the slice is empty.
    pub fn from_points(points: &[Point]) -> Self {
        let mut bb = Self::EMPTY;
        for p in points {
            bb.extend(p);
        }
        bb
    }

    /// Returns `true` for a box that contains nothing.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min_x > self.max_x || self.min_y > self.max_y
    }

    /// Box width (`0` when empty).
    #[inline]
    pub fn width(&self) -> f64 {
        (self.max_x - self.min_x).max(0.0)
    }

    /// Box height (`0` when empty).
    #[inline]
    pub fn height(&self) -> f64 {
        (self.max_y - self.min_y).max(0.0)
    }

    /// Area of the box (`0` when empty).
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Half of the box perimeter; the R-tree split heuristic uses this as its
    /// "margin" measure.
    #[inline]
    pub fn margin(&self) -> f64 {
        self.width() + self.height()
    }

    /// Length of the diagonal. The paper sets the kernel bandwidth ε relative
    /// to the maximum pairwise distance, which this approximates cheaply.
    #[inline]
    pub fn diagonal(&self) -> f64 {
        (self.width().powi(2) + self.height().powi(2)).sqrt()
    }

    /// Center of the box.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(
            (self.min_x + self.max_x) / 2.0,
            (self.min_y + self.max_y) / 2.0,
        )
    }

    /// Returns `true` if the point lies inside the box (inclusive bounds).
    #[inline]
    pub fn contains(&self, p: &Point) -> bool {
        p.x >= self.min_x && p.x <= self.max_x && p.y >= self.min_y && p.y <= self.max_y
    }

    /// Returns `true` if `other` lies entirely within `self`.
    #[inline]
    pub fn contains_box(&self, other: &BoundingBox) -> bool {
        if other.is_empty() {
            return true;
        }
        self.min_x <= other.min_x
            && self.min_y <= other.min_y
            && self.max_x >= other.max_x
            && self.max_y >= other.max_y
    }

    /// Returns `true` if the two boxes share at least one point.
    #[inline]
    pub fn intersects(&self, other: &BoundingBox) -> bool {
        !(self.is_empty()
            || other.is_empty()
            || self.min_x > other.max_x
            || other.min_x > self.max_x
            || self.min_y > other.max_y
            || other.min_y > self.max_y)
    }

    /// Grows the box to include `p`.
    #[inline]
    pub fn extend(&mut self, p: &Point) {
        self.min_x = self.min_x.min(p.x);
        self.min_y = self.min_y.min(p.y);
        self.max_x = self.max_x.max(p.x);
        self.max_y = self.max_y.max(p.y);
    }

    /// Smallest box containing both inputs.
    #[inline]
    pub fn union(&self, other: &BoundingBox) -> BoundingBox {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        BoundingBox::new(
            self.min_x.min(other.min_x),
            self.min_y.min(other.min_y),
            self.max_x.max(other.max_x),
            self.max_y.max(other.max_y),
        )
    }

    /// Intersection of the two boxes; empty if they do not overlap.
    #[inline]
    pub fn intersection(&self, other: &BoundingBox) -> BoundingBox {
        let b = BoundingBox::new(
            self.min_x.max(other.min_x),
            self.min_y.max(other.min_y),
            self.max_x.min(other.max_x),
            self.max_y.min(other.max_y),
        );
        if b.is_empty() {
            BoundingBox::EMPTY
        } else {
            b
        }
    }

    /// Area by which the box would grow if extended to include `p`.
    #[inline]
    pub fn enlargement(&self, p: &Point) -> f64 {
        let mut grown = *self;
        grown.extend(p);
        grown.area() - self.area()
    }

    /// Squared distance from `p` to the closest point of the box
    /// (`0` when `p` is inside).
    #[inline]
    pub fn dist2_to_point(&self, p: &Point) -> f64 {
        let dx = if p.x < self.min_x {
            self.min_x - p.x
        } else if p.x > self.max_x {
            p.x - self.max_x
        } else {
            0.0
        };
        let dy = if p.y < self.min_y {
            self.min_y - p.y
        } else if p.y > self.max_y {
            p.y - self.max_y
        } else {
            0.0
        };
        dx * dx + dy * dy
    }

    /// Expands the box by `pad` on all four sides.
    #[inline]
    pub fn padded(&self, pad: f64) -> BoundingBox {
        BoundingBox::new(
            self.min_x - pad,
            self.min_y - pad,
            self.max_x + pad,
            self.max_y + pad,
        )
    }

    /// A sub-rectangle expressed in normalized coordinates of this box, where
    /// `(0,0)` is the lower-left corner and `(1,1)` the upper-right corner.
    ///
    /// Zoom workloads use this to carve deterministic zoom viewports out of a
    /// dataset extent.
    pub fn subregion(&self, fx0: f64, fy0: f64, fx1: f64, fy1: f64) -> BoundingBox {
        BoundingBox::new(
            self.min_x + fx0 * self.width(),
            self.min_y + fy0 * self.height(),
            self.min_x + fx1 * self.width(),
            self.min_y + fy1 * self.height(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_distance() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.dist2(&b), 25.0);
        assert_eq!(a.dist(&b), 5.0);
        assert_eq!(a.dist(&a), 0.0);
    }

    #[test]
    fn point_value_does_not_affect_distance() {
        let a = Point::with_value(1.0, 1.0, 100.0);
        let b = Point::with_value(1.0, 1.0, -3.0);
        assert_eq!(a.dist(&b), 0.0);
    }

    #[test]
    fn point_conversions() {
        let p: Point = (1.0, 2.0).into();
        assert_eq!(p.value, 0.0);
        let q: Point = (1.0, 2.0, 3.0).into();
        assert_eq!(q.value, 3.0);
        assert!(p.is_finite());
        assert!(!Point::new(f64::NAN, 0.0).is_finite());
    }

    #[test]
    fn bbox_empty_identity() {
        let e = BoundingBox::EMPTY;
        assert!(e.is_empty());
        assert_eq!(e.area(), 0.0);
        let b = BoundingBox::new(0.0, 0.0, 2.0, 3.0);
        assert_eq!(e.union(&b), b);
        assert_eq!(b.union(&e), b);
        assert!(!e.intersects(&b));
    }

    #[test]
    fn bbox_from_points_and_contains() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(5.0, 1.0),
            Point::new(-2.0, 3.0),
        ];
        let bb = BoundingBox::from_points(&pts);
        assert_eq!(bb, BoundingBox::new(-2.0, 0.0, 5.0, 3.0));
        for p in &pts {
            assert!(bb.contains(p));
        }
        assert!(!bb.contains(&Point::new(10.0, 10.0)));
        assert_eq!(BoundingBox::from_points(&[]), BoundingBox::EMPTY);
    }

    #[test]
    fn bbox_union_intersection() {
        let a = BoundingBox::new(0.0, 0.0, 2.0, 2.0);
        let b = BoundingBox::new(1.0, 1.0, 3.0, 3.0);
        assert!(a.intersects(&b));
        assert_eq!(a.union(&b), BoundingBox::new(0.0, 0.0, 3.0, 3.0));
        assert_eq!(a.intersection(&b), BoundingBox::new(1.0, 1.0, 2.0, 2.0));
        let c = BoundingBox::new(10.0, 10.0, 11.0, 11.0);
        assert!(!a.intersects(&c));
        assert!(a.intersection(&c).is_empty());
    }

    #[test]
    fn bbox_contains_box() {
        let outer = BoundingBox::new(0.0, 0.0, 10.0, 10.0);
        let inner = BoundingBox::new(2.0, 2.0, 3.0, 3.0);
        assert!(outer.contains_box(&inner));
        assert!(!inner.contains_box(&outer));
        assert!(outer.contains_box(&BoundingBox::EMPTY));
    }

    #[test]
    fn bbox_enlargement() {
        let b = BoundingBox::new(0.0, 0.0, 1.0, 1.0);
        assert_eq!(b.enlargement(&Point::new(0.5, 0.5)), 0.0);
        assert!((b.enlargement(&Point::new(2.0, 1.0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bbox_point_distance() {
        let b = BoundingBox::new(0.0, 0.0, 1.0, 1.0);
        assert_eq!(b.dist2_to_point(&Point::new(0.5, 0.5)), 0.0);
        assert_eq!(b.dist2_to_point(&Point::new(2.0, 0.5)), 1.0);
        assert_eq!(b.dist2_to_point(&Point::new(2.0, 2.0)), 2.0);
    }

    #[test]
    fn bbox_geometry_measures() {
        let b = BoundingBox::new(0.0, 0.0, 3.0, 4.0);
        assert_eq!(b.width(), 3.0);
        assert_eq!(b.height(), 4.0);
        assert_eq!(b.area(), 12.0);
        assert_eq!(b.margin(), 7.0);
        assert_eq!(b.diagonal(), 5.0);
        assert_eq!(b.center(), Point::new(1.5, 2.0));
    }

    #[test]
    fn bbox_subregion_and_padding() {
        let b = BoundingBox::new(0.0, 0.0, 10.0, 20.0);
        let s = b.subregion(0.25, 0.5, 0.75, 1.0);
        assert_eq!(s, BoundingBox::new(2.5, 10.0, 7.5, 20.0));
        let p = b.padded(1.0);
        assert_eq!(p, BoundingBox::new(-1.0, -1.0, 11.0, 21.0));
    }
}
