//! # vas-exact
//!
//! Exact solvers for the VAS optimization problem, used to reproduce
//! Table II of the paper ("Loss and runtime comparison" of the exact MIP
//! solution against the approximate Interchange algorithm).
//!
//! The paper converts VAS into a Mixed Integer Program and solves it with
//! GLPK; solving N = 80, K = 10 takes ~49 minutes, which is the point of the
//! table — exact solutions are hopeless beyond toy sizes. Here the exact
//! optimum is found with a **branch-and-bound** search over subsets (plus a
//! plain exhaustive enumerator for very small instances used to validate the
//! branch-and-bound). Both return the true optimum of
//! `min_{|S|=K} Σ_{i<j} κ̃(s_i, s_j)`; only their running time differs from a
//! MIP solver, which does not affect the quality columns of Table II and only
//! strengthens its conclusion.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod solver;

pub use solver::{ExactSolution, ExactSolver};
