//! Branch-and-bound and exhaustive solvers for the VAS subset-selection
//! problem.

use std::time::{Duration, Instant};
use vas_core::{objective, Kernel};
use vas_data::Point;

/// Result of an exact optimization run.
#[derive(Debug, Clone)]
pub struct ExactSolution {
    /// Indices (into the input slice) of the selected points.
    pub indices: Vec<usize>,
    /// The selected points themselves.
    pub points: Vec<Point>,
    /// Objective value `Σ_{i<j} κ̃(s_i, s_j)` of the selection.
    pub objective: f64,
    /// Wall-clock time the solver took.
    pub runtime: Duration,
    /// Number of search nodes explored (1 for the exhaustive solver's
    /// enumeration count).
    pub nodes_explored: u64,
}

/// Exact solver for `min_{|S| = K} Σ_{i<j} κ̃(s_i, s_j)`.
#[derive(Debug, Clone, Default)]
pub struct ExactSolver {
    /// Optional cap on explored nodes; `None` means unbounded. When the cap
    /// is hit the best incumbent found so far is returned (and is then only a
    /// heuristic solution, flagged by `nodes_explored >= cap`).
    pub node_limit: Option<u64>,
}

impl ExactSolver {
    /// Creates an unbounded exact solver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a solver that stops after exploring `limit` nodes.
    pub fn with_node_limit(limit: u64) -> Self {
        Self {
            node_limit: Some(limit),
        }
    }

    /// Exhaustively enumerates every K-subset. Only feasible for very small
    /// instances (it is used to validate the branch-and-bound solver).
    ///
    /// # Panics
    /// Panics if `k > points.len()` or `k == 0`.
    pub fn solve_exhaustive<K: Kernel + ?Sized>(
        &self,
        kernel: &K,
        points: &[Point],
        k: usize,
    ) -> ExactSolution {
        assert!(k > 0 && k <= points.len(), "invalid K for exhaustive solve");
        let start = Instant::now();
        let pair = PairTable::new(kernel, points);
        let mut best_obj = f64::INFINITY;
        let mut best: Vec<usize> = Vec::new();
        let mut current: Vec<usize> = Vec::new();
        let mut count = 0u64;
        enumerate(points.len(), k, 0, &mut current, &mut |subset| {
            count += 1;
            let obj = pair.objective_of(subset);
            if obj < best_obj {
                best_obj = obj;
                best = subset.to_vec();
            }
        });
        ExactSolution {
            points: best.iter().map(|&i| points[i]).collect(),
            indices: best,
            objective: best_obj,
            runtime: start.elapsed(),
            nodes_explored: count,
        }
    }

    /// Branch-and-bound search for the exact optimum.
    ///
    /// `incumbent` optionally supplies an initial feasible solution (e.g. the
    /// Interchange output) whose objective is used as the initial upper
    /// bound; a good incumbent dramatically improves pruning but never
    /// changes the returned optimum.
    ///
    /// # Panics
    /// Panics if `k > points.len()` or `k == 0`.
    pub fn solve<K: Kernel + ?Sized>(
        &self,
        kernel: &K,
        points: &[Point],
        k: usize,
        incumbent: Option<&[usize]>,
    ) -> ExactSolution {
        assert!(k > 0 && k <= points.len(), "invalid K for exact solve");
        let start = Instant::now();
        let n = points.len();
        let pair = PairTable::new(kernel, points);

        let (mut best, mut best_obj) = match incumbent {
            Some(indices) => {
                assert_eq!(indices.len(), k, "incumbent must have exactly K elements");
                (indices.to_vec(), pair.objective_of(indices))
            }
            None => {
                // Greedy incumbent: repeatedly add the point with the smallest
                // marginal cost against the current selection.
                let mut chosen: Vec<usize> = vec![0];
                while chosen.len() < k {
                    let mut best_i = usize::MAX;
                    let mut best_cost = f64::INFINITY;
                    for i in 0..n {
                        if chosen.contains(&i) {
                            continue;
                        }
                        let cost: f64 = chosen.iter().map(|&j| pair.get(i, j)).sum();
                        if cost < best_cost {
                            best_cost = cost;
                            best_i = i;
                        }
                    }
                    chosen.push(best_i);
                }
                let obj = pair.objective_of(&chosen);
                (chosen, obj)
            }
        };

        let mut state = SearchState {
            pair: &pair,
            n,
            k,
            best_obj: &mut best_obj,
            best: &mut best,
            nodes: 0,
            node_limit: self.node_limit,
        };
        let mut chosen = Vec::with_capacity(k);
        let mut mustpay = vec![0.0f64; n];
        state.dfs(0, 0.0, &mut chosen, &mut mustpay);
        let nodes = state.nodes;

        best.sort_unstable();
        ExactSolution {
            points: best.iter().map(|&i| points[i]).collect(),
            indices: best,
            objective: best_obj,
            runtime: start.elapsed(),
            nodes_explored: nodes,
        }
    }
}

/// Dense symmetric table of pairwise kernel values.
struct PairTable {
    n: usize,
    values: Vec<f64>,
}

impl PairTable {
    fn new<K: Kernel + ?Sized>(kernel: &K, points: &[Point]) -> Self {
        let n = points.len();
        let mut values = vec![0.0; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let v = kernel.eval(&points[i], &points[j]);
                values[i * n + j] = v;
                values[j * n + i] = v;
            }
        }
        Self { n, values }
    }

    #[inline]
    fn get(&self, i: usize, j: usize) -> f64 {
        self.values[i * self.n + j]
    }

    fn objective_of(&self, subset: &[usize]) -> f64 {
        let mut total = 0.0;
        for (a, &i) in subset.iter().enumerate() {
            for &j in &subset[(a + 1)..] {
                total += self.get(i, j);
            }
        }
        total
    }
}

struct SearchState<'a> {
    pair: &'a PairTable,
    n: usize,
    k: usize,
    best_obj: &'a mut f64,
    best: &'a mut Vec<usize>,
    nodes: u64,
    node_limit: Option<u64>,
}

impl SearchState<'_> {
    /// Depth-first include/exclude search over point indices.
    ///
    /// `cost` is the pairwise objective of `chosen`; `mustpay[i]` caches
    /// `Σ_{j ∈ chosen} κ̃(i, j)` for every index (only entries `>= next` are
    /// consulted).
    fn dfs(&mut self, next: usize, cost: f64, chosen: &mut Vec<usize>, mustpay: &mut [f64]) {
        if let Some(limit) = self.node_limit {
            if self.nodes >= limit {
                return;
            }
        }
        self.nodes += 1;

        if chosen.len() == self.k {
            if cost < *self.best_obj {
                *self.best_obj = cost;
                *self.best = chosen.clone();
            }
            return;
        }
        let needed = self.k - chosen.len();
        let remaining = self.n - next;
        if remaining < needed {
            return; // not enough points left
        }

        // Lower bound: the current cost plus, for the `needed` future picks,
        // the smallest possible "must pay" contributions against the points
        // already chosen (cross terms among future picks are ≥ 0).
        let mut candidate_costs: Vec<f64> = (next..self.n).map(|i| mustpay[i]).collect();
        candidate_costs.sort_by(|a, b| a.partial_cmp(b).expect("finite kernel values"));
        let bound: f64 = cost + candidate_costs[..needed].iter().sum::<f64>();
        if bound >= *self.best_obj {
            return;
        }

        // Branch 1: include `next`.
        let add_cost = mustpay[next];
        chosen.push(next);
        let mut updated = mustpay.to_vec();
        for (i, slot) in updated.iter_mut().enumerate().skip(next + 1) {
            *slot += self.pair.get(i, next);
        }
        self.dfs(next + 1, cost + add_cost, chosen, &mut updated);
        chosen.pop();

        // Branch 2: exclude `next`.
        self.dfs(next + 1, cost, chosen, mustpay);
    }
}

/// Enumerates every `k`-subset of `0..n` in lexicographic order, invoking the
/// callback with each.
fn enumerate(
    n: usize,
    k: usize,
    start: usize,
    current: &mut Vec<usize>,
    f: &mut impl FnMut(&[usize]),
) {
    if current.len() == k {
        f(current);
        return;
    }
    let needed = k - current.len();
    for i in start..=(n - needed) {
        current.push(i);
        enumerate(n, k, i + 1, current, f);
        current.pop();
    }
}

/// Convenience wrapper: the objective of a subset of `points` under `kernel`
/// (re-exported reference implementation from `vas-core`).
pub fn subset_objective<K: Kernel + ?Sized>(kernel: &K, points: &[Point], subset: &[usize]) -> f64 {
    let selected: Vec<Point> = subset.iter().map(|&i| points[i]).collect();
    objective(kernel, &selected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use vas_core::GaussianKernel;

    fn random_points(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)))
            .collect()
    }

    #[test]
    fn exhaustive_finds_the_obvious_optimum() {
        // Three tight clusters plus three isolated points; with K = 3 the
        // optimum is one point per far-apart location.
        let points = vec![
            Point::new(0.0, 0.0),
            Point::new(0.01, 0.0),
            Point::new(0.0, 0.01),
            Point::new(100.0, 0.0),
            Point::new(0.0, 100.0),
        ];
        let kernel = GaussianKernel::new(1.0);
        let sol = ExactSolver::new().solve_exhaustive(&kernel, &points, 3);
        let mut idx = sol.indices.clone();
        idx.sort_unstable();
        assert!(idx.contains(&3) && idx.contains(&4));
        assert!(sol.objective < 1e-6);
    }

    #[test]
    fn branch_and_bound_matches_exhaustive() {
        let kernel = GaussianKernel::new(2.0);
        for seed in 0..5u64 {
            let points = random_points(14, seed);
            for k in [2usize, 4, 6] {
                let ex = ExactSolver::new().solve_exhaustive(&kernel, &points, k);
                let bb = ExactSolver::new().solve(&kernel, &points, k, None);
                assert!(
                    (ex.objective - bb.objective).abs() < 1e-9,
                    "seed {seed} k {k}: exhaustive {} vs B&B {}",
                    ex.objective,
                    bb.objective
                );
            }
        }
    }

    #[test]
    fn branch_and_bound_explores_fewer_nodes_than_exhaustive() {
        let kernel = GaussianKernel::new(2.0);
        let points = random_points(16, 3);
        let ex = ExactSolver::new().solve_exhaustive(&kernel, &points, 6);
        let bb = ExactSolver::new().solve(&kernel, &points, 6, None);
        assert!(
            bb.nodes_explored < ex.nodes_explored * 4,
            "B&B should not blow up: {} vs {} combinations",
            bb.nodes_explored,
            ex.nodes_explored
        );
    }

    #[test]
    fn incumbent_does_not_change_the_optimum() {
        let kernel = GaussianKernel::new(1.5);
        let points = random_points(15, 9);
        let k = 5;
        let without = ExactSolver::new().solve(&kernel, &points, k, None);
        // Deliberately bad incumbent: the first K indices.
        let bad: Vec<usize> = (0..k).collect();
        let with = ExactSolver::new().solve(&kernel, &points, k, Some(&bad));
        assert!((without.objective - with.objective).abs() < 1e-9);
    }

    #[test]
    fn exact_is_no_worse_than_interchange() {
        use vas_core::{InterchangeStrategy, VasConfig, VasSampler};
        use vas_data::Dataset;
        use vas_sampling::Sampler;

        let points = random_points(40, 11);
        let dataset = Dataset::from_points("exact-vs-interchange", points.clone());
        let kernel = GaussianKernel::for_dataset(&dataset);
        let k = 8;

        let mut sampler = VasSampler::from_dataset(
            &dataset,
            VasConfig::new(k)
                .with_strategy(InterchangeStrategy::ExpandShrink)
                .with_epsilon(kernel.bandwidth()),
        );
        let approx = sampler.sample_dataset(&dataset);
        let approx_obj = objective(&kernel, &approx.points);

        let exact = ExactSolver::new().solve(&kernel, &points, k, None);
        assert!(
            exact.objective <= approx_obj + 1e-9,
            "exact {} must be ≤ approximate {}",
            exact.objective,
            approx_obj
        );
    }

    #[test]
    fn node_limit_returns_feasible_solution() {
        let kernel = GaussianKernel::new(1.0);
        let points = random_points(30, 13);
        let sol = ExactSolver::with_node_limit(50).solve(&kernel, &points, 5, None);
        assert_eq!(sol.indices.len(), 5);
        assert!(sol.objective.is_finite());
    }

    #[test]
    fn subset_objective_matches_pair_table() {
        let kernel = GaussianKernel::new(1.0);
        let points = random_points(10, 17);
        let subset = vec![0usize, 3, 7, 9];
        let table = PairTable::new(&kernel, &points);
        assert!(
            (table.objective_of(&subset) - subset_objective(&kernel, &points, &subset)).abs()
                < 1e-12
        );
    }

    #[test]
    #[should_panic(expected = "invalid K")]
    fn rejects_oversized_k() {
        let kernel = GaussianKernel::new(1.0);
        let points = random_points(5, 0);
        let _ = ExactSolver::new().solve(&kernel, &points, 10, None);
    }

    #[test]
    fn enumerate_visits_all_combinations() {
        let mut count = 0usize;
        let mut current = Vec::new();
        enumerate(6, 3, 0, &mut current, &mut |_| count += 1);
        assert_eq!(count, 20); // C(6,3)
    }
}
