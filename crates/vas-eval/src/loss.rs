//! Monte-Carlo estimation of the visualization loss.
//!
//! Section VI-B of the paper evaluates samples with the loss
//!
//! ```text
//!     Loss(S) = (1/M) Σ_{m=1..M}  1 / Σ_{s ∈ S} κ(x_m, s)
//! ```
//!
//! where the `x_m` are M = 1000 random probe locations restricted to the data
//! *domain*: a random point counts as in-domain if some point of the original
//! dataset lies within a fixed radius of it (the paper uses 0.1 for Geolife).
//! Because individual point-losses can overflow a double when a probe lands
//! far from every sampled point, the paper reports the **median** point-loss
//! instead of the mean; this module computes both.
//!
//! The `log-loss-ratio` of a sample normalizes its loss by the loss of the
//! full dataset: `log10(Loss(S) / Loss(D))`, so 0 is perfect.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vas_core::Kernel;
use vas_data::{Dataset, Point};
use vas_spatial::{HashGrid, KdTree, LocalityIndex, NeighborBatch};

/// Probes per parallel work unit of [`LossEstimator::evaluate`]. Fixed (not
/// derived from the thread count) so the chunk split — and with it every
/// floating-point fold — is identical at every thread count.
const PROBE_CHUNK: usize = 64;

/// Configuration of the Monte-Carlo loss estimator.
#[derive(Debug, Clone)]
pub struct LossConfig {
    /// Number of probe locations (the paper uses 1000).
    pub probes: usize,
    /// A probe is in-domain if an original data point lies within this
    /// fraction of the dataset's bounding-box diagonal. The paper's absolute
    /// 0.1 for Geolife corresponds to roughly 3% of that dataset's diagonal.
    pub domain_radius_fraction: f64,
    /// RNG seed for probe placement.
    pub seed: u64,
    /// Point-losses are clamped to this value to avoid infinities when a
    /// probe is far from every sampled point.
    pub max_point_loss: f64,
    /// Worker threads for the M-probe loop of [`LossEstimator::evaluate`]
    /// (`1` = sequential, `0` = available parallelism). Probes are
    /// independent and fan in by probe index, so the estimate is
    /// **bit-identical** at every thread count.
    pub threads: usize,
}

impl Default for LossConfig {
    fn default() -> Self {
        Self {
            probes: 1_000,
            domain_radius_fraction: 0.03,
            seed: 7,
            max_point_loss: 1e300,
            threads: 1,
        }
    }
}

impl LossConfig {
    /// Sets the worker-thread count for the probe loop (see
    /// [`threads`](Self::threads)).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// The estimated loss of one sample.
#[derive(Debug, Clone, Copy)]
pub struct LossReport {
    /// Mean point-loss across probes (can be astronomically large).
    pub mean: f64,
    /// Median point-loss across probes (the paper's headline number).
    pub median: f64,
    /// Number of probes used.
    pub probes: usize,
}

/// Monte-Carlo loss estimator with a fixed probe set.
///
/// The probe locations are generated **once** from the original dataset, so
/// different samples of the same dataset are compared on identical probes —
/// this is what makes loss values comparable across methods and sample sizes,
/// as required for Figures 7 and 8.
#[derive(Debug, Clone)]
pub struct LossEstimator {
    probes: Vec<Point>,
    config: LossConfig,
    /// Median point-loss of the full dataset, the denominator of the
    /// log-loss-ratio.
    full_dataset_median: f64,
}

impl LossEstimator {
    /// Builds an estimator for `dataset` using kernel `kernel`.
    ///
    /// Probe generation rejects locations that fall outside the data domain;
    /// if the rejection rate is extreme (pathological datasets), the
    /// estimator stops after examining `100 × probes` candidates and keeps
    /// whatever probes were accepted.
    pub fn new<K: Kernel + ?Sized>(dataset: &Dataset, kernel: &K, config: LossConfig) -> Self {
        assert!(config.probes > 0, "at least one probe is required");
        let bounds = dataset.bounds();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut probes = Vec::with_capacity(config.probes);

        if !dataset.is_empty() && !bounds.is_empty() {
            let domain_radius = (bounds.diagonal() * config.domain_radius_fraction).max(1e-12);
            // Domain membership tests use a k-d tree over (a subsample of) the
            // dataset; a 50K subsample is plenty to delineate the domain.
            let step = (dataset.len() / 50_000).max(1);
            let domain_tree =
                KdTree::build(dataset.points.iter().step_by(step).copied().enumerate());
            let mut attempts = 0usize;
            while probes.len() < config.probes && attempts < config.probes * 100 {
                attempts += 1;
                let candidate = Point::new(
                    rng.gen_range(bounds.min_x..=bounds.max_x),
                    rng.gen_range(bounds.min_y..=bounds.max_y),
                );
                let (_, nearest) = domain_tree
                    .nearest(&candidate)
                    .expect("domain tree is non-empty");
                if nearest.dist(&candidate) <= domain_radius {
                    probes.push(candidate);
                }
            }
        }

        let mut estimator = Self {
            probes,
            config,
            full_dataset_median: f64::NAN,
        };
        let full = estimator.evaluate(kernel, &dataset.points);
        estimator.full_dataset_median = full.median;
        estimator
    }

    /// The probe locations (exposed for tests and diagnostics).
    pub fn probes(&self) -> &[Point] {
        &self.probes
    }

    /// Median point-loss of the full dataset (the log-loss-ratio denominator).
    pub fn full_dataset_loss(&self) -> f64 {
        self.full_dataset_median
    }

    /// Estimates the loss of a sample.
    pub fn evaluate<K: Kernel + ?Sized>(&self, kernel: &K, sample: &[Point]) -> LossReport {
        if self.probes.is_empty() {
            return LossReport {
                mean: 0.0,
                median: 0.0,
                probes: 0,
            };
        }
        if sample.is_empty() {
            return LossReport {
                mean: self.config.max_point_loss,
                median: self.config.max_point_loss,
                probes: self.probes.len(),
            };
        }
        // Locality: kernel contributions beyond the effective radius are
        // negligible, so only sample points near the probe are summed. The
        // M identical fixed-radius queries go through the `LocalityIndex`
        // visitor API over a spatial hash with radius-sized cells — the same
        // locality subsystem the Interchange loop uses.
        let radius = kernel.effective_radius(1e-12).min(f64::MAX);
        let grid = HashGrid::from_entries(radius, sample.iter().copied().enumerate());
        // Probes are mutually independent, so the M-probe loop fans out over
        // scoped workers sharing the frozen grid; chunks fan in by probe
        // order, making the estimate bit-identical to the sequential loop at
        // any thread count (the chunk split depends only on the probe count,
        // mean folds the same vector left-to-right, median sorts the same
        // multiset). Each probe's kernel sum runs through the batched SoA
        // path: the grid gathers the neighbourhood's squared distances as
        // flat lanes in visitation order, one `eval_dist2_batch` sweep maps
        // them, and the total folds the value lanes left-to-right — kernel
        // for kernel the same bits as the scalar visitor (`p.dist2(probe)`
        // is bit-identical to `probe.dist2(p)`: exact negation, same sum).
        let losses: Vec<f64> = vas_par::par_chunk_fold_ordered(
            self.config.threads,
            &self.probes,
            PROBE_CHUNK,
            |_, chunk| {
                // Per-chunk owned scratch, amortized over the chunk's probes.
                let mut gather = NeighborBatch::new();
                let mut vals: Vec<f64> = Vec::new();
                let mut out = Vec::with_capacity(chunk.len());
                for probe in chunk {
                    grid.gather_in_radius_into(probe, radius, &mut gather);
                    vals.clear();
                    vals.resize(gather.len(), 0.0);
                    kernel.eval_dist2_batch(&gather.dist2, &mut vals);
                    let mut total = 0.0;
                    for &v in &vals {
                        total += v;
                    }
                    out.push(if total > 0.0 {
                        (1.0 / total).min(self.config.max_point_loss)
                    } else {
                        self.config.max_point_loss
                    });
                }
                out
            },
            |mut acc, mut next| {
                acc.append(&mut next);
                acc
            },
        )
        .expect("probe set is non-empty");
        let mean = losses.iter().sum::<f64>() / losses.len() as f64;
        let median = crate::stats::median(&losses);
        LossReport {
            mean,
            median,
            probes: losses.len(),
        }
    }

    /// The paper's `log-loss-ratio(S) = log10(Loss(S) / Loss(D))`, using the
    /// median point-loss for both numerator and denominator.
    pub fn log_loss_ratio<K: Kernel + ?Sized>(&self, kernel: &K, sample: &[Point]) -> f64 {
        let report = self.evaluate(kernel, sample);
        (report.median / self.full_dataset_median).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vas_core::{GaussianKernel, VasConfig, VasSampler};
    use vas_data::GeolifeGenerator;
    use vas_sampling::{Sampler, UniformSampler};

    fn dataset() -> Dataset {
        GeolifeGenerator::with_size(8_000, 33).generate()
    }

    #[test]
    fn probes_are_generated_inside_the_domain() {
        let d = dataset();
        let kernel = GaussianKernel::for_dataset(&d);
        let est = LossEstimator::new(&d, &kernel, LossConfig::default());
        assert_eq!(est.probes().len(), 1_000);
        let bounds = d.bounds();
        for p in est.probes() {
            assert!(bounds.contains(p));
        }
    }

    #[test]
    fn full_dataset_has_the_smallest_loss() {
        let d = dataset();
        let kernel = GaussianKernel::for_dataset(&d);
        let est = LossEstimator::new(&d, &kernel, LossConfig::default());
        let small = UniformSampler::new(200, 1).sample_dataset(&d);
        let small_loss = est.evaluate(&kernel, &small.points);
        assert!(small_loss.median >= est.full_dataset_loss());
        // log-loss-ratio of the full dataset itself is 0 by definition.
        let llr_full = est.log_loss_ratio(&kernel, &d.points);
        assert!(llr_full.abs() < 1e-9);
        // and positive for the small sample.
        assert!(est.log_loss_ratio(&kernel, &small.points) >= 0.0);
    }

    #[test]
    fn bigger_samples_have_smaller_loss() {
        let d = dataset();
        let kernel = GaussianKernel::for_dataset(&d);
        let est = LossEstimator::new(&d, &kernel, LossConfig::default());
        let small = UniformSampler::new(100, 2).sample_dataset(&d);
        let large = UniformSampler::new(4_000, 2).sample_dataset(&d);
        let l_small = est.evaluate(&kernel, &small.points).median;
        let l_large = est.evaluate(&kernel, &large.points).median;
        assert!(
            l_large < l_small,
            "4000-point sample ({l_large}) should beat 100-point sample ({l_small})"
        );
    }

    #[test]
    fn vas_has_lower_loss_than_uniform_at_equal_size() {
        // The core quantitative claim behind Figure 8.
        let d = dataset();
        let kernel = GaussianKernel::for_dataset(&d);
        let est = LossEstimator::new(&d, &kernel, LossConfig::default());
        let k = 500;
        let uniform = UniformSampler::new(k, 3).sample_dataset(&d);
        let vas = VasSampler::from_dataset(&d, VasConfig::new(k)).sample_dataset(&d);
        let l_uniform = est.log_loss_ratio(&kernel, &uniform.points);
        let l_vas = est.log_loss_ratio(&kernel, &vas.points);
        assert!(
            l_vas < l_uniform,
            "VAS log-loss-ratio {l_vas} should beat uniform {l_uniform}"
        );
    }

    #[test]
    fn empty_sample_gets_the_maximal_loss() {
        let d = dataset();
        let kernel = GaussianKernel::for_dataset(&d);
        let cfg = LossConfig {
            probes: 50,
            ..LossConfig::default()
        };
        let est = LossEstimator::new(&d, &kernel, cfg.clone());
        let report = est.evaluate(&kernel, &[]);
        assert_eq!(report.median, cfg.max_point_loss);
    }

    #[test]
    fn parallel_probe_loop_is_bit_identical_to_sequential() {
        let d = dataset();
        let kernel = GaussianKernel::for_dataset(&d);
        let sample = UniformSampler::new(400, 9).sample_dataset(&d);
        let sequential = LossEstimator::new(&d, &kernel, LossConfig::default());
        let seq = sequential.evaluate(&kernel, &sample.points);
        for threads in [2usize, 4] {
            let parallel =
                LossEstimator::new(&d, &kernel, LossConfig::default().with_threads(threads));
            assert_eq!(parallel.probes(), sequential.probes());
            assert_eq!(
                parallel.full_dataset_loss().to_bits(),
                sequential.full_dataset_loss().to_bits(),
                "threads {threads}: full-dataset loss diverged"
            );
            let par = parallel.evaluate(&kernel, &sample.points);
            assert_eq!(par.mean.to_bits(), seq.mean.to_bits(), "threads {threads}");
            assert_eq!(
                par.median.to_bits(),
                seq.median.to_bits(),
                "threads {threads}"
            );
            assert_eq!(
                parallel.log_loss_ratio(&kernel, &sample.points).to_bits(),
                sequential.log_loss_ratio(&kernel, &sample.points).to_bits(),
                "threads {threads}"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let d = dataset();
        let kernel = GaussianKernel::for_dataset(&d);
        let a = LossEstimator::new(&d, &kernel, LossConfig::default());
        let b = LossEstimator::new(&d, &kernel, LossConfig::default());
        assert_eq!(a.probes(), b.probes());
        assert_eq!(a.full_dataset_loss(), b.full_dataset_loss());
    }

    #[test]
    fn estimator_crosses_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LossEstimator>();
        assert_send_sync::<LossConfig>();
    }

    #[test]
    #[should_panic(expected = "at least one probe")]
    fn rejects_zero_probes() {
        let d = dataset();
        let kernel = GaussianKernel::for_dataset(&d);
        let _ = LossEstimator::new(
            &d,
            &kernel,
            LossConfig {
                probes: 0,
                ..LossConfig::default()
            },
        );
    }
}
