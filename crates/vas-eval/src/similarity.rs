//! Bitmap-level similarity between a sample's plot and the full-data plot.
//!
//! The loss function of Section III measures fidelity in *data space*. A
//! complementary, renderer-centric view asks: if the full dataset and the
//! sample are rasterized into the same viewport, how similar are the two
//! images a viewer actually sees? This module provides that measure — the
//! Jaccard overlap and per-cell density correlation of the two bitmaps,
//! averaged over a set of viewports (overview plus zoomed regions) — and is
//! used by the ablation experiments as a sanity check that improvements in
//! the abstract loss correspond to improvements on screen.

use vas_data::{Dataset, Point, ZoomLevel, ZoomWorkload};
use vas_viz::{Canvas, Color, PlotStyle, ScatterRenderer, Viewport};

/// Configuration of the bitmap-similarity evaluator.
#[derive(Debug, Clone)]
pub struct SimilarityConfig {
    /// Canvas side length in pixels for every rendered comparison.
    pub canvas_size: usize,
    /// Number of deep-zoom viewports compared in addition to the overview.
    pub zoom_viewports: usize,
    /// Zoom level of those viewports.
    pub zoom: ZoomLevel,
    /// Side length of the coarse grid used for the density-correlation
    /// component (each cell's ink fraction is one observation).
    pub grid_side: usize,
    /// Seed controlling viewport placement.
    pub seed: u64,
}

impl Default for SimilarityConfig {
    fn default() -> Self {
        Self {
            canvas_size: 256,
            zoom_viewports: 4,
            zoom: ZoomLevel::Deep,
            grid_side: 16,
            seed: 17,
        }
    }
}

/// The similarity of a sample's rendering to the full dataset's rendering.
#[derive(Debug, Clone, Copy)]
pub struct SimilarityReport {
    /// Mean Jaccard overlap of inked pixels across the compared viewports
    /// (1 = pixel-identical ink coverage, 0 = disjoint).
    pub mean_jaccard: f64,
    /// Mean Pearson correlation of coarse-cell ink fractions across the
    /// compared viewports (how well relative density is preserved).
    pub mean_density_correlation: f64,
    /// Number of viewports compared.
    pub viewports: usize,
}

/// Renders `sample` and the full `dataset` into the same set of viewports and
/// reports how similar the images are.
pub fn visual_similarity(
    dataset: &Dataset,
    sample: &[Point],
    config: &SimilarityConfig,
) -> SimilarityReport {
    let renderer = ScatterRenderer::new(PlotStyle::default());
    let mut viewports = Vec::new();
    if !dataset.is_empty() {
        let bounds = dataset.bounds();
        viewports.push(bounds.padded(bounds.diagonal() * 0.01));
        let workload = ZoomWorkload::new(config.seed);
        viewports.extend(
            workload
                .regions(dataset, config.zoom, config.zoom_viewports)
                .into_iter()
                .map(|r| r.viewport),
        );
    }
    if viewports.is_empty() {
        return SimilarityReport {
            mean_jaccard: 0.0,
            mean_density_correlation: 0.0,
            viewports: 0,
        };
    }

    let mut jaccard_sum = 0.0;
    let mut corr_sum = 0.0;
    for region in &viewports {
        let viewport = Viewport::new(*region, config.canvas_size, config.canvas_size);
        let full = renderer.render_points(&dataset.points, &viewport);
        let sampled = renderer.render_points(sample, &viewport);
        jaccard_sum += ink_jaccard(&full, &sampled);
        corr_sum += density_correlation(&full, &sampled, config.grid_side);
    }
    SimilarityReport {
        mean_jaccard: jaccard_sum / viewports.len() as f64,
        mean_density_correlation: corr_sum / viewports.len() as f64,
        viewports: viewports.len(),
    }
}

/// Jaccard overlap of the inked-pixel sets of two equally-sized canvases.
pub fn ink_jaccard(a: &Canvas, b: &Canvas) -> f64 {
    assert_eq!(a.width(), b.width());
    assert_eq!(a.height(), b.height());
    let mut intersection = 0usize;
    let mut union = 0usize;
    for y in 0..a.height() {
        for x in 0..a.width() {
            let ia = a.get(x, y) != Color::WHITE;
            let ib = b.get(x, y) != Color::WHITE;
            if ia || ib {
                union += 1;
            }
            if ia && ib {
                intersection += 1;
            }
        }
    }
    if union == 0 {
        1.0 // both blank: trivially identical
    } else {
        intersection as f64 / union as f64
    }
}

/// Pearson correlation of per-cell ink fractions of two canvases over a
/// `grid_side × grid_side` partition (0 when either image is blank/constant).
pub fn density_correlation(a: &Canvas, b: &Canvas, grid_side: usize) -> f64 {
    let fractions = |c: &Canvas| -> Vec<f64> {
        let side = grid_side.max(1);
        let mut out = Vec::with_capacity(side * side);
        for row in 0..side {
            for col in 0..side {
                let x0 = col * c.width() / side;
                let x1 = ((col + 1) * c.width() / side).max(x0 + 1);
                let y0 = row * c.height() / side;
                let y1 = ((row + 1) * c.height() / side).max(y0 + 1);
                out.push(c.ink_fraction_in_rect(Color::WHITE, x0, y0, x1, y1));
            }
        }
        out
    };
    crate::stats::pearson(&fractions(a), &fractions(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vas_data::GeolifeGenerator;
    use vas_sampling::{Sampler, UniformSampler};

    fn dataset() -> Dataset {
        GeolifeGenerator::with_size(20_000, 81).generate()
    }

    #[test]
    fn identical_images_have_perfect_scores() {
        let d = dataset();
        let report = visual_similarity(&d, &d.points, &SimilarityConfig::default());
        assert!(report.mean_jaccard > 0.999);
        assert!(report.mean_density_correlation > 0.999);
        assert_eq!(report.viewports, 5);
    }

    #[test]
    fn empty_sample_scores_near_zero() {
        let d = dataset();
        let report = visual_similarity(&d, &[], &SimilarityConfig::default());
        assert!(report.mean_jaccard < 0.01);
    }

    #[test]
    fn larger_samples_are_more_similar() {
        let d = dataset();
        let cfg = SimilarityConfig::default();
        let small = UniformSampler::new(200, 1).sample_dataset(&d);
        let large = UniformSampler::new(5_000, 1).sample_dataset(&d);
        let s_small = visual_similarity(&d, &small.points, &cfg);
        let s_large = visual_similarity(&d, &large.points, &cfg);
        assert!(s_large.mean_jaccard > s_small.mean_jaccard);
        assert!(s_large.mean_density_correlation >= s_small.mean_density_correlation);
    }

    #[test]
    fn vas_zoomed_similarity_beats_uniform() {
        use vas_core::{VasConfig, VasSampler};
        // Any single dataset realization is noisy — a uniform sample that
        // happens to land points in the compared zoom regions can win one
        // draw — so the paper's directional claim is asserted strictly on
        // the average across several realizations.
        let cfg = SimilarityConfig {
            zoom_viewports: 8,
            ..SimilarityConfig::default()
        };
        let k = 500;
        let mut vas_total = 0.0;
        let mut uni_total = 0.0;
        for seed in [81, 82, 83] {
            let d = GeolifeGenerator::with_size(20_000, seed).generate();
            let uni = UniformSampler::new(k, 2).sample_dataset(&d);
            let vas = VasSampler::from_dataset(&d, VasConfig::new(k)).sample_dataset(&d);
            uni_total += visual_similarity(&d, &uni.points, &cfg).mean_jaccard;
            vas_total += visual_similarity(&d, &vas.points, &cfg).mean_jaccard;
        }
        assert!(
            vas_total >= uni_total,
            "VAS mean jaccard {0:?} vs uniform {1:?} across 3 realizations",
            vas_total / 3.0,
            uni_total / 3.0
        );
        // No density-correlation assertion here on purpose: VAS trades raw
        // density fidelity for coverage (it flattens dense regions), which is
        // exactly what the Section V density embedding compensates for.
    }

    #[test]
    fn jaccard_edge_cases() {
        let a = Canvas::white(10, 10);
        let b = Canvas::white(10, 10);
        assert_eq!(ink_jaccard(&a, &b), 1.0);
        let mut c = Canvas::white(10, 10);
        c.set(0, 0, Color::BLACK);
        assert_eq!(ink_jaccard(&a, &c), 0.0);
        assert_eq!(ink_jaccard(&c, &c), 1.0);
    }

    #[test]
    fn density_correlation_blank_is_zero() {
        let a = Canvas::white(32, 32);
        let b = Canvas::white(32, 32);
        assert_eq!(density_correlation(&a, &b, 8), 0.0);
    }
}
