//! # vas-eval
//!
//! Evaluation machinery for the VAS reproduction:
//!
//! * [`loss`] — the Monte-Carlo estimator of the visualization loss
//!   `Loss(S) = ∫ 1/Σ κ(x, s) dx` from Section III / VI-B of the paper,
//!   including the `log-loss-ratio` normalization used in Figures 7 and 8.
//! * [`stats`] — summary statistics and the Spearman rank correlation used to
//!   quantify the relationship between loss and user success (the paper
//!   reports ρ ≈ −0.85).
//! * [`similarity`] — a complementary, renderer-centric fidelity measure:
//!   how similar the bitmap produced from a sample is to the bitmap produced
//!   from the full data, across overview and zoomed viewports.
//!
//! Nothing here is needed to *build* a sample; this crate exists to measure
//! how good samples are.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod loss;
pub mod similarity;
pub mod stats;

pub use loss::{LossConfig, LossEstimator, LossReport};
pub use similarity::{visual_similarity, SimilarityConfig, SimilarityReport};
pub use stats::{mean, median, pearson, spearman, std_dev, Summary};
