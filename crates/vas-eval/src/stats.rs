//! Summary statistics and rank correlation.
//!
//! The paper quantifies the link between its loss function and user success
//! with Spearman's rank correlation coefficient (reported as −0.85 with
//! p ≈ 5.2e-4 for the regression task). This module provides that
//! coefficient plus the elementary statistics used throughout the harness.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Population standard deviation; 0 for slices with fewer than two values.
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    (values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / values.len() as f64).sqrt()
}

/// Median (average of the two central elements for even lengths); 0 for an
/// empty slice. Not resistant to NaN inputs — callers must pass finite data.
pub fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Pearson correlation coefficient of two equally-long series; 0 when either
/// series is constant.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "series must have equal length");
    if a.len() < 2 {
        return 0.0;
    }
    let ma = mean(a);
    let mb = mean(b);
    let mut cov = 0.0;
    let mut var_a = 0.0;
    let mut var_b = 0.0;
    for (x, y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        var_a += (x - ma).powi(2);
        var_b += (y - mb).powi(2);
    }
    if var_a == 0.0 || var_b == 0.0 {
        return 0.0;
    }
    cov / (var_a.sqrt() * var_b.sqrt())
}

/// Spearman's rank correlation coefficient: the Pearson correlation of the
/// ranks, with ties receiving their average rank.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn spearman(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "series must have equal length");
    pearson(&ranks(a), &ranks(b))
}

/// Fractional (average-of-ties) ranks of a series, 1-based.
fn ranks(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| values[i].partial_cmp(&values[j]).expect("finite values"));
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        // Find the run of tied values.
        let mut j = i;
        while j + 1 < n && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        // Average rank of positions i..=j (1-based ranks).
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            out[idx] = avg_rank;
        }
        i = j + 1;
    }
    out
}

/// A five-number-ish summary of a series, handy for experiment logs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of values summarized.
    pub count: usize,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median.
    pub median: f64,
    /// Population standard deviation.
    pub std_dev: f64,
}

impl Summary {
    /// Summarizes a series. All fields are 0 for an empty slice.
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Self {
                count: 0,
                min: 0.0,
                max: 0.0,
                mean: 0.0,
                median: 0.0,
                std_dev: 0.0,
            };
        }
        Self {
            count: values.len(),
            min: values.iter().copied().fold(f64::INFINITY, f64::min),
            max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            mean: mean(values),
            median: median(values),
            std_dev: std_dev(values),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_median_std() {
        let v = [1.0, 2.0, 3.0, 4.0, 100.0];
        assert_eq!(mean(&v), 22.0);
        assert_eq!(median(&v), 3.0);
        assert!(std_dev(&v) > 38.0 && std_dev(&v) < 40.0);
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), 2.5);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(median(&[]), 0.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
    }

    #[test]
    fn pearson_perfect_correlations() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        let c = [40.0, 30.0, 20.0, 10.0];
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-12);
        // Constant series → 0.
        assert_eq!(pearson(&a, &[5.0; 4]), 0.0);
    }

    #[test]
    fn spearman_monotone_nonlinear_is_perfect() {
        // Spearman sees through monotone but non-linear relationships.
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [1.0, 8.0, 27.0, 64.0, 125.0];
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
        let inv: Vec<f64> = b.iter().map(|x| -x).collect();
        assert!((spearman(&a, &inv) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties() {
        let a = [1.0, 1.0, 2.0, 3.0];
        let b = [4.0, 4.0, 5.0, 6.0];
        let rho = spearman(&a, &b);
        assert!((rho - 1.0).abs() < 1e-12);
        // Ranks with ties: the two 1.0s get rank 1.5 each.
        assert_eq!(ranks(&a), vec![1.5, 1.5, 3.0, 4.0]);
    }

    #[test]
    fn spearman_of_noise_is_small() {
        // Deterministic pseudo-random pairing with no relationship.
        let a: Vec<f64> = (0..200).map(|i| ((i * 7919) % 104729) as f64).collect();
        let b: Vec<f64> = (0..200).map(|i| ((i * 104729) % 7919) as f64).collect();
        assert!(spearman(&a, &b).abs() < 0.2);
    }

    #[test]
    fn summary_fields() {
        let s = Summary::of(&[2.0, 4.0, 6.0, 8.0]);
        assert_eq!(s.count, 4);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 8.0);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.median, 5.0);
        let empty = Summary::of(&[]);
        assert_eq!(empty.count, 0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn pearson_rejects_mismatched_lengths() {
        let _ = pearson(&[1.0], &[1.0, 2.0]);
    }

    proptest! {
        /// Correlation coefficients always lie in [-1, 1].
        #[test]
        fn correlation_is_bounded(
            pairs in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 2..50)
        ) {
            let a: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let b: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            let r = pearson(&a, &b);
            let rho = spearman(&a, &b);
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&rho));
        }

        /// The median lies between the minimum and maximum, and the mean of a
        /// shifted series shifts by the same amount.
        #[test]
        fn median_and_mean_invariants(
            values in proptest::collection::vec(-1e6f64..1e6, 1..100),
            shift in -1e3f64..1e3,
        ) {
            let med = median(&values);
            let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(med >= lo && med <= hi);
            let shifted: Vec<f64> = values.iter().map(|v| v + shift).collect();
            prop_assert!((mean(&shifted) - (mean(&values) + shift)).abs() < 1e-6);
        }

        /// Spearman is invariant under strictly monotone transforms of either
        /// input.
        #[test]
        fn spearman_monotone_invariance(
            pairs in proptest::collection::vec((0.1f64..1e3, 0.1f64..1e3), 3..40)
        ) {
            let a: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let b: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            let transformed: Vec<f64> = a.iter().map(|x| x.ln()).collect();
            let r1 = spearman(&a, &b);
            let r2 = spearman(&transformed, &b);
            prop_assert!((r1 - r2).abs() < 1e-9);
        }
    }
}
