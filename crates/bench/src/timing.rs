//! Shared timing helpers for the bench binaries.
//!
//! Every bench that reports latency percentiles goes through one
//! representation — the fixed-bucket [`vas_obs::Histogram`] — so `p50`,
//! `p95` and `p99` mean the same thing in every `BENCH_*.json`, and the
//! per-binary copies of the bitwise sample gate live in one place.

use std::time::Instant;
use vas_data::Point;
use vas_obs::Histogram;

/// Latency distribution of repeated measurements, built on the observability
/// crate's log-bucketed [`Histogram`] (≤ 25 % relative bucket error).
#[derive(Debug, Clone, Default)]
pub struct TimingStats {
    hist: Histogram,
    min_ns: u64,
    max_ns: u64,
}

impl TimingStats {
    /// An empty distribution.
    pub fn new() -> Self {
        Self {
            hist: Histogram::new(),
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    /// Records one measurement.
    pub fn record_ns(&mut self, ns: u64) {
        self.hist.record(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Times `f` once and records it. Returns `f`'s output.
    pub fn time<T>(&mut self, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        self.record_ns(t0.elapsed().as_nanos() as u64);
        out
    }

    /// Number of recorded measurements.
    pub fn count(&self) -> u64 {
        self.hist.count()
    }

    /// Exact minimum in seconds (0.0 when empty) — the noise-robust figure
    /// single-machine throughput gates should compare.
    pub fn min_secs(&self) -> f64 {
        if self.hist.is_empty() {
            0.0
        } else {
            self.min_ns as f64 * 1e-9
        }
    }

    /// Exact maximum in seconds (0.0 when empty).
    pub fn max_secs(&self) -> f64 {
        self.max_ns as f64 * 1e-9
    }

    /// Exact mean in seconds (0.0 when empty).
    pub fn mean_secs(&self) -> f64 {
        self.hist.mean() * 1e-9
    }

    /// Histogram percentile in seconds (bucket upper bound; `q` in `[0, 1]`).
    pub fn percentile_secs(&self, q: f64) -> f64 {
        self.hist.percentile(q) as f64 * 1e-9
    }

    /// `(p50, p95, p99)` in seconds, from the same histogram every exporter
    /// quotes.
    pub fn quantiles_secs(&self) -> (f64, f64, f64) {
        (
            self.percentile_secs(0.50),
            self.percentile_secs(0.95),
            self.percentile_secs(0.99),
        )
    }

    /// The underlying histogram (for export or merging).
    pub fn histogram(&self) -> &Histogram {
        &self.hist
    }
}

/// Runs `f` `reps` times (at least once) and returns the minimum wall-clock
/// seconds — the standard noise floor for same-machine A/B throughput
/// comparisons.
pub fn min_secs_of(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut stats = TimingStats::new();
    for _ in 0..reps.max(1) {
        stats.time(&mut f);
    }
    stats.min_secs()
}

/// Bitwise sample equality — the determinism gate shared by every bench that
/// compares an optimized path against the reference run.
pub fn bitwise_eq(a: &[Point], b: &[Point]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(p, q)| {
            p.x.to_bits() == q.x.to_bits()
                && p.y.to_bits() == q.y.to_bits()
                && p.value.to_bits() == q.value.to_bits()
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_track_min_mean_and_quantiles() {
        let mut stats = TimingStats::new();
        for ns in [100u64, 200, 300, 400, 1_000_000] {
            stats.record_ns(ns);
        }
        assert_eq!(stats.count(), 5);
        assert!((stats.min_secs() - 100e-9).abs() < 1e-15);
        assert!(stats.max_secs() >= stats.min_secs());
        let (p50, p95, p99) = stats.quantiles_secs();
        assert!(p50 <= p95 && p95 <= p99);
        // The outlier dominates the upper quantiles but not the median.
        assert!(p50 < 1e-3 && p99 >= 1e-3 * 0.75);
    }

    #[test]
    fn min_secs_of_runs_at_least_once() {
        let mut calls = 0usize;
        let secs = min_secs_of(0, || calls += 1);
        assert_eq!(calls, 1);
        assert!(secs >= 0.0);
    }

    #[test]
    fn bitwise_eq_distinguishes_negative_zero() {
        let a = [Point::with_value(0.0, 1.0, 2.0)];
        let b = [Point::with_value(-0.0, 1.0, 2.0)];
        assert!(bitwise_eq(&a, &a));
        assert!(!bitwise_eq(&a, &b));
        assert!(!bitwise_eq(&a, &[]));
    }
}
