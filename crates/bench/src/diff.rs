//! The perf-regression sentinel: compares two generations of `BENCH_*.json`
//! artifacts and classifies every changed metric.
//!
//! The comparison is deliberately conservative about what it *gates*,
//! because the committed baselines and a CI runner are different machines:
//!
//! * **Booleans** are strict. A gate that was `true` in the baseline
//!   (`bit_identical`, `overhead_ok`, `transient_recovered`, ...) and is
//!   `false` now is a regression, machine speed notwithstanding.
//! * **Ratios** — metric names containing `ratio` or `speedup`, or starting
//!   with `overhead` — compare same-machine quantities against each other,
//!   so they transfer across machines up to noise. They are gated with a
//!   relative tolerance band (default [`DEFAULT_TOLERANCE`]) *and* an
//!   absolute slack floor, so a 0.90× → 0.88× wobble never fires. Names
//!   containing `overhead` are lower-is-better; everything else
//!   higher-is-better.
//! * **Absolute numbers** (seconds, tuples/s, counts) are reported as
//!   informational deltas only, unless [`DiffConfig::gate_absolute`] is set
//!   (same-machine A/B runs).
//!
//! Arrays of objects are keyed by their identifying fields (`backend`,
//! `threads`, `phase`, ...) rather than position, so re-ordering a report
//! section does not produce spurious diffs.

use serde::Value;
use std::path::Path;

/// Default relative tolerance band for ratio metrics.
pub const DEFAULT_TOLERANCE: f64 = 0.25;

/// Absolute slack below which a ratio change is never a regression,
/// whatever the relative band says (absorbs noise around small baselines).
pub const RATIO_ABS_SLACK: f64 = 0.05;

/// How a metric is classified and gated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Strictly gated: baseline `true` must stay `true`.
    Boolean,
    /// Tolerance-gated relative quantity (higher is better).
    RatioHigherBetter,
    /// Tolerance-gated relative quantity (lower is better).
    RatioLowerBetter,
    /// Machine-dependent absolute number; informational unless
    /// [`DiffConfig::gate_absolute`].
    Absolute,
}

impl MetricKind {
    fn name(self) -> &'static str {
        match self {
            MetricKind::Boolean => "boolean",
            MetricKind::RatioHigherBetter => "ratio_higher_better",
            MetricKind::RatioLowerBetter => "ratio_lower_better",
            MetricKind::Absolute => "absolute",
        }
    }
}

/// Sentinel configuration.
#[derive(Debug, Clone)]
pub struct DiffConfig {
    /// Relative tolerance band for ratio metrics.
    pub tolerance: f64,
    /// Also gate absolute `*_secs` / `*_per_sec` metrics (same-machine A/B
    /// comparisons only).
    pub gate_absolute: bool,
}

impl Default for DiffConfig {
    fn default() -> Self {
        Self {
            tolerance: DEFAULT_TOLERANCE,
            gate_absolute: false,
        }
    }
}

/// One compared metric.
#[derive(Debug, Clone)]
pub struct MetricDiff {
    /// Dotted path of the metric inside the artifact.
    pub path: String,
    /// Classification used for gating.
    pub kind: MetricKind,
    /// Baseline value (numeric view; booleans as 0/1).
    pub baseline: f64,
    /// Current value, or `None` when the metric disappeared.
    pub current: Option<f64>,
    /// Whether this diff trips the gate.
    pub regressed: bool,
    /// Human-readable explanation for regressed entries.
    pub detail: String,
}

/// The comparison result for one artifact pair.
#[derive(Debug, Clone)]
pub struct FileDiff {
    /// Artifact file name (e.g. `BENCH_obs.json`).
    pub file: String,
    /// Metrics compared (leaves present in the baseline).
    pub compared: usize,
    /// The regressed subset.
    pub regressions: Vec<MetricDiff>,
}

#[derive(Debug, Clone, Copy)]
enum Leaf {
    Num(f64),
    Bool(bool),
}

/// Fields that identify an object inside an array (report rows are keyed by
/// these rather than by position, so re-ordering is not a diff).
const ID_FIELDS: &[&str] = &[
    "phase",
    "backend",
    "strategy",
    "scenario",
    "name",
    "label",
    "mode",
    "threads",
    "shards",
    "prefetch",
    "killed_after_chunks",
    "k",
];

fn element_key(v: &Value, index: usize) -> String {
    if let Value::Object(fields) = v {
        let mut parts = Vec::new();
        for id in ID_FIELDS {
            if let Some((_, val)) = fields.iter().find(|(k, _)| k == id) {
                match val {
                    Value::String(s) => parts.push(format!("{id}={s}")),
                    Value::Number(n) => parts.push(format!("{id}={n}")),
                    Value::Bool(b) => parts.push(format!("{id}={b}")),
                    _ => {}
                }
            }
        }
        if !parts.is_empty() {
            return parts.join(",");
        }
    }
    index.to_string()
}

fn flatten_into(prefix: &str, v: &Value, out: &mut Vec<(String, Leaf)>) {
    match v {
        Value::Number(n) => out.push((prefix.to_string(), Leaf::Num(*n))),
        Value::Bool(b) => out.push((prefix.to_string(), Leaf::Bool(*b))),
        Value::Object(fields) => {
            for (k, val) in fields {
                let path = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten_into(&path, val, out);
            }
        }
        Value::Array(items) => {
            for (i, item) in items.iter().enumerate() {
                let key = element_key(item, i);
                let path = if prefix.is_empty() {
                    format!("[{key}]")
                } else {
                    format!("{prefix}[{key}]")
                };
                flatten_into(&path, item, out);
            }
        }
        Value::String(_) | Value::Null => {}
    }
}

/// Flattens an artifact into `(dotted path, numeric leaf)` pairs.
fn flatten(v: &Value) -> Vec<(String, Leaf)> {
    let mut out = Vec::new();
    flatten_into("", v, &mut out);
    out
}

fn last_segment(path: &str) -> &str {
    path.rsplit(['.', ']'])
        .find(|s| !s.is_empty())
        .unwrap_or(path)
}

fn classify(path: &str, leaf: Leaf) -> MetricKind {
    if matches!(leaf, Leaf::Bool(_)) {
        return MetricKind::Boolean;
    }
    let name = last_segment(path);
    if name.contains("overhead") {
        return MetricKind::RatioLowerBetter;
    }
    if name.contains("ratio") || name.contains("speedup") {
        return MetricKind::RatioHigherBetter;
    }
    MetricKind::Absolute
}

/// `true` when gating this absolute metric makes sense at all, and in which
/// direction (higher-better).
fn absolute_direction(path: &str) -> Option<bool> {
    let name = last_segment(path);
    if name.contains("per_sec") || name.contains("throughput") {
        return Some(true);
    }
    if name.ends_with("_secs") || name.ends_with("_ms") || name.ends_with("_us") {
        return Some(false);
    }
    None
}

/// Compares one baseline artifact against its current generation.
pub fn diff_values(file: &str, baseline: &Value, current: &Value, cfg: &DiffConfig) -> FileDiff {
    let base_leaves = flatten(baseline);
    let cur_leaves = flatten(current);
    let lookup = |path: &str| -> Option<Leaf> {
        cur_leaves
            .iter()
            .find(|(p, _)| p == path)
            .map(|(_, leaf)| *leaf)
    };
    let mut regressions = Vec::new();
    for (path, base) in &base_leaves {
        let kind = classify(path, *base);
        let current = lookup(path);
        let diff = match (kind, *base, current) {
            (MetricKind::Boolean, Leaf::Bool(true), Some(Leaf::Bool(false))) => Some(MetricDiff {
                path: path.clone(),
                kind,
                baseline: 1.0,
                current: Some(0.0),
                regressed: true,
                detail: "gate flipped true -> false".to_string(),
            }),
            (MetricKind::Boolean, Leaf::Bool(true), None) => Some(MetricDiff {
                path: path.clone(),
                kind,
                baseline: 1.0,
                current: None,
                regressed: true,
                detail: "gate disappeared from the current artifact".to_string(),
            }),
            (MetricKind::RatioHigherBetter | MetricKind::RatioLowerBetter, Leaf::Num(b), cur) => {
                ratio_diff(path, kind, b, cur, cfg.tolerance)
            }
            (MetricKind::Absolute, Leaf::Num(b), Some(Leaf::Num(c))) if cfg.gate_absolute => {
                absolute_diff(path, b, c, cfg.tolerance)
            }
            _ => None,
        };
        regressions.extend(diff);
    }
    FileDiff {
        file: file.to_string(),
        compared: base_leaves.len(),
        regressions,
    }
}

fn ratio_diff(
    path: &str,
    kind: MetricKind,
    base: f64,
    current: Option<Leaf>,
    tolerance: f64,
) -> Option<MetricDiff> {
    let Some(Leaf::Num(cur)) = current else {
        return Some(MetricDiff {
            path: path.to_string(),
            kind,
            baseline: base,
            current: None,
            regressed: true,
            detail: "ratio metric disappeared from the current artifact".to_string(),
        });
    };
    if !base.is_finite() || !cur.is_finite() {
        return None;
    }
    let worse = match kind {
        MetricKind::RatioLowerBetter => cur - base,
        _ => base - cur,
    };
    let rel = if base.abs() > f64::EPSILON {
        worse / base.abs()
    } else {
        worse
    };
    if worse > RATIO_ABS_SLACK && rel > tolerance {
        return Some(MetricDiff {
            path: path.to_string(),
            kind,
            baseline: base,
            current: Some(cur),
            regressed: true,
            detail: format!(
                "{base:.4} -> {cur:.4} is {:.1}% worse (tolerance {:.1}%)",
                rel * 100.0,
                tolerance * 100.0
            ),
        });
    }
    None
}

fn absolute_diff(path: &str, base: f64, cur: f64, tolerance: f64) -> Option<MetricDiff> {
    let higher_better = absolute_direction(path)?;
    if !base.is_finite() || !cur.is_finite() || base.abs() <= f64::EPSILON {
        return None;
    }
    let worse = if higher_better {
        base - cur
    } else {
        cur - base
    };
    let rel = worse / base.abs();
    if rel > tolerance {
        return Some(MetricDiff {
            path: path.to_string(),
            kind: MetricKind::Absolute,
            baseline: base,
            current: Some(cur),
            regressed: true,
            detail: format!(
                "{base:.4} -> {cur:.4} is {:.1}% worse (tolerance {:.1}%, absolute gating on)",
                rel * 100.0,
                tolerance * 100.0
            ),
        });
    }
    None
}

/// Compares every `BENCH_*.json` present in `baseline_dir` against its
/// counterpart in `current_dir`. A baseline artifact with no counterpart is
/// itself a regression (the harness stopped producing it).
pub fn diff_dirs(
    baseline_dir: &Path,
    current_dir: &Path,
    cfg: &DiffConfig,
) -> std::io::Result<Vec<FileDiff>> {
    let mut names: Vec<String> = std::fs::read_dir(baseline_dir)?
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        .collect();
    names.sort();
    let mut out = Vec::new();
    for name in names {
        let base_text = std::fs::read_to_string(baseline_dir.join(&name))?;
        let Ok(base) = serde_json::from_str::<Value>(&base_text) else {
            out.push(FileDiff {
                file: name.clone(),
                compared: 0,
                regressions: vec![MetricDiff {
                    path: String::new(),
                    kind: MetricKind::Boolean,
                    baseline: 1.0,
                    current: None,
                    regressed: true,
                    detail: "baseline artifact is not valid JSON".to_string(),
                }],
            });
            continue;
        };
        let current_path = current_dir.join(&name);
        let current = std::fs::read_to_string(&current_path)
            .ok()
            .and_then(|t| serde_json::from_str::<Value>(&t).ok());
        match current {
            Some(cur) => out.push(diff_values(&name, &base, &cur, cfg)),
            None => out.push(FileDiff {
                file: name.clone(),
                compared: 0,
                regressions: vec![MetricDiff {
                    path: String::new(),
                    kind: MetricKind::Boolean,
                    baseline: 1.0,
                    current: None,
                    regressed: true,
                    detail: format!(
                        "current artifact {} is missing or unparseable",
                        current_path.display()
                    ),
                }],
            }),
        }
    }
    Ok(out)
}

/// Renders the sentinel's verdict as the `BENCH_regressions.json` artifact.
pub fn report_to_value(diffs: &[FileDiff], cfg: &DiffConfig) -> Value {
    let total_regressions: usize = diffs.iter().map(|d| d.regressions.len()).sum();
    let files: Vec<Value> = diffs
        .iter()
        .map(|d| {
            let regs: Vec<Value> = d
                .regressions
                .iter()
                .map(|r| {
                    let mut fields = vec![
                        ("path".to_string(), Value::String(r.path.clone())),
                        ("kind".to_string(), Value::String(r.kind.name().to_string())),
                        ("baseline".to_string(), Value::Number(r.baseline)),
                    ];
                    fields.push(match r.current {
                        Some(c) => ("current".to_string(), Value::Number(c)),
                        None => ("current".to_string(), Value::Null),
                    });
                    fields.push(("detail".to_string(), Value::String(r.detail.clone())));
                    Value::Object(fields)
                })
                .collect();
            Value::Object(vec![
                ("file".to_string(), Value::String(d.file.clone())),
                ("compared".to_string(), Value::Number(d.compared as f64)),
                ("regressions".to_string(), Value::Array(regs)),
            ])
        })
        .collect();
    Value::Object(vec![
        ("bench".to_string(), Value::String("bench_diff".to_string())),
        ("tolerance".to_string(), Value::Number(cfg.tolerance)),
        ("gate_absolute".to_string(), Value::Bool(cfg.gate_absolute)),
        (
            "files_compared".to_string(),
            Value::Number(diffs.len() as f64),
        ),
        (
            "total_regressions".to_string(),
            Value::Number(total_regressions as f64),
        ),
        ("ok".to_string(), Value::Bool(total_regressions == 0)),
        ("files".to_string(), Value::Array(files)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Value {
        serde_json::from_str(text).unwrap()
    }

    #[test]
    fn identical_artifacts_have_no_regressions() {
        let v = parse(r#"{"overhead_ratio":0.01,"overhead_ok":true,"secs":1.5,"n":100}"#);
        let d = diff_values("BENCH_x.json", &v, &v, &DiffConfig::default());
        assert!(d.regressions.is_empty());
        assert!(d.compared >= 4);
    }

    #[test]
    fn boolean_gate_flip_is_a_regression() {
        let base = parse(r#"{"bit_identical":true,"n":5}"#);
        let cur = parse(r#"{"bit_identical":false,"n":5}"#);
        let d = diff_values("BENCH_x.json", &base, &cur, &DiffConfig::default());
        assert_eq!(d.regressions.len(), 1);
        assert_eq!(d.regressions[0].path, "bit_identical");
        // The reverse direction (false -> true) is an improvement, not a
        // regression.
        let d = diff_values("BENCH_x.json", &cur, &base, &DiffConfig::default());
        assert!(d.regressions.is_empty());
    }

    #[test]
    fn ratio_band_gates_only_beyond_tolerance_and_slack() {
        let base = parse(r#"{"speedup_vs_1":1.0}"#);
        let wobble = parse(r#"{"speedup_vs_1":0.97}"#);
        let bad = parse(r#"{"speedup_vs_1":0.5}"#);
        let cfg = DiffConfig::default();
        assert!(diff_values("f", &base, &wobble, &cfg)
            .regressions
            .is_empty());
        let d = diff_values("f", &base, &bad, &cfg);
        assert_eq!(d.regressions.len(), 1);
        assert!(d.regressions[0].detail.contains("worse"));
    }

    #[test]
    fn overhead_is_lower_better() {
        let base = parse(r#"{"overhead_ratio":0.01}"#);
        let improved = parse(r#"{"overhead_ratio":0.001}"#);
        let worse = parse(r#"{"overhead_ratio":0.4}"#);
        let cfg = DiffConfig::default();
        assert!(diff_values("f", &base, &improved, &cfg)
            .regressions
            .is_empty());
        assert_eq!(diff_values("f", &base, &worse, &cfg).regressions.len(), 1);
    }

    #[test]
    fn absolutes_are_informational_unless_gated() {
        let base = parse(r#"{"candidate_secs":1.0,"tuples_per_sec":1000.0}"#);
        let slower = parse(r#"{"candidate_secs":3.0,"tuples_per_sec":200.0}"#);
        let cfg = DiffConfig::default();
        assert!(diff_values("f", &base, &slower, &cfg)
            .regressions
            .is_empty());
        let gated = DiffConfig {
            gate_absolute: true,
            ..DiffConfig::default()
        };
        let d = diff_values("f", &base, &slower, &gated);
        assert_eq!(d.regressions.len(), 2, "both directions gate: {d:?}");
    }

    #[test]
    fn array_rows_are_keyed_by_identity_not_position() {
        let base = parse(
            r#"{"cells":[{"backend":"rtree","threads":1,"ok":true},
                         {"backend":"grid","threads":2,"ok":true}]}"#,
        );
        let reordered = parse(
            r#"{"cells":[{"backend":"grid","threads":2,"ok":true},
                          {"backend":"rtree","threads":1,"ok":true}]}"#,
        );
        let d = diff_values("f", &base, &reordered, &DiffConfig::default());
        assert!(d.regressions.is_empty(), "{:?}", d.regressions);
        let broken = parse(
            r#"{"cells":[{"backend":"rtree","threads":1,"ok":true},
                          {"backend":"grid","threads":2,"ok":false}]}"#,
        );
        let d = diff_values("f", &base, &broken, &DiffConfig::default());
        assert_eq!(d.regressions.len(), 1);
        assert!(d.regressions[0].path.contains("backend=grid"));
    }

    #[test]
    fn missing_gate_is_a_regression() {
        let base = parse(r#"{"overhead_ok":true}"#);
        let cur = parse(r#"{"something_else":1}"#);
        let d = diff_values("f", &base, &cur, &DiffConfig::default());
        assert_eq!(d.regressions.len(), 1);
        assert!(d.regressions[0].detail.contains("disappeared"));
    }

    #[test]
    fn report_value_round_trips_and_flags_ok() {
        let base = parse(r#"{"bit_identical":true}"#);
        let bad = parse(r#"{"bit_identical":false}"#);
        let diffs = vec![diff_values(
            "BENCH_x.json",
            &base,
            &bad,
            &DiffConfig::default(),
        )];
        let report = report_to_value(&diffs, &DiffConfig::default());
        assert_eq!(report.get("ok"), Some(&Value::Bool(false)));
        assert_eq!(report.get("total_regressions"), Some(&Value::Number(1.0)));
        let text = serde_json::to_string_pretty(&report).unwrap();
        let back: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(back.get("files_compared"), Some(&Value::Number(1.0)));
    }
}
