//! Figure 1 / Figure 5 / Figure 6 — qualitative sample visualizations.
//!
//! Reproduces the paper's motivating images: overview and zoomed-in map plots
//! of the GPS dataset sampled with stratified sampling (316×316 grid, the
//! configuration used for Figure 1) and with VAS, plus the density-embedded
//! VAS plot used as the density-estimation stimulus (Figure 6). The images
//! are written as PPM files under `results/plots/`; the table printed to
//! stdout summarizes the quantitative side of the same story — how many
//! sampled points each method places inside the zoomed regions.

use bench::{display_path, emit, fmt3, geolife, save_plot, ReportTable};
use vas_core::{density::with_embedded_density, GaussianKernel, VasConfig, VasSampler};
use vas_data::{ZoomLevel, ZoomWorkload};
use vas_eval::{LossConfig, LossEstimator};
use vas_sampling::{Sampler, StratifiedSampler, UniformSampler};
use vas_viz::{PlotStyle, ScatterRenderer, Viewport};

fn main() {
    // Scaled from the paper's 2B-point OpenStreetMap / 24.4M-point Geolife
    // data with a 100K sample: 300K points, 5K sample (same ~60:1 ratio
    // between data and sample as Geolife:100K).
    let data = geolife(300_000);
    let k = 5_000;
    let kernel = GaussianKernel::for_dataset(&data);
    let estimator = LossEstimator::new(&data, &kernel, LossConfig::default());

    let uniform = UniformSampler::new(k, 1).sample_dataset(&data);
    let stratified = StratifiedSampler::square(k, data.bounds(), 316, 1).sample_dataset(&data);
    let vas = VasSampler::from_dataset(&data, VasConfig::new(k)).sample_dataset(&data);
    let vas_density = with_embedded_density(vas.clone(), &data);

    let overview = Viewport::new(
        data.bounds().padded(data.bounds().diagonal() * 0.01),
        900,
        900,
    );
    let zooms = ZoomWorkload::new(5).regions(&data, ZoomLevel::Deep, 3);
    let map_renderer = ScatterRenderer::new(PlotStyle::map_plot());
    let density_renderer = ScatterRenderer::new(PlotStyle::density_plot(6));

    let mut table = ReportTable::new(
        "Figure 1 — points available in zoomed views (and overall loss) per method",
        &[
            "method",
            "log-loss-ratio",
            "zoom#1 pts",
            "zoom#2 pts",
            "zoom#3 pts",
            "overview image",
            "zoom#1 image",
        ],
    );

    for sample in [&uniform, &stratified, &vas] {
        let over = map_renderer.render_points(&sample.points, &overview);
        let over_path = save_plot(&over, &format!("fig1_{}_overview", sample.method));
        let mut zoom_counts = Vec::new();
        let mut first_zoom_path = String::new();
        for (zi, z) in zooms.iter().enumerate() {
            let visible = sample.filter_region(&z.viewport);
            zoom_counts.push(visible.len());
            let canvas = map_renderer.render_points(&visible, &Viewport::new(z.viewport, 900, 900));
            let p = save_plot(&canvas, &format!("fig1_{}_zoom{}", sample.method, zi + 1));
            if zi == 0 {
                first_zoom_path = display_path(&p);
            }
        }
        table.push_row(vec![
            sample.method.clone(),
            fmt3(estimator.log_loss_ratio(&kernel, &sample.points)),
            zoom_counts[0].to_string(),
            zoom_counts[1].to_string(),
            zoom_counts[2].to_string(),
            display_path(&over_path),
            first_zoom_path,
        ]);
    }

    // Figure 6 stimulus: the density-embedded VAS sample at overview zoom.
    let fig6 = density_renderer.render_sample(&vas_density, &overview);
    let fig6_path = save_plot(&fig6, "fig6_vas_with_density_overview");

    let mut extra = ReportTable::new(
        "Figure 5/6 — user-study stimuli written to disk",
        &["figure", "content", "image"],
    );
    extra.push_row(vec![
        "Fig. 5".into(),
        "regression stimuli = zoomed map plots above (stratified vs VAS)".into(),
        "see fig1_* zoom images".into(),
    ]);
    extra.push_row(vec![
        "Fig. 6".into(),
        "density-estimation stimulus (VAS with density embedding, dot size ∝ √density)".into(),
        display_path(&fig6_path),
    ]);

    emit("fig1_quality_plots", &[table, extra]);
}
