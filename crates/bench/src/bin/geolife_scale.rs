//! Paper-scale out-of-core run: generate, spill and VAS-sample a
//! multi-million-point synthetic Geolife workload in bounded memory.
//!
//! This is the capstone of the streaming ingestion subsystem. The pipeline
//! never materializes the dataset:
//!
//! 1. **Ingest** — a streaming Geolife generator source emits chunks that go
//!    straight into a chunked columnar spill file (`vas-stream`'s
//!    `.vaschunk` format). Resident points: one generator chunk + one staged
//!    writer chunk.
//! 2. **Sample** — `VasSampler::build_from_source` streams the spill back
//!    through the Interchange loop. The kernel bandwidth comes from the
//!    spill header's provenance bounds (bit-identical to what an in-memory
//!    build would derive). Resident points: the K sample slots + one read
//!    chunk.
//!
//! The peak resident point count is *measured* (via `TrackingSource` and the
//! writer's staged-chunk bound) and asserted against the contract
//! `K + 2 × chunk_size`; the run aborts if the bound is ever exceeded.
//! In `--smoke` mode the dataset is additionally materialized the classic
//! way and the streaming sample is asserted bit-identical to `build()` over
//! it — the same contract `tests/determinism.rs` pins, re-checked here on
//! every CI run.
//!
//! Output: a human-readable table on stdout plus machine-readable
//! `results/BENCH_streaming.json` (ingest throughput, sampler throughput,
//! peak resident points).
//!
//! Usage:
//! ```text
//! geolife_scale [--smoke] [--n <points>] [--k <K>] [--chunk-size <points>]
//!               [--keep-spill]
//! ```
//! * `--smoke`      — CI-sized run (60K points, K = 500) + in-memory
//!   verification.
//! * `--n`, `--k`, `--chunk-size` — override the workload shape.
//! * `--keep-spill` — leave the spill file on disk for inspection.

use bench::{emit, fmt3, results_dir, ReportTable};
use serde::Serialize;
use std::time::Instant;
use vas_core::{GaussianKernel, Kernel, VasConfig, VasSampler};
use vas_data::GeolifeGenerator;
use vas_stream::{ChunkedReader, ChunkedWriter, GeolifeSource, PointSource, TrackingSource};

/// Seed shared with the in-memory verification path.
const SEED: u64 = 20_160_519;

#[derive(Debug, Clone, Serialize)]
struct IngestReport {
    points: u64,
    secs: f64,
    points_per_sec: f64,
    chunks: u64,
    file_bytes: u64,
    /// Measured: largest generator chunk + the writer's staged-chunk bound.
    peak_resident_points: u64,
}

#[derive(Debug, Clone, Serialize)]
struct SamplerReport {
    tuples: u64,
    secs: f64,
    tuples_per_sec: f64,
    sample_len: usize,
    epsilon: f64,
    /// Measured: K sample slots + largest read chunk.
    peak_resident_points: u64,
}

#[derive(Debug, Clone, Serialize)]
struct StreamingReport {
    bench: String,
    mode: String,
    n: u64,
    k: usize,
    chunk_size: usize,
    seed: u64,
    ingest: IngestReport,
    sampler: SamplerReport,
    /// Max of the two phases — the whole pipeline's resident footprint.
    peak_resident_points: u64,
    /// The contract: `k + 2 × chunk_size`. The run aborts if exceeded.
    resident_bound_points: u64,
    /// `Some(true)` when the smoke verification ran and the streaming sample
    /// was bit-identical to the in-memory build; `None` on full runs (which
    /// exist precisely because materializing is impractical).
    streaming_matches_in_memory: Option<bool>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let keep_spill = args.iter().any(|a| a == "--keep-spill");
    let (mut n, mut k, mut chunk_size) = if smoke {
        (60_000u64, 500usize, 4_096usize)
    } else {
        (10_000_000u64, 10_000usize, 65_536usize)
    };
    let mut i = 0usize;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" | "--keep-spill" => {}
            "--n" | "--k" | "--chunk-size" => {
                let flag = args[i].clone();
                i += 1;
                let value = args.get(i).and_then(|v| v.parse::<u64>().ok());
                match value {
                    Some(v) if v > 0 => match flag.as_str() {
                        "--n" => n = v,
                        "--k" => k = v as usize,
                        _ => chunk_size = v as usize,
                    },
                    _ => {
                        eprintln!("{flag} needs a positive integer value");
                        std::process::exit(2);
                    }
                }
            }
            unknown => {
                eprintln!(
                    "unknown argument {unknown}; usage: geolife_scale [--smoke] [--n <points>] \
                     [--k <K>] [--chunk-size <points>] [--keep-spill]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let mode = if smoke { "smoke" } else { "full" };
    let spill_path = results_dir().join(format!("geolife_scale_{n}.vaschunk"));

    // ---- Phase 1: streaming generation → chunked columnar spill. ----
    eprintln!("[geolife_scale] ingest: generating + spilling {n} points (chunk {chunk_size})");
    let generator = GeolifeGenerator::with_size(n as usize, SEED);
    let mut source = TrackingSource::new(GeolifeSource::new(generator, chunk_size));
    let ingest_start = Instant::now();
    let mut writer = ChunkedWriter::create(&spill_path, source.name(), source.kind(), chunk_size)
        .expect("create spill file");
    let mut buf = Vec::new();
    let mut max_staged = 0usize;
    loop {
        let got = source.next_chunk(&mut buf).expect("generator chunk");
        if got == 0 {
            break;
        }
        writer.write_points(&buf).expect("spill chunk");
        max_staged = max_staged.max(writer.staged_len()).max(chunk_size.min(got));
    }
    let summary = writer.finish().expect("finish spill");
    let ingest_secs = ingest_start.elapsed().as_secs_f64().max(1e-9);
    assert_eq!(summary.count, n, "spill must hold every generated point");
    let ingest_peak = (source.max_chunk_len() + max_staged) as u64;
    let ingest = IngestReport {
        points: n,
        secs: ingest_secs,
        points_per_sec: n as f64 / ingest_secs,
        chunks: summary.chunks,
        file_bytes: summary.bytes,
        peak_resident_points: ingest_peak,
    };
    eprintln!(
        "[geolife_scale] ingest: {} points/s, {} chunks, {:.1} MiB",
        fmt3(ingest.points_per_sec),
        ingest.chunks,
        ingest.file_bytes as f64 / (1024.0 * 1024.0)
    );

    // ---- Phase 2: stream the spill through the Interchange sampler. ----
    let reader = ChunkedReader::open(&spill_path).expect("open spill");
    // The spill header carries the stream-order bounds, so the bandwidth is
    // resolved without a stats rescan — bit-identical to what an in-memory
    // build would derive from the materialized dataset.
    let epsilon = GaussianKernel::for_bounds(&reader.header().bounds).bandwidth();
    let mut tracked = TrackingSource::new(reader);
    let mut sampler = VasSampler::new(VasConfig::new(k).with_epsilon(epsilon));
    eprintln!("[geolife_scale] sampling: K = {k}, epsilon = {epsilon:.6}");
    let sample_start = Instant::now();
    let sample = sampler
        .build_from_source(&mut tracked)
        .expect("streaming build");
    let sample_secs = sample_start.elapsed().as_secs_f64().max(1e-9);
    let sample_peak = (k.min(n as usize) + tracked.max_chunk_len()) as u64;
    let sampler_report = SamplerReport {
        tuples: tracked.points_streamed(),
        secs: sample_secs,
        tuples_per_sec: tracked.points_streamed() as f64 / sample_secs,
        sample_len: sample.len(),
        epsilon,
        peak_resident_points: sample_peak,
    };
    eprintln!(
        "[geolife_scale] sampler: {} tuples/s over {} tuples",
        fmt3(sampler_report.tuples_per_sec),
        sampler_report.tuples
    );
    assert_eq!(sampler_report.tuples, n, "sampler must see every tuple");
    assert_eq!(sample.len(), k.min(n as usize));

    // ---- The bounded-memory contract. ----
    let peak_resident = ingest_peak.max(sample_peak);
    let bound = (k + 2 * chunk_size) as u64;
    assert!(
        peak_resident <= bound,
        "peak resident points {peak_resident} exceeded the K + 2*chunk bound {bound}"
    );

    // ---- Smoke verification: streaming == in-memory, bit for bit. ----
    let streaming_matches_in_memory = if smoke {
        eprintln!("[geolife_scale] smoke: verifying against the in-memory build");
        let dataset = GeolifeGenerator::with_size(n as usize, SEED).generate();
        let reference = VasSampler::from_dataset(&dataset, VasConfig::new(k)).build(&dataset);
        let identical = sample.points.len() == reference.points.len()
            && sample.points.iter().zip(&reference.points).all(|(a, b)| {
                a.x.to_bits() == b.x.to_bits()
                    && a.y.to_bits() == b.y.to_bits()
                    && a.value.to_bits() == b.value.to_bits()
            });
        if !identical {
            emit_report(
                mode,
                n,
                k,
                chunk_size,
                ingest.clone(),
                sampler_report.clone(),
                peak_resident,
                bound,
                Some(false),
            );
            eprintln!("[geolife_scale] FAIL: streaming sample differs from the in-memory build");
            std::process::exit(1);
        }
        eprintln!("[geolife_scale] smoke: streaming sample is bit-identical to build()");
        Some(true)
    } else {
        None
    };

    if !keep_spill {
        std::fs::remove_file(&spill_path).ok();
    } else {
        eprintln!("[geolife_scale] spill kept at {}", spill_path.display());
    }

    emit_report(
        mode,
        n,
        k,
        chunk_size,
        ingest,
        sampler_report,
        peak_resident,
        bound,
        streaming_matches_in_memory,
    );
}

#[allow(clippy::too_many_arguments)]
fn emit_report(
    mode: &str,
    n: u64,
    k: usize,
    chunk_size: usize,
    ingest: IngestReport,
    sampler: SamplerReport,
    peak_resident: u64,
    bound: u64,
    streaming_matches_in_memory: Option<bool>,
) {
    let mut table = ReportTable::new(
        format!("Out-of-core Geolife pipeline ({mode}: n = {n}, K = {k}, chunk = {chunk_size})"),
        &[
            "phase",
            "points",
            "time (s)",
            "throughput (pts/s)",
            "peak resident pts",
        ],
    );
    table.push_row(vec![
        "ingest (generate + spill)".to_string(),
        ingest.points.to_string(),
        fmt3(ingest.secs),
        fmt3(ingest.points_per_sec),
        ingest.peak_resident_points.to_string(),
    ]);
    table.push_row(vec![
        "sample (stream spill)".to_string(),
        sampler.tuples.to_string(),
        fmt3(sampler.secs),
        fmt3(sampler.tuples_per_sec),
        sampler.peak_resident_points.to_string(),
    ]);
    table.push_row(vec![
        format!("pipeline (bound K+2c = {bound})"),
        n.to_string(),
        fmt3(ingest.secs + sampler.secs),
        "-".to_string(),
        peak_resident.to_string(),
    ]);
    emit("geolife_scale", &[table]);

    let report = StreamingReport {
        bench: "geolife_scale".to_string(),
        mode: mode.to_string(),
        n,
        k,
        chunk_size,
        seed: SEED,
        ingest,
        sampler,
        peak_resident_points: peak_resident,
        resident_bound_points: bound,
        streaming_matches_in_memory,
    };
    let path = results_dir().join("BENCH_streaming.json");
    let json = serde_json::to_string_pretty(&report).expect("serialize streaming report");
    std::fs::write(&path, json).expect("write BENCH_streaming.json");
    eprintln!("[machine-readable report written to {}]", path.display());
}
