//! Paper-scale out-of-core run: generate, spill and VAS-sample a
//! multi-million-point synthetic Geolife workload in bounded memory —
//! optionally sweeping the deterministic parallel execution subsystem.
//!
//! This is the capstone of the streaming ingestion subsystem. The pipeline
//! never materializes the dataset:
//!
//! 1. **Ingest** — a streaming Geolife generator source emits chunks that go
//!    straight into a chunked columnar spill file (`vas-stream`'s
//!    `.vaschunk` format). Resident points: one generator chunk + one staged
//!    writer chunk.
//! 2. **Sample** — `VasSampler::build_from_source` streams the spill back
//!    through the Interchange loop. The kernel bandwidth comes from the
//!    spill header's provenance bounds (bit-identical to what an in-memory
//!    build would derive). Resident points: the K sample slots + one read
//!    chunk (plus the read-ahead buffers when prefetching).
//!
//! The peak resident point count is *measured* (via `TrackingSource` and the
//! writer's staged-chunk bound) and asserted against the contract
//! `K + (buffers) × chunk_size`; the run aborts if the bound is ever
//! exceeded. In `--smoke` mode the dataset is additionally materialized the
//! classic way and the streaming sample is asserted bit-identical to
//! `build()` over it — the same contract `tests/determinism.rs` pins,
//! re-checked here on every CI run.
//!
//! With `--threads t1,t2,...` the run becomes a **parallel sweep**: for each
//! thread count the sampler phase runs twice — speculative pre-evaluation
//! alone, and combined with `PrefetchSource` chunk read-ahead — and the loss
//! estimator's M-probe loop is swept separately. Every run's sample must be
//! bit-identical to the `threads = 1` baseline (the binary exits non-zero on
//! the first divergence), and the per-phase timings land in a
//! `geolife_scale` section of `results/BENCH_parallel.json`.
//!
//! Output: a human-readable table on stdout plus machine-readable
//! `results/BENCH_streaming.json` (+ `BENCH_parallel.json` in sweep mode).
//!
//! Usage:
//! ```text
//! geolife_scale [--smoke] [--n <points>] [--k <K>] [--chunk-size <points>]
//!               [--threads t1,t2,...] [--keep-spill] [--obs]
//! ```
//! * `--smoke`      — CI-sized run (60K points, K = 500) + in-memory
//!   verification.
//! * `--n`, `--k`, `--chunk-size` — override the workload shape.
//! * `--threads`    — comma-separated thread counts to sweep (e.g. `1,2,4`).
//! * `--keep-spill` — leave the spill file on disk for inspection.
//! * `--obs`        — add a fully instrumented pass (counters + timers +
//!   journal + spans + flight ring) over the same spill, assert it
//!   bit-identical to the baseline, export a validated Chrome-trace
//!   artifact, and graft an `obs` section onto `BENCH_streaming.json`.

use bench::obs::{validate_build_trace, ObsBundle};
use bench::{
    bitwise_eq, display_path, emit, fmt3, merge_parallel_section, parse_threads_list, results_dir,
    ReportTable,
};
use serde::{Serialize, Value};
use std::path::Path;
use std::time::Instant;
use vas_core::{GaussianKernel, Kernel, VasConfig, VasSampler};
use vas_data::{GeolifeGenerator, Point};
use vas_eval::{LossConfig, LossEstimator};
use vas_obs::Recorder;
use vas_stream::{
    ChunkedReader, ChunkedWriter, GeolifeSource, PointSource, PrefetchSource, TrackingSource,
    DEFAULT_PREFETCH_DEPTH,
};

/// Seed shared with the in-memory verification path.
const SEED: u64 = 20_160_519;

#[derive(Debug, Clone, Serialize)]
struct IngestReport {
    points: u64,
    secs: f64,
    points_per_sec: f64,
    chunks: u64,
    file_bytes: u64,
    /// Measured: largest generator chunk + the writer's staged-chunk bound.
    peak_resident_points: u64,
}

#[derive(Debug, Clone, Serialize)]
struct SamplerReport {
    tuples: u64,
    secs: f64,
    tuples_per_sec: f64,
    sample_len: usize,
    epsilon: f64,
    /// Measured: K sample slots + the resident chunk buffers.
    peak_resident_points: u64,
}

#[derive(Debug, Clone, Serialize)]
struct StreamingReport {
    bench: String,
    mode: String,
    n: u64,
    k: usize,
    chunk_size: usize,
    seed: u64,
    ingest: IngestReport,
    sampler: SamplerReport,
    /// Max of the two phases — the whole pipeline's resident footprint.
    peak_resident_points: u64,
    /// The contract the run asserts (see `resident_bound`).
    resident_bound_points: u64,
    /// `Some(true)` when the smoke verification ran and the streaming sample
    /// was bit-identical to the in-memory build; `None` on full runs (which
    /// exist precisely because materializing is impractical).
    streaming_matches_in_memory: Option<bool>,
}

/// One sampler-phase measurement of the parallel sweep.
#[derive(Debug, Clone, Serialize)]
struct SamplerSweepEntry {
    threads: usize,
    prefetch: bool,
    secs: f64,
    tuples_per_sec: f64,
    /// Throughput ratio against the `threads = 1`, no-prefetch baseline.
    speedup_vs_baseline: f64,
    peak_resident_points: u64,
}

/// One loss-estimator measurement of the parallel sweep.
#[derive(Debug, Clone, Serialize)]
struct LossSweepEntry {
    threads: usize,
    secs: f64,
    probes: usize,
    speedup_vs_baseline: f64,
}

/// The `geolife_scale` section of `BENCH_parallel.json`.
#[derive(Debug, Clone, Serialize)]
struct ParallelSection {
    n: u64,
    k: usize,
    chunk_size: usize,
    threads: Vec<usize>,
    prefetch_depth: usize,
    /// Sampler phase, speculative pre-evaluation only (no prefetch).
    pre_eval: Vec<SamplerSweepEntry>,
    /// Sampler phase, pre-evaluation + chunk read-ahead. The `threads = 1`
    /// entry isolates the prefetch stage's contribution.
    prefetch: Vec<SamplerSweepEntry>,
    /// Loss-estimator M-probe loop.
    loss_estimator: Vec<LossSweepEntry>,
    /// Every sweep run produced a bit-identical sample.
    bit_identical: bool,
}

/// Streams the spill through the sampler once. `threads` drives the
/// speculative pre-evaluation front; `prefetch` wraps the reader in the
/// read-ahead stage; `recorder` instruments every stage (pass
/// [`Recorder::detached`] for the measured runs). Returns the measured
/// report and the sample points.
fn run_sampler(
    spill_path: &Path,
    n: u64,
    k: usize,
    epsilon: f64,
    threads: usize,
    prefetch: bool,
    recorder: Recorder,
) -> (SamplerReport, Vec<Point>) {
    let reader = ChunkedReader::open(spill_path)
        .expect("open spill")
        .with_recorder(recorder.clone());
    let source: Box<dyn PointSource + Send> = if prefetch {
        Box::new(PrefetchSource::new(reader).with_recorder(recorder.clone()))
    } else {
        Box::new(reader)
    };
    let mut tracked = TrackingSource::new(source);
    let mut sampler = VasSampler::new(
        VasConfig::new(k)
            .with_epsilon(epsilon)
            .with_threads(threads),
    )
    .with_recorder(recorder);
    let start = Instant::now();
    let sample = sampler
        .build_from_source(&mut tracked)
        .expect("streaming build");
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    // Resident chunk buffers: the consumer's one, plus (when prefetching)
    // the worker's in-flight chunk and the bounded channel's depth.
    let buffers = if prefetch {
        2 + DEFAULT_PREFETCH_DEPTH as u64
    } else {
        1
    };
    let peak = k.min(n as usize) as u64 + buffers * tracked.max_chunk_len() as u64;
    let report = SamplerReport {
        tuples: tracked.points_streamed(),
        secs,
        tuples_per_sec: tracked.points_streamed() as f64 / secs,
        sample_len: sample.len(),
        epsilon,
        peak_resident_points: peak,
    };
    assert_eq!(report.tuples, n, "sampler must see every tuple");
    assert_eq!(sample.len(), k.min(n as usize));
    (report, sample.points)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let keep_spill = args.iter().any(|a| a == "--keep-spill");
    let obs = args.iter().any(|a| a == "--obs");
    let (mut n, mut k, mut chunk_size) = if smoke {
        (60_000u64, 500usize, 4_096usize)
    } else {
        (10_000_000u64, 10_000usize, 65_536usize)
    };
    let mut threads_sweep: Vec<usize> = Vec::new();
    let mut i = 0usize;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" | "--keep-spill" | "--obs" => {}
            "--threads" => {
                i += 1;
                let value = args.get(i).map(String::as_str).unwrap_or("");
                match parse_threads_list(value) {
                    Ok(list) => threads_sweep = list,
                    Err(e) => {
                        eprintln!("{e}");
                        std::process::exit(2);
                    }
                }
            }
            "--n" | "--k" | "--chunk-size" => {
                let flag = args[i].clone();
                i += 1;
                let value = args.get(i).and_then(|v| v.parse::<u64>().ok());
                match value {
                    Some(v) if v > 0 => match flag.as_str() {
                        "--n" => n = v,
                        "--k" => k = v as usize,
                        _ => chunk_size = v as usize,
                    },
                    _ => {
                        eprintln!("{flag} needs a positive integer value");
                        std::process::exit(2);
                    }
                }
            }
            unknown => {
                eprintln!(
                    "unknown argument {unknown}; usage: geolife_scale [--smoke] [--n <points>] \
                     [--k <K>] [--chunk-size <points>] [--threads t1,t2,...] [--keep-spill] \
                     [--obs]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let mode = if smoke { "smoke" } else { "full" };
    let spill_path = results_dir().join(format!("geolife_scale_{n}.vaschunk"));

    // ---- Phase 1: streaming generation → chunked columnar spill. ----
    eprintln!("[geolife_scale] ingest: generating + spilling {n} points (chunk {chunk_size})");
    let generator = GeolifeGenerator::with_size(n as usize, SEED);
    let mut source = TrackingSource::new(GeolifeSource::new(generator, chunk_size));
    let ingest_start = Instant::now();
    let mut writer = ChunkedWriter::create(&spill_path, source.name(), source.kind(), chunk_size)
        .expect("create spill file");
    let mut buf = Vec::new();
    let mut max_staged = 0usize;
    loop {
        let got = source.next_chunk(&mut buf).expect("generator chunk");
        if got == 0 {
            break;
        }
        writer.write_points(&buf).expect("spill chunk");
        max_staged = max_staged.max(writer.staged_len()).max(chunk_size.min(got));
    }
    let summary = writer.finish().expect("finish spill");
    let ingest_secs = ingest_start.elapsed().as_secs_f64().max(1e-9);
    assert_eq!(summary.count, n, "spill must hold every generated point");
    let ingest_peak = (source.max_chunk_len() + max_staged) as u64;
    let ingest = IngestReport {
        points: n,
        secs: ingest_secs,
        points_per_sec: n as f64 / ingest_secs,
        chunks: summary.chunks,
        file_bytes: summary.bytes,
        peak_resident_points: ingest_peak,
    };
    eprintln!(
        "[geolife_scale] ingest: {} points/s, {} chunks, {:.1} MiB",
        fmt3(ingest.points_per_sec),
        ingest.chunks,
        ingest.file_bytes as f64 / (1024.0 * 1024.0)
    );

    // ---- Phase 2: stream the spill through the Interchange sampler. ----
    // The spill header carries the stream-order bounds, so the bandwidth is
    // resolved without a stats rescan — bit-identical to what an in-memory
    // build would derive from the materialized dataset.
    let epsilon = {
        let reader = ChunkedReader::open(&spill_path).expect("open spill");
        GaussianKernel::for_bounds(&reader.header().bounds).bandwidth()
    };
    eprintln!("[geolife_scale] sampling: K = {k}, epsilon = {epsilon:.6}");
    let (sampler_report, sample_points) =
        run_sampler(&spill_path, n, k, epsilon, 1, false, Recorder::detached());
    eprintln!(
        "[geolife_scale] sampler: {} tuples/s over {} tuples",
        fmt3(sampler_report.tuples_per_sec),
        sampler_report.tuples
    );

    // ---- The bounded-memory contract (baseline pipeline). ----
    let peak_resident = ingest_peak.max(sampler_report.peak_resident_points);
    let bound = (k + 2 * chunk_size) as u64;
    assert!(
        peak_resident <= bound,
        "peak resident points {peak_resident} exceeded the K + 2*chunk bound {bound}"
    );

    // ---- Smoke verification: streaming == in-memory, bit for bit. ----
    let streaming_matches_in_memory = if smoke {
        eprintln!("[geolife_scale] smoke: verifying against the in-memory build");
        let dataset = GeolifeGenerator::with_size(n as usize, SEED).generate();
        let reference = VasSampler::from_dataset(&dataset, VasConfig::new(k)).build(&dataset);
        let identical = bitwise_eq(&sample_points, &reference.points);
        if !identical {
            emit_report(
                mode,
                n,
                k,
                chunk_size,
                ingest.clone(),
                sampler_report.clone(),
                peak_resident,
                bound,
                Some(false),
                None,
            );
            eprintln!("[geolife_scale] FAIL: streaming sample differs from the in-memory build");
            std::process::exit(1);
        }
        eprintln!("[geolife_scale] smoke: streaming sample is bit-identical to build()");
        Some(true)
    } else {
        None
    };

    // ---- Observability pass (`--obs`): the fully instrumented pipeline
    // (counters + timers + journal + tracer + flight ring) over the same
    // spill with the speculative front and read-ahead on, asserted
    // bit-identical to the baseline sample and exporting a validated
    // Chrome-trace artifact. ----
    let obs_section = if obs {
        eprintln!("[geolife_scale] obs: fully instrumented pass (threads = 2, prefetch on)");
        let bundle = ObsBundle::new();
        let (obs_report, obs_points) =
            run_sampler(&spill_path, n, k, epsilon, 2, true, bundle.recorder.clone());
        if !bitwise_eq(&obs_points, &sample_points) {
            eprintln!("[geolife_scale] FAIL: the instrumented pass diverged from the baseline");
            std::process::exit(1);
        }
        let trace_path = results_dir().join("trace_geolife_scale.json");
        let trace_json = bundle
            .write_trace(&trace_path)
            .expect("write trace artifact");
        match validate_build_trace(&trace_json) {
            Ok(check) => eprintln!(
                "[geolife_scale] obs: trace valid ({} spans, {} worker spans) at {}",
                check.spans,
                check.worker_spans,
                trace_path.display()
            ),
            Err(reason) => {
                eprintln!("[geolife_scale] FAIL: invalid build trace: {reason}");
                std::process::exit(1);
            }
        }
        let mut section = bundle.section_value();
        if let Value::Object(fields) = &mut section {
            fields.push((
                "instrumented_secs".to_string(),
                Value::Number(obs_report.secs),
            ));
            fields.push(("bit_identical".to_string(), Value::Bool(true)));
            fields.push((
                "trace".to_string(),
                Value::String(display_path(&trace_path)),
            ));
        }
        Some(section)
    } else {
        None
    };

    // ---- Parallel sweep: pre-eval, prefetch, loss estimator. ----
    if !threads_sweep.is_empty() {
        run_parallel_sweep(
            &spill_path,
            n,
            k,
            chunk_size,
            epsilon,
            smoke,
            &threads_sweep,
            &sampler_report,
            &sample_points,
        );
    }

    if !keep_spill {
        std::fs::remove_file(&spill_path).ok();
    } else {
        eprintln!("[geolife_scale] spill kept at {}", spill_path.display());
    }

    emit_report(
        mode,
        n,
        k,
        chunk_size,
        ingest,
        sampler_report,
        peak_resident,
        bound,
        streaming_matches_in_memory,
        obs_section,
    );
}

/// The `--threads` sweep: measures the sampler phase per thread count with
/// and without read-ahead, and the loss estimator's probe loop, asserting
/// every run bit-identical to the baseline sample. Exits non-zero on the
/// first divergence.
#[allow(clippy::too_many_arguments)]
fn run_parallel_sweep(
    spill_path: &Path,
    n: u64,
    k: usize,
    chunk_size: usize,
    epsilon: f64,
    smoke: bool,
    threads_sweep: &[usize],
    baseline: &SamplerReport,
    baseline_sample: &[Point],
) {
    let mut pre_eval_entries = Vec::new();
    let mut prefetch_entries = Vec::new();
    let mut bit_identical = true;
    // The prefetch pipeline holds `depth + 2` chunk buffers; the combined
    // bound is the contract the sweep runs assert.
    let sweep_bound = (k + (DEFAULT_PREFETCH_DEPTH + 2 + 1) * chunk_size) as u64;
    for &threads in threads_sweep {
        for prefetch in [false, true] {
            let label = if prefetch {
                "pre-eval+prefetch"
            } else {
                "pre-eval"
            };
            eprintln!("[geolife_scale] sweep: {label}, threads = {threads}");
            let (report, points) = run_sampler(
                spill_path,
                n,
                k,
                epsilon,
                threads,
                prefetch,
                Recorder::detached(),
            );
            assert!(
                report.peak_resident_points <= sweep_bound,
                "sweep peak resident {} exceeded bound {sweep_bound}",
                report.peak_resident_points
            );
            if !bitwise_eq(&points, baseline_sample) {
                eprintln!(
                    "[geolife_scale] FAIL: {label} at {threads} threads diverged from the \
                     sequential sample"
                );
                bit_identical = false;
            }
            let entry = SamplerSweepEntry {
                threads,
                prefetch,
                secs: report.secs,
                tuples_per_sec: report.tuples_per_sec,
                speedup_vs_baseline: report.tuples_per_sec / baseline.tuples_per_sec,
                peak_resident_points: report.peak_resident_points,
            };
            eprintln!(
                "[geolife_scale] sweep: {label} x{threads}: {} tuples/s ({:.2}x baseline)",
                fmt3(entry.tuples_per_sec),
                entry.speedup_vs_baseline
            );
            if prefetch {
                prefetch_entries.push(entry);
            } else {
                pre_eval_entries.push(entry);
            }
        }
    }

    // Loss-estimator phase: the M-probe loop over a materialized subset
    // (bounded so full-scale runs stay out-of-core everywhere else).
    let loss_n = (n as usize).min(200_000);
    let probes = if smoke { 2_000 } else { 20_000 };
    eprintln!("[geolife_scale] sweep: loss estimator ({loss_n} points, {probes} probes)");
    let subset = GeolifeGenerator::with_size(loss_n, SEED).generate();
    let kernel = GaussianKernel::for_dataset(&subset);
    let mut loss_entries: Vec<LossSweepEntry> = Vec::new();
    let mut loss_reference: Option<(u64, u64)> = None;
    for &threads in threads_sweep {
        let estimator = LossEstimator::new(
            &subset,
            &kernel,
            LossConfig {
                probes,
                threads,
                ..LossConfig::default()
            },
        );
        let start = Instant::now();
        let report = estimator.evaluate(&kernel, baseline_sample);
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        let bits = (report.mean.to_bits(), report.median.to_bits());
        match loss_reference {
            None => loss_reference = Some(bits),
            Some(reference) => {
                if reference != bits {
                    eprintln!("[geolife_scale] FAIL: loss estimate at {threads} threads diverged");
                    bit_identical = false;
                }
            }
        }
        loss_entries.push(LossSweepEntry {
            threads,
            secs,
            probes: report.probes,
            speedup_vs_baseline: loss_entries.first().map(|b| b.secs / secs).unwrap_or(1.0),
        });
        eprintln!(
            "[geolife_scale] sweep: loss x{threads}: {:.4}s",
            loss_entries.last().unwrap().secs
        );
    }

    let section = ParallelSection {
        n,
        k,
        chunk_size,
        threads: threads_sweep.to_vec(),
        prefetch_depth: DEFAULT_PREFETCH_DEPTH,
        pre_eval: pre_eval_entries.clone(),
        prefetch: prefetch_entries.clone(),
        loss_estimator: loss_entries.clone(),
        bit_identical,
    };
    let mut table = ReportTable::new(
        format!("Parallel sweep (n = {n}, K = {k}, chunk = {chunk_size})"),
        &["phase", "threads", "time (s)", "tuples/s", "speedup vs 1"],
    );
    for e in pre_eval_entries.iter().chain(&prefetch_entries) {
        table.push_row(vec![
            if e.prefetch {
                "pre-eval+prefetch"
            } else {
                "pre-eval"
            }
            .to_string(),
            e.threads.to_string(),
            fmt3(e.secs),
            fmt3(e.tuples_per_sec),
            format!("{:.2}x", e.speedup_vs_baseline),
        ]);
    }
    for e in &loss_entries {
        table.push_row(vec![
            "loss estimator".to_string(),
            e.threads.to_string(),
            fmt3(e.secs),
            "-".to_string(),
            format!("{:.2}x", e.speedup_vs_baseline),
        ]);
    }
    emit("geolife_scale_parallel", &[table]);
    let path = merge_parallel_section("geolife_scale", section.to_value());
    eprintln!("[parallel sweep merged into {}]", path.display());

    if !bit_identical {
        eprintln!("[geolife_scale] FAIL: a parallel run diverged from the sequential output");
        std::process::exit(1);
    }
    eprintln!(
        "[geolife_scale] sweep: every parallel run reproduced the sequential sample bit-for-bit"
    );
}

#[allow(clippy::too_many_arguments)]
fn emit_report(
    mode: &str,
    n: u64,
    k: usize,
    chunk_size: usize,
    ingest: IngestReport,
    sampler: SamplerReport,
    peak_resident: u64,
    bound: u64,
    streaming_matches_in_memory: Option<bool>,
    obs_section: Option<Value>,
) {
    let mut table = ReportTable::new(
        format!("Out-of-core Geolife pipeline ({mode}: n = {n}, K = {k}, chunk = {chunk_size})"),
        &[
            "phase",
            "points",
            "time (s)",
            "throughput (pts/s)",
            "peak resident pts",
        ],
    );
    table.push_row(vec![
        "ingest (generate + spill)".to_string(),
        ingest.points.to_string(),
        fmt3(ingest.secs),
        fmt3(ingest.points_per_sec),
        ingest.peak_resident_points.to_string(),
    ]);
    table.push_row(vec![
        "sample (stream spill)".to_string(),
        sampler.tuples.to_string(),
        fmt3(sampler.secs),
        fmt3(sampler.tuples_per_sec),
        sampler.peak_resident_points.to_string(),
    ]);
    table.push_row(vec![
        format!("pipeline (bound K+2c = {bound})"),
        n.to_string(),
        fmt3(ingest.secs + sampler.secs),
        "-".to_string(),
        peak_resident.to_string(),
    ]);
    emit("geolife_scale", &[table]);

    let report = StreamingReport {
        bench: "geolife_scale".to_string(),
        mode: mode.to_string(),
        n,
        k,
        chunk_size,
        seed: SEED,
        ingest,
        sampler,
        peak_resident_points: peak_resident,
        resident_bound_points: bound,
        streaming_matches_in_memory,
    };
    let path = results_dir().join("BENCH_streaming.json");
    let json = serde_json::to_string_pretty(&report).expect("serialize streaming report");
    // Graft the optional `--obs` section onto the serialized report, so the
    // artifact schema only grows when the instrumented pass actually ran.
    let json = match obs_section {
        Some(section) => {
            let mut root: Value = serde_json::from_str(&json).expect("reparse streaming report");
            if let Value::Object(fields) = &mut root {
                fields.push(("obs".to_string(), section));
            }
            serde_json::to_string_pretty(&root).expect("serialize streaming report with obs")
        }
        None => json,
    };
    std::fs::write(&path, json).expect("write BENCH_streaming.json");
    eprintln!("[machine-readable report written to {}]", path.display());
}
