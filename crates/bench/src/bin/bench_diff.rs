//! `bench_diff` — the perf-regression sentinel over the BENCH artifacts.
//!
//! Compares two generations of `results/BENCH_*.json` artifacts — a
//! committed baseline directory against a freshly produced one — using the
//! tolerance bands in [`bench::diff`]: booleans gate strictly, ratio metrics
//! (`*_ratio`, `*speedup*`, `*overhead*`) gate beyond a relative tolerance
//! band plus an absolute slack floor, and machine-dependent absolutes stay
//! informational unless `--gate-absolute`. Writes the verdict to
//! `results/BENCH_regressions.json` (or `--out`) and exits non-zero when any
//! gated metric regressed, so CI fails the job.
//!
//! ```text
//! bench_diff --baseline <dir> --current <dir> [--tolerance 0.25]
//!            [--gate-absolute] [--out results/BENCH_regressions.json]
//! ```

use bench::diff::{diff_dirs, report_to_value, DiffConfig, FileDiff};
use bench::{display_path, results_dir};
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "usage: bench_diff --baseline <dir> --current <dir> \
         [--tolerance F] [--gate-absolute] [--out PATH]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline: Option<PathBuf> = None;
    let mut current: Option<PathBuf> = None;
    let mut out: Option<PathBuf> = None;
    let mut cfg = DiffConfig::default();
    let mut i = 0usize;
    while i < args.len() {
        match args[i].as_str() {
            "--baseline" => {
                i += 1;
                baseline = Some(PathBuf::from(args.get(i).unwrap_or_else(|| usage())));
            }
            "--current" => {
                i += 1;
                current = Some(PathBuf::from(args.get(i).unwrap_or_else(|| usage())));
            }
            "--out" => {
                i += 1;
                out = Some(PathBuf::from(args.get(i).unwrap_or_else(|| usage())));
            }
            "--tolerance" => {
                i += 1;
                let raw = args.get(i).map(String::as_str).unwrap_or("");
                match raw.parse::<f64>() {
                    Ok(t) if t >= 0.0 && t.is_finite() => cfg.tolerance = t,
                    _ => {
                        eprintln!("--tolerance needs a non-negative number, got {raw:?}");
                        std::process::exit(2);
                    }
                }
            }
            "--gate-absolute" => cfg.gate_absolute = true,
            other => {
                eprintln!("unknown argument {other:?}");
                usage();
            }
        }
        i += 1;
    }
    let (Some(baseline), Some(current)) = (baseline, current) else {
        usage();
    };
    if !baseline.is_dir() {
        eprintln!("--baseline {} is not a directory", baseline.display());
        std::process::exit(2);
    }

    let diffs: Vec<FileDiff> = match diff_dirs(&baseline, &current, &cfg) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("bench_diff: cannot scan {}: {e}", baseline.display());
            std::process::exit(2);
        }
    };
    if diffs.is_empty() {
        eprintln!(
            "bench_diff: no BENCH_*.json artifacts under {} — nothing to gate",
            baseline.display()
        );
        std::process::exit(2);
    }

    let report = report_to_value(&diffs, &cfg);
    let out_path = out.unwrap_or_else(|| results_dir().join("BENCH_regressions.json"));
    if let Some(parent) = out_path.parent() {
        std::fs::create_dir_all(parent).ok();
    }
    let json = serde_json::to_string_pretty(&report).expect("serialize regression report");
    std::fs::write(&out_path, json).expect("write regression report");

    let total: usize = diffs.iter().map(|d| d.regressions.len()).sum();
    for d in &diffs {
        if d.regressions.is_empty() {
            eprintln!(
                "[bench_diff] {}: ok ({} metrics compared)",
                d.file, d.compared
            );
        } else {
            for r in &d.regressions {
                let path = if r.path.is_empty() { "<file>" } else { &r.path };
                eprintln!("[bench_diff] {}: REGRESSION {path}: {}", d.file, r.detail);
            }
        }
    }
    eprintln!(
        "[bench_diff] {} file(s) compared, {total} regression(s); report at {}",
        diffs.len(),
        display_path(&out_path)
    );
    if total > 0 {
        std::process::exit(1);
    }
}
