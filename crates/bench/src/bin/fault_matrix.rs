//! The fault matrix: every recovery claim in the failure model, exercised
//! end-to-end with deterministic injected faults.
//!
//! Four scenario families, all seeded and bit-reproducible:
//!
//! 1. **Transient I/O** — a seeded [`FaultInjectorSource`] makes chunk reads
//!    fail transiently mid-build; [`RetryingSource`] must absorb every one
//!    and the resulting sample must be bit-identical to a fault-free build.
//!    A fatal (non-transient) injected error must *not* be retried and must
//!    surface as a typed error.
//! 2. **Corruption** — a single bit flipped in a spilled `.vaschunk` file
//!    must fail the per-chunk CRC with a hard error under the default
//!    policy, and under the opt-in [`CorruptionPolicy::SkipChunks`] must be
//!    skipped, reported, and leave the remainder readable.
//! 3. **Crash recovery** — for every locality backend and worker thread
//!    count, a build killed at a chunk boundary and resumed from its
//!    `.vascheckpt` must reproduce the uninterrupted sample bit for bit.
//! 4. **Worker panic** — a panic injected into a speculative pre-evaluation
//!    worker must be contained (the build completes, sequentially re-running
//!    the poisoned batch), counted, and must not change a single sample bit.
//!
//! Output: a table on stdout plus machine-readable
//! `results/BENCH_faults.json` whose boolean gates CI greps. Exits non-zero
//! if any cell fails.
//!
//! Usage:
//! ```text
//! fault_matrix [--smoke] [--n <points>] [--k <K>] [--chunk-size <points>] [--obs]
//! ```
//!
//! With `--obs` a fifth scenario runs the fault path fully instrumented:
//! a retried build with counters + timers + journal + spans + flight ring
//! attached must stay bit-identical and yield a valid causal trace, and a
//! fatal injected fault must fire the flight recorder's post-mortem dump.
//! The summary lands in an `obs` section of `BENCH_faults.json`.

use bench::obs::{validate_build_trace, ObsBundle};
use bench::{bitwise_eq, display_path, emit, results_dir, ReportTable};
use serde::{Serialize, Value};
use std::path::{Path, PathBuf};
use vas_core::{BuildOutcome, CheckpointPolicy, LocalityBackend, VasConfig, VasSampler};
use vas_data::GeolifeGenerator;
use vas_sampling::Sample;
use vas_stream::{
    flip_bit_in_file, spill_dataset, write_atomic, ChunkedReader, CorruptionPolicy,
    FaultInjectorSource, FaultPlan, RetryPolicy, RetryingSource, VasError,
};

/// Seed shared with the rest of the harness binaries.
const SEED: u64 = 20_160_519;

#[derive(Debug, Clone, Serialize)]
struct RecoveryCell {
    backend: String,
    threads: usize,
    killed_after_chunks: u64,
    bit_identical: bool,
}

#[derive(Debug, Serialize)]
struct FaultReport {
    bench: String,
    mode: String,
    n: usize,
    k: usize,
    chunk_size: usize,
    seed: u64,
    // Scenario 1: transient faults retried, fatal faults not.
    transient_faults_injected: u64,
    retries_absorbed: u64,
    transient_recovered: bool,
    fatal_not_retried: bool,
    // Scenario 2: CRC detection + degraded skip mode.
    crc_detected: bool,
    crc_skip_mode_reports: bool,
    // Scenario 3: kill-and-resume, per backend × thread count.
    recovery_cells: Vec<RecoveryCell>,
    recovery_bit_identical: bool,
    // Scenario 4: speculation worker panic containment.
    contained_worker_panics: u64,
    panic_contained: bool,
    all_passed: bool,
}

fn build_clean(spill: &Path, config: &VasConfig) -> Sample {
    let mut reader = ChunkedReader::open(spill).expect("open spill");
    VasSampler::new(config.clone())
        .build_from_source(&mut reader)
        .expect("clean build")
}

/// Scenario 1: the retrying source must absorb every injected transient
/// fault and reproduce the fault-free sample; a fatal fault must pass
/// through untouched.
fn run_transient_scenario(
    spill: &Path,
    config: &VasConfig,
    reference: &Sample,
) -> (u64, u64, bool, bool) {
    let reader = ChunkedReader::open(spill).expect("open spill");
    // Roughly one read in three fails, twice in a row, on a seeded schedule.
    let injector = FaultInjectorSource::new(reader, FaultPlan::transient(SEED, 3, 2));
    let mut source = RetryingSource::new(injector, RetryPolicy::immediate(5));
    let result = VasSampler::new(config.clone()).build_from_source(&mut source);
    let retries = source.retries();
    let injected = source.into_inner().transient_injected();
    let recovered = match result {
        Ok(sample) => {
            let identical = bitwise_eq(&sample.points, &reference.points);
            if !identical {
                eprintln!("[fault_matrix] FAIL: retried build diverged from the clean build");
            }
            identical && injected > 0 && retries >= injected
        }
        Err(e) => {
            eprintln!("[fault_matrix] FAIL: transient faults were not absorbed: {e}");
            false
        }
    };

    // Fatal faults must not be retried: the build dies with a typed,
    // non-transient error and the retry counter stays untouched.
    let reader = ChunkedReader::open(spill).expect("open spill");
    let injector = FaultInjectorSource::new(reader, FaultPlan::fatal_after(2));
    let mut source = RetryingSource::new(injector, RetryPolicy::immediate(5));
    let result = VasSampler::new(config.clone()).build_from_source(&mut source);
    let fatal_not_retried = match result {
        Ok(_) => {
            eprintln!("[fault_matrix] FAIL: a fatal injected fault did not fail the build");
            false
        }
        Err(e) => {
            let not_retried = source.retries() == 0 && !e.is_transient();
            if !not_retried {
                eprintln!(
                    "[fault_matrix] FAIL: fatal fault was retried ({} retries) or \
                     misclassified: {e}",
                    source.retries()
                );
            }
            not_retried
        }
    };
    (injected, retries, recovered, fatal_not_retried)
}

/// Scenario 2: a flipped bit in the spill must fail the chunk CRC hard by
/// default, and be skipped-and-reported under the opt-in policy.
fn run_corruption_scenario(spill: &Path, corrupt_copy: &Path, n: usize) -> (bool, bool) {
    std::fs::copy(spill, corrupt_copy).expect("copy spill");
    let bytes = std::fs::metadata(corrupt_copy).expect("stat spill").len();
    // Mid-file lands inside a chunk's column data (the header is tiny).
    flip_bit_in_file(corrupt_copy, bytes * 8 / 2).expect("flip bit");

    let mut reader = ChunkedReader::open(corrupt_copy).expect("open corrupt spill");
    let mut buf = Vec::new();
    let mut hard_error = None;
    loop {
        match reader.next_chunk(&mut buf) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                hard_error = Some(e);
                break;
            }
        }
    }
    let crc_detected = match hard_error {
        Some(e) => {
            let typed = matches!(
                VasError::from_io_chain(&e),
                Some(VasError::ChecksumMismatch { .. })
            );
            if !typed {
                eprintln!("[fault_matrix] FAIL: corruption error is not a checksum mismatch: {e}");
            }
            typed
        }
        None => {
            eprintln!("[fault_matrix] FAIL: flipped bit went undetected by the default policy");
            false
        }
    };

    let mut reader = ChunkedReader::open(corrupt_copy)
        .expect("open corrupt spill")
        .with_corruption_policy(CorruptionPolicy::SkipChunks);
    let mut streamed = 0usize;
    let skip_ok = loop {
        match reader.next_chunk(&mut buf) {
            Ok(0) => break true,
            Ok(got) => streamed += got,
            Err(e) => {
                eprintln!("[fault_matrix] FAIL: skip mode still errored: {e}");
                break false;
            }
        }
    };
    let reports = reader.corruption_reports().len();
    let skipped = reader.points_skipped() as usize;
    let crc_skip_mode_reports = skip_ok
        && reports >= 1
        && skipped > 0
        && streamed + skipped == n
        && streamed == reader.points_read() as usize;
    if skip_ok && !crc_skip_mode_reports {
        eprintln!(
            "[fault_matrix] FAIL: skip mode accounting is off: {streamed} streamed, \
             {skipped} skipped, {reports} reports, {n} total"
        );
    }
    (crc_detected, crc_skip_mode_reports)
}

/// Scenario 3: kill at a chunk boundary, resume from the checkpoint, compare
/// every bit — per backend, per thread count.
fn run_recovery_scenario(
    spill: &Path,
    k: usize,
    kill_points: &[u64],
    threads_sweep: &[usize],
) -> (Vec<RecoveryCell>, bool) {
    let mut cells = Vec::new();
    let mut all = true;
    for backend in LocalityBackend::ALL {
        let base = VasConfig::new(k).with_locality_backend(backend);
        let reference = build_clean(spill, &base);
        for &threads in threads_sweep {
            let config = base.clone().with_threads(threads);
            for &kill_after in kill_points {
                let ckpt = results_dir().join(format!(
                    "fault_matrix_{backend}_{threads}_{kill_after}.vascheckpt"
                ));
                let policy = CheckpointPolicy::every(&ckpt, 1).halting_after(kill_after);
                let mut reader = ChunkedReader::open(spill).expect("open spill");
                let outcome = VasSampler::new(config.clone())
                    .build_from_source_checkpointed(&mut reader, &policy)
                    .expect("checkpointed build");
                let mut ok = matches!(outcome, BuildOutcome::Halted { .. });
                if !ok {
                    eprintln!(
                        "[fault_matrix] FAIL: kill switch never fired ({backend}, \
                         {threads} threads, kill {kill_after})"
                    );
                } else {
                    let resume_policy = CheckpointPolicy::every(&ckpt, 1);
                    let mut reader = ChunkedReader::open(spill).expect("open spill");
                    let (_, outcome) = VasSampler::resume_build_from_source(
                        config.clone(),
                        &mut reader,
                        &resume_policy,
                    )
                    .expect("resume");
                    let resumed = outcome.into_sample().expect("resumed build completes");
                    ok = bitwise_eq(&resumed.points, &reference.points);
                    if !ok {
                        eprintln!(
                            "[fault_matrix] FAIL: resumed sample diverged ({backend}, \
                             {threads} threads, kill {kill_after})"
                        );
                    }
                }
                std::fs::remove_file(&ckpt).ok();
                all &= ok;
                cells.push(RecoveryCell {
                    backend: backend.to_string(),
                    threads,
                    killed_after_chunks: kill_after,
                    bit_identical: ok,
                });
            }
        }
    }
    (cells, all)
}

/// Scenario 4: a panic injected into the first speculative batch must be
/// contained without changing the sample.
fn run_panic_scenario(spill: &Path, config: &VasConfig, reference: &Sample) -> (u64, bool) {
    let mut sampler = VasSampler::new(config.clone().with_injected_speculation_panic(0));
    // The injected panic is expected; silence its default stderr report so
    // the harness log stays readable. Containment shows in the counter.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut reader = ChunkedReader::open(spill).expect("open spill");
    let result = sampler.build_from_source(&mut reader);
    std::panic::set_hook(prev);
    let contained = sampler.contained_worker_panics();
    match result {
        Ok(sample) => {
            let identical = bitwise_eq(&sample.points, &reference.points);
            if contained == 0 {
                eprintln!("[fault_matrix] FAIL: the injected panic never fired");
            }
            if !identical {
                eprintln!("[fault_matrix] FAIL: containment changed the sample bits");
            }
            (contained, contained >= 1 && identical)
        }
        Err(e) => {
            eprintln!("[fault_matrix] FAIL: panic containment build errored: {e}");
            (contained, false)
        }
    }
}

/// Scenario 5 (`--obs`): the fully instrumented fault path. A retried build
/// with the whole observability stack attached must stay bit-identical and
/// yield a valid causal trace, and a fatal injected fault must make the
/// flight recorder write its post-mortem dump. Returns the `obs` section for
/// `BENCH_faults.json` and the pass flag.
fn run_obs_scenario(spill: &Path, config: &VasConfig, reference: &Sample) -> (Value, bool) {
    let bundle = ObsBundle::new();
    let dump_path = results_dir().join("flight_fault_matrix.jsonl");
    std::fs::remove_file(&dump_path).ok();
    bundle.flight.set_dump_path(&dump_path);

    // The instrumented retried build: every stage reports into the bundle.
    let reader = ChunkedReader::open(spill)
        .expect("open spill")
        .with_recorder(bundle.recorder.clone());
    let injector = FaultInjectorSource::new(reader, FaultPlan::transient(SEED, 3, 2));
    let mut source = RetryingSource::new(injector, RetryPolicy::immediate(5))
        .with_recorder(bundle.recorder.clone());
    let result = VasSampler::new(config.clone())
        .with_recorder(bundle.recorder.clone())
        .build_from_source(&mut source);
    let bit_identical = match result {
        Ok(sample) => {
            let identical = bitwise_eq(&sample.points, &reference.points);
            if !identical {
                eprintln!("[fault_matrix] FAIL: instrumented retried build diverged");
            }
            identical
        }
        Err(e) => {
            eprintln!("[fault_matrix] FAIL: instrumented retried build errored: {e}");
            false
        }
    };
    let trace_path = results_dir().join("trace_fault_matrix.json");
    let trace_json = bundle
        .write_trace(&trace_path)
        .expect("write trace artifact");
    let trace_valid = match validate_build_trace(&trace_json) {
        Ok(check) => {
            eprintln!(
                "[fault_matrix] obs: trace valid ({} spans, {} worker spans) at {}",
                check.spans,
                check.worker_spans,
                trace_path.display()
            );
            true
        }
        Err(reason) => {
            eprintln!("[fault_matrix] FAIL: invalid build trace: {reason}");
            false
        }
    };

    // A fatal injected fault must fail the build AND fire the flight
    // recorder's post-mortem dump.
    let reader = ChunkedReader::open(spill)
        .expect("open spill")
        .with_recorder(bundle.recorder.clone());
    let injector = FaultInjectorSource::new(reader, FaultPlan::fatal_after(2));
    let mut source = RetryingSource::new(injector, RetryPolicy::immediate(5))
        .with_recorder(bundle.recorder.clone());
    let fatal_result = VasSampler::new(config.clone())
        .with_recorder(bundle.recorder.clone())
        .build_from_source(&mut source);
    let flight_dumped = fatal_result.is_err() && bundle.flight.dumps() > 0 && dump_path.is_file();
    if !flight_dumped {
        eprintln!(
            "[fault_matrix] FAIL: the fatal fault did not produce a flight-recorder dump \
             (errored = {}, dumps = {})",
            fatal_result.is_err(),
            bundle.flight.dumps()
        );
    }

    let mut section = bundle.section_value();
    if let Value::Object(fields) = &mut section {
        fields.push(("bit_identical".to_string(), Value::Bool(bit_identical)));
        fields.push(("trace_valid".to_string(), Value::Bool(trace_valid)));
        fields.push(("flight_dumped".to_string(), Value::Bool(flight_dumped)));
        fields.push((
            "flight_dump".to_string(),
            Value::String(display_path(&dump_path)),
        ));
        fields.push((
            "trace".to_string(),
            Value::String(display_path(&trace_path)),
        ));
    }
    (section, bit_identical && trace_valid && flight_dumped)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let obs = args.iter().any(|a| a == "--obs");
    let (mut n, mut k, mut chunk_size) = if smoke {
        (20_000usize, 200usize, 1_024usize)
    } else {
        (200_000usize, 2_000usize, 8_192usize)
    };
    let mut i = 0usize;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" | "--obs" => {}
            "--n" | "--k" | "--chunk-size" => {
                let flag = args[i].clone();
                i += 1;
                let value = args.get(i).and_then(|v| v.parse::<usize>().ok());
                match value {
                    Some(v) if v > 0 => match flag.as_str() {
                        "--n" => n = v,
                        "--k" => k = v,
                        _ => chunk_size = v,
                    },
                    _ => {
                        eprintln!("{flag} needs a positive integer value");
                        std::process::exit(2);
                    }
                }
            }
            unknown => {
                eprintln!(
                    "unknown argument {unknown}; usage: fault_matrix [--smoke] [--n <points>] \
                     [--k <K>] [--chunk-size <points>] [--obs]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let mode = if smoke { "smoke" } else { "full" };
    let dataset = GeolifeGenerator::with_size(n, SEED).generate();
    let spill: PathBuf = results_dir().join(format!("fault_matrix_{n}.vaschunk"));
    spill_dataset(&dataset, &spill, chunk_size).expect("spill dataset");

    let base = VasConfig::new(k);
    eprintln!("[fault_matrix] clean reference build (n = {n}, K = {k}, chunk = {chunk_size})");
    let reference = build_clean(&spill, &base);

    eprintln!("[fault_matrix] scenario 1: transient faults + retry");
    let (injected, retries, transient_recovered, fatal_not_retried) =
        run_transient_scenario(&spill, &base, &reference);

    eprintln!("[fault_matrix] scenario 2: CRC detection + skip mode");
    let corrupt_copy = results_dir().join(format!("fault_matrix_{n}_corrupt.vaschunk"));
    let (crc_detected, crc_skip_mode_reports) = run_corruption_scenario(&spill, &corrupt_copy, n);
    std::fs::remove_file(&corrupt_copy).ok();

    eprintln!("[fault_matrix] scenario 3: kill-and-resume per backend");
    let kill_points: &[u64] = if smoke { &[2, 5] } else { &[2, 5, 11] };
    let (recovery_cells, recovery_bit_identical) =
        run_recovery_scenario(&spill, k, kill_points, &[1, 2, 4]);

    eprintln!("[fault_matrix] scenario 4: speculation worker panic containment");
    let parallel_reference = {
        let mut reader = ChunkedReader::open(&spill).expect("open spill");
        VasSampler::new(base.clone().with_threads(2))
            .build_from_source(&mut reader)
            .expect("parallel reference build")
    };
    let (contained, panic_contained) =
        run_panic_scenario(&spill, &base.clone().with_threads(2), &parallel_reference);

    // Scenario 5 (`--obs`): the instrumented fault path + flight recorder.
    // Uses threads = 2 so the trace carries cross-thread worker spans, and
    // the parallel reference for the bit-identity check.
    let obs_result = if obs {
        eprintln!("[fault_matrix] scenario 5: instrumented faults + flight recorder");
        Some(run_obs_scenario(
            &spill,
            &base.clone().with_threads(2),
            &parallel_reference,
        ))
    } else {
        None
    };
    let obs_passed = obs_result.as_ref().map(|(_, ok)| *ok).unwrap_or(true);

    std::fs::remove_file(&spill).ok();

    let all_passed = transient_recovered
        && fatal_not_retried
        && crc_detected
        && crc_skip_mode_reports
        && recovery_bit_identical
        && panic_contained
        && obs_passed;

    let mut table = ReportTable::new(
        format!("Fault matrix ({mode}: n = {n}, K = {k}, chunk = {chunk_size})"),
        &["scenario", "detail", "pass"],
    );
    let yn = |b: bool| if b { "yes" } else { "NO" }.to_string();
    table.push_row(vec![
        "transient retried".into(),
        format!("{injected} injected, {retries} retries absorbed"),
        yn(transient_recovered),
    ]);
    table.push_row(vec![
        "fatal not retried".into(),
        "permanent fault surfaces unretried".into(),
        yn(fatal_not_retried),
    ]);
    table.push_row(vec![
        "CRC detects bit flip".into(),
        "default policy hard-errors".into(),
        yn(crc_detected),
    ]);
    table.push_row(vec![
        "CRC skip mode".into(),
        "corrupt chunk skipped + reported".into(),
        yn(crc_skip_mode_reports),
    ]);
    table.push_row(vec![
        "kill-and-resume".into(),
        format!(
            "{} cells (backend x threads x kill point)",
            recovery_cells.len()
        ),
        yn(recovery_bit_identical),
    ]);
    table.push_row(vec![
        "panic containment".into(),
        format!("{contained} contained worker panic(s)"),
        yn(panic_contained),
    ]);
    if obs_result.is_some() {
        table.push_row(vec![
            "obs + flight recorder".into(),
            "instrumented faults traced, fatal dump written".into(),
            yn(obs_passed),
        ]);
    }
    emit("fault_matrix", &[table]);

    let report = FaultReport {
        bench: "fault_matrix".into(),
        mode: mode.into(),
        n,
        k,
        chunk_size,
        seed: SEED,
        transient_faults_injected: injected,
        retries_absorbed: retries,
        transient_recovered,
        fatal_not_retried,
        crc_detected,
        crc_skip_mode_reports,
        recovery_cells,
        recovery_bit_identical,
        contained_worker_panics: contained,
        panic_contained,
        all_passed,
    };
    let path = results_dir().join("BENCH_faults.json");
    let json = serde_json::to_string_pretty(&report).expect("serialize fault report");
    // Graft the optional `--obs` section onto the serialized report, so the
    // artifact schema only grows when the instrumented scenario actually ran.
    let json = match obs_result {
        Some((section, _)) => {
            let mut root: Value = serde_json::from_str(&json).expect("reparse fault report");
            if let Value::Object(fields) = &mut root {
                fields.push(("obs".to_string(), section));
            }
            serde_json::to_string_pretty(&root).expect("serialize fault report with obs")
        }
        None => json,
    };
    write_atomic(&path, json.as_bytes()).expect("write BENCH_faults.json");
    eprintln!("[machine-readable report written to {}]", path.display());

    if !all_passed {
        eprintln!("[fault_matrix] FAIL: at least one matrix cell failed");
        std::process::exit(1);
    }
    eprintln!("[fault_matrix] every fault-matrix cell passed");
}
