//! Extension experiment — VAS samples vs binned aggregation (Section VII).
//!
//! The paper's related-work section argues that pre-aggregation approaches
//! (imMens, Nanocubes) answer overview queries instantly but pay for it in
//! two ways: the bin size is fixed ahead of time (so deep zooms are
//! low-resolution unless enormous pyramids are materialized) and the
//! aggregates cannot reproduce point-level structure. This harness makes that
//! trade-off concrete on the same dataset used by the other experiments:
//!
//! * storage footprint (non-empty cells vs sampled points),
//! * bitmap similarity to the full-data rendering at overview zoom and at
//!   deep zoom (where the pyramid's resolution cap bites), and
//! * the effective resolution available at a deep-zoom viewport.

use bench::{emit, fmt3, geolife, ReportTable};
use vas_binned::{HeatmapRenderer, TilePyramid, TilePyramidConfig};
use vas_core::{VasConfig, VasSampler};
use vas_data::{ZoomLevel, ZoomWorkload};
use vas_eval::similarity::{density_correlation, ink_jaccard};
use vas_sampling::Sampler;
use vas_viz::{Color, Colormap, PlotStyle, ScatterRenderer, Viewport};

fn main() {
    let data = geolife(200_000);
    let renderer = ScatterRenderer::new(PlotStyle::default());
    let canvas_px = 256usize;

    let overview = data.bounds().padded(data.bounds().diagonal() * 0.01);
    let zoom = ZoomWorkload::new(21).regions(&data, ZoomLevel::Deep, 1)[0].viewport;
    let full_overview =
        renderer.render_points(&data.points, &Viewport::new(overview, canvas_px, canvas_px));
    let full_zoom =
        renderer.render_points(&data.points, &Viewport::new(zoom, canvas_px, canvas_px));

    let mut table = ReportTable::new(
        "Extension — VAS samples vs binned aggregation (storage and zoom fidelity)",
        &[
            "approach",
            "storage (points or cells)",
            "overview density corr.",
            "deep-zoom ink Jaccard",
            "deep-zoom cells/points visible",
        ],
    );

    // --- Binned aggregation at two pyramid depths. One HeatmapRenderer
    // serves every frame, reusing its cell buffer across queries.
    let mut heatmaps = HeatmapRenderer::new();
    for max_level in [7u8, 9] {
        let pyramid = TilePyramid::build(&data, TilePyramidConfig { max_level });
        let over = heatmaps.render(&pyramid, &overview, canvas_px, canvas_px, Colormap::Greys);
        let zoomed = heatmaps.render(&pyramid, &zoom, canvas_px, canvas_px, Colormap::Greys);
        let visible = pyramid.query_for_render(&zoom, canvas_px).1.len();
        table.push_row(vec![
            format!("binned aggregation (max level {max_level})"),
            pyramid.total_cells().to_string(),
            fmt3(density_correlation(&full_overview, &over, 16)),
            fmt3(ink_jaccard(&full_zoom, &zoomed)),
            visible.to_string(),
        ]);
    }

    // --- VAS samples of comparable storage cost.
    for k in [10_000usize, 50_000] {
        let sample = VasSampler::from_dataset(&data, VasConfig::new(k)).sample_dataset(&data);
        let over = renderer.render_points(
            &sample.points,
            &Viewport::new(overview, canvas_px, canvas_px),
        );
        let zoomed =
            renderer.render_points(&sample.points, &Viewport::new(zoom, canvas_px, canvas_px));
        let visible = sample.filter_region(&zoom).len();
        table.push_row(vec![
            format!("VAS sample (K = {k})"),
            k.to_string(),
            fmt3(density_correlation(&full_overview, &over, 16)),
            fmt3(ink_jaccard(&full_zoom, &zoomed)),
            visible.to_string(),
        ]);
        eprintln!("[binned_comparison] finished VAS K = {k}");
    }

    // Sanity anchor: the full data against itself.
    table.push_row(vec![
        "full data (reference)".into(),
        data.len().to_string(),
        fmt3(density_correlation(&full_overview, &full_overview, 16)),
        fmt3(ink_jaccard(&full_zoom, &full_zoom)),
        data.filter_region(&zoom).len().to_string(),
    ]);
    std::hint::black_box(full_overview.ink(Color::WHITE));

    emit("binned_comparison", &[table]);
}
