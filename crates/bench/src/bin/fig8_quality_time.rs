//! Figure 8 — visualization quality vs visualization production time.
//!
//! (a) *Error given time*: for a sweep of sample sizes (which the latency
//!     model converts into visualization time), report the log-loss-ratio of
//!     uniform sampling, stratified sampling and VAS.
//! (b) *Time given error*: for a set of target quality levels, report the
//!     time each method needs, i.e. the time corresponding to the smallest
//!     sample size whose error is at or below the target.
//!
//! The paper's headline claim — VAS reaches the same quality with up to 400×
//! fewer data points (and therefore correspondingly less visualization time)
//! — shows up here as a large horizontal gap between the VAS curve and the
//! baselines.

use bench::{emit, fmt3, fmt_secs, geolife, ReportTable};
use vas_core::{GaussianKernel, VasConfig, VasSampler};
use vas_eval::{LossConfig, LossEstimator};
use vas_sampling::{Sample, Sampler, StratifiedSampler, UniformSampler};
use vas_viz::LatencyModel;

const SIZES: [usize; 7] = [100, 300, 1_000, 3_000, 10_000, 30_000, 100_000];

fn main() {
    let data = geolife(300_000);
    let kernel = GaussianKernel::for_dataset(&data);
    let estimator = LossEstimator::new(&data, &kernel, LossConfig::default());
    let latency = LatencyModel::mathgl_like();

    // --- Build the (method, size) grid once.
    let mut grid: Vec<(String, usize, f64)> = Vec::new(); // (method, size, error)
    for &k in &SIZES {
        let samples: Vec<Sample> = vec![
            UniformSampler::new(k, 1).sample_dataset(&data),
            StratifiedSampler::square(k, data.bounds(), 10, 1).sample_dataset(&data),
            VasSampler::from_dataset(&data, VasConfig::new(k)).sample_dataset(&data),
        ];
        for s in samples {
            let err = estimator.log_loss_ratio(&kernel, &s.points);
            grid.push((s.method.clone(), k, err));
        }
        eprintln!("[fig8] finished K = {k}");
    }

    // --- (a) error given time.
    let mut part_a = ReportTable::new(
        "Figure 8(a) — error (log-loss-ratio) given visualization time",
        &[
            "sample size",
            "viz time (s)",
            "uniform",
            "stratified",
            "vas",
        ],
    );
    for &k in &SIZES {
        let err_of = |method: &str| {
            grid.iter()
                .find(|(m, size, _)| m == method && *size == k)
                .map(|(_, _, e)| *e)
                .unwrap_or(f64::NAN)
        };
        part_a.push_row(vec![
            k.to_string(),
            fmt_secs(latency.time_for(k)),
            fmt3(err_of("uniform")),
            fmt3(err_of("stratified")),
            fmt3(err_of("vas")),
        ]);
    }

    // --- (b) time given error: smallest sample size reaching each target.
    let targets = [2.0f64, 1.5, 1.0, 0.75, 0.5];
    let mut part_b = ReportTable::new(
        "Figure 8(b) — visualization time (s) needed to reach a target error",
        &[
            "target error",
            "uniform",
            "stratified",
            "vas",
            "vas speed-up vs uniform",
        ],
    );
    for &target in &targets {
        let time_of = |method: &str| -> Option<(usize, f64)> {
            SIZES
                .iter()
                .filter(|&&k| {
                    grid.iter()
                        .any(|(m, size, e)| m == method && *size == k && *e <= target)
                })
                .map(|&k| (k, latency.time_for(k).as_secs_f64()))
                .next()
        };
        let cell = |method: &str| match time_of(method) {
            Some((_, t)) => fmt_secs(std::time::Duration::from_secs_f64(t)),
            None => "> max".into(),
        };
        let speedup = match (time_of("uniform"), time_of("vas")) {
            (Some((ku, _)), Some((kv, _))) => format!("{:.0}x fewer points", ku as f64 / kv as f64),
            (None, Some(_)) => "baseline never reaches target".into(),
            _ => "-".into(),
        };
        part_b.push_row(vec![
            fmt3(target),
            cell("uniform"),
            cell("stratified"),
            cell("vas"),
            speedup,
        ]);
    }

    emit("fig8_quality_time", &[part_a, part_b]);
}
