//! Figure 10 — contribution of the algorithmic optimizations.
//!
//! The paper compares the offline sample-construction runtime of three
//! Interchange variants:
//!
//! * **No ES** — responsibilities recomputed from scratch per tuple,
//! * **ES** — the Expand/Shrink incremental bookkeeping,
//! * **ES+Loc** — Expand/Shrink plus the R-tree locality pruning,
//!
//! at a small sample size (100), where the R-tree overhead does not pay off,
//! and at a larger one (5K), where locality wins. As in the paper, the
//! quadratic "No ES" variant is only run at the small sample size.

use bench::{emit, fmt_secs, geolife, ReportTable};
use std::time::Instant;
use vas_core::{GaussianKernel, InterchangeStrategy, Kernel, VasConfig, VasSampler};
use vas_data::Dataset;
use vas_sampling::Sampler;

fn build_time(data: &Dataset, k: usize, strategy: InterchangeStrategy, epsilon: f64) -> f64 {
    let mut sampler = VasSampler::from_dataset(
        data,
        VasConfig::new(k)
            .with_strategy(strategy)
            .with_epsilon(epsilon),
    );
    let start = Instant::now();
    let sample = sampler.sample_dataset(data);
    let elapsed = start.elapsed();
    assert_eq!(sample.len(), k.min(data.len()));
    elapsed.as_secs_f64()
}

fn main() {
    let data = geolife(100_000);
    let epsilon = GaussianKernel::for_dataset(&data).bandwidth();

    let mut tables = Vec::new();
    for (k, include_naive) in [(100usize, true), (5_000, false)] {
        let mut table = ReportTable::new(
            format!("Figure 10 — offline sample-construction runtime, sample size {k}"),
            &["variant", "runtime (s)", "speed-up vs slowest"],
        );
        let mut rows: Vec<(&str, f64)> = Vec::new();
        if include_naive {
            let t = build_time(&data, k, InterchangeStrategy::Naive, epsilon);
            rows.push(("No ES", t));
            eprintln!("[fig10] K = {k}: No ES finished in {t:.3}s");
        }
        let t_es = build_time(&data, k, InterchangeStrategy::ExpandShrink, epsilon);
        eprintln!("[fig10] K = {k}: ES finished in {t_es:.3}s");
        rows.push(("ES", t_es));
        let t_loc = build_time(&data, k, InterchangeStrategy::ExpandShrinkLocality, epsilon);
        eprintln!("[fig10] K = {k}: ES+Loc finished in {t_loc:.3}s");
        rows.push(("ES+Loc", t_loc));

        let slowest = rows.iter().map(|(_, t)| *t).fold(0.0f64, f64::max);
        for (label, t) in rows {
            table.push_row(vec![
                label.to_string(),
                fmt_secs(std::time::Duration::from_secs_f64(t)),
                format!("{:.1}x", slowest / t.max(1e-9)),
            ]);
        }
        tables.push(table);
    }

    emit("fig10_ablation", &tables);
}
