//! Sharded-sampling scale-out sweep: spatial partition → per-shard
//! Interchange → ordered merge, measured across shard and thread counts.
//!
//! This is the harness behind the deterministic scale-out claim: a
//! `ShardedSampler` splits the stream into `S` spatial shards (pure
//! per-point assignment from the `HashGrid` cell decomposition), runs one
//! Interchange sampler per shard with a `K/S (+50%)` budget, and merges the
//! shard samples with a final single-pass Interchange over the union in
//! shard order. The sweep pins the contract the library tests promise:
//!
//! * **Determinism** — for a fixed shard count, the sample is bit-identical
//!   at every thread count (and, in smoke mode, bit-identical to the
//!   in-memory `build_sharded` over the materialized dataset, which covers
//!   chunking since the in-memory path sees one giant chunk).
//! * **S = 1 equivalence** — one shard gets the full budget with no
//!   oversampling, so the sharded pipeline collapses to the plain
//!   streaming build, bit for bit.
//! * **Quality knob, not a lottery** — per shard count the sample's
//!   estimated loss is compared against the unsharded baseline; the ratio
//!   must stay inside a fixed band.
//!
//! Any violated gate exits non-zero, so CI can run the smoke sweep as a
//! regression tripwire. Results land in `results/BENCH_shard.json`
//! (`bench_diff`-compatible: rows are keyed by `shards`/`threads`, ratios
//! get tolerance, booleans are strict).
//!
//! Usage:
//! ```text
//! shard_sweep [--smoke] [--n <points>] [--k <K>] [--chunk-size <points>]
//!             [--shards s1,s2,...] [--threads t1,t2,...] [--keep-spill]
//!             [--obs]
//! ```
//! * `--smoke`      — CI-sized run (40K points, K = 400) + in-memory
//!   cross-check of every shard count.
//! * `--shards`     — shard counts to sweep (default `1,2,4`).
//! * `--threads`    — per-shard pre-eval thread counts to sweep (default
//!   `1,2`); the first entry is the reference every other run must
//!   reproduce bit-for-bit.
//! * `--obs`        — add a fully instrumented sharded pass at the largest
//!   shard count, assert it bit-identical, export a validated Chrome trace
//!   (`results/trace_shard.json`) with ≥ S worker spans under one build
//!   root, and graft an `obs` section onto the report.

use bench::obs::{validate_build_trace, ObsBundle};
use bench::{
    bitwise_eq, display_path, emit, fmt3, parse_shards_list, parse_threads_list, results_dir,
    ReportTable,
};
use serde::{Serialize, Value};
use std::path::Path;
use std::time::Instant;
use vas_core::{GaussianKernel, Kernel, ShardedSampler, VasConfig, VasSampler};
use vas_data::{GeolifeGenerator, Point};
use vas_eval::{LossConfig, LossEstimator};
use vas_obs::Recorder;
use vas_stream::{ChunkedReader, ChunkedWriter, GeolifeSource, PointSource};

/// Seed shared with the in-memory verification path.
const SEED: u64 = 20_160_520;

/// Maximum tolerated `loss(S) / loss(unsharded)` median ratio. Sharding
/// trades a little quality for scale-out: each shard selects against local
/// density only and the merge reconciles borders from `~1.5K` candidates.
/// The smoke workload measures ratios near 1.0; the band leaves headroom
/// for workload drift while still catching a broken merge (which shows up
/// as 2–10× loss).
const LOSS_BAND_MAX: f64 = 1.5;

#[derive(Debug, Clone, Serialize)]
struct SweepRow {
    shards: usize,
    threads: usize,
    secs: f64,
    tuples_per_sec: f64,
    /// Throughput ratio against the `S = 1` run at the same thread count.
    speedup_vs_s1: f64,
}

#[derive(Debug, Clone, Serialize)]
struct QualityRow {
    shards: usize,
    /// Median Monte-Carlo point-loss of this shard count's sample.
    loss_median: f64,
    /// `loss_median / unsharded loss_median` — the quality cost of sharding.
    loss_ratio_vs_unsharded: f64,
    /// Smoke only: streamed sharded build == in-memory `build_sharded`.
    streaming_matches_in_memory: Option<bool>,
}

#[derive(Debug, Clone, Serialize)]
struct Gates {
    /// Every (S, threads) run reproduced its shard count's reference sample.
    bit_identical: bool,
    /// The S = 1 sharded build equals the unsharded streaming build.
    s1_matches_unsharded: bool,
    /// Every shard count's loss ratio stayed within [`LOSS_BAND_MAX`].
    loss_within_band: bool,
    all_passed: bool,
}

#[derive(Debug, Clone, Serialize)]
struct ShardReport {
    bench: String,
    mode: String,
    n: u64,
    k: usize,
    chunk_size: usize,
    seed: u64,
    epsilon: f64,
    shards: Vec<usize>,
    threads: Vec<usize>,
    loss_band_max: f64,
    unsharded: SweepRow,
    unsharded_loss_median: f64,
    sweep: Vec<SweepRow>,
    quality: Vec<QualityRow>,
    gates: Gates,
}

/// One streamed sharded build over the spill. Returns wall-clock seconds
/// and the sample points.
fn run_sharded(
    spill_path: &Path,
    k: usize,
    epsilon: f64,
    shards: usize,
    threads: usize,
    recorder: Recorder,
) -> (f64, Vec<Point>) {
    let mut reader = ChunkedReader::open(spill_path).expect("open spill");
    let mut sampler = ShardedSampler::new(
        VasConfig::new(k)
            .with_epsilon(epsilon)
            .with_threads(threads),
        shards,
    )
    .with_recorder(recorder);
    let start = Instant::now();
    let sample = sampler
        .build_sharded_from_source(&mut reader)
        .expect("sharded streaming build");
    (start.elapsed().as_secs_f64().max(1e-9), sample.points)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let keep_spill = args.iter().any(|a| a == "--keep-spill");
    let obs = args.iter().any(|a| a == "--obs");
    let (mut n, mut k, mut chunk_size) = if smoke {
        (40_000u64, 400usize, 4_096usize)
    } else {
        (2_000_000u64, 4_000usize, 65_536usize)
    };
    let mut shards_sweep: Vec<usize> = vec![1, 2, 4];
    let mut threads_sweep: Vec<usize> = vec![1, 2];
    let mut i = 0usize;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" | "--keep-spill" | "--obs" => {}
            "--shards" | "--threads" => {
                let flag = args[i].clone();
                i += 1;
                let value = args.get(i).map(String::as_str).unwrap_or("");
                let parsed = if flag == "--shards" {
                    parse_shards_list(value)
                } else {
                    parse_threads_list(value)
                };
                match parsed {
                    Ok(list) if flag == "--shards" => shards_sweep = list,
                    Ok(list) => threads_sweep = list,
                    Err(e) => {
                        eprintln!("{e}");
                        std::process::exit(2);
                    }
                }
            }
            "--n" | "--k" | "--chunk-size" => {
                let flag = args[i].clone();
                i += 1;
                let value = args.get(i).and_then(|v| v.parse::<u64>().ok());
                match value {
                    Some(v) if v > 0 => match flag.as_str() {
                        "--n" => n = v,
                        "--k" => k = v as usize,
                        _ => chunk_size = v as usize,
                    },
                    _ => {
                        eprintln!("{flag} needs a positive integer value");
                        std::process::exit(2);
                    }
                }
            }
            unknown => {
                eprintln!(
                    "unknown argument {unknown}; usage: shard_sweep [--smoke] [--n <points>] \
                     [--k <K>] [--chunk-size <points>] [--shards s1,s2,...] \
                     [--threads t1,t2,...] [--keep-spill] [--obs]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    // S = 1 anchors both the speedup denominator and the unsharded
    // equivalence gate; sweep it even when the flag omits it.
    if !shards_sweep.contains(&1) {
        shards_sweep.insert(0, 1);
    }
    shards_sweep.sort_unstable();
    let mode = if smoke { "smoke" } else { "full" };
    let spill_path = results_dir().join(format!("shard_sweep_{n}.vaschunk"));

    // ---- Phase 1: streaming generation → chunked columnar spill. ----
    eprintln!("[shard_sweep] ingest: generating + spilling {n} points (chunk {chunk_size})");
    let generator = GeolifeGenerator::with_size(n as usize, SEED);
    let mut source = GeolifeSource::new(generator, chunk_size);
    let mut writer = ChunkedWriter::create(&spill_path, source.name(), source.kind(), chunk_size)
        .expect("create spill file");
    let mut buf = Vec::new();
    while source.next_chunk(&mut buf).expect("generator chunk") > 0 {
        writer.write_points(&buf).expect("spill chunk");
    }
    let summary = writer.finish().expect("finish spill");
    assert_eq!(summary.count, n, "spill must hold every generated point");

    // The spill header carries the stream-order bounds; resolving ε once
    // here keeps every run — sharded or not, streamed or in-memory — on the
    // same kernel.
    let epsilon = {
        let reader = ChunkedReader::open(&spill_path).expect("open spill");
        GaussianKernel::for_bounds(&reader.header().bounds).bandwidth()
    };
    eprintln!("[shard_sweep] K = {k}, epsilon = {epsilon:.6}");

    // The materialized dataset feeds the loss estimator (fixed probe set →
    // loss values comparable across shard counts) and, in smoke mode, the
    // in-memory cross-checks.
    let dataset = GeolifeGenerator::with_size(n as usize, SEED).generate();
    let kernel = GaussianKernel::new(epsilon);
    let estimator = LossEstimator::new(&dataset, &kernel, LossConfig::default());

    // ---- Unsharded streaming baseline. ----
    let base_threads = threads_sweep[0];
    eprintln!("[shard_sweep] baseline: unsharded streaming build (threads = {base_threads})");
    let (unsharded_secs, unsharded_points) = {
        let mut reader = ChunkedReader::open(&spill_path).expect("open spill");
        let mut sampler = VasSampler::new(
            VasConfig::new(k)
                .with_epsilon(epsilon)
                .with_threads(base_threads),
        );
        let start = Instant::now();
        let sample = sampler
            .build_from_source(&mut reader)
            .expect("unsharded streaming build");
        (start.elapsed().as_secs_f64().max(1e-9), sample.points)
    };
    let unsharded_loss = estimator.evaluate(&kernel, &unsharded_points);
    let unsharded = SweepRow {
        shards: 0,
        threads: base_threads,
        secs: unsharded_secs,
        tuples_per_sec: n as f64 / unsharded_secs,
        speedup_vs_s1: 1.0,
    };
    eprintln!(
        "[shard_sweep] baseline: {} tuples/s, loss median {}",
        fmt3(unsharded.tuples_per_sec),
        fmt3(unsharded_loss.median)
    );

    // ---- The shards × threads sweep. ----
    let mut sweep: Vec<SweepRow> = Vec::new();
    let mut quality: Vec<QualityRow> = Vec::new();
    let mut references: Vec<(usize, Vec<Point>)> = Vec::new();
    let mut bit_identical = true;
    let mut s1_matches_unsharded = true;
    let mut loss_within_band = true;
    for &shards in &shards_sweep {
        let mut reference: Option<Vec<Point>> = None;
        for &threads in &threads_sweep {
            eprintln!("[shard_sweep] sweep: S = {shards}, threads = {threads}");
            let (secs, points) = run_sharded(
                &spill_path,
                k,
                epsilon,
                shards,
                threads,
                Recorder::detached(),
            );
            let tuples_per_sec = n as f64 / secs;
            let speedup_vs_s1 = sweep
                .iter()
                .find(|r| r.shards == 1 && r.threads == threads)
                .map(|r| tuples_per_sec / r.tuples_per_sec)
                .unwrap_or(1.0);
            sweep.push(SweepRow {
                shards,
                threads,
                secs,
                tuples_per_sec,
                speedup_vs_s1,
            });
            match &reference {
                None => reference = Some(points),
                Some(reference) => {
                    if !bitwise_eq(&points, reference) {
                        eprintln!(
                            "[shard_sweep] FAIL: S = {shards} diverged at threads = {threads}"
                        );
                        bit_identical = false;
                    }
                }
            }
        }
        let reference = reference.expect("at least one thread count swept");

        if shards == 1 && !bitwise_eq(&reference, &unsharded_points) {
            eprintln!("[shard_sweep] FAIL: the S = 1 sharded build differs from the unsharded one");
            s1_matches_unsharded = false;
        }

        // Smoke cross-check: the in-memory sharded build consumes the whole
        // dataset as one chunk, so agreement here also pins chunk-size
        // independence of the streamed path.
        let streaming_matches_in_memory = if smoke {
            let mut sampler = ShardedSampler::new(VasConfig::new(k).with_epsilon(epsilon), shards);
            let in_memory = sampler.build_sharded(&dataset);
            let identical = bitwise_eq(&reference, &in_memory.points);
            if !identical {
                eprintln!(
                    "[shard_sweep] FAIL: S = {shards} streamed build differs from build_sharded"
                );
                bit_identical = false;
            }
            Some(identical)
        } else {
            None
        };

        let loss = estimator.evaluate(&kernel, &reference);
        let denom = unsharded_loss.median.max(1e-300);
        let ratio = loss.median / denom;
        // NaN must trip the gate too, hence the explicit is_nan check.
        if ratio.is_nan() || ratio > LOSS_BAND_MAX {
            eprintln!(
                "[shard_sweep] FAIL: S = {shards} loss ratio {ratio:.3} exceeds {LOSS_BAND_MAX}"
            );
            loss_within_band = false;
        }
        quality.push(QualityRow {
            shards,
            loss_median: loss.median,
            loss_ratio_vs_unsharded: ratio,
            streaming_matches_in_memory,
        });
        references.push((shards, reference));
    }

    // ---- Observability pass (`--obs`): fully instrumented sharded build
    // at the largest shard count, asserted bit-identical, with a validated
    // causal trace: one build root fanning out to ≥ S worker spans. ----
    let obs_section = if obs {
        let shards = *shards_sweep.last().expect("non-empty shard sweep");
        let obs_threads = *threads_sweep.last().expect("non-empty thread sweep");
        eprintln!("[shard_sweep] obs: instrumented pass (S = {shards}, threads = {obs_threads})");
        let bundle = ObsBundle::new();
        let (obs_secs, obs_points) = run_sharded(
            &spill_path,
            k,
            epsilon,
            shards,
            obs_threads,
            bundle.recorder.clone(),
        );
        let reference = &references
            .iter()
            .find(|(s, _)| *s == shards)
            .expect("reference recorded for every swept shard count")
            .1;
        if !bitwise_eq(&obs_points, reference) {
            eprintln!("[shard_sweep] FAIL: the instrumented pass diverged from the reference");
            std::process::exit(1);
        }
        let trace_path = results_dir().join("trace_shard.json");
        let trace_json = bundle
            .write_trace(&trace_path)
            .expect("write trace artifact");
        match validate_build_trace(&trace_json) {
            Ok(check) if check.worker_spans >= shards => eprintln!(
                "[shard_sweep] obs: trace valid ({} spans, {} worker spans) at {}",
                check.spans,
                check.worker_spans,
                trace_path.display()
            ),
            Ok(check) => {
                eprintln!(
                    "[shard_sweep] FAIL: expected >= {shards} worker spans, trace has {}",
                    check.worker_spans
                );
                std::process::exit(1);
            }
            Err(reason) => {
                eprintln!("[shard_sweep] FAIL: invalid build trace: {reason}");
                std::process::exit(1);
            }
        }
        let mut section = bundle.section_value();
        if let Value::Object(fields) = &mut section {
            fields.push(("instrumented_secs".to_string(), Value::Number(obs_secs)));
            fields.push(("bit_identical".to_string(), Value::Bool(true)));
            fields.push((
                "trace".to_string(),
                Value::String(display_path(&trace_path)),
            ));
        }
        Some(section)
    } else {
        None
    };

    if !keep_spill {
        std::fs::remove_file(&spill_path).ok();
    } else {
        eprintln!("[shard_sweep] spill kept at {}", spill_path.display());
    }

    // ---- Report. ----
    let gates = Gates {
        bit_identical,
        s1_matches_unsharded,
        loss_within_band,
        all_passed: bit_identical && s1_matches_unsharded && loss_within_band,
    };
    let mut table = ReportTable::new(
        format!("Sharded sampling sweep ({mode}: n = {n}, K = {k}, chunk = {chunk_size})"),
        &[
            "shards",
            "threads",
            "time (s)",
            "tuples/s",
            "speedup vs S=1",
        ],
    );
    table.push_row(vec![
        "unsharded".to_string(),
        unsharded.threads.to_string(),
        fmt3(unsharded.secs),
        fmt3(unsharded.tuples_per_sec),
        "-".to_string(),
    ]);
    for row in &sweep {
        table.push_row(vec![
            row.shards.to_string(),
            row.threads.to_string(),
            fmt3(row.secs),
            fmt3(row.tuples_per_sec),
            format!("{:.2}x", row.speedup_vs_s1),
        ]);
    }
    let mut quality_table = ReportTable::new(
        format!("Shard-count quality cost (loss band <= {LOSS_BAND_MAX})"),
        &[
            "shards",
            "loss median",
            "ratio vs unsharded",
            "in-memory ==",
        ],
    );
    quality_table.push_row(vec![
        "unsharded".to_string(),
        fmt3(unsharded_loss.median),
        "1.000".to_string(),
        "-".to_string(),
    ]);
    for row in &quality {
        quality_table.push_row(vec![
            row.shards.to_string(),
            fmt3(row.loss_median),
            fmt3(row.loss_ratio_vs_unsharded),
            match row.streaming_matches_in_memory {
                Some(true) => "yes".to_string(),
                Some(false) => "NO".to_string(),
                None => "-".to_string(),
            },
        ]);
    }
    emit("shard_sweep", &[table, quality_table]);

    let report = ShardReport {
        bench: "shard_sweep".to_string(),
        mode: mode.to_string(),
        n,
        k,
        chunk_size,
        seed: SEED,
        epsilon,
        shards: shards_sweep.clone(),
        threads: threads_sweep.clone(),
        loss_band_max: LOSS_BAND_MAX,
        unsharded,
        unsharded_loss_median: unsharded_loss.median,
        sweep,
        quality,
        gates: gates.clone(),
    };
    let path = results_dir().join("BENCH_shard.json");
    let json = serde_json::to_string_pretty(&report).expect("serialize shard report");
    // Graft the optional `--obs` section so the artifact schema only grows
    // when the instrumented pass actually ran.
    let json = match obs_section {
        Some(section) => {
            let mut root: Value = serde_json::from_str(&json).expect("reparse shard report");
            if let Value::Object(fields) = &mut root {
                fields.push(("obs".to_string(), section));
            }
            serde_json::to_string_pretty(&root).expect("serialize shard report with obs")
        }
        None => json,
    };
    std::fs::write(&path, json).expect("write BENCH_shard.json");
    eprintln!("[machine-readable report written to {}]", path.display());

    if !gates.all_passed {
        eprintln!("[shard_sweep] FAIL: gates = {gates:?}");
        std::process::exit(1);
    }
    eprintln!(
        "[shard_sweep] all gates passed: deterministic across threads, S = 1 == unsharded, \
         loss within band"
    );
}
