//! Figure 9 — processing time vs sample quality.
//!
//! The paper runs the Interchange algorithm on the Geolife dataset with
//! sample sizes 100K and 1M and plots the optimization objective against
//! processing time: quality improves quickly at first and then levels off,
//! so useful samples are available long before full convergence.
//!
//! This harness records the same trace using the sampler's progress hooks,
//! at sizes scaled to the harness dataset. Several passes over the data are
//! made so the flattening of the curve is visible.

use bench::{emit, fmt3, fmt_secs, geolife, ReportTable};
use std::sync::{Arc, Mutex};
use vas_core::{ProgressEvent, VasConfig, VasSampler};

fn trace_for(k: usize, passes: usize, data: &vas_data::Dataset) -> Vec<ProgressEvent> {
    let events = Arc::new(Mutex::new(Vec::new()));
    let sink = events.clone();
    let mut sampler = VasSampler::from_dataset(
        data,
        VasConfig::new(k)
            .with_passes(passes)
            .with_progress_every((data.len() / 40).max(1) as u64),
    );
    sampler.set_progress_sink(Box::new(move |e| sink.lock().unwrap().push(e)));
    let _ = sampler.build(data);
    let trace = events.lock().unwrap().clone();
    trace
}

fn main() {
    // Scaled from the paper's 24.4M points / {100K, 1M} samples.
    let data = geolife(400_000);
    let configs = [(10_000usize, 3usize), (50_000, 2)];

    let mut tables = Vec::new();
    for (k, passes) in configs {
        let events = trace_for(k, passes, &data);
        let mut table = ReportTable::new(
            format!("Figure 9 — objective vs processing time (sample size {k}, {passes} passes)"),
            &[
                "tuples processed",
                "elapsed (s)",
                "objective",
                "replacements",
            ],
        );
        // Thin the trace to ~20 rows for readability; the JSON keeps them all.
        let step = (events.len() / 20).max(1);
        for e in events.iter().step_by(step) {
            table.push_row(vec![
                e.tuples_processed.to_string(),
                fmt_secs(e.elapsed),
                fmt3(e.objective),
                e.replacements.to_string(),
            ]);
        }
        if let (Some(first), Some(last)) = (events.first(), events.last()) {
            eprintln!(
                "[fig9] K = {k}: objective {} -> {} over {:?}",
                fmt3(first.objective),
                fmt3(last.objective),
                last.elapsed
            );
        }
        tables.push(table);
    }

    emit("fig9_convergence", &tables);
}
