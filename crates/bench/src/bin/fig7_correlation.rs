//! Figure 7 — correlation between the loss function and user success.
//!
//! For every (method × sample size) cell of the regression study, this
//! harness computes the paper's `log-loss-ratio` quality metric and the
//! simulated user's regression success ratio, then reports Spearman's rank
//! correlation between the two series. The paper reports ρ ≈ −0.85
//! (p ≈ 5.2e-4): lower loss ⇒ higher user success.

use bench::{emit, fmt3, geolife, ReportTable};
use vas_core::{GaussianKernel, VasConfig, VasSampler};
use vas_eval::{spearman, LossConfig, LossEstimator};
use vas_sampling::{Sampler, StratifiedSampler, UniformSampler};
use vas_user_sim::RegressionTask;

fn main() {
    let data = geolife(300_000);
    let kernel = GaussianKernel::for_dataset(&data);
    let estimator = LossEstimator::new(&data, &kernel, LossConfig::default());
    let task = RegressionTask::generate(&data, 18, 42);

    let sizes = [100usize, 1_000, 10_000, 50_000];
    let mut table = ReportTable::new(
        "Figure 7 — log-loss-ratio vs regression success per (method, sample size)",
        &["method", "sample size", "log-loss-ratio", "user success"],
    );

    let mut losses = Vec::new();
    let mut successes = Vec::new();
    for &k in &sizes {
        let samples = vec![
            UniformSampler::new(k, 1).sample_dataset(&data),
            StratifiedSampler::square(k, data.bounds(), 10, 1).sample_dataset(&data),
            VasSampler::from_dataset(&data, VasConfig::new(k)).sample_dataset(&data),
        ];
        for s in &samples {
            let loss = estimator.log_loss_ratio(&kernel, &s.points);
            let success = task.success_ratio(&s.points);
            losses.push(loss);
            successes.push(success);
            table.push_row(vec![
                s.method.clone(),
                k.to_string(),
                fmt3(loss),
                fmt3(success),
            ]);
        }
        eprintln!("[fig7] finished K = {k}");
    }

    let rho = spearman(&losses, &successes);
    let mut summary = ReportTable::new("Figure 7 — summary", &["statistic", "paper", "measured"]);
    summary.push_row(vec![
        "Spearman rank correlation (loss vs success)".into(),
        "-0.85".into(),
        fmt3(rho),
    ]);
    summary.push_row(vec![
        "direction".into(),
        "negative (lower loss => higher success)".into(),
        if rho < 0.0 {
            "negative"
        } else {
            "NON-negative"
        }
        .into(),
    ]);

    emit("fig7_correlation", &[table, summary]);
}
