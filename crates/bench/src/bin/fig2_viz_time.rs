//! Figure 2 / Figure 4 — "Existing systems are slow": visualization time as a
//! function of the number of rendered tuples.
//!
//! The paper measures Tableau and MathGL on the Geolife and SPLOM datasets at
//! 1M–500M tuples and finds (a) latency grows linearly with tuple count and
//! (b) even 1M tuples already exceeds the 2-second interactive limit on the
//! heavier stack. We cannot run Tableau, so this harness does two things:
//!
//! 1. measures the **actual** render time of this reproduction's rasterizer
//!    over a sweep of tuple counts (demonstrating the linear growth on real
//!    code), and
//! 2. evaluates the calibrated Tableau-like / MathGL-like latency models at
//!    the paper's tuple counts so the reported numbers can be compared
//!    against Figure 2/4 directly.

use bench::{emit, fmt_secs, geolife, splom, ReportTable};
use std::time::{Duration, Instant};
use vas_viz::{Color, LatencyModel, PlotStyle, ScatterRenderer, Viewport};

fn main() {
    let renderer = ScatterRenderer::new(PlotStyle::map_plot());

    // --- Part 1: measured rasterizer time vs tuple count, per dataset.
    let mut measured = ReportTable::new(
        "Figure 2/4 (measured) — rasterizer visualization time vs rendered tuples",
        &["dataset", "tuples", "viz time (s)"],
    );
    let sizes = [10_000usize, 100_000, 1_000_000, 5_000_000];
    for (label, dataset) in [
        ("geolife-sim", geolife(*sizes.last().unwrap())),
        ("splom", splom(*sizes.last().unwrap())),
    ] {
        let viewport = Viewport::fit(&dataset.points, 1_000, 1_000);
        for &n in &sizes {
            let slice = &dataset.points[..n.min(dataset.len())];
            let start = Instant::now();
            let canvas = renderer.render_points(slice, &viewport);
            let elapsed = start.elapsed();
            std::hint::black_box(canvas.ink(Color::WHITE));
            measured.push_row(vec![label.into(), n.to_string(), fmt_secs(elapsed)]);
        }
    }

    // --- Part 2: model-extrapolated times at the paper's scales.
    let mut modeled = ReportTable::new(
        "Figure 2/4 (modeled) — Tableau-like and MathGL-like latency at paper scales",
        &[
            "tuples",
            "tableau-like (s)",
            "mathgl-like (s)",
            "interactive (<2s)?",
        ],
    );
    let tableau = LatencyModel::tableau_like();
    let mathgl = LatencyModel::mathgl_like();
    for n in [
        1_000_000usize,
        5_000_000,
        10_000_000,
        50_000_000,
        500_000_000,
    ] {
        let t = tableau.time_for(n);
        let m = mathgl.time_for(n);
        modeled.push_row(vec![
            n.to_string(),
            fmt_secs(t),
            fmt_secs(m),
            if m < Duration::from_secs(2) {
                "yes"
            } else {
                "no"
            }
            .into(),
        ]);
    }

    // --- Part 3: what the same models say a VAS-sized sample costs.
    let mut sampled = ReportTable::new(
        "Figure 2/4 (implication) — time to visualize a VAS-sized sample instead",
        &["sample size", "tableau-like (s)", "mathgl-like (s)"],
    );
    for k in [1_000usize, 10_000, 100_000] {
        sampled.push_row(vec![
            k.to_string(),
            fmt_secs(tableau.time_for(k)),
            fmt_secs(mathgl.time_for(k)),
        ]);
    }

    emit("fig2_viz_time", &[measured, modeled, sampled]);
}
