//! Extension — robustness of the Table I rankings to participant noise.
//!
//! The paper's user study aggregates 40 Mechanical-Turk workers and filters
//! out those failing trapdoor questions. This harness layers that protocol
//! (spammers answering at random, occasional slips, trapdoor filtering — see
//! `vas_user_sim::workers`) on top of the ideal perception-model answers for
//! the regression task, and reports the method scores with and without noise.
//! The point is not the absolute numbers but that the *ranking* of methods —
//! the thing Table I is used to argue — survives realistic participant noise.

use bench::{emit, fmt3, geolife, ReportTable};
use vas_core::{VasConfig, VasSampler};
use vas_sampling::{Sampler, StratifiedSampler, UniformSampler};
use vas_user_sim::{RegressionTask, WorkerPopulation};

fn main() {
    let data = geolife(300_000);
    let task = RegressionTask::generate(&data, 18, 42);
    let population = WorkerPopulation::paper_default(2_024);

    let mut table = ReportTable::new(
        "Extension — regression success: ideal perception model vs 40-worker noisy population",
        &[
            "sample size",
            "method",
            "ideal success",
            "noisy population success",
            "workers retained",
        ],
    );

    for &k in &[1_000usize, 10_000] {
        let samples = vec![
            UniformSampler::new(k, 1).sample_dataset(&data),
            StratifiedSampler::square(k, data.bounds(), 10, 1).sample_dataset(&data),
            VasSampler::from_dataset(&data, VasConfig::new(k)).sample_dataset(&data),
        ];
        for s in &samples {
            let ideal_answers: Vec<bool> = task
                .questions()
                .iter()
                .map(|q| task.answer(q, &s.points))
                .collect();
            let ideal =
                ideal_answers.iter().filter(|&&a| a).count() as f64 / ideal_answers.len() as f64;
            let noisy = population.run(&ideal_answers);
            table.push_row(vec![
                k.to_string(),
                s.method.clone(),
                fmt3(ideal),
                fmt3(noisy.success_ratio),
                noisy.retained_workers.to_string(),
            ]);
        }
        eprintln!("[noise_robustness] finished K = {k}");
    }

    emit("table1_noise_robustness", &[table]);
}
