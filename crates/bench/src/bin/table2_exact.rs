//! Table II — exact vs approximate VAS on tiny instances.
//!
//! The paper converts VAS to a MIP and solves it with GLPK for N ∈ {50, 60,
//! 70, 80} and K = 10, comparing runtime, the optimization objective and the
//! Monte-Carlo loss against the approximate (Interchange) solution and a
//! random sample. The point of the table is that exact solutions take minutes
//! to an hour while the approximation is instantaneous and nearly as good.
//! Here the exact optimum comes from the branch-and-bound solver of
//! `vas-exact` (same optimum, different machinery — see DESIGN.md).

use bench::{emit, fmt3, fmt_secs, geolife, ReportTable};
use std::time::Instant;
use vas_core::{objective, GaussianKernel, InterchangeStrategy, Kernel, VasConfig, VasSampler};
use vas_data::Dataset;
use vas_eval::{LossConfig, LossEstimator};
use vas_exact::ExactSolver;
use vas_sampling::{Sampler, UniformSampler};

fn main() {
    let k = 10usize;
    let base = geolife(100);

    let mut table = ReportTable::new(
        "Table II — loss and runtime comparison (K = 10)",
        &["N", "metric", "exact (B&B)", "approx. VAS", "random"],
    );

    for n in [50usize, 60, 70, 80] {
        let dataset = Dataset::from_points(format!("geolife-{n}"), base.points[..n].to_vec());
        let kernel = GaussianKernel::for_dataset(&dataset);
        let estimator = LossEstimator::new(
            &dataset,
            &kernel,
            LossConfig {
                probes: 1_000,
                ..LossConfig::default()
            },
        );

        // Approximate VAS (Interchange, multi-pass until stable).
        let t0 = Instant::now();
        let approx = VasSampler::from_dataset(
            &dataset,
            VasConfig::new(k)
                .with_strategy(InterchangeStrategy::ExpandShrink)
                .with_epsilon(kernel.bandwidth())
                .with_passes(5),
        )
        .build(&dataset);
        let approx_time = t0.elapsed();
        let approx_obj = objective(&kernel, &approx.points);

        // Exact optimum via branch-and-bound, seeded with the approximate
        // solution as the incumbent (never changes the optimum).
        let incumbent: Vec<usize> = approx
            .points
            .iter()
            .map(|p| {
                dataset
                    .points
                    .iter()
                    .position(|q| q == p)
                    .expect("sample point in data")
            })
            .collect();
        let t0 = Instant::now();
        let exact = ExactSolver::new().solve(&kernel, &dataset.points, k, Some(&incumbent));
        let exact_time = t0.elapsed();

        // Random sample.
        let t0 = Instant::now();
        let random = UniformSampler::new(k, 7).sample_dataset(&dataset);
        let random_time = t0.elapsed();
        let random_obj = objective(&kernel, &random.points);

        let loss = |points: &[vas_data::Point]| estimator.evaluate(&kernel, points).median;

        table.push_row(vec![
            n.to_string(),
            "runtime (s)".into(),
            fmt_secs(exact_time),
            fmt_secs(approx_time),
            fmt_secs(random_time),
        ]);
        table.push_row(vec![
            n.to_string(),
            "opt. objective".into(),
            fmt3(exact.objective),
            fmt3(approx_obj),
            fmt3(random_obj),
        ]);
        table.push_row(vec![
            n.to_string(),
            "Loss(S) (median)".into(),
            fmt3(loss(&exact.points)),
            fmt3(loss(&approx.points)),
            fmt3(loss(&random.points)),
        ]);
        eprintln!(
            "[table2] N = {n}: exact explored {} nodes in {:?}",
            exact.nodes_explored, exact_time
        );
    }

    emit("table2_exact", &[table]);
}
