//! Table I — simulated user study: regression, density estimation and
//! clustering success per sampling method and sample size.
//!
//! The paper runs 40 Mechanical-Turk workers per task; this harness runs the
//! perception-model users of `vas-user-sim` over the same experimental grid:
//!
//! * Table I(a) regression: uniform / stratified / VAS, 4 sample sizes.
//! * Table I(b) density estimation: + VAS with density embedding.
//! * Table I(c) clustering: 4 Gaussian datasets (1–2 clusters each),
//!   4 methods, 4 sample sizes.
//!
//! Sizes are scaled to the harness dataset (300K points instead of 24.4M),
//! keeping the qualitative sweep from "tiny sample" to "sample big enough
//! that every method looks fine".
//!
//! Usage: `table1_user_study [regression|density|clustering|all]`

use bench::{emit, fmt3, geolife, ReportTable};
use vas_core::{density::with_embedded_density, VasConfig, VasSampler};
use vas_data::{Dataset, GaussianMixtureGenerator};
use vas_sampling::{Sample, Sampler, StratifiedSampler, UniformSampler};
use vas_user_sim::{ClusteringTask, DensityTask, RegressionTask};

const SIZES: [usize; 4] = [100, 1_000, 10_000, 50_000];

fn build_samples(data: &Dataset, k: usize, with_density: bool) -> Vec<Sample> {
    let uniform = UniformSampler::new(k, 1).sample_dataset(data);
    let stratified = StratifiedSampler::square(k, data.bounds(), 10, 1).sample_dataset(data);
    let vas = VasSampler::from_dataset(data, VasConfig::new(k)).sample_dataset(data);
    let mut out = vec![uniform, stratified, vas.clone()];
    if with_density {
        let mut vd = with_embedded_density(vas, data);
        vd.method = "vas+density".into();
        out.push(vd);
    }
    out
}

fn regression(data: &Dataset) -> ReportTable {
    let task = RegressionTask::generate(data, 18, 42);
    let mut table = ReportTable::new(
        "Table I(a) — regression task success ratio",
        &["sample size", "uniform", "stratified", "vas"],
    );
    let mut sums = [0.0; 3];
    for &k in &SIZES {
        let samples = build_samples(data, k, false);
        let scores: Vec<f64> = samples
            .iter()
            .map(|s| task.success_ratio(&s.points))
            .collect();
        for (i, v) in scores.iter().enumerate() {
            sums[i] += v;
        }
        table.push_row(
            std::iter::once(k.to_string())
                .chain(scores.iter().map(|v| fmt3(*v)))
                .collect(),
        );
        eprintln!("[regression] finished K = {k}");
    }
    table.push_row(
        std::iter::once("average".to_string())
            .chain(sums.iter().map(|v| fmt3(v / SIZES.len() as f64)))
            .collect(),
    );
    table
}

fn density(data: &Dataset) -> ReportTable {
    let task = DensityTask::generate(data, 10, 43);
    let mut table = ReportTable::new(
        "Table I(b) — density-estimation task success ratio",
        &["sample size", "uniform", "stratified", "vas", "vas+density"],
    );
    let mut sums = [0.0; 4];
    for &k in &SIZES {
        let samples = build_samples(data, k, true);
        let scores: Vec<f64> = samples.iter().map(|s| task.success_ratio(s)).collect();
        for (i, v) in scores.iter().enumerate() {
            sums[i] += v;
        }
        table.push_row(
            std::iter::once(k.to_string())
                .chain(scores.iter().map(|v| fmt3(*v)))
                .collect(),
        );
        eprintln!("[density] finished K = {k}");
    }
    table.push_row(
        std::iter::once("average".to_string())
            .chain(sums.iter().map(|v| fmt3(v / SIZES.len() as f64)))
            .collect(),
    );
    table
}

fn clustering() -> ReportTable {
    // Four synthetic datasets: two with a single Gaussian, two with a pair,
    // as in the paper.
    let mixtures: Vec<(Dataset, usize)> = (0..4)
        .map(|variant| {
            let gen = GaussianMixtureGenerator::paper_clustering_dataset(variant, 40_000, 13);
            (gen.generate(), gen.n_clusters())
        })
        .collect();

    let mut table = ReportTable::new(
        "Table I(c) — clustering task success ratio (averaged over 4 datasets)",
        &["sample size", "uniform", "stratified", "vas", "vas+density"],
    );
    let mut sums = [0.0; 4];
    for &k in &SIZES {
        let mut scores = [0.0; 4];
        for (dataset, truth) in &mixtures {
            let task = ClusteringTask::new(dataset, *truth);
            let samples = build_samples(dataset, k, true);
            for (i, s) in samples.iter().enumerate() {
                scores[i] += task.success_ratio(s) / mixtures.len() as f64;
            }
        }
        for (i, v) in scores.iter().enumerate() {
            sums[i] += v;
        }
        table.push_row(
            std::iter::once(k.to_string())
                .chain(scores.iter().map(|v| fmt3(*v)))
                .collect(),
        );
        eprintln!("[clustering] finished K = {k}");
    }
    table.push_row(
        std::iter::once("average".to_string())
            .chain(sums.iter().map(|v| fmt3(v / SIZES.len() as f64)))
            .collect(),
    );
    table
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let data = geolife(300_000);
    let mut tables = Vec::new();
    if which == "regression" || which == "all" {
        tables.push(regression(&data));
    }
    if which == "density" || which == "all" {
        tables.push(density(&data));
    }
    if which == "clustering" || which == "all" {
        tables.push(clustering());
    }
    assert!(
        !tables.is_empty(),
        "usage: table1_user_study [regression|density|clustering|all]"
    );
    emit("table1_user_study", &tables);
}
