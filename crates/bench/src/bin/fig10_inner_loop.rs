//! Inner-loop throughput of the Interchange candidate (replacement-test)
//! path: the optimized loop (tournament-tree Shrink + zero-allocation
//! spatial queries) against the retained pre-optimization legacy loop,
//! swept across every `LocalityIndex` backend, measured in the same run on
//! the same stream.
//!
//! The figure of merit is **throughput on rejected-candidate tuples** — the
//! overwhelmingly common case once the sample has converged, and the case
//! the max-responsibility structure turns from `O(K)` into near-`O(1)`.
//! The accepted-replacement path is tracked separately, with a micro-measured
//! cost split (the two radius queries vs the index remove/insert churn) per
//! backend.
//!
//! Output: a human-readable table on stdout plus machine-readable
//! `results/BENCH_interchange.json`, so the perf trajectory of this hot path
//! can be tracked across commits. CI runs `--smoke` (tiny N) on every push
//! with `--require-hashgrid-at-least 0.9`, which fails the job if the
//! spatial-hash backend ever regresses below the R-tree baseline.
//!
//! With `--threads t1,t2,...` the run additionally sweeps the **speculative
//! kernel pre-evaluation** front over the optimized ES+Loc/hashgrid loop:
//! the candidate phase is driven through `VasSampler::observe_chunk` at each
//! thread count, every run's sample is asserted bit-identical to the
//! `threads = 1` run (non-zero exit on divergence), and the timings land in
//! a `fig10_inner_loop` section of `results/BENCH_parallel.json`.
//!
//! Every run (unless `--baseline`) also measures the **kernel-evaluation
//! phase**: the optimized ES+Loc/hashgrid candidate loop with the batched
//! SoA kernel path (batch-gather + `eval_dist2_batch` lane sweeps, the
//! default) against the scalar point-at-a-time baseline
//! (`VasConfig::with_scalar_kernel_path`). The two samples are asserted
//! bit-identical (non-zero exit on divergence) and the comparison — scalar
//! vs batched throughput, lanes per rejected tuple, and the
//! `bit_identical` flag CI gates on — is written to
//! `results/BENCH_kernel.json`.
//!
//! Usage:
//! ```text
//! fig10_inner_loop [--smoke] [--baseline] [--backend rtree|kdtree|hashgrid]
//!                  [--require-hashgrid-at-least <ratio>] [--threads t1,t2,...]
//! ```
//! * `--smoke`    — tiny dataset (20K points, K = 500) for CI.
//! * `--baseline` — measure only the legacy loop (for A/B-ing across
//!   checkouts; the default measures both in one run).
//! * `--backend`  — restrict the sweep to one backend (default: all three).
//! * `--require-hashgrid-at-least` — exit non-zero unless
//!   `hashgrid rejected/s ÷ rtree rejected/s` (optimized loop) reaches the
//!   given ratio; both backends must be part of the sweep.
//! * `--threads`  — comma-separated thread counts for the speculative
//!   pre-evaluation sweep.

use bench::{emit, fmt3, merge_parallel_section, parse_threads_list, results_dir, ReportTable};
use serde::Serialize;
use std::time::Instant;
use vas_core::{GaussianKernel, InterchangeStrategy, Kernel, VasConfig, VasSampler};
use vas_data::{Dataset, GaussianMixtureGenerator, Point};
use vas_sampling::Sampler;
use vas_spatial::{AnyLocalityIndex, LocalityBackend, LocalityIndex};

/// One measured (strategy × backend × inner-loop) cell.
#[derive(Debug, Clone, Serialize)]
struct VariantResult {
    /// Strategy label ("ES" or "ES+Loc").
    strategy: String,
    /// Locality backend label ("rtree", "kdtree", "hashgrid"; "n/a" for the
    /// backend-independent plain-ES strategy).
    backend: String,
    /// "legacy" or "optimized".
    inner_loop: String,
    /// Wall-clock seconds spent filling the first K slots.
    fill_secs: f64,
    /// Wall-clock seconds spent on the candidate (replacement-test) phase.
    candidate_secs: f64,
    /// Of `candidate_secs`, the share spent on tuples that ended rejected.
    rejected_secs: f64,
    /// Of `candidate_secs`, the share spent on tuples that ended accepted.
    accepted_secs: f64,
    /// Candidate tuples streamed after the fill.
    candidate_tuples: u64,
    /// Valid replacements performed (accepted tuples).
    accepted: u64,
    /// Rejected tuples (`candidate_tuples - accepted`).
    rejected: u64,
    /// Candidate tuples per second (whole candidate phase).
    tuples_per_sec: f64,
    /// Rejected tuples per second **while processing rejected tuples** — the
    /// headline metric: the per-tuple cost of the overwhelmingly common case,
    /// with accepted-tuple (replacement) work accounted separately.
    rejected_per_sec: f64,
    /// Accepted tuples per second while processing accepted tuples.
    accepted_per_sec: f64,
}

/// Speed-up of the optimized loop over the legacy loop for one
/// (strategy, backend) pair.
#[derive(Debug, Clone, Serialize)]
struct Speedup {
    strategy: String,
    backend: String,
    /// `optimized.rejected_per_sec / legacy.rejected_per_sec`.
    rejected_throughput_ratio: f64,
    /// `optimized.tuples_per_sec / legacy.tuples_per_sec`.
    tuple_throughput_ratio: f64,
}

/// Micro-measured cost split of one accepted replacement on one backend:
/// the two neighbourhood queries (candidate + removed element) vs the index
/// churn (remove + insert), averaged over a deterministic probe set drawn
/// from the converged sample.
#[derive(Debug, Clone, Serialize)]
struct AcceptCostSplit {
    backend: String,
    /// Average nanoseconds for the two radius queries of one replacement.
    query_pair_ns: f64,
    /// Average nanoseconds for one remove + insert cycle.
    churn_ns: f64,
    /// Probe points measured.
    probes: usize,
}

/// Cross-backend standing of the optimized ES+Loc loop.
#[derive(Debug, Clone, Serialize)]
struct BackendComparison {
    backend: String,
    rejected_per_sec: f64,
    /// `rejected_per_sec / rtree.rejected_per_sec` (1.0 for rtree itself);
    /// 0.0 when the sweep excluded the rtree baseline.
    vs_rtree_rejected_ratio: f64,
}

/// The whole report, serialized to `results/BENCH_interchange.json`.
#[derive(Debug, Clone, Serialize)]
struct BenchReport {
    bench: String,
    mode: String,
    dataset: DatasetInfo,
    variants: Vec<VariantResult>,
    speedups: Vec<Speedup>,
    accept_cost: Vec<AcceptCostSplit>,
    backend_comparison: Vec<BackendComparison>,
}

#[derive(Debug, Clone, Serialize)]
struct DatasetInfo {
    kind: String,
    n: usize,
    k: usize,
    epsilon: f64,
    locality_threshold: f64,
}

/// Streams the whole dataset through one sampler configuration, timing every
/// observation so rejected-tuple cost is separated from accepted-tuple cost.
/// Returns the measurement plus the converged sample (for the accept-cost
/// micro-bench).
fn measure(
    data: &Dataset,
    k: usize,
    strategy: InterchangeStrategy,
    backend: LocalityBackend,
    epsilon: f64,
    legacy: bool,
) -> (VariantResult, Vec<Point>) {
    let mut sampler = VasSampler::from_dataset(
        data,
        VasConfig::new(k)
            .with_strategy(strategy)
            .with_epsilon(epsilon)
            .with_locality_backend(backend)
            .with_legacy_inner_loop(legacy),
    );
    let fill_start = Instant::now();
    for p in data.points.iter().take(k) {
        sampler.observe(*p);
    }
    let fill_secs = fill_start.elapsed().as_secs_f64();

    // The ~2×Instant overhead per tuple is identical for both inner loops
    // and all backends.
    let candidates = &data.points[k..];
    let mut rejected_secs = 0.0f64;
    let mut accepted_secs = 0.0f64;
    let mut replacements_before = sampler.replacements();
    let start = Instant::now();
    for p in candidates {
        let t0 = Instant::now();
        sampler.observe(*p);
        let dt = t0.elapsed().as_secs_f64();
        let replacements_now = sampler.replacements();
        if replacements_now == replacements_before {
            rejected_secs += dt;
        } else {
            accepted_secs += dt;
            replacements_before = replacements_now;
        }
    }
    let candidate_secs = start.elapsed().as_secs_f64().max(1e-9);
    let accepted = sampler.replacements();
    let candidate_tuples = candidates.len() as u64;
    let rejected = candidate_tuples - accepted;
    let backend_label = if strategy == InterchangeStrategy::ExpandShrinkLocality {
        backend.label().to_string()
    } else {
        "n/a".to_string()
    };
    let result = VariantResult {
        strategy: strategy.label().to_string(),
        backend: backend_label,
        inner_loop: if legacy { "legacy" } else { "optimized" }.to_string(),
        fill_secs,
        candidate_secs,
        rejected_secs,
        accepted_secs,
        candidate_tuples,
        accepted,
        rejected,
        tuples_per_sec: candidate_tuples as f64 / candidate_secs,
        rejected_per_sec: rejected as f64 / rejected_secs.max(1e-9),
        accepted_per_sec: accepted as f64 / accepted_secs.max(1e-9),
    };
    (result, sampler.current_sample().to_vec())
}

/// One thread count of the speculative pre-evaluation sweep.
#[derive(Debug, Clone, Serialize)]
struct PreEvalSweepEntry {
    threads: usize,
    /// Wall-clock seconds of the candidate phase (fill excluded).
    candidate_secs: f64,
    /// Candidate tuples per second — the figure the acceptance gate reads.
    tuples_per_sec: f64,
    /// Throughput ratio against the `threads = 1` run of this sweep.
    speedup_vs_1: f64,
    accepted: u64,
}

/// The `fig10_inner_loop` section of `BENCH_parallel.json`.
#[derive(Debug, Clone, Serialize)]
struct PreEvalSection {
    n: usize,
    k: usize,
    backend: String,
    chunk_size: usize,
    pre_eval: Vec<PreEvalSweepEntry>,
    bit_identical: bool,
}

/// Chunk size the parallel sweep feeds `observe_chunk` (mirrors the
/// streaming default).
const SWEEP_CHUNK: usize = 8_192;

/// Runs the optimized ES+Loc candidate phase through `observe_chunk` at one
/// thread count, returning the timing and the final sample for the
/// bit-identity gate.
fn measure_pre_eval(
    data: &Dataset,
    k: usize,
    epsilon: f64,
    threads: usize,
) -> (PreEvalSweepEntry, Vec<Point>) {
    let mut sampler = VasSampler::from_dataset(
        data,
        VasConfig::new(k)
            .with_strategy(InterchangeStrategy::ExpandShrinkLocality)
            .with_epsilon(epsilon)
            .with_threads(threads),
    );
    for p in data.points.iter().take(k) {
        sampler.observe(*p);
    }
    let candidates = &data.points[k..];
    let start = Instant::now();
    for chunk in candidates.chunks(SWEEP_CHUNK) {
        sampler.observe_chunk(chunk);
    }
    let candidate_secs = start.elapsed().as_secs_f64().max(1e-9);
    let entry = PreEvalSweepEntry {
        threads,
        candidate_secs,
        tuples_per_sec: candidates.len() as f64 / candidate_secs,
        speedup_vs_1: 1.0,
        accepted: sampler.replacements(),
    };
    (entry, sampler.current_sample().to_vec())
}

/// One side of the kernel-evaluation phase comparison: the optimized
/// ES+Loc/hashgrid candidate loop with either the scalar point-at-a-time
/// kernel path or the batched SoA lane path.
#[derive(Debug, Clone, Serialize)]
struct KernelPhaseVariant {
    /// "scalar" or "batched".
    kernel_path: String,
    /// Wall-clock seconds of the candidate phase.
    candidate_secs: f64,
    /// Of `candidate_secs`, the share spent on tuples that ended rejected.
    rejected_secs: f64,
    /// Candidate tuples streamed after the fill.
    candidate_tuples: u64,
    /// Valid replacements performed.
    accepted: u64,
    /// Rejected tuples.
    rejected: u64,
    /// Candidate tuples per second (whole candidate phase).
    tuples_per_sec: f64,
    /// Rejected tuples per second while processing rejected tuples.
    rejected_per_sec: f64,
    /// Kernel-value lanes evaluated through `eval_dist2_batch` (0 on the
    /// scalar path).
    kernel_lanes: u64,
    /// `kernel_lanes / rejected` — the average batch width the lane sweep
    /// amortizes per rejected candidate (0 on the scalar path).
    lanes_per_rejected_tuple: f64,
}

/// The whole report, serialized to `results/BENCH_kernel.json`. CI greps it
/// for `"bit_identical": true`.
#[derive(Debug, Clone, Serialize)]
struct KernelReport {
    bench: String,
    mode: String,
    n: usize,
    k: usize,
    backend: String,
    epsilon: f64,
    scalar: KernelPhaseVariant,
    batched: KernelPhaseVariant,
    /// `batched.rejected_per_sec / scalar.rejected_per_sec`.
    rejected_throughput_ratio: f64,
    /// `batched.tuples_per_sec / scalar.tuples_per_sec`.
    tuple_throughput_ratio: f64,
    /// Whether the scalar and batched runs converged to bitwise-identical
    /// samples.
    bit_identical: bool,
}

/// Streams the dataset through the optimized ES+Loc/hashgrid loop with the
/// chosen kernel path, timing every observation. Returns the measurement
/// plus the converged sample for the bit-identity gate.
fn measure_kernel_phase(
    data: &Dataset,
    k: usize,
    epsilon: f64,
    scalar: bool,
) -> (KernelPhaseVariant, Vec<Point>) {
    let mut sampler = VasSampler::from_dataset(
        data,
        VasConfig::new(k)
            .with_strategy(InterchangeStrategy::ExpandShrinkLocality)
            .with_epsilon(epsilon)
            .with_locality_backend(LocalityBackend::HashGrid)
            .with_scalar_kernel_path(scalar),
    );
    for p in data.points.iter().take(k) {
        sampler.observe(*p);
    }
    let candidates = &data.points[k..];
    let mut rejected_secs = 0.0f64;
    let mut replacements_before = sampler.replacements();
    let start = Instant::now();
    for p in candidates {
        let t0 = Instant::now();
        sampler.observe(*p);
        let dt = t0.elapsed().as_secs_f64();
        let replacements_now = sampler.replacements();
        if replacements_now == replacements_before {
            rejected_secs += dt;
        } else {
            replacements_before = replacements_now;
        }
    }
    let candidate_secs = start.elapsed().as_secs_f64().max(1e-9);
    let accepted = sampler.replacements();
    let candidate_tuples = candidates.len() as u64;
    let rejected = candidate_tuples - accepted;
    let kernel_lanes = sampler.kernel_lanes();
    let variant = KernelPhaseVariant {
        kernel_path: if scalar { "scalar" } else { "batched" }.to_string(),
        candidate_secs,
        rejected_secs,
        candidate_tuples,
        accepted,
        rejected,
        tuples_per_sec: candidate_tuples as f64 / candidate_secs,
        rejected_per_sec: rejected as f64 / rejected_secs.max(1e-9),
        kernel_lanes,
        lanes_per_rejected_tuple: kernel_lanes as f64 / rejected.max(1) as f64,
    };
    (variant, sampler.current_sample().to_vec())
}

/// Bitwise sample equality — the determinism gate both the pre-evaluation
/// sweep and the kernel-phase comparison use.
fn bitwise_eq(a: &[Point], b: &[Point]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(p, q)| {
            p.x.to_bits() == q.x.to_bits()
                && p.y.to_bits() == q.y.to_bits()
                && p.value.to_bits() == q.value.to_bits()
        })
}

/// Micro-measures the accepted-replacement cost split on one backend: builds
/// the index over the converged sample at the cutoff radius, then times the
/// two neighbourhood queries and the remove/insert churn an accept performs.
fn measure_accept_cost(backend: LocalityBackend, sample: &[Point], cutoff: f64) -> AcceptCostSplit {
    let mut index = AnyLocalityIndex::new(backend);
    index.rebuild(
        cutoff,
        &sample.iter().copied().enumerate().collect::<Vec<_>>(),
    );
    // A deterministic probe subset; every probe is a stored entry, so the
    // churn cycle (remove then re-insert the same entry) is always valid.
    let stride = (sample.len() / 512).max(1);
    let probes: Vec<(usize, Point)> = sample.iter().copied().enumerate().step_by(stride).collect();

    let mut sink = 0usize;
    let query_start = Instant::now();
    for (_, p) in &probes {
        // An accept performs two radius queries: the candidate's
        // neighbourhood and the removed element's neighbourhood.
        for _ in 0..2 {
            index.for_each_in_radius_with_dist2(p, cutoff, |_, _, _| sink += 1);
        }
    }
    let query_pair_ns = query_start.elapsed().as_nanos() as f64 / probes.len() as f64;
    std::hint::black_box(sink);

    let churn_start = Instant::now();
    for &(id, ref p) in &probes {
        assert!(index.remove(id, p), "probe entry must be present");
        index.insert(id, *p);
    }
    let churn_ns = churn_start.elapsed().as_nanos() as f64 / probes.len() as f64;

    AcceptCostSplit {
        backend: backend.label().to_string(),
        query_pair_ns,
        churn_ns,
        probes: probes.len(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let baseline_only = args.iter().any(|a| a == "--baseline");
    let mut backends: Vec<LocalityBackend> = Vec::new();
    let mut required_hashgrid_ratio: Option<f64> = None;
    let mut threads_sweep: Vec<usize> = Vec::new();
    let mut i = 0usize;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" | "--baseline" => {}
            "--threads" => {
                i += 1;
                let value = args.get(i).map(String::as_str).unwrap_or("");
                match parse_threads_list(value) {
                    Ok(list) => threads_sweep = list,
                    Err(e) => {
                        eprintln!("{e}");
                        std::process::exit(2);
                    }
                }
            }
            "--backend" => {
                i += 1;
                let value = args.get(i).unwrap_or_else(|| {
                    eprintln!("--backend needs a value (rtree|kdtree|hashgrid)");
                    std::process::exit(2);
                });
                match value.parse::<LocalityBackend>() {
                    Ok(b) => {
                        if !backends.contains(&b) {
                            backends.push(b);
                        }
                    }
                    Err(e) => {
                        eprintln!("{e}");
                        std::process::exit(2);
                    }
                }
            }
            "--require-hashgrid-at-least" => {
                i += 1;
                let value = args.get(i).and_then(|v| v.parse::<f64>().ok());
                match value {
                    Some(r) if r.is_finite() && r > 0.0 => required_hashgrid_ratio = Some(r),
                    _ => {
                        eprintln!("--require-hashgrid-at-least needs a positive ratio");
                        std::process::exit(2);
                    }
                }
            }
            unknown => {
                eprintln!(
                    "unknown argument {unknown}; usage: fig10_inner_loop [--smoke] [--baseline] \
                     [--backend rtree|kdtree|hashgrid] [--require-hashgrid-at-least <ratio>] \
                     [--threads t1,t2,...]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if backends.is_empty() {
        backends = LocalityBackend::ALL.to_vec();
    }
    if baseline_only && required_hashgrid_ratio.is_some() {
        eprintln!(
            "--require-hashgrid-at-least compares the optimized loops, which --baseline skips; \
             drop one of the two flags"
        );
        std::process::exit(2);
    }

    // The paper-scale configuration: 1M Gaussian points, K = 10K. The smoke
    // configuration keeps the same shape at a size CI can afford.
    let (n, k) = if smoke {
        (20_000, 500)
    } else {
        (1_000_000, 10_000)
    };
    let mode = if smoke { "smoke" } else { "full" };
    eprintln!("[fig10_inner_loop] generating Gaussian dataset: n = {n}, K = {k}");
    let data = GaussianMixtureGenerator::paper_clustering_dataset(3, n, 20_160_518).generate();
    let kernel = GaussianKernel::for_dataset(&data);
    let epsilon = kernel.bandwidth();
    let locality_threshold = VasConfig::new(k).locality_threshold;
    let cutoff = kernel.effective_radius(locality_threshold);

    let mut variants = Vec::new();
    let mut speedups = Vec::new();
    let mut accept_cost = Vec::new();
    let mut comparison_raw: Vec<(LocalityBackend, f64)> = Vec::new();

    // Plain ES ignores the locality index entirely, so it is measured once
    // (smoke only: the quadratic-ish full scan dominates the full-size run
    // without adding information at K = 10K).
    if smoke {
        let backend = LocalityBackend::default();
        let strategy = InterchangeStrategy::ExpandShrink;
        let (legacy, _) = measure(&data, k, strategy, backend, epsilon, true);
        eprintln!(
            "[fig10_inner_loop] ES legacy: {:.0} rejected tuples/s",
            legacy.rejected_per_sec
        );
        if baseline_only {
            variants.push(legacy);
        } else {
            let (optimized, _) = measure(&data, k, strategy, backend, epsilon, false);
            eprintln!(
                "[fig10_inner_loop] ES optimized: {:.0} rejected tuples/s",
                optimized.rejected_per_sec
            );
            assert_eq!(
                legacy.accepted, optimized.accepted,
                "legacy and optimized loops must make identical replacement decisions"
            );
            speedups.push(Speedup {
                strategy: strategy.label().to_string(),
                backend: "n/a".to_string(),
                rejected_throughput_ratio: optimized.rejected_per_sec / legacy.rejected_per_sec,
                tuple_throughput_ratio: optimized.tuples_per_sec / legacy.tuples_per_sec,
            });
            variants.push(legacy);
            variants.push(optimized);
        }
    }

    // The headline sweep: ES+Loc, legacy and optimized, per backend.
    for &backend in &backends {
        let strategy = InterchangeStrategy::ExpandShrinkLocality;
        let (legacy, _) = measure(&data, k, strategy, backend, epsilon, true);
        eprintln!(
            "[fig10_inner_loop] ES+Loc/{backend} legacy: {:.0} rejected tuples/s",
            legacy.rejected_per_sec
        );
        if baseline_only {
            variants.push(legacy);
            continue;
        }
        let (optimized, sample) = measure(&data, k, strategy, backend, epsilon, false);
        eprintln!(
            "[fig10_inner_loop] ES+Loc/{backend} optimized: {:.0} rejected tuples/s",
            optimized.rejected_per_sec
        );
        assert_eq!(
            legacy.accepted, optimized.accepted,
            "legacy and optimized loops must make identical replacement decisions ({backend})"
        );
        speedups.push(Speedup {
            strategy: strategy.label().to_string(),
            backend: backend.label().to_string(),
            rejected_throughput_ratio: optimized.rejected_per_sec / legacy.rejected_per_sec,
            tuple_throughput_ratio: optimized.tuples_per_sec / legacy.tuples_per_sec,
        });
        comparison_raw.push((backend, optimized.rejected_per_sec));
        accept_cost.push(measure_accept_cost(backend, &sample, cutoff));
        variants.push(legacy);
        variants.push(optimized);
    }

    let rtree_rejected = comparison_raw
        .iter()
        .find(|(b, _)| *b == LocalityBackend::RTree)
        .map(|(_, r)| *r);
    let backend_comparison: Vec<BackendComparison> = comparison_raw
        .iter()
        .map(|(b, r)| BackendComparison {
            backend: b.label().to_string(),
            rejected_per_sec: *r,
            vs_rtree_rejected_ratio: rtree_rejected.map(|base| r / base).unwrap_or(0.0),
        })
        .collect();

    let mut table = ReportTable::new(
        format!("Interchange inner-loop throughput ({mode}: n = {n}, K = {k})"),
        &[
            "variant",
            "backend",
            "inner loop",
            "candidate tuples",
            "accepted",
            "rejected/s",
            "accepted/s",
            "tuples/s",
            "candidate time (s)",
        ],
    );
    for v in &variants {
        table.push_row(vec![
            v.strategy.clone(),
            v.backend.clone(),
            v.inner_loop.clone(),
            v.candidate_tuples.to_string(),
            v.accepted.to_string(),
            fmt3(v.rejected_per_sec),
            fmt3(v.accepted_per_sec),
            fmt3(v.tuples_per_sec),
            fmt3(v.candidate_secs),
        ]);
    }
    let mut speedup_table = ReportTable::new(
        "Optimized vs legacy inner loop",
        &[
            "variant",
            "backend",
            "rejected-throughput ratio",
            "tuple-throughput ratio",
        ],
    );
    for s in &speedups {
        speedup_table.push_row(vec![
            s.strategy.clone(),
            s.backend.clone(),
            format!("{:.2}x", s.rejected_throughput_ratio),
            format!("{:.2}x", s.tuple_throughput_ratio),
        ]);
    }
    let mut backend_table = ReportTable::new(
        "Locality backends (optimized ES+Loc)",
        &[
            "backend",
            "rejected/s",
            "vs rtree",
            "accept query pair (µs)",
            "accept churn (µs)",
        ],
    );
    for c in &backend_comparison {
        let cost = accept_cost.iter().find(|a| a.backend == c.backend);
        backend_table.push_row(vec![
            c.backend.clone(),
            fmt3(c.rejected_per_sec),
            if c.vs_rtree_rejected_ratio > 0.0 {
                format!("{:.2}x", c.vs_rtree_rejected_ratio)
            } else {
                "-".to_string()
            },
            cost.map(|a| fmt3(a.query_pair_ns / 1_000.0))
                .unwrap_or_else(|| "-".to_string()),
            cost.map(|a| fmt3(a.churn_ns / 1_000.0))
                .unwrap_or_else(|| "-".to_string()),
        ]);
    }
    emit("fig10_inner_loop", &[table, speedup_table, backend_table]);

    let report = BenchReport {
        bench: "fig10_inner_loop".to_string(),
        mode: mode.to_string(),
        dataset: DatasetInfo {
            kind: "gaussian-mixture".to_string(),
            n,
            k,
            epsilon,
            locality_threshold,
        },
        variants,
        speedups,
        accept_cost,
        backend_comparison: backend_comparison.clone(),
    };
    let path = results_dir().join("BENCH_interchange.json");
    let json = serde_json::to_string_pretty(&report).expect("serialize bench report");
    std::fs::write(&path, json).expect("write BENCH_interchange.json");
    eprintln!("[machine-readable report written to {}]", path.display());

    // ---- Kernel-evaluation phase: scalar vs batched SoA lanes. ----
    if !baseline_only {
        eprintln!("[fig10_inner_loop] kernel phase: scalar point-at-a-time path");
        let (scalar, scalar_sample) = measure_kernel_phase(&data, k, epsilon, true);
        eprintln!("[fig10_inner_loop] kernel phase: batched SoA lane path");
        let (batched, batched_sample) = measure_kernel_phase(&data, k, epsilon, false);
        let bit_identical = bitwise_eq(&scalar_sample, &batched_sample);
        let mut kernel_table = ReportTable::new(
            format!("Kernel-evaluation phase (ES+Loc/hashgrid, n = {n}, K = {k})"),
            &[
                "kernel path",
                "rejected/s",
                "tuples/s",
                "candidate time (s)",
                "lanes",
                "lanes/rejected tuple",
            ],
        );
        for v in [&scalar, &batched] {
            kernel_table.push_row(vec![
                v.kernel_path.clone(),
                fmt3(v.rejected_per_sec),
                fmt3(v.tuples_per_sec),
                fmt3(v.candidate_secs),
                v.kernel_lanes.to_string(),
                fmt3(v.lanes_per_rejected_tuple),
            ]);
        }
        emit("fig10_kernel_phase", &[kernel_table]);
        eprintln!(
            "[fig10_inner_loop] batched/scalar rejected-throughput {:.2}x, bit_identical = {}",
            batched.rejected_per_sec / scalar.rejected_per_sec,
            bit_identical
        );
        let kernel_report = KernelReport {
            bench: "fig10_kernel_phase".to_string(),
            mode: mode.to_string(),
            n,
            k,
            backend: LocalityBackend::HashGrid.label().to_string(),
            epsilon,
            rejected_throughput_ratio: batched.rejected_per_sec / scalar.rejected_per_sec,
            tuple_throughput_ratio: batched.tuples_per_sec / scalar.tuples_per_sec,
            scalar,
            batched,
            bit_identical,
        };
        let path = results_dir().join("BENCH_kernel.json");
        let json = serde_json::to_string_pretty(&kernel_report).expect("serialize kernel report");
        std::fs::write(&path, json).expect("write BENCH_kernel.json");
        eprintln!("[kernel-phase report written to {}]", path.display());
        if !bit_identical {
            eprintln!(
                "[fig10_inner_loop] FAIL: the batched kernel path changed the converged sample"
            );
            std::process::exit(1);
        }
        eprintln!("[fig10_inner_loop] kernel phase: scalar and batched paths agree bit-for-bit");
    }

    // ---- Speculative pre-evaluation sweep (--threads). ----
    if !threads_sweep.is_empty() {
        let mut entries: Vec<PreEvalSweepEntry> = Vec::new();
        let mut reference: Option<Vec<Point>> = None;
        let mut bit_identical = true;
        for &t in &threads_sweep {
            eprintln!("[fig10_inner_loop] pre-eval sweep: threads = {t}");
            let (entry, sample) = measure_pre_eval(&data, k, epsilon, t);
            match &reference {
                None => reference = Some(sample),
                Some(r) => {
                    if !bitwise_eq(r, &sample) {
                        eprintln!(
                            "[fig10_inner_loop] FAIL: sample at {t} threads diverged from the \
                             first sweep run"
                        );
                        bit_identical = false;
                    }
                }
            }
            eprintln!(
                "[fig10_inner_loop] pre-eval x{t}: {:.0} candidate tuples/s",
                entry.tuples_per_sec
            );
            entries.push(entry);
        }
        // Speedups are relative to the threads = 1 entry (or the first run
        // when 1 was not part of the sweep).
        let baseline = entries
            .iter()
            .find(|e| e.threads == 1)
            .unwrap_or(&entries[0])
            .tuples_per_sec;
        for e in &mut entries {
            e.speedup_vs_1 = e.tuples_per_sec / baseline;
        }
        let mut sweep_table = ReportTable::new(
            format!("Speculative pre-evaluation sweep (hashgrid, n = {n}, K = {k})"),
            &["threads", "candidate time (s)", "tuples/s", "speedup vs 1"],
        );
        for e in &entries {
            sweep_table.push_row(vec![
                e.threads.to_string(),
                fmt3(e.candidate_secs),
                fmt3(e.tuples_per_sec),
                format!("{:.2}x", e.speedup_vs_1),
            ]);
        }
        emit("fig10_pre_eval_sweep", &[sweep_table]);
        let section = PreEvalSection {
            n,
            k,
            backend: LocalityBackend::HashGrid.label().to_string(),
            chunk_size: SWEEP_CHUNK,
            pre_eval: entries,
            bit_identical,
        };
        let path = merge_parallel_section("fig10_inner_loop", section.to_value());
        eprintln!("[pre-eval sweep merged into {}]", path.display());
        if !bit_identical {
            eprintln!(
                "[fig10_inner_loop] FAIL: the speculative pre-evaluation front changed the sample"
            );
            std::process::exit(1);
        }
        eprintln!("[fig10_inner_loop] pre-eval sweep: all thread counts agree bit-for-bit");
    }

    if let Some(required) = required_hashgrid_ratio {
        let ratio = backend_comparison
            .iter()
            .find(|c| c.backend == LocalityBackend::HashGrid.label())
            .map(|c| c.vs_rtree_rejected_ratio)
            .filter(|r| *r > 0.0);
        match ratio {
            Some(r) if r >= required => {
                eprintln!("[fig10_inner_loop] hashgrid/rtree rejected-throughput {r:.2}x >= required {required:.2}x");
            }
            Some(r) => {
                eprintln!("[fig10_inner_loop] FAIL: hashgrid/rtree rejected-throughput {r:.2}x < required {required:.2}x");
                std::process::exit(1);
            }
            None => {
                eprintln!(
                    "[fig10_inner_loop] FAIL: --require-hashgrid-at-least needs both the \
                     hashgrid and rtree backends in the sweep"
                );
                std::process::exit(1);
            }
        }
    }
}
