//! Inner-loop throughput of the Interchange candidate (replacement-test)
//! path: the optimized loop (tournament-tree Shrink + zero-allocation
//! spatial queries) against the retained pre-optimization legacy loop,
//! swept across every `LocalityIndex` backend, measured in the same run on
//! the same stream.
//!
//! The figure of merit is **throughput on rejected-candidate tuples** — the
//! overwhelmingly common case once the sample has converged, and the case
//! the max-responsibility structure turns from `O(K)` into near-`O(1)`.
//! The accepted-replacement path is tracked separately, with a micro-measured
//! cost split (the two radius queries vs the index remove/insert churn) per
//! backend.
//!
//! Output: a human-readable table on stdout plus machine-readable
//! `results/BENCH_interchange.json`, so the perf trajectory of this hot path
//! can be tracked across commits. CI runs `--smoke` (tiny N) on every push
//! with `--require-hashgrid-at-least 0.9`, which fails the job if the
//! spatial-hash backend ever regresses below the R-tree baseline.
//!
//! With `--threads t1,t2,...` the run additionally sweeps the **speculative
//! kernel pre-evaluation** front over the optimized ES+Loc/hashgrid loop:
//! the candidate phase is driven through `VasSampler::observe_chunk` at each
//! thread count, every run's sample is asserted bit-identical to the
//! `threads = 1` run (non-zero exit on divergence), and the timings land in
//! a `fig10_inner_loop` section of `results/BENCH_parallel.json`.
//!
//! Every run (unless `--baseline`) also measures the **kernel-evaluation
//! phase**: the optimized ES+Loc/hashgrid candidate loop with the batched
//! SoA kernel path (batch-gather + `eval_dist2_batch` lane sweeps, the
//! default) against the scalar point-at-a-time baseline
//! (`VasConfig::with_scalar_kernel_path`). The two samples are asserted
//! bit-identical (non-zero exit on divergence) and the comparison — scalar
//! vs batched throughput, lanes per rejected tuple, and the
//! `bit_identical` flag CI gates on — is written to
//! `results/BENCH_kernel.json`.
//!
//! With `--obs` the binary instead runs only the **observability overhead
//! gate**: the full instrumented stack (chunked reads through fault
//! injection, retries, checkpoint halt/resume, and the sampler itself, all
//! with timers and an event journal attached) against the detached-recorder
//! no-op build on the same spilled stream. The gate asserts the two samples
//! are bit-identical, the journal carries checkpoint/retry/phase-transition
//! events, both exporters round-trip the registry snapshot, and the
//! instrumentation overhead stays under a fixed ceiling — then writes
//! `results/BENCH_obs.json` and exits non-zero on any violation.
//!
//! Usage:
//! ```text
//! fig10_inner_loop [--smoke] [--baseline] [--backend rtree|kdtree|hashgrid]
//!                  [--require-hashgrid-at-least <ratio>] [--threads t1,t2,...]
//!                  [--obs]
//! ```
//! * `--smoke`    — tiny dataset (20K points, K = 500) for CI.
//! * `--baseline` — measure only the legacy loop (for A/B-ing across
//!   checkouts; the default measures both in one run).
//! * `--backend`  — restrict the sweep to one backend (default: all three).
//! * `--require-hashgrid-at-least` — exit non-zero unless
//!   `hashgrid rejected/s ÷ rtree rejected/s` (optimized loop) reaches the
//!   given ratio; both backends must be part of the sweep.
//! * `--threads`  — comma-separated thread counts for the speculative
//!   pre-evaluation sweep.
//! * `--obs`      — run only the observability overhead gate (see above).

use bench::obs::{validate_build_trace, ObsBundle};
use bench::{
    bitwise_eq, emit, fmt3, merge_parallel_section, parse_threads_list, results_dir, ReportTable,
    TimingStats,
};
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;
use vas_core::{
    BuildOutcome, CheckpointPolicy, GaussianKernel, InterchangeStrategy, Kernel, VasConfig,
    VasSampler,
};
use vas_data::{Dataset, GaussianMixtureGenerator, Point};
use vas_obs::{export, Counter, Phase, Recorder};
use vas_sampling::Sampler;
use vas_spatial::{AnyLocalityIndex, LocalityBackend, LocalityIndex};
use vas_stream::{
    spill_dataset, ChunkedReader, FaultInjectorSource, FaultPlan, RetryPolicy, RetryingSource,
};

/// One measured (strategy × backend × inner-loop) cell.
#[derive(Debug, Clone, Serialize)]
struct VariantResult {
    /// Strategy label ("ES" or "ES+Loc").
    strategy: String,
    /// Locality backend label ("rtree", "kdtree", "hashgrid"; "n/a" for the
    /// backend-independent plain-ES strategy).
    backend: String,
    /// "legacy" or "optimized".
    inner_loop: String,
    /// Wall-clock seconds spent filling the first K slots.
    fill_secs: f64,
    /// Wall-clock seconds spent on the candidate (replacement-test) phase.
    candidate_secs: f64,
    /// Of `candidate_secs`, the share spent on tuples that ended rejected.
    rejected_secs: f64,
    /// Of `candidate_secs`, the share spent on tuples that ended accepted.
    accepted_secs: f64,
    /// Candidate tuples streamed after the fill.
    candidate_tuples: u64,
    /// Valid replacements performed (accepted tuples).
    accepted: u64,
    /// Rejected tuples (`candidate_tuples - accepted`).
    rejected: u64,
    /// Candidate tuples per second (whole candidate phase).
    tuples_per_sec: f64,
    /// Rejected tuples per second **while processing rejected tuples** — the
    /// headline metric: the per-tuple cost of the overwhelmingly common case,
    /// with accepted-tuple (replacement) work accounted separately.
    rejected_per_sec: f64,
    /// Accepted tuples per second while processing accepted tuples.
    accepted_per_sec: f64,
}

/// Speed-up of the optimized loop over the legacy loop for one
/// (strategy, backend) pair.
#[derive(Debug, Clone, Serialize)]
struct Speedup {
    strategy: String,
    backend: String,
    /// `optimized.rejected_per_sec / legacy.rejected_per_sec`.
    rejected_throughput_ratio: f64,
    /// `optimized.tuples_per_sec / legacy.tuples_per_sec`.
    tuple_throughput_ratio: f64,
}

/// Micro-measured cost split of one accepted replacement on one backend:
/// the two neighbourhood queries (candidate + removed element) vs the index
/// churn (remove + insert), averaged over a deterministic probe set drawn
/// from the converged sample.
#[derive(Debug, Clone, Serialize)]
struct AcceptCostSplit {
    backend: String,
    /// Average nanoseconds for the two radius queries of one replacement.
    query_pair_ns: f64,
    /// Average nanoseconds for one remove + insert cycle.
    churn_ns: f64,
    /// Probe points measured.
    probes: usize,
}

/// Cross-backend standing of the optimized ES+Loc loop.
#[derive(Debug, Clone, Serialize)]
struct BackendComparison {
    backend: String,
    rejected_per_sec: f64,
    /// `rejected_per_sec / rtree.rejected_per_sec` (1.0 for rtree itself);
    /// 0.0 when the sweep excluded the rtree baseline.
    vs_rtree_rejected_ratio: f64,
}

/// The whole report, serialized to `results/BENCH_interchange.json`.
#[derive(Debug, Clone, Serialize)]
struct BenchReport {
    bench: String,
    mode: String,
    dataset: DatasetInfo,
    variants: Vec<VariantResult>,
    speedups: Vec<Speedup>,
    accept_cost: Vec<AcceptCostSplit>,
    backend_comparison: Vec<BackendComparison>,
}

#[derive(Debug, Clone, Serialize)]
struct DatasetInfo {
    kind: String,
    n: usize,
    k: usize,
    epsilon: f64,
    locality_threshold: f64,
}

/// Streams the whole dataset through one sampler configuration, timing every
/// observation so rejected-tuple cost is separated from accepted-tuple cost.
/// Returns the measurement plus the converged sample (for the accept-cost
/// micro-bench).
fn measure(
    data: &Dataset,
    k: usize,
    strategy: InterchangeStrategy,
    backend: LocalityBackend,
    epsilon: f64,
    legacy: bool,
) -> (VariantResult, Vec<Point>) {
    let mut sampler = VasSampler::from_dataset(
        data,
        VasConfig::new(k)
            .with_strategy(strategy)
            .with_epsilon(epsilon)
            .with_locality_backend(backend)
            .with_legacy_inner_loop(legacy),
    );
    let fill_start = Instant::now();
    for p in data.points.iter().take(k) {
        sampler.observe(*p);
    }
    let fill_secs = fill_start.elapsed().as_secs_f64();

    // The ~2×Instant overhead per tuple is identical for both inner loops
    // and all backends.
    let candidates = &data.points[k..];
    let mut rejected_secs = 0.0f64;
    let mut accepted_secs = 0.0f64;
    let mut replacements_before = sampler.replacements();
    let start = Instant::now();
    for p in candidates {
        let t0 = Instant::now();
        sampler.observe(*p);
        let dt = t0.elapsed().as_secs_f64();
        let replacements_now = sampler.replacements();
        if replacements_now == replacements_before {
            rejected_secs += dt;
        } else {
            accepted_secs += dt;
            replacements_before = replacements_now;
        }
    }
    let candidate_secs = start.elapsed().as_secs_f64().max(1e-9);
    let accepted = sampler.replacements();
    let candidate_tuples = candidates.len() as u64;
    let rejected = candidate_tuples - accepted;
    let backend_label = if strategy == InterchangeStrategy::ExpandShrinkLocality {
        backend.label().to_string()
    } else {
        "n/a".to_string()
    };
    let result = VariantResult {
        strategy: strategy.label().to_string(),
        backend: backend_label,
        inner_loop: if legacy { "legacy" } else { "optimized" }.to_string(),
        fill_secs,
        candidate_secs,
        rejected_secs,
        accepted_secs,
        candidate_tuples,
        accepted,
        rejected,
        tuples_per_sec: candidate_tuples as f64 / candidate_secs,
        rejected_per_sec: rejected as f64 / rejected_secs.max(1e-9),
        accepted_per_sec: accepted as f64 / accepted_secs.max(1e-9),
    };
    (result, sampler.current_sample().to_vec())
}

/// One thread count of the speculative pre-evaluation sweep.
#[derive(Debug, Clone, Serialize)]
struct PreEvalSweepEntry {
    threads: usize,
    /// Wall-clock seconds of the candidate phase (fill excluded).
    candidate_secs: f64,
    /// Candidate tuples per second — the figure the acceptance gate reads.
    tuples_per_sec: f64,
    /// Throughput ratio against the `threads = 1` run of this sweep.
    speedup_vs_1: f64,
    accepted: u64,
}

/// The `fig10_inner_loop` section of `BENCH_parallel.json`.
#[derive(Debug, Clone, Serialize)]
struct PreEvalSection {
    n: usize,
    k: usize,
    backend: String,
    chunk_size: usize,
    pre_eval: Vec<PreEvalSweepEntry>,
    bit_identical: bool,
}

/// Chunk size the parallel sweep feeds `observe_chunk` (mirrors the
/// streaming default).
const SWEEP_CHUNK: usize = 8_192;

/// Runs the optimized ES+Loc candidate phase through `observe_chunk` at one
/// thread count, returning the timing and the final sample for the
/// bit-identity gate.
fn measure_pre_eval(
    data: &Dataset,
    k: usize,
    epsilon: f64,
    threads: usize,
) -> (PreEvalSweepEntry, Vec<Point>) {
    let mut sampler = VasSampler::from_dataset(
        data,
        VasConfig::new(k)
            .with_strategy(InterchangeStrategy::ExpandShrinkLocality)
            .with_epsilon(epsilon)
            .with_threads(threads),
    );
    for p in data.points.iter().take(k) {
        sampler.observe(*p);
    }
    let candidates = &data.points[k..];
    let start = Instant::now();
    for chunk in candidates.chunks(SWEEP_CHUNK) {
        sampler.observe_chunk(chunk);
    }
    let candidate_secs = start.elapsed().as_secs_f64().max(1e-9);
    let entry = PreEvalSweepEntry {
        threads,
        candidate_secs,
        tuples_per_sec: candidates.len() as f64 / candidate_secs,
        speedup_vs_1: 1.0,
        accepted: sampler.replacements(),
    };
    (entry, sampler.current_sample().to_vec())
}

/// One side of the kernel-evaluation phase comparison: the optimized
/// ES+Loc/hashgrid candidate loop with either the scalar point-at-a-time
/// kernel path or the batched SoA lane path.
#[derive(Debug, Clone, Serialize)]
struct KernelPhaseVariant {
    /// "scalar" or "batched".
    kernel_path: String,
    /// Wall-clock seconds of the candidate phase.
    candidate_secs: f64,
    /// Of `candidate_secs`, the share spent on tuples that ended rejected.
    rejected_secs: f64,
    /// Candidate tuples streamed after the fill.
    candidate_tuples: u64,
    /// Valid replacements performed.
    accepted: u64,
    /// Rejected tuples.
    rejected: u64,
    /// Candidate tuples per second (whole candidate phase).
    tuples_per_sec: f64,
    /// Rejected tuples per second while processing rejected tuples.
    rejected_per_sec: f64,
    /// Kernel-value lanes evaluated through `eval_dist2_batch` (0 on the
    /// scalar path).
    kernel_lanes: u64,
    /// `kernel_lanes / rejected` — the average batch width the lane sweep
    /// amortizes per rejected candidate (0 on the scalar path).
    lanes_per_rejected_tuple: f64,
}

/// The whole report, serialized to `results/BENCH_kernel.json`. CI greps it
/// for `"bit_identical": true`.
#[derive(Debug, Clone, Serialize)]
struct KernelReport {
    bench: String,
    mode: String,
    n: usize,
    k: usize,
    backend: String,
    epsilon: f64,
    scalar: KernelPhaseVariant,
    batched: KernelPhaseVariant,
    /// `batched.rejected_per_sec / scalar.rejected_per_sec`.
    rejected_throughput_ratio: f64,
    /// `batched.tuples_per_sec / scalar.tuples_per_sec`.
    tuple_throughput_ratio: f64,
    /// Whether the scalar and batched runs converged to bitwise-identical
    /// samples.
    bit_identical: bool,
}

/// Streams the dataset through the optimized ES+Loc/hashgrid loop with the
/// chosen kernel path, timing every observation. Returns the measurement
/// plus the converged sample for the bit-identity gate.
fn measure_kernel_phase(
    data: &Dataset,
    k: usize,
    epsilon: f64,
    scalar: bool,
) -> (KernelPhaseVariant, Vec<Point>) {
    let mut sampler = VasSampler::from_dataset(
        data,
        VasConfig::new(k)
            .with_strategy(InterchangeStrategy::ExpandShrinkLocality)
            .with_epsilon(epsilon)
            .with_locality_backend(LocalityBackend::HashGrid)
            .with_scalar_kernel_path(scalar),
    );
    for p in data.points.iter().take(k) {
        sampler.observe(*p);
    }
    let candidates = &data.points[k..];
    let mut rejected_secs = 0.0f64;
    let mut replacements_before = sampler.replacements();
    let start = Instant::now();
    for p in candidates {
        let t0 = Instant::now();
        sampler.observe(*p);
        let dt = t0.elapsed().as_secs_f64();
        let replacements_now = sampler.replacements();
        if replacements_now == replacements_before {
            rejected_secs += dt;
        } else {
            replacements_before = replacements_now;
        }
    }
    let candidate_secs = start.elapsed().as_secs_f64().max(1e-9);
    let accepted = sampler.replacements();
    let candidate_tuples = candidates.len() as u64;
    let rejected = candidate_tuples - accepted;
    let kernel_lanes = sampler.kernel_lanes();
    let variant = KernelPhaseVariant {
        kernel_path: if scalar { "scalar" } else { "batched" }.to_string(),
        candidate_secs,
        rejected_secs,
        candidate_tuples,
        accepted,
        rejected,
        tuples_per_sec: candidate_tuples as f64 / candidate_secs,
        rejected_per_sec: rejected as f64 / rejected_secs.max(1e-9),
        kernel_lanes,
        lanes_per_rejected_tuple: kernel_lanes as f64 / rejected.max(1) as f64,
    };
    (variant, sampler.current_sample().to_vec())
}

/// Micro-measures the accepted-replacement cost split on one backend: builds
/// the index over the converged sample at the cutoff radius, then times the
/// two neighbourhood queries and the remove/insert churn an accept performs.
fn measure_accept_cost(backend: LocalityBackend, sample: &[Point], cutoff: f64) -> AcceptCostSplit {
    let mut index = AnyLocalityIndex::new(backend);
    index.rebuild(
        cutoff,
        &sample.iter().copied().enumerate().collect::<Vec<_>>(),
    );
    // A deterministic probe subset; every probe is a stored entry, so the
    // churn cycle (remove then re-insert the same entry) is always valid.
    let stride = (sample.len() / 512).max(1);
    let probes: Vec<(usize, Point)> = sample.iter().copied().enumerate().step_by(stride).collect();

    let mut sink = 0usize;
    let query_start = Instant::now();
    for (_, p) in &probes {
        // An accept performs two radius queries: the candidate's
        // neighbourhood and the removed element's neighbourhood.
        for _ in 0..2 {
            index.for_each_in_radius_with_dist2(p, cutoff, |_, _, _| sink += 1);
        }
    }
    let query_pair_ns = query_start.elapsed().as_nanos() as f64 / probes.len() as f64;
    std::hint::black_box(sink);

    let churn_start = Instant::now();
    for &(id, ref p) in &probes {
        assert!(index.remove(id, p), "probe entry must be present");
        index.insert(id, *p);
    }
    let churn_ns = churn_start.elapsed().as_nanos() as f64 / probes.len() as f64;

    AcceptCostSplit {
        backend: backend.label().to_string(),
        query_pair_ns,
        churn_ns,
        probes: probes.len(),
    }
}

/// Chunk size of the observability-gate spill — small enough that even the
/// smoke dataset spans a few dozen chunks, so checkpoints, retries and the
/// fill→candidate transition all fire.
const OBS_CHUNK: usize = 1_024;
/// Maximum tolerated throughput overhead of full instrumentation (timers +
/// journal) over the detached-recorder no-op build.
const OBS_OVERHEAD_CEILING: f64 = 0.03;
/// Seed of the deterministic transient-fault schedule the gate injects so
/// the retry path is exercised (and journaled) on every run.
const OBS_FAULT_SEED: u64 = 20_160_519;

/// Which of the required event kinds the journal actually carried.
#[derive(Debug, Clone, Serialize)]
struct ObsJournalEvents {
    checkpoint_write: bool,
    checkpoint_resume: bool,
    retry: bool,
    phase_transition: bool,
}

impl ObsJournalEvents {
    fn all_present(&self) -> bool {
        self.checkpoint_write && self.checkpoint_resume && self.retry && self.phase_transition
    }
}

/// Key registry counters. The build-scoped ones (accepts, rejects, kernel
/// lanes) are captured at the checkpoint halt — mid-build, before `finalize`
/// resets them; the stream/checkpoint counters are lifetime totals across
/// the halt, resume and full instrumented build.
#[derive(Debug, Clone, Serialize)]
struct ObsCounterSample {
    core_accepts_at_halt: u64,
    core_rejects_at_halt: u64,
    core_kernel_lanes_at_halt: u64,
    core_checkpoint_writes: u64,
    core_checkpoint_resumes: u64,
    stream_chunks_decoded: u64,
    stream_retries_absorbed: u64,
}

/// One phase row of the report, read from the registry's latency histograms.
#[derive(Debug, Clone, Serialize)]
struct ObsPhaseStat {
    phase: String,
    calls: u64,
    total_ms: f64,
    p50_us: f64,
    p99_us: f64,
}

/// The whole gate report, serialized to `results/BENCH_obs.json`. CI greps
/// it for `"bit_identical": true` and `"overhead_ok": true`.
#[derive(Debug, Clone, Serialize)]
struct ObsReport {
    bench: String,
    mode: String,
    n: usize,
    k: usize,
    chunk_size: usize,
    reps: usize,
    noop_secs: f64,
    instrumented_secs: f64,
    overhead_ratio: f64,
    overhead_ceiling: f64,
    overhead_ok: bool,
    bit_identical: bool,
    exporters_round_trip: bool,
    trace_valid: bool,
    trace_spans: usize,
    trace_worker_spans: usize,
    journal_events: ObsJournalEvents,
    journal_lines: usize,
    counters: ObsCounterSample,
    phases: Vec<ObsPhaseStat>,
}

/// The observability overhead gate (`--obs`): builds the same sample from
/// the same fault-injected chunked stream with a fully instrumented recorder
/// and with the detached no-op recorder, checks bit-identity, journal
/// contents and exporter round-trips, measures the instrumentation overhead
/// with interleaved min-of-N reps, and writes `results/BENCH_obs.json`.
/// Exits non-zero on any violation.
fn run_obs_phase(data: &Dataset, k: usize, epsilon: f64, mode: &str) {
    let n = data.points.len();
    let pid = std::process::id();
    let spill = std::env::temp_dir().join(format!("vas-obs-gate-{pid}.chunks"));
    let ckpt = std::env::temp_dir().join(format!("vas-obs-gate-{pid}.ckpt"));
    spill_dataset(data, &spill, OBS_CHUNK).expect("spill obs dataset");

    // A fixed epsilon keeps the kernel install off the stream (no extra
    // stats scan), so every build consumes the source exactly once.
    let config = || {
        VasConfig::new(k)
            .with_strategy(InterchangeStrategy::ExpandShrinkLocality)
            .with_epsilon(epsilon)
            .with_locality_backend(LocalityBackend::HashGrid)
    };
    // The full instrumented stack: chunked reads -> deterministic transient
    // faults -> immediate retries, all reporting into the same recorder.
    let make_source = |recorder: &Recorder| {
        let reader = ChunkedReader::open(&spill)
            .expect("open obs spill")
            .with_recorder(recorder.clone());
        let faulty = FaultInjectorSource::new(reader, FaultPlan::transient(OBS_FAULT_SEED, 3, 1));
        RetryingSource::new(faulty, RetryPolicy::immediate(3)).with_recorder(recorder.clone())
    };
    let build = |recorder: &Recorder| -> Vec<Point> {
        let mut source = make_source(recorder);
        let mut sampler = VasSampler::new(config()).with_recorder(recorder.clone());
        sampler
            .build_from_source(&mut source)
            .expect("obs build")
            .points
    };

    // One journaled, fully instrumented bundle (counters + timers + journal
    // + tracer + flight recorder) shared by the halted build, the resume and
    // a full build, so the journal carries every event kind the gate
    // requires and the tracer sees every causal tree.
    let bundle = ObsBundle::new();
    let registry = Arc::clone(&bundle.registry);
    let journal = Arc::clone(&bundle.journal);
    let recorder = bundle.recorder.clone();

    eprintln!("[fig10_inner_loop] obs phase: journaled halt/resume build (chunk = {OBS_CHUNK})");
    let halted = {
        let mut source = make_source(&recorder);
        let mut sampler = VasSampler::new(config()).with_recorder(recorder.clone());
        sampler
            .build_from_source_checkpointed(
                &mut source,
                &CheckpointPolicy::every(&ckpt, 3).halting_after(7),
            )
            .expect("halted obs build")
    };
    assert!(
        matches!(halted, BuildOutcome::Halted { .. }),
        "the kill switch must halt the first obs build"
    );
    // Build-scoped counters reset when `finalize` ends a build; the halted
    // build has not finalized, so this snapshot sees them live.
    let halt_snap = registry.snapshot();
    let resumed = {
        let mut source = make_source(&recorder);
        let (_, outcome) = VasSampler::resume_build_from_source_recorded(
            config(),
            &mut source,
            &CheckpointPolicy::every(&ckpt, 3),
            recorder.clone(),
        )
        .expect("resume obs build");
        match outcome {
            BuildOutcome::Complete(sample) => sample.points,
            BuildOutcome::Halted { .. } => unreachable!("the resume policy has no kill switch"),
        }
    };
    eprintln!("[fig10_inner_loop] obs phase: instrumented vs no-op reference builds");
    let instrumented = build(&recorder);
    let noop = build(&Recorder::detached());

    // A dedicated traced build with the speculative pre-eval front on
    // (threads = 2) so the exported causal tree contains cross-thread
    // `worker_task` spans — the tracing acceptance shape CI validates.
    eprintln!("[fig10_inner_loop] obs phase: traced build (threads = 2) for the trace artifact");
    let trace_bundle = ObsBundle::new();
    let traced = {
        let mut source = make_source(&trace_bundle.recorder);
        let mut sampler =
            VasSampler::new(config().with_threads(2)).with_recorder(trace_bundle.recorder.clone());
        sampler
            .build_from_source(&mut source)
            .expect("traced obs build")
            .points
    };
    let trace_path = results_dir().join("trace_build.json");
    let trace_json = trace_bundle
        .write_trace(&trace_path)
        .expect("write build trace");
    let (trace_valid, trace_spans, trace_worker_spans) = match validate_build_trace(&trace_json) {
        Ok(check) => {
            eprintln!(
                "[fig10_inner_loop] obs phase: trace valid ({} spans, {} worker spans, \
                 {} threads) at {}",
                check.spans,
                check.worker_spans,
                check.threads,
                trace_path.display()
            );
            (true, check.spans, check.worker_spans)
        }
        Err(reason) => {
            eprintln!("[fig10_inner_loop] obs phase: trace INVALID: {reason}");
            (false, 0, 0)
        }
    };

    let bit_identical = bitwise_eq(&instrumented, &noop)
        && bitwise_eq(&instrumented, &resumed)
        && bitwise_eq(&instrumented, &traced);

    let journal_events = ObsJournalEvents {
        checkpoint_write: journal.contains_event("checkpoint_write"),
        checkpoint_resume: journal.contains_event("checkpoint_resume"),
        retry: journal.contains_event("retry"),
        phase_transition: journal.contains_event("phase_transition"),
    };
    let journal_lines = journal.lines().len();

    // Both exporters must round-trip the live registry snapshot.
    let snap = registry.snapshot();
    let parsed = export::snapshot_from_json(&export::snapshot_to_json(&snap));
    let prom = export::parse_prometheus(&export::snapshot_to_prometheus(&snap));
    let exporters_round_trip =
        parsed.as_ref() == Ok(&snap) && prom.map(|s| !s.is_empty()).unwrap_or(false);

    // The smoke build is ~tens of milliseconds, so single-run jitter can
    // dwarf the real instrumentation delta; min-of-N with the A/B order
    // alternating per rep keeps scheduler noise and drift out of both
    // minima.
    let reps = if mode == "smoke" { 15 } else { 5 };
    eprintln!(
        "[fig10_inner_loop] obs phase: timing {reps} interleaved reps (no-op vs instrumented)"
    );
    let mut noop_stats = TimingStats::new();
    let mut instr_stats = TimingStats::new();
    for rep in 0..reps {
        let time_noop = |stats: &mut TimingStats| {
            let detached = Recorder::detached();
            stats.time(|| std::hint::black_box(build(&detached)));
        };
        let time_instr = |stats: &mut TimingStats| {
            // The maximal configuration: counters + timers + journal AND
            // span recording + flight ring, so the ceiling covers the whole
            // causal layer too.
            let timed = ObsBundle::new().recorder;
            stats.time(|| std::hint::black_box(build(&timed)));
        };
        if rep % 2 == 0 {
            time_noop(&mut noop_stats);
            time_instr(&mut instr_stats);
        } else {
            time_instr(&mut instr_stats);
            time_noop(&mut noop_stats);
        }
    }
    let noop_secs = noop_stats.min_secs();
    let instrumented_secs = instr_stats.min_secs();
    let overhead_ratio = (instrumented_secs / noop_secs.max(1e-12) - 1.0).max(0.0);
    let overhead_ok = overhead_ratio <= OBS_OVERHEAD_CEILING;

    std::fs::remove_file(&spill).ok();
    std::fs::remove_file(&ckpt).ok();

    let counters = ObsCounterSample {
        core_accepts_at_halt: halt_snap.counter(Counter::CoreAccepts),
        core_rejects_at_halt: halt_snap.counter(Counter::CoreRejects),
        core_kernel_lanes_at_halt: halt_snap.counter(Counter::CoreKernelLanes),
        core_checkpoint_writes: registry.get(Counter::CoreCheckpointWrites),
        core_checkpoint_resumes: registry.get(Counter::CoreCheckpointResumes),
        stream_chunks_decoded: registry.get(Counter::StreamChunksDecoded),
        stream_retries_absorbed: registry.get(Counter::StreamRetriesAbsorbed),
    };
    let phases: Vec<ObsPhaseStat> = Phase::ALL
        .iter()
        .filter(|p| snap.phase_calls(**p) > 0)
        .map(|&p| ObsPhaseStat {
            phase: p.name().to_string(),
            calls: snap.phase_calls(p),
            total_ms: snap.phase_total_ns(p) as f64 / 1e6,
            p50_us: snap.phase_percentile(p, 0.50) as f64 / 1e3,
            p99_us: snap.phase_percentile(p, 0.99) as f64 / 1e3,
        })
        .collect();

    let mut table = ReportTable::new(
        format!("Observability overhead gate ({mode}: n = {n}, K = {k})"),
        &["build", "min secs", "overhead", "bit-identical"],
    );
    table.push_row(vec![
        "no-op (detached)".to_string(),
        fmt3(noop_secs),
        "-".to_string(),
        "-".to_string(),
    ]);
    table.push_row(vec![
        "instrumented".to_string(),
        fmt3(instrumented_secs),
        format!("{:.2}%", overhead_ratio * 100.0),
        bit_identical.to_string(),
    ]);
    let mut phase_table = ReportTable::new(
        "Instrumented phases (journaled builds)",
        &["phase", "calls", "total (ms)", "p50 (µs)", "p99 (µs)"],
    );
    for p in &phases {
        phase_table.push_row(vec![
            p.phase.clone(),
            p.calls.to_string(),
            fmt3(p.total_ms),
            fmt3(p.p50_us),
            fmt3(p.p99_us),
        ]);
    }
    emit("fig10_obs_gate", &[table, phase_table]);

    let report = ObsReport {
        bench: "fig10_obs_gate".to_string(),
        mode: mode.to_string(),
        n,
        k,
        chunk_size: OBS_CHUNK,
        reps,
        noop_secs,
        instrumented_secs,
        overhead_ratio,
        overhead_ceiling: OBS_OVERHEAD_CEILING,
        overhead_ok,
        bit_identical,
        exporters_round_trip,
        trace_valid,
        trace_spans,
        trace_worker_spans,
        journal_events: journal_events.clone(),
        journal_lines,
        counters,
        phases,
    };
    let path = results_dir().join("BENCH_obs.json");
    let json = serde_json::to_string_pretty(&report).expect("serialize obs report");
    std::fs::write(&path, json).expect("write BENCH_obs.json");
    eprintln!("[obs-gate report written to {}]", path.display());

    let mut failed = false;
    if !bit_identical {
        eprintln!("[fig10_inner_loop] FAIL: instrumentation changed the converged sample");
        failed = true;
    }
    if !journal_events.all_present() {
        eprintln!(
            "[fig10_inner_loop] FAIL: journal is missing required events \
             (checkpoint_write = {}, checkpoint_resume = {}, retry = {}, phase_transition = {})",
            journal_events.checkpoint_write,
            journal_events.checkpoint_resume,
            journal_events.retry,
            journal_events.phase_transition,
        );
        failed = true;
    }
    if !exporters_round_trip {
        eprintln!("[fig10_inner_loop] FAIL: an exporter did not round-trip the snapshot");
        failed = true;
    }
    if !trace_valid {
        eprintln!(
            "[fig10_inner_loop] FAIL: the traced build did not produce a valid causal tree \
             (see the trace INVALID line above)"
        );
        failed = true;
    }
    if !overhead_ok {
        eprintln!(
            "[fig10_inner_loop] FAIL: instrumentation overhead {:.2}% exceeds the {:.0}% ceiling",
            overhead_ratio * 100.0,
            OBS_OVERHEAD_CEILING * 100.0
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    eprintln!(
        "[fig10_inner_loop] obs gate passed: overhead {:.2}% <= {:.0}%, bit-identical, \
         {journal_lines} journal events",
        overhead_ratio * 100.0,
        OBS_OVERHEAD_CEILING * 100.0
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let baseline_only = args.iter().any(|a| a == "--baseline");
    let obs_only = args.iter().any(|a| a == "--obs");
    let mut backends: Vec<LocalityBackend> = Vec::new();
    let mut required_hashgrid_ratio: Option<f64> = None;
    let mut threads_sweep: Vec<usize> = Vec::new();
    let mut i = 0usize;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" | "--baseline" | "--obs" => {}
            "--threads" => {
                i += 1;
                let value = args.get(i).map(String::as_str).unwrap_or("");
                match parse_threads_list(value) {
                    Ok(list) => threads_sweep = list,
                    Err(e) => {
                        eprintln!("{e}");
                        std::process::exit(2);
                    }
                }
            }
            "--backend" => {
                i += 1;
                let value = args.get(i).unwrap_or_else(|| {
                    eprintln!("--backend needs a value (rtree|kdtree|hashgrid)");
                    std::process::exit(2);
                });
                match value.parse::<LocalityBackend>() {
                    Ok(b) => {
                        if !backends.contains(&b) {
                            backends.push(b);
                        }
                    }
                    Err(e) => {
                        eprintln!("{e}");
                        std::process::exit(2);
                    }
                }
            }
            "--require-hashgrid-at-least" => {
                i += 1;
                let value = args.get(i).and_then(|v| v.parse::<f64>().ok());
                match value {
                    Some(r) if r.is_finite() && r > 0.0 => required_hashgrid_ratio = Some(r),
                    _ => {
                        eprintln!("--require-hashgrid-at-least needs a positive ratio");
                        std::process::exit(2);
                    }
                }
            }
            unknown => {
                eprintln!(
                    "unknown argument {unknown}; usage: fig10_inner_loop [--smoke] [--baseline] \
                     [--backend rtree|kdtree|hashgrid] [--require-hashgrid-at-least <ratio>] \
                     [--threads t1,t2,...] [--obs]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if backends.is_empty() {
        backends = LocalityBackend::ALL.to_vec();
    }
    if baseline_only && required_hashgrid_ratio.is_some() {
        eprintln!(
            "--require-hashgrid-at-least compares the optimized loops, which --baseline skips; \
             drop one of the two flags"
        );
        std::process::exit(2);
    }

    // The paper-scale configuration: 1M Gaussian points, K = 10K. The smoke
    // configuration keeps the same shape at a size CI can afford.
    let (n, k) = if smoke {
        (20_000, 500)
    } else {
        (1_000_000, 10_000)
    };
    let mode = if smoke { "smoke" } else { "full" };
    eprintln!("[fig10_inner_loop] generating Gaussian dataset: n = {n}, K = {k}");
    let data = GaussianMixtureGenerator::paper_clustering_dataset(3, n, 20_160_518).generate();
    let kernel = GaussianKernel::for_dataset(&data);
    let epsilon = kernel.bandwidth();
    let locality_threshold = VasConfig::new(k).locality_threshold;
    let cutoff = kernel.effective_radius(locality_threshold);

    // ---- Observability overhead gate (--obs runs only this phase). ----
    if obs_only {
        run_obs_phase(&data, k, epsilon, mode);
        return;
    }

    let mut variants = Vec::new();
    let mut speedups = Vec::new();
    let mut accept_cost = Vec::new();
    let mut comparison_raw: Vec<(LocalityBackend, f64)> = Vec::new();

    // Plain ES ignores the locality index entirely, so it is measured once
    // (smoke only: the quadratic-ish full scan dominates the full-size run
    // without adding information at K = 10K).
    if smoke {
        let backend = LocalityBackend::default();
        let strategy = InterchangeStrategy::ExpandShrink;
        let (legacy, _) = measure(&data, k, strategy, backend, epsilon, true);
        eprintln!(
            "[fig10_inner_loop] ES legacy: {:.0} rejected tuples/s",
            legacy.rejected_per_sec
        );
        if baseline_only {
            variants.push(legacy);
        } else {
            let (optimized, _) = measure(&data, k, strategy, backend, epsilon, false);
            eprintln!(
                "[fig10_inner_loop] ES optimized: {:.0} rejected tuples/s",
                optimized.rejected_per_sec
            );
            assert_eq!(
                legacy.accepted, optimized.accepted,
                "legacy and optimized loops must make identical replacement decisions"
            );
            speedups.push(Speedup {
                strategy: strategy.label().to_string(),
                backend: "n/a".to_string(),
                rejected_throughput_ratio: optimized.rejected_per_sec / legacy.rejected_per_sec,
                tuple_throughput_ratio: optimized.tuples_per_sec / legacy.tuples_per_sec,
            });
            variants.push(legacy);
            variants.push(optimized);
        }
    }

    // The headline sweep: ES+Loc, legacy and optimized, per backend.
    for &backend in &backends {
        let strategy = InterchangeStrategy::ExpandShrinkLocality;
        let (legacy, _) = measure(&data, k, strategy, backend, epsilon, true);
        eprintln!(
            "[fig10_inner_loop] ES+Loc/{backend} legacy: {:.0} rejected tuples/s",
            legacy.rejected_per_sec
        );
        if baseline_only {
            variants.push(legacy);
            continue;
        }
        let (optimized, sample) = measure(&data, k, strategy, backend, epsilon, false);
        eprintln!(
            "[fig10_inner_loop] ES+Loc/{backend} optimized: {:.0} rejected tuples/s",
            optimized.rejected_per_sec
        );
        assert_eq!(
            legacy.accepted, optimized.accepted,
            "legacy and optimized loops must make identical replacement decisions ({backend})"
        );
        speedups.push(Speedup {
            strategy: strategy.label().to_string(),
            backend: backend.label().to_string(),
            rejected_throughput_ratio: optimized.rejected_per_sec / legacy.rejected_per_sec,
            tuple_throughput_ratio: optimized.tuples_per_sec / legacy.tuples_per_sec,
        });
        comparison_raw.push((backend, optimized.rejected_per_sec));
        accept_cost.push(measure_accept_cost(backend, &sample, cutoff));
        variants.push(legacy);
        variants.push(optimized);
    }

    let rtree_rejected = comparison_raw
        .iter()
        .find(|(b, _)| *b == LocalityBackend::RTree)
        .map(|(_, r)| *r);
    let backend_comparison: Vec<BackendComparison> = comparison_raw
        .iter()
        .map(|(b, r)| BackendComparison {
            backend: b.label().to_string(),
            rejected_per_sec: *r,
            vs_rtree_rejected_ratio: rtree_rejected.map(|base| r / base).unwrap_or(0.0),
        })
        .collect();

    let mut table = ReportTable::new(
        format!("Interchange inner-loop throughput ({mode}: n = {n}, K = {k})"),
        &[
            "variant",
            "backend",
            "inner loop",
            "candidate tuples",
            "accepted",
            "rejected/s",
            "accepted/s",
            "tuples/s",
            "candidate time (s)",
        ],
    );
    for v in &variants {
        table.push_row(vec![
            v.strategy.clone(),
            v.backend.clone(),
            v.inner_loop.clone(),
            v.candidate_tuples.to_string(),
            v.accepted.to_string(),
            fmt3(v.rejected_per_sec),
            fmt3(v.accepted_per_sec),
            fmt3(v.tuples_per_sec),
            fmt3(v.candidate_secs),
        ]);
    }
    let mut speedup_table = ReportTable::new(
        "Optimized vs legacy inner loop",
        &[
            "variant",
            "backend",
            "rejected-throughput ratio",
            "tuple-throughput ratio",
        ],
    );
    for s in &speedups {
        speedup_table.push_row(vec![
            s.strategy.clone(),
            s.backend.clone(),
            format!("{:.2}x", s.rejected_throughput_ratio),
            format!("{:.2}x", s.tuple_throughput_ratio),
        ]);
    }
    let mut backend_table = ReportTable::new(
        "Locality backends (optimized ES+Loc)",
        &[
            "backend",
            "rejected/s",
            "vs rtree",
            "accept query pair (µs)",
            "accept churn (µs)",
        ],
    );
    for c in &backend_comparison {
        let cost = accept_cost.iter().find(|a| a.backend == c.backend);
        backend_table.push_row(vec![
            c.backend.clone(),
            fmt3(c.rejected_per_sec),
            if c.vs_rtree_rejected_ratio > 0.0 {
                format!("{:.2}x", c.vs_rtree_rejected_ratio)
            } else {
                "-".to_string()
            },
            cost.map(|a| fmt3(a.query_pair_ns / 1_000.0))
                .unwrap_or_else(|| "-".to_string()),
            cost.map(|a| fmt3(a.churn_ns / 1_000.0))
                .unwrap_or_else(|| "-".to_string()),
        ]);
    }
    emit("fig10_inner_loop", &[table, speedup_table, backend_table]);

    let report = BenchReport {
        bench: "fig10_inner_loop".to_string(),
        mode: mode.to_string(),
        dataset: DatasetInfo {
            kind: "gaussian-mixture".to_string(),
            n,
            k,
            epsilon,
            locality_threshold,
        },
        variants,
        speedups,
        accept_cost,
        backend_comparison: backend_comparison.clone(),
    };
    let path = results_dir().join("BENCH_interchange.json");
    let json = serde_json::to_string_pretty(&report).expect("serialize bench report");
    std::fs::write(&path, json).expect("write BENCH_interchange.json");
    eprintln!("[machine-readable report written to {}]", path.display());

    // ---- Kernel-evaluation phase: scalar vs batched SoA lanes. ----
    if !baseline_only {
        eprintln!("[fig10_inner_loop] kernel phase: scalar point-at-a-time path");
        let (scalar, scalar_sample) = measure_kernel_phase(&data, k, epsilon, true);
        eprintln!("[fig10_inner_loop] kernel phase: batched SoA lane path");
        let (batched, batched_sample) = measure_kernel_phase(&data, k, epsilon, false);
        let bit_identical = bitwise_eq(&scalar_sample, &batched_sample);
        let mut kernel_table = ReportTable::new(
            format!("Kernel-evaluation phase (ES+Loc/hashgrid, n = {n}, K = {k})"),
            &[
                "kernel path",
                "rejected/s",
                "tuples/s",
                "candidate time (s)",
                "lanes",
                "lanes/rejected tuple",
            ],
        );
        for v in [&scalar, &batched] {
            kernel_table.push_row(vec![
                v.kernel_path.clone(),
                fmt3(v.rejected_per_sec),
                fmt3(v.tuples_per_sec),
                fmt3(v.candidate_secs),
                v.kernel_lanes.to_string(),
                fmt3(v.lanes_per_rejected_tuple),
            ]);
        }
        emit("fig10_kernel_phase", &[kernel_table]);
        eprintln!(
            "[fig10_inner_loop] batched/scalar rejected-throughput {:.2}x, bit_identical = {}",
            batched.rejected_per_sec / scalar.rejected_per_sec,
            bit_identical
        );
        let kernel_report = KernelReport {
            bench: "fig10_kernel_phase".to_string(),
            mode: mode.to_string(),
            n,
            k,
            backend: LocalityBackend::HashGrid.label().to_string(),
            epsilon,
            rejected_throughput_ratio: batched.rejected_per_sec / scalar.rejected_per_sec,
            tuple_throughput_ratio: batched.tuples_per_sec / scalar.tuples_per_sec,
            scalar,
            batched,
            bit_identical,
        };
        let path = results_dir().join("BENCH_kernel.json");
        let json = serde_json::to_string_pretty(&kernel_report).expect("serialize kernel report");
        std::fs::write(&path, json).expect("write BENCH_kernel.json");
        eprintln!("[kernel-phase report written to {}]", path.display());
        if !bit_identical {
            eprintln!(
                "[fig10_inner_loop] FAIL: the batched kernel path changed the converged sample"
            );
            std::process::exit(1);
        }
        eprintln!("[fig10_inner_loop] kernel phase: scalar and batched paths agree bit-for-bit");
    }

    // ---- Speculative pre-evaluation sweep (--threads). ----
    if !threads_sweep.is_empty() {
        let mut entries: Vec<PreEvalSweepEntry> = Vec::new();
        let mut reference: Option<Vec<Point>> = None;
        let mut bit_identical = true;
        for &t in &threads_sweep {
            eprintln!("[fig10_inner_loop] pre-eval sweep: threads = {t}");
            let (entry, sample) = measure_pre_eval(&data, k, epsilon, t);
            match &reference {
                None => reference = Some(sample),
                Some(r) => {
                    if !bitwise_eq(r, &sample) {
                        eprintln!(
                            "[fig10_inner_loop] FAIL: sample at {t} threads diverged from the \
                             first sweep run"
                        );
                        bit_identical = false;
                    }
                }
            }
            eprintln!(
                "[fig10_inner_loop] pre-eval x{t}: {:.0} candidate tuples/s",
                entry.tuples_per_sec
            );
            entries.push(entry);
        }
        // Speedups are relative to the threads = 1 entry (or the first run
        // when 1 was not part of the sweep).
        let baseline = entries
            .iter()
            .find(|e| e.threads == 1)
            .unwrap_or(&entries[0])
            .tuples_per_sec;
        for e in &mut entries {
            e.speedup_vs_1 = e.tuples_per_sec / baseline;
        }
        let mut sweep_table = ReportTable::new(
            format!("Speculative pre-evaluation sweep (hashgrid, n = {n}, K = {k})"),
            &["threads", "candidate time (s)", "tuples/s", "speedup vs 1"],
        );
        for e in &entries {
            sweep_table.push_row(vec![
                e.threads.to_string(),
                fmt3(e.candidate_secs),
                fmt3(e.tuples_per_sec),
                format!("{:.2}x", e.speedup_vs_1),
            ]);
        }
        emit("fig10_pre_eval_sweep", &[sweep_table]);
        let section = PreEvalSection {
            n,
            k,
            backend: LocalityBackend::HashGrid.label().to_string(),
            chunk_size: SWEEP_CHUNK,
            pre_eval: entries,
            bit_identical,
        };
        let path = merge_parallel_section("fig10_inner_loop", section.to_value());
        eprintln!("[pre-eval sweep merged into {}]", path.display());
        if !bit_identical {
            eprintln!(
                "[fig10_inner_loop] FAIL: the speculative pre-evaluation front changed the sample"
            );
            std::process::exit(1);
        }
        eprintln!("[fig10_inner_loop] pre-eval sweep: all thread counts agree bit-for-bit");
    }

    if let Some(required) = required_hashgrid_ratio {
        let ratio = backend_comparison
            .iter()
            .find(|c| c.backend == LocalityBackend::HashGrid.label())
            .map(|c| c.vs_rtree_rejected_ratio)
            .filter(|r| *r > 0.0);
        match ratio {
            Some(r) if r >= required => {
                eprintln!("[fig10_inner_loop] hashgrid/rtree rejected-throughput {r:.2}x >= required {required:.2}x");
            }
            Some(r) => {
                eprintln!("[fig10_inner_loop] FAIL: hashgrid/rtree rejected-throughput {r:.2}x < required {required:.2}x");
                std::process::exit(1);
            }
            None => {
                eprintln!(
                    "[fig10_inner_loop] FAIL: --require-hashgrid-at-least needs both the \
                     hashgrid and rtree backends in the sweep"
                );
                std::process::exit(1);
            }
        }
    }
}
