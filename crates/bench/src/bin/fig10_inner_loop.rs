//! Inner-loop throughput of the Interchange candidate (replacement-test)
//! path: the optimized loop (tournament-tree Shrink + zero-allocation
//! spatial queries) against the retained pre-optimization legacy loop,
//! measured in the same run on the same stream.
//!
//! The figure of merit is **throughput on rejected-candidate tuples** — the
//! overwhelmingly common case once the sample has converged, and the case
//! the max-responsibility structure turns from `O(K)` into near-`O(1)`.
//!
//! Output: a human-readable table on stdout plus machine-readable
//! `results/BENCH_interchange.json`, so the perf trajectory of this hot path
//! can be tracked across commits. CI runs `--smoke` (tiny N) on every push
//! to keep the harness itself from rotting.
//!
//! Usage:
//! ```text
//! fig10_inner_loop [--smoke] [--baseline]
//! ```
//! * `--smoke`    — tiny dataset (20K points, K = 500) for CI.
//! * `--baseline` — measure only the legacy loop (for A/B-ing across
//!   checkouts; the default measures both in one run).

use bench::{emit, fmt3, results_dir, ReportTable};
use serde::Serialize;
use std::time::Instant;
use vas_core::{GaussianKernel, InterchangeStrategy, Kernel, VasConfig, VasSampler};
use vas_data::{Dataset, GaussianMixtureGenerator};
use vas_sampling::Sampler;

/// One measured (strategy × inner-loop) cell.
#[derive(Debug, Clone, Serialize)]
struct VariantResult {
    /// Strategy label ("ES" or "ES+Loc").
    strategy: String,
    /// "legacy" or "optimized".
    inner_loop: String,
    /// Wall-clock seconds spent filling the first K slots.
    fill_secs: f64,
    /// Wall-clock seconds spent on the candidate (replacement-test) phase.
    candidate_secs: f64,
    /// Of `candidate_secs`, the share spent on tuples that ended rejected.
    rejected_secs: f64,
    /// Of `candidate_secs`, the share spent on tuples that ended accepted.
    accepted_secs: f64,
    /// Candidate tuples streamed after the fill.
    candidate_tuples: u64,
    /// Valid replacements performed (accepted tuples).
    accepted: u64,
    /// Rejected tuples (`candidate_tuples - accepted`).
    rejected: u64,
    /// Candidate tuples per second (whole candidate phase).
    tuples_per_sec: f64,
    /// Rejected tuples per second **while processing rejected tuples** — the
    /// headline metric: the per-tuple cost of the overwhelmingly common case,
    /// with accepted-tuple (replacement) work accounted separately.
    rejected_per_sec: f64,
    /// Accepted tuples per second while processing accepted tuples.
    accepted_per_sec: f64,
}

/// Speed-up of the optimized loop over the legacy loop for one strategy.
#[derive(Debug, Clone, Serialize)]
struct Speedup {
    strategy: String,
    /// `optimized.rejected_per_sec / legacy.rejected_per_sec`.
    rejected_throughput_ratio: f64,
    /// `optimized.tuples_per_sec / legacy.tuples_per_sec`.
    tuple_throughput_ratio: f64,
}

/// The whole report, serialized to `results/BENCH_interchange.json`.
#[derive(Debug, Clone, Serialize)]
struct BenchReport {
    bench: String,
    mode: String,
    dataset: DatasetInfo,
    variants: Vec<VariantResult>,
    speedups: Vec<Speedup>,
}

#[derive(Debug, Clone, Serialize)]
struct DatasetInfo {
    kind: String,
    n: usize,
    k: usize,
    epsilon: f64,
    locality_threshold: f64,
}

fn measure(
    data: &Dataset,
    k: usize,
    strategy: InterchangeStrategy,
    epsilon: f64,
    legacy: bool,
) -> VariantResult {
    let mut sampler = VasSampler::from_dataset(
        data,
        VasConfig::new(k)
            .with_strategy(strategy)
            .with_epsilon(epsilon)
            .with_legacy_inner_loop(legacy),
    );
    let fill_start = Instant::now();
    for p in data.points.iter().take(k) {
        sampler.observe(*p);
    }
    let fill_secs = fill_start.elapsed().as_secs_f64();

    // Time every observation individually so rejected-tuple cost can be
    // separated from accepted-tuple (replacement) cost; the ~2×Instant
    // overhead per tuple is identical for both inner loops.
    let candidates = &data.points[k..];
    let mut rejected_secs = 0.0f64;
    let mut accepted_secs = 0.0f64;
    let mut replacements_before = sampler.replacements();
    let start = Instant::now();
    for p in candidates {
        let t0 = Instant::now();
        sampler.observe(*p);
        let dt = t0.elapsed().as_secs_f64();
        let replacements_now = sampler.replacements();
        if replacements_now == replacements_before {
            rejected_secs += dt;
        } else {
            accepted_secs += dt;
            replacements_before = replacements_now;
        }
    }
    let candidate_secs = start.elapsed().as_secs_f64().max(1e-9);
    let accepted = sampler.replacements();
    let candidate_tuples = candidates.len() as u64;
    let rejected = candidate_tuples - accepted;
    VariantResult {
        strategy: strategy.label().to_string(),
        inner_loop: if legacy { "legacy" } else { "optimized" }.to_string(),
        fill_secs,
        candidate_secs,
        rejected_secs,
        accepted_secs,
        candidate_tuples,
        accepted,
        rejected,
        tuples_per_sec: candidate_tuples as f64 / candidate_secs,
        rejected_per_sec: rejected as f64 / rejected_secs.max(1e-9),
        accepted_per_sec: accepted as f64 / accepted_secs.max(1e-9),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let baseline_only = args.iter().any(|a| a == "--baseline");
    if let Some(unknown) = args.iter().find(|a| *a != "--smoke" && *a != "--baseline") {
        eprintln!("unknown argument {unknown}; usage: fig10_inner_loop [--smoke] [--baseline]");
        std::process::exit(2);
    }

    // The paper-scale configuration: 1M Gaussian points, K = 10K. The smoke
    // configuration keeps the same shape at a size CI can afford.
    let (n, k) = if smoke {
        (20_000, 500)
    } else {
        (1_000_000, 10_000)
    };
    let mode = if smoke { "smoke" } else { "full" };
    eprintln!("[fig10_inner_loop] generating Gaussian dataset: n = {n}, K = {k}");
    let data = GaussianMixtureGenerator::paper_clustering_dataset(3, n, 20_160_518).generate();
    let epsilon = GaussianKernel::for_dataset(&data).bandwidth();
    let locality_threshold = VasConfig::new(k).locality_threshold;

    let mut variants = Vec::new();
    let mut speedups = Vec::new();
    for strategy in [
        InterchangeStrategy::ExpandShrink,
        InterchangeStrategy::ExpandShrinkLocality,
    ] {
        // The quadratic-ish full-scan ES variant dominates the full-size run
        // without adding information at K = 10K; measure it in smoke mode and
        // keep the 1M-point run focused on the headline ES+Loc comparison.
        if !smoke && strategy == InterchangeStrategy::ExpandShrink {
            continue;
        }
        let legacy = measure(&data, k, strategy, epsilon, true);
        eprintln!(
            "[fig10_inner_loop] {} legacy: {:.0} rejected tuples/s",
            legacy.strategy, legacy.rejected_per_sec
        );
        if baseline_only {
            variants.push(legacy);
            continue;
        }
        let optimized = measure(&data, k, strategy, epsilon, false);
        eprintln!(
            "[fig10_inner_loop] {} optimized: {:.0} rejected tuples/s",
            optimized.strategy, optimized.rejected_per_sec
        );
        assert_eq!(
            legacy.accepted, optimized.accepted,
            "legacy and optimized loops must make identical replacement decisions"
        );
        speedups.push(Speedup {
            strategy: strategy.label().to_string(),
            rejected_throughput_ratio: optimized.rejected_per_sec / legacy.rejected_per_sec,
            tuple_throughput_ratio: optimized.tuples_per_sec / legacy.tuples_per_sec,
        });
        variants.push(legacy);
        variants.push(optimized);
    }

    let mut table = ReportTable::new(
        format!("Interchange inner-loop throughput ({mode}: n = {n}, K = {k})"),
        &[
            "variant",
            "inner loop",
            "candidate tuples",
            "accepted",
            "rejected/s",
            "accepted/s",
            "tuples/s",
            "candidate time (s)",
        ],
    );
    for v in &variants {
        table.push_row(vec![
            v.strategy.clone(),
            v.inner_loop.clone(),
            v.candidate_tuples.to_string(),
            v.accepted.to_string(),
            fmt3(v.rejected_per_sec),
            fmt3(v.accepted_per_sec),
            fmt3(v.tuples_per_sec),
            fmt3(v.candidate_secs),
        ]);
    }
    let mut speedup_table = ReportTable::new(
        "Optimized vs legacy inner loop",
        &[
            "variant",
            "rejected-throughput ratio",
            "tuple-throughput ratio",
        ],
    );
    for s in &speedups {
        speedup_table.push_row(vec![
            s.strategy.clone(),
            format!("{:.2}x", s.rejected_throughput_ratio),
            format!("{:.2}x", s.tuple_throughput_ratio),
        ]);
    }
    emit("fig10_inner_loop", &[table, speedup_table]);

    let report = BenchReport {
        bench: "fig10_inner_loop".to_string(),
        mode: mode.to_string(),
        dataset: DatasetInfo {
            kind: "gaussian-mixture".to_string(),
            n,
            k,
            epsilon,
            locality_threshold,
        },
        variants,
        speedups,
    };
    let path = results_dir().join("BENCH_interchange.json");
    let json = serde_json::to_string_pretty(&report).expect("serialize bench report");
    std::fs::write(&path, json).expect("write BENCH_interchange.json");
    eprintln!("[machine-readable report written to {}]", path.display());
}
