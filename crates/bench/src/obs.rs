//! Shared observability-gate plumbing for the harness binaries.
//!
//! PR 8 wired the `--obs` overhead gate into `fig10_inner_loop` only; this
//! module hoists the pieces every harness needs so `geolife_scale` and
//! `fault_matrix` can grow their own `--obs` modes without re-implementing
//! them: a fully instrumented recorder bundle (registry + journal + tracer +
//! flight recorder), a JSON summary section for the BENCH artifacts, a
//! Chrome-trace export helper, and the trace validator the CI trace-harness
//! step runs against a recorded build.

use serde::Value;
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;
use vas_obs::{
    parse_chrome_trace, Counter, FlightRecorder, Journal, MetricsRegistry, Phase, Recorder,
    SpanRecord, Tracer,
};

/// A fully instrumented observability stack behind one [`Recorder`] handle:
/// typed counters + phase timers ([`MetricsRegistry`]), the JSONL event
/// [`Journal`], causal spans ([`Tracer`]) and the crash [`FlightRecorder`].
///
/// This is the maximal configuration — exactly what the overhead gates time
/// against [`Recorder::detached`].
#[derive(Debug)]
pub struct ObsBundle {
    /// Counter and phase-latency storage.
    pub registry: Arc<MetricsRegistry>,
    /// Append-only event journal (in memory).
    pub journal: Arc<Journal>,
    /// Hierarchical span collector.
    pub tracer: Arc<Tracer>,
    /// Bounded post-mortem ring of recent spans/events.
    pub flight: Arc<FlightRecorder>,
    /// The handle the stack records through.
    pub recorder: Recorder,
}

impl ObsBundle {
    /// Builds a fresh, fully instrumented bundle (timing on).
    pub fn new() -> Self {
        let registry = Arc::new(MetricsRegistry::new());
        let journal = Arc::new(Journal::in_memory());
        let tracer = Arc::new(Tracer::new());
        let flight = Arc::new(FlightRecorder::new());
        let recorder = Recorder::new(Arc::clone(&registry))
            .with_journal(Arc::clone(&journal))
            .with_timing(true)
            .with_tracer(Arc::clone(&tracer))
            .with_flight(Arc::clone(&flight));
        Self {
            registry,
            journal,
            tracer,
            flight,
            recorder,
        }
    }

    /// Summarizes the bundle into a JSON object suitable for merging into a
    /// BENCH artifact: non-zero counters, per-phase latency rows, journal
    /// line count, and span totals (recorded + dropped).
    pub fn section_value(&self) -> Value {
        let snap = self.registry.snapshot();
        let counters: Vec<(String, Value)> = Counter::ALL
            .iter()
            .filter(|&&c| snap.counter(c) > 0)
            .map(|&c| (c.name().to_string(), Value::Number(snap.counter(c) as f64)))
            .collect();
        let phases: Vec<Value> = Phase::ALL
            .iter()
            .filter(|&&p| snap.phase_calls(p) > 0)
            .map(|&p| {
                Value::Object(vec![
                    ("phase".to_string(), Value::String(p.name().to_string())),
                    (
                        "calls".to_string(),
                        Value::Number(snap.phase_calls(p) as f64),
                    ),
                    (
                        "total_ms".to_string(),
                        Value::Number(snap.phase_total_ns(p) as f64 / 1e6),
                    ),
                    (
                        "p99_us".to_string(),
                        Value::Number(snap.phase_percentile(p, 0.99) as f64 / 1e3),
                    ),
                ])
            })
            .collect();
        Value::Object(vec![
            ("counters".to_string(), Value::Object(counters)),
            ("phases".to_string(), Value::Array(phases)),
            (
                "journal_lines".to_string(),
                Value::Number(self.journal.lines().len() as f64),
            ),
            (
                "spans_recorded".to_string(),
                Value::Number(self.tracer.len() as f64),
            ),
            (
                "spans_dropped".to_string(),
                Value::Number(self.tracer.dropped() as f64),
            ),
        ])
    }

    /// Writes the tracer's spans as Chrome-trace JSON (load in Perfetto or
    /// `chrome://tracing`) and returns the rendered text.
    pub fn write_trace(&self, path: &Path) -> std::io::Result<String> {
        let text = self.tracer.to_chrome_trace();
        std::fs::write(path, &text)?;
        Ok(text)
    }
}

impl Default for ObsBundle {
    fn default() -> Self {
        Self::new()
    }
}

/// What [`validate_build_trace`] found in a recorded build trace.
#[derive(Debug, Clone)]
pub struct TraceCheck {
    /// Total spans parsed from the trace.
    pub spans: usize,
    /// `worker_task` spans (vas-par stripes and vas-core pre-eval workers).
    pub worker_spans: usize,
    /// Distinct thread ids that recorded at least one span.
    pub threads: usize,
}

/// Validates a Chrome-trace JSON export of a traced build: it must parse,
/// contain at least one root span whose name starts with `build`, and every
/// `worker_task` span must reach a build root through its parent chain —
/// the causal-tree acceptance criterion. Returns a summary on success and a
/// human-readable reason on failure.
pub fn validate_build_trace(trace_json: &str) -> Result<TraceCheck, String> {
    let spans = parse_chrome_trace(trace_json)?;
    if spans.is_empty() {
        return Err("trace contains no spans".to_string());
    }
    let by_id: HashMap<u64, usize> = spans.iter().enumerate().map(|(i, s)| (s.id, i)).collect();
    let reaches_build_root = |start: &SpanRecord| -> bool {
        // Parent chains are short (build -> chunk/batch -> worker); 64 hops
        // only guards against a cyclic or corrupted trace.
        let mut span = start;
        for _ in 0..64 {
            if span.parent.is_none() {
                return span.name.starts_with("build");
            }
            match span.parent.and_then(|p| by_id.get(&p)) {
                Some(&i) => span = &spans[i],
                None => return false,
            }
        }
        false
    };
    if !spans
        .iter()
        .any(|s| s.parent.is_none() && s.name.starts_with("build"))
    {
        return Err("trace has no build root span".to_string());
    }
    let workers: Vec<&SpanRecord> = spans.iter().filter(|s| s.name == "worker_task").collect();
    if workers.is_empty() {
        return Err("trace has no worker_task spans".to_string());
    }
    for w in &workers {
        if w.parent.is_none() {
            return Err(format!("worker_task span {} has no parent", w.id));
        }
        if !reaches_build_root(w) {
            return Err(format!(
                "worker_task span {} does not reach a build root through its parent chain",
                w.id
            ));
        }
    }
    let mut threads: Vec<u64> = spans.iter().map(|s| s.thread).collect();
    threads.sort_unstable();
    threads.dedup();
    Ok(TraceCheck {
        spans: spans.len(),
        worker_spans: workers.len(),
        threads: threads.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundle_records_through_every_layer() {
        let bundle = ObsBundle::new();
        bundle.recorder.inc(Counter::StreamChunksDecoded, 2);
        {
            let _span = bundle.recorder.root_span("build");
        }
        bundle.recorder.event("retry", &[]);
        let section = bundle.section_value();
        let counters = section.get("counters").unwrap();
        assert_eq!(
            counters.get("stream_chunks_decoded"),
            Some(&Value::Number(2.0))
        );
        assert_eq!(section.get("spans_recorded"), Some(&Value::Number(1.0)));
        assert_eq!(section.get("journal_lines"), Some(&Value::Number(1.0)));
        // The journal event was mirrored into the flight ring.
        assert!(!bundle.flight.is_empty());
    }

    #[test]
    fn validator_requires_parented_workers_under_a_build_root() {
        let bundle = ObsBundle::new();
        {
            let root = bundle.recorder.root_span("build_from_source");
            let ctx = root.context();
            let _worker = bundle.recorder.span_under("worker_task", ctx);
        }
        let ok = validate_build_trace(&bundle.tracer.to_chrome_trace()).unwrap();
        assert_eq!(ok.spans, 2);
        assert_eq!(ok.worker_spans, 1);

        // An orphaned worker (its own root) must fail validation.
        let orphaned = ObsBundle::new();
        {
            let _root = orphaned.recorder.root_span("build");
        }
        {
            let _worker = orphaned.tracer.span_under("worker_task", None);
        }
        let err = validate_build_trace(&orphaned.tracer.to_chrome_trace()).unwrap_err();
        assert!(err.contains("worker_task"), "unexpected reason: {err}");
    }

    #[test]
    fn validator_rejects_empty_and_rootless_traces() {
        assert!(validate_build_trace("{\"traceEvents\":[]}").is_err());
        let bundle = ObsBundle::new();
        {
            let _span = bundle.recorder.root_span("not_a_build");
        }
        let err = validate_build_trace(&bundle.tracer.to_chrome_trace()).unwrap_err();
        assert!(err.contains("no build root"), "unexpected reason: {err}");
    }
}
