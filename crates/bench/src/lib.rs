//! Shared infrastructure for the experiment harness binaries.
//!
//! Every table and figure of the paper has a dedicated binary in `src/bin/`
//! (see DESIGN.md for the index). They all produce the same kind of output:
//! a human-readable table on stdout, plus a machine-readable JSON copy and a
//! plain-text copy under `results/`. This module holds that plumbing so each
//! experiment file only contains experiment logic.

#![forbid(unsafe_code)]

pub mod diff;
pub mod obs;
pub mod timing;

pub use timing::{bitwise_eq, min_secs_of, TimingStats};

use serde::Serialize;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// A simple column-aligned text table.
#[derive(Debug, Clone, Serialize)]
pub struct ReportTable {
    /// Table title (figure/table number plus a description).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells, each row as long as `headers`.
    pub rows: Vec<Vec<String>>,
}

impl ReportTable {
    /// Creates an empty table with the given title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header count"
        );
        self.rows.push(cells);
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::new();
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(s, "{:<width$}  ", cell, width = widths[i]);
            }
            s.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + widths.len() * 2;
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }
}

/// Where experiment outputs are written (`results/` at the workspace root,
/// created on demand).
pub fn results_dir() -> PathBuf {
    let dir = workspace_root().join("results");
    fs::create_dir_all(&dir).expect("create results directory");
    dir
}

/// Best-effort workspace root: walk up from the current directory until a
/// `Cargo.toml` containing `[workspace]` is found; fall back to the current
/// directory.
pub fn workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.exists() {
            if let Ok(contents) = fs::read_to_string(&manifest) {
                if contents.contains("[workspace]") {
                    return dir;
                }
            }
        }
        if !dir.pop() {
            return std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        }
    }
}

/// Prints a table to stdout and persists both a `.txt` and a `.json` copy
/// under `results/<name>.*`.
pub fn emit(name: &str, tables: &[ReportTable]) {
    let mut text = String::new();
    for t in tables {
        text.push_str(&t.render());
        text.push('\n');
    }
    println!("{text}");
    let dir = results_dir();
    let _ = fs::write(dir.join(format!("{name}.txt")), &text);
    if let Ok(json) = serde_json::to_string_pretty(tables) {
        let _ = fs::write(dir.join(format!("{name}.json")), json);
    }
    eprintln!("[results written to {}/{name}.{{txt,json}}]", dir.display());
}

/// Merges one named section into `results/BENCH_parallel.json`, creating the
/// report if absent and replacing the section if it already exists. Both
/// `geolife_scale` and `fig10_inner_loop` contribute their `--threads` sweep
/// here, so one artifact carries the whole parallel-subsystem picture.
/// Returns the report path.
pub fn merge_parallel_section(section: &str, section_value: serde::Value) -> PathBuf {
    let path = results_dir().join("BENCH_parallel.json");
    merge_section_at(&path, section, section_value);
    path
}

/// [`merge_parallel_section`] against an explicit report path (exposed for
/// tests).
pub fn merge_section_at(path: &Path, section: &str, section_value: serde::Value) {
    use serde::Value;
    let mut root = fs::read_to_string(path)
        .ok()
        .and_then(|s| serde_json::from_str::<Value>(&s).ok())
        .filter(|v| matches!(v, Value::Object(_)))
        .unwrap_or_else(|| {
            Value::Object(vec![(
                "bench".to_string(),
                Value::String("parallel".to_string()),
            )])
        });
    if let Value::Object(fields) = &mut root {
        if !fields.iter().any(|(k, _)| k == "sections") {
            fields.push(("sections".to_string(), Value::Object(Vec::new())));
        }
        let sections = fields
            .iter_mut()
            .find(|(k, _)| k == "sections")
            .map(|(_, v)| v)
            .expect("sections object just ensured");
        if let Value::Object(entries) = sections {
            match entries.iter_mut().find(|(k, _)| k == section) {
                Some((_, v)) => *v = section_value,
                None => entries.push((section.to_string(), section_value)),
            }
        }
    }
    let json = serde_json::to_string_pretty(&root).expect("serialize BENCH_parallel.json");
    fs::write(path, json).expect("write BENCH_parallel.json");
}

/// Parses a comma-separated sweep list of positive counts (e.g. `1,2,4`)
/// for the flag named `flag` (used verbatim in error messages).
/// Deduplicates while keeping order. The one list-parsing implementation
/// behind every sweep flag (`--threads`, `--shards`) — new sweep flags
/// should wrap this instead of growing another copy.
pub fn parse_count_list(flag: &str, value: &str) -> Result<Vec<usize>, String> {
    let mut out = Vec::new();
    for part in value.split(',') {
        let t: usize = part
            .trim()
            .parse()
            .map_err(|_| format!("invalid count {part:?} in {flag} {value:?}"))?;
        if t == 0 {
            return Err(format!(
                "{flag} counts must be positive, got 0 in {value:?}"
            ));
        }
        if !out.contains(&t) {
            out.push(t);
        }
    }
    if out.is_empty() {
        return Err(format!("{flag} needs at least one count"));
    }
    Ok(out)
}

/// Parses a `--threads` sweep argument ([`parse_count_list`]).
pub fn parse_threads_list(value: &str) -> Result<Vec<usize>, String> {
    parse_count_list("--threads", value)
}

/// Parses a `--shards` sweep argument ([`parse_count_list`]).
pub fn parse_shards_list(value: &str) -> Result<Vec<usize>, String> {
    parse_count_list("--shards", value)
}

/// Formats a duration in seconds with millisecond resolution.
pub fn fmt_secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Formats a float with three significant-ish decimals.
pub fn fmt3(v: f64) -> String {
    if v.abs() >= 1000.0 || (v != 0.0 && v.abs() < 0.001) {
        format!("{v:.3e}")
    } else {
        format!("{v:.3}")
    }
}

/// Writes a PPM canvas into `results/plots/<name>.ppm`, returning the path.
pub fn save_plot(canvas: &vas_viz::Canvas, name: &str) -> PathBuf {
    let dir = results_dir().join("plots");
    fs::create_dir_all(&dir).expect("create plots directory");
    let path = dir.join(format!("{name}.ppm"));
    canvas.write_ppm(&path).expect("write plot");
    path
}

/// Ensures experiment binaries agree on one scaled "Geolife" dataset, so
/// results are comparable across figures. `n` lets heavy experiments request
/// a smaller slice.
pub fn geolife(n: usize) -> vas_data::Dataset {
    vas_data::GeolifeGenerator::with_size(n, 20_160_516).generate()
}

/// The scaled SPLOM projection used by Figure 2/4.
pub fn splom(n: usize) -> vas_data::Dataset {
    vas_data::SplomGenerator::with_size(n, 20_160_517).generate()
}

/// Returns `path` relative to the workspace root when possible (for tidy
/// log lines).
pub fn display_path(path: &Path) -> String {
    path.strip_prefix(workspace_root())
        .unwrap_or(path)
        .display()
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = ReportTable::new("Test", &["a", "method", "value"]);
        t.push_row(vec!["1".into(), "uniform".into(), "0.5".into()]);
        t.push_row(vec!["2".into(), "vas".into(), "0.25".into()]);
        let s = t.render();
        assert!(s.contains("# Test"));
        assert!(s.contains("uniform"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = ReportTable::new("Test", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt3(0.12345), "0.123");
        assert_eq!(fmt3(12345.0), "1.234e4");
        assert_eq!(fmt3(0.0), "0.000");
        assert_eq!(fmt_secs(std::time::Duration::from_millis(1500)), "1.500");
    }

    #[test]
    fn workspace_root_contains_workspace_manifest() {
        let root = workspace_root();
        let manifest = std::fs::read_to_string(root.join("Cargo.toml")).unwrap();
        assert!(manifest.contains("[workspace]"));
    }

    #[test]
    fn threads_list_parses_and_validates() {
        assert_eq!(parse_threads_list("1,2,4").unwrap(), vec![1, 2, 4]);
        assert_eq!(parse_threads_list(" 2 , 2 ,8").unwrap(), vec![2, 8]);
        assert!(parse_threads_list("0").is_err());
        assert!(parse_threads_list("two").is_err());
        assert!(parse_threads_list("").is_err());
    }

    #[test]
    fn count_list_names_the_flag_in_errors() {
        assert_eq!(parse_shards_list("1, 4,2").unwrap(), vec![1, 4, 2]);
        let err = parse_shards_list("0").unwrap_err();
        assert!(err.contains("--shards"), "unexpected error: {err}");
        let err = parse_threads_list("x").unwrap_err();
        assert!(err.contains("--threads"), "unexpected error: {err}");
    }

    #[test]
    fn parallel_sections_merge_and_replace() {
        use serde::Value;
        let path = std::env::temp_dir().join(format!(
            "vas-bench-parallel-test-{}.json",
            std::process::id()
        ));
        std::fs::remove_file(&path).ok();
        merge_section_at(
            &path,
            "test-section-a",
            Value::Object(vec![("v".to_string(), Value::Number(1.0))]),
        );
        merge_section_at(
            &path,
            "test-section-b",
            Value::Object(vec![("v".to_string(), Value::Number(2.0))]),
        );
        merge_section_at(
            &path,
            "test-section-a",
            Value::Object(vec![("v".to_string(), Value::Number(3.0))]),
        );
        let root: Value = serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        std::fs::remove_file(&path).ok();
        let sections = root.get("sections").unwrap();
        assert_eq!(
            sections.get("test-section-a").unwrap().get("v"),
            Some(&Value::Number(3.0))
        );
        assert_eq!(
            sections.get("test-section-b").unwrap().get("v"),
            Some(&Value::Number(2.0))
        );
    }

    #[test]
    fn shared_datasets_are_deterministic() {
        assert_eq!(geolife(100).points, geolife(100).points);
        assert_eq!(splom(100).points, splom(100).points);
    }
}
