//! End-to-end sampler throughput: how long each method takes to build a
//! sample of the same size over the same dataset, plus the density-embedding
//! second pass.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use vas_binned::{TilePyramid, TilePyramidConfig};
use vas_core::{embed_density, VasConfig, VasSampler};
use vas_data::GeolifeGenerator;
use vas_sampling::{PoissonDiskSampler, Sampler, StratifiedSampler, UniformSampler};

fn bench_samplers(c: &mut Criterion) {
    let data = GeolifeGenerator::with_size(20_000, 4).generate();
    let k = 500;
    let mut group = c.benchmark_group("samplers/build_k500_n20k");
    group.sample_size(10);

    group.bench_function("uniform", |b| {
        b.iter(|| black_box(UniformSampler::new(k, 1).sample_dataset(black_box(&data))))
    });
    group.bench_function("stratified", |b| {
        b.iter(|| {
            black_box(
                StratifiedSampler::square(k, data.bounds(), 10, 1).sample_dataset(black_box(&data)),
            )
        })
    });
    group.bench_function("vas_es_loc", |b| {
        b.iter(|| {
            black_box(
                VasSampler::from_dataset(&data, VasConfig::new(k)).sample_dataset(black_box(&data)),
            )
        })
    });
    group.bench_function("poisson_disk", |b| {
        b.iter(|| {
            black_box(
                PoissonDiskSampler::with_budget(k, data.bounds(), 1)
                    .sample_dataset(black_box(&data)),
            )
        })
    });
    group.bench_function("binned_pyramid_l8", |b| {
        b.iter(|| {
            black_box(TilePyramid::build(
                black_box(&data),
                TilePyramidConfig { max_level: 8 },
            ))
        })
    });
    group.finish();

    let sample = VasSampler::from_dataset(&data, VasConfig::new(k)).sample_dataset(&data);
    c.bench_function("samplers/density_embedding_pass", |b| {
        b.iter(|| black_box(embed_density(black_box(&sample), black_box(&data))))
    });
}

criterion_group!(benches, bench_samplers);
criterion_main!(benches);
