//! Micro-benchmarks of the spatial substrates: the three `LocalityIndex`
//! backends (R-tree, k-d tree, spatial hash) on the ES+Loc fixed-radius
//! query, plus the k-d tree's density-embedding nearest-neighbour query.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use vas_data::GeolifeGenerator;
use vas_spatial::{HashGrid, KdTree, LocalityIndex, RTree};

fn bench_rtree(c: &mut Criterion) {
    let data = GeolifeGenerator::with_size(20_000, 2).generate();
    let mut group = c.benchmark_group("spatial/rtree");
    for &n in &[1_000usize, 10_000] {
        let points = &data.points[..n];
        group.bench_with_input(BenchmarkId::new("build", n), &n, |b, _| {
            b.iter(|| black_box(RTree::from_entries(points.iter().copied().enumerate())))
        });
        let tree = RTree::from_entries(points.iter().copied().enumerate());
        let query = data.points[n / 2];
        let radius = data.bounds().diagonal() * 0.01;
        group.bench_with_input(BenchmarkId::new("query_radius", n), &n, |b, _| {
            b.iter(|| black_box(tree.query_radius(black_box(&query), radius)))
        });
        // The zero-allocation forms used by the Interchange hot loop.
        let mut buf = Vec::new();
        group.bench_with_input(BenchmarkId::new("query_radius_into", n), &n, |b, _| {
            b.iter(|| {
                tree.query_radius_into(black_box(&query), radius, &mut buf);
                black_box(buf.len())
            })
        });
        group.bench_with_input(BenchmarkId::new("for_each_in_radius", n), &n, |b, _| {
            b.iter(|| {
                let mut count = 0usize;
                tree.for_each_in_radius(black_box(&query), radius, |_, _| count += 1);
                black_box(count)
            })
        });
        group.bench_with_input(BenchmarkId::new("nearest", n), &n, |b, _| {
            b.iter(|| black_box(tree.nearest(black_box(&query))))
        });
    }
    group.finish();
}

fn bench_kdtree(c: &mut Criterion) {
    let data = GeolifeGenerator::with_size(20_000, 3).generate();
    let mut group = c.benchmark_group("spatial/kdtree");
    for &n in &[1_000usize, 10_000] {
        let points = &data.points[..n];
        group.bench_with_input(BenchmarkId::new("build", n), &n, |b, _| {
            b.iter(|| black_box(KdTree::from_points(points)))
        });
        let tree = KdTree::from_points(points);
        let query = data.points[data.len() - 1];
        group.bench_with_input(BenchmarkId::new("nearest", n), &n, |b, _| {
            b.iter(|| black_box(tree.nearest(black_box(&query))))
        });
    }
    group.finish();
}

fn bench_hashgrid(c: &mut Criterion) {
    let data = GeolifeGenerator::with_size(20_000, 4).generate();
    let mut group = c.benchmark_group("spatial/hashgrid");
    let radius = data.bounds().diagonal() * 0.01;
    for &n in &[1_000usize, 10_000] {
        let points = &data.points[..n];
        group.bench_with_input(BenchmarkId::new("build", n), &n, |b, _| {
            b.iter(|| {
                black_box(HashGrid::from_entries(
                    radius,
                    points.iter().copied().enumerate(),
                ))
            })
        });
        let grid = HashGrid::from_entries(radius, points.iter().copied().enumerate());
        let query = data.points[n / 2];
        group.bench_with_input(BenchmarkId::new("for_each_in_radius", n), &n, |b, _| {
            b.iter(|| {
                let mut count = 0usize;
                grid.for_each_in_radius(black_box(&query), radius, |_, _| count += 1);
                black_box(count)
            })
        });
        group.bench_with_input(BenchmarkId::new("churn", n), &n, |b, _| {
            let mut grid = HashGrid::from_entries(radius, points.iter().copied().enumerate());
            b.iter(|| {
                assert!(LocalityIndex::remove(&mut grid, n / 2, &query));
                LocalityIndex::insert(&mut grid, n / 2, query);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rtree, bench_kdtree, bench_hashgrid);
criterion_main!(benches);
