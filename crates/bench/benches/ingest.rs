//! Ingest-throughput micro-benchmarks: how fast points move through each
//! dataset format — the chunked columnar spill, CSV (streaming and
//! materializing), and the in-memory baseline — in both directions. A format
//! regression (extra copies, per-row allocation, buffering bugs) shows up
//! here before it shows up as a slow `geolife_scale` run.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::path::PathBuf;
use vas_data::io::{read_csv, write_csv};
use vas_data::GeolifeGenerator;
use vas_stream::{spill_dataset, ChunkedReader, CsvSource, DatasetSource, PointSource};

const CHUNK: usize = 8_192;

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("vas-bench-ingest-{}-{name}", std::process::id()))
}

/// Drains a source, returning the folded coordinate sum (defeats dead-code
/// elimination while touching every point).
fn drain<S: PointSource>(source: &mut S) -> (u64, f64) {
    let mut count = 0u64;
    let mut acc = 0.0f64;
    source
        .for_each_point(|p| {
            count += 1;
            acc += p.x + p.y;
        })
        .expect("scan");
    (count, acc)
}

fn bench_ingest(c: &mut Criterion) {
    let n = 50_000usize;
    let data = GeolifeGenerator::with_size(n, 6).generate();
    let csv_path = temp_path("scan.csv");
    let chunk_path = temp_path("scan.vaschunk");
    write_csv(&data, &csv_path).expect("write csv fixture");
    spill_dataset(&data, &chunk_path, CHUNK).expect("write chunked fixture");

    let mut group = c.benchmark_group("ingest/scan");
    group.bench_with_input(BenchmarkId::new("in-memory", n), &n, |b, _| {
        b.iter(|| {
            let mut source = DatasetSource::with_chunk_size(&data, CHUNK);
            black_box(drain(&mut source))
        })
    });
    group.bench_with_input(BenchmarkId::new("chunked-binary", n), &n, |b, _| {
        b.iter(|| {
            let mut source = ChunkedReader::open(&chunk_path).expect("open spill");
            black_box(drain(&mut source))
        })
    });
    group.bench_with_input(BenchmarkId::new("csv-streaming", n), &n, |b, _| {
        b.iter(|| {
            let mut source =
                CsvSource::open_with_chunk_size(&csv_path, "csv", CHUNK).expect("open csv");
            black_box(drain(&mut source))
        })
    });
    group.bench_with_input(BenchmarkId::new("csv-materializing", n), &n, |b, _| {
        b.iter(|| black_box(read_csv(&csv_path, "csv").expect("read csv").len()))
    });
    group.finish();

    let mut group = c.benchmark_group("ingest/write");
    let out_chunk = temp_path("out.vaschunk");
    group.bench_with_input(BenchmarkId::new("chunked-binary", n), &n, |b, _| {
        b.iter(|| {
            black_box(
                spill_dataset(&data, &out_chunk, CHUNK)
                    .expect("spill")
                    .count,
            )
        })
    });
    let out_csv = temp_path("out.csv");
    group.bench_with_input(BenchmarkId::new("csv", n), &n, |b, _| {
        b.iter(|| {
            write_csv(&data, &out_csv).expect("write csv");
            black_box(())
        })
    });
    group.finish();

    for p in [csv_path, chunk_path, out_chunk, out_csv] {
        std::fs::remove_file(p).ok();
    }
}

criterion_group!(benches, bench_ingest);
criterion_main!(benches);
