//! Per-tuple cost of the Interchange inner loop for each strategy — the
//! micro-benchmark behind the Figure 10 ablation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use vas_core::{GaussianKernel, InterchangeStrategy, Kernel, VasConfig, VasSampler};
use vas_data::GeolifeGenerator;
use vas_sampling::Sampler;

fn bench_observe(c: &mut Criterion) {
    let data = GeolifeGenerator::with_size(20_000, 5).generate();
    let epsilon = GaussianKernel::for_dataset(&data).bandwidth();

    let mut group = c.benchmark_group("interchange/per_tuple");
    group.sample_size(10);
    for &k in &[100usize, 1_000] {
        for strategy in [
            InterchangeStrategy::Naive,
            InterchangeStrategy::ExpandShrink,
            InterchangeStrategy::ExpandShrinkLocality,
        ] {
            // The quadratic variant at K = 1000 is exactly the case the paper
            // avoids; skip it to keep the benchmark suite fast.
            if strategy == InterchangeStrategy::Naive && k > 100 {
                continue;
            }
            group.bench_with_input(
                BenchmarkId::new(strategy.label().replace(' ', "_"), k),
                &k,
                |b, _| {
                    // Pre-fill the sampler so every measured observation hits
                    // the candidate (replacement-test) path.
                    let mut sampler = VasSampler::from_dataset(
                        &data,
                        VasConfig::new(k)
                            .with_strategy(strategy)
                            .with_epsilon(epsilon),
                    );
                    for p in data.points.iter().take(k) {
                        sampler.observe(*p);
                    }
                    let candidates = &data.points[k..k + 2_000];
                    let mut idx = 0usize;
                    b.iter(|| {
                        sampler.observe(black_box(candidates[idx % candidates.len()]));
                        idx += 1;
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_observe);
criterion_main!(benches);
