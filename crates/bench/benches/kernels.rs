//! Micro-benchmarks of the proximity kernels and of the objective /
//! responsibility reference implementations — the innermost operations of the
//! Interchange algorithm.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use vas_core::{objective, responsibilities, GaussianKernel, Kernel};
use vas_data::{GeolifeGenerator, Point};

fn bench_kernel_eval(c: &mut Criterion) {
    let kernel = GaussianKernel::new(0.02);
    let a = Point::new(116.40, 39.90);
    let b = Point::new(116.41, 39.91);
    c.bench_function("kernel/gaussian_eval", |bencher| {
        bencher.iter(|| black_box(kernel.eval(black_box(&a), black_box(&b))))
    });
    c.bench_function("kernel/gaussian_eval_dist2", |bencher| {
        bencher.iter(|| black_box(kernel.eval_dist2(black_box(2.0e-4))))
    });
}

fn bench_objective(c: &mut Criterion) {
    let data = GeolifeGenerator::with_size(4_000, 1).generate();
    let kernel = GaussianKernel::for_dataset(&data);
    let mut group = c.benchmark_group("kernel/objective");
    for &n in &[100usize, 400, 1_600] {
        let points = &data.points[..n];
        group.bench_with_input(BenchmarkId::new("pairwise_objective", n), &n, |b, _| {
            b.iter(|| black_box(objective(&kernel, black_box(points))))
        });
        group.bench_with_input(BenchmarkId::new("responsibilities", n), &n, |b, _| {
            b.iter(|| black_box(responsibilities(&kernel, black_box(points))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernel_eval, bench_objective);
criterion_main!(benches);
