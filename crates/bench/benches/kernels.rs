//! Micro-benchmarks of the proximity kernels and of the objective /
//! responsibility reference implementations — the innermost operations of the
//! Interchange algorithm.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use vas_core::{objective, responsibilities, GaussianKernel, Kernel};
use vas_data::{GeolifeGenerator, Point};

fn bench_kernel_eval(c: &mut Criterion) {
    let kernel = GaussianKernel::new(0.02);
    let a = Point::new(116.40, 39.90);
    let b = Point::new(116.41, 39.91);
    c.bench_function("kernel/gaussian_eval", |bencher| {
        bencher.iter(|| black_box(kernel.eval(black_box(&a), black_box(&b))))
    });
    c.bench_function("kernel/gaussian_eval_dist2", |bencher| {
        bencher.iter(|| black_box(kernel.eval_dist2(black_box(2.0e-4))))
    });
}

/// Scalar `eval_dist2` loop vs the batched `eval_dist2_batch` lane sweep over
/// the same distance buffer, at neighbourhood-like lane counts (a converged
/// sample's gather is a few dozen lanes; 1024 shows the asymptote).
fn bench_kernel_batch(c: &mut Criterion) {
    let kernel = GaussianKernel::new(0.02);
    let mut group = c.benchmark_group("kernel/batch");
    for &lanes in &[16usize, 90, 1_024] {
        let dist2: Vec<f64> = (0..lanes).map(|i| 1.0e-5 * (i as f64 + 0.5)).collect();
        let mut out = vec![0.0f64; lanes];
        group.bench_with_input(BenchmarkId::new("scalar_loop", lanes), &lanes, |b, _| {
            b.iter(|| {
                for (o, &d2) in out.iter_mut().zip(black_box(&dist2)) {
                    *o = kernel.eval_dist2(d2);
                }
                black_box(&mut out);
            })
        });
        group.bench_with_input(BenchmarkId::new("batched_lanes", lanes), &lanes, |b, _| {
            b.iter(|| {
                kernel.eval_dist2_batch(black_box(&dist2), &mut out);
                black_box(&mut out);
            })
        });
    }
    group.finish();
}

fn bench_objective(c: &mut Criterion) {
    let data = GeolifeGenerator::with_size(4_000, 1).generate();
    let kernel = GaussianKernel::for_dataset(&data);
    let mut group = c.benchmark_group("kernel/objective");
    for &n in &[100usize, 400, 1_600] {
        let points = &data.points[..n];
        group.bench_with_input(BenchmarkId::new("pairwise_objective", n), &n, |b, _| {
            b.iter(|| black_box(objective(&kernel, black_box(points))))
        });
        group.bench_with_input(BenchmarkId::new("responsibilities", n), &n, |b, _| {
            b.iter(|| black_box(responsibilities(&kernel, black_box(points))))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_kernel_eval,
    bench_kernel_batch,
    bench_objective
);
criterion_main!(benches);
