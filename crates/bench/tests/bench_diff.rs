//! End-to-end tests of the `bench_diff` regression sentinel binary: the
//! acceptance criterion is that a synthetic regressed artifact makes the
//! process exit non-zero and name the offending metric in
//! `BENCH_regressions.json`.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

struct TempDirs {
    root: PathBuf,
}

impl TempDirs {
    fn new(tag: &str) -> Self {
        let root =
            std::env::temp_dir().join(format!("vas-bench-diff-{tag}-{}", std::process::id()));
        fs::remove_dir_all(&root).ok();
        fs::create_dir_all(root.join("baseline")).unwrap();
        fs::create_dir_all(root.join("current")).unwrap();
        Self { root }
    }

    fn baseline(&self) -> PathBuf {
        self.root.join("baseline")
    }

    fn current(&self) -> PathBuf {
        self.root.join("current")
    }

    fn out(&self) -> PathBuf {
        self.root.join("BENCH_regressions.json")
    }
}

impl Drop for TempDirs {
    fn drop(&mut self) {
        fs::remove_dir_all(&self.root).ok();
    }
}

fn write(dir: &Path, name: &str, json: &str) {
    fs::write(dir.join(name), json).unwrap();
}

fn run(dirs: &TempDirs, extra: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_bench_diff"))
        .arg("--baseline")
        .arg(dirs.baseline())
        .arg("--current")
        .arg(dirs.current())
        .arg("--out")
        .arg(dirs.out())
        .args(extra)
        .output()
        .expect("run bench_diff")
}

#[test]
fn identical_generations_pass_with_zero_exit() {
    let dirs = TempDirs::new("ok");
    let artifact = r#"{"bench":"x","overhead_ratio":0.01,"overhead_ok":true,"secs":2.0}"#;
    write(&dirs.baseline(), "BENCH_x.json", artifact);
    write(&dirs.current(), "BENCH_x.json", artifact);
    let out = run(&dirs, &[]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report: serde::Value =
        serde_json::from_str(&fs::read_to_string(dirs.out()).unwrap()).unwrap();
    assert_eq!(report.get("ok"), Some(&serde::Value::Bool(true)));
    assert_eq!(
        report.get("total_regressions"),
        Some(&serde::Value::Number(0.0))
    );
}

#[test]
fn synthetic_regression_exits_non_zero_and_names_the_metric() {
    let dirs = TempDirs::new("regressed");
    write(
        &dirs.baseline(),
        "BENCH_x.json",
        r#"{"bit_identical":true,"overhead_ratio":0.01,"overhead_ok":true}"#,
    );
    // Two regressions: the boolean gate flips and the overhead ratio blows
    // far past tolerance + slack.
    write(
        &dirs.current(),
        "BENCH_x.json",
        r#"{"bit_identical":false,"overhead_ratio":0.40,"overhead_ok":true}"#,
    );
    let out = run(&dirs, &[]);
    assert_eq!(out.status.code(), Some(1), "expected the gate to fail");
    let report: serde::Value =
        serde_json::from_str(&fs::read_to_string(dirs.out()).unwrap()).unwrap();
    assert_eq!(report.get("ok"), Some(&serde::Value::Bool(false)));
    assert_eq!(
        report.get("total_regressions"),
        Some(&serde::Value::Number(2.0))
    );
    let text = fs::read_to_string(dirs.out()).unwrap();
    assert!(text.contains("bit_identical"));
    assert!(text.contains("overhead_ratio"));
}

#[test]
fn missing_current_artifact_fails_the_gate() {
    let dirs = TempDirs::new("missing");
    write(&dirs.baseline(), "BENCH_gone.json", r#"{"ok":true}"#);
    let out = run(&dirs, &[]);
    assert_eq!(out.status.code(), Some(1));
    let text = fs::read_to_string(dirs.out()).unwrap();
    assert!(text.contains("missing or unparseable"));
}

#[test]
fn tolerance_flag_widens_the_band() {
    let dirs = TempDirs::new("tolerance");
    write(&dirs.baseline(), "BENCH_x.json", r#"{"speedup_vs_1":2.0}"#);
    write(&dirs.current(), "BENCH_x.json", r#"{"speedup_vs_1":1.2}"#);
    // A 40% drop regresses under the default 25% band...
    let out = run(&dirs, &[]);
    assert_eq!(out.status.code(), Some(1));
    // ...but passes when the caller asks for a 50% band.
    let out = run(&dirs, &["--tolerance", "0.5"]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn bad_usage_exits_with_two() {
    let out = Command::new(env!("CARGO_BIN_EXE_bench_diff"))
        .arg("--baseline")
        .output()
        .expect("run bench_diff");
    assert_eq!(out.status.code(), Some(2));
    let out = Command::new(env!("CARGO_BIN_EXE_bench_diff"))
        .output()
        .expect("run bench_diff");
    assert_eq!(out.status.code(), Some(2));
}
