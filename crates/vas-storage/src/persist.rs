//! Persistence of sample catalogs.
//!
//! The paper treats VAS samples as an *offline index*: built once, stored in
//! the database and queried many times (Section II-B/D). This module gives
//! the catalog a durable form so the expensive construction step does not
//! have to be repeated across process restarts: each catalog is written as a
//! small JSON manifest plus one compact binary file of little-endian `f64`
//! triples (x, y, value) — and optional `u64` density counters — per sample.

use crate::catalog::SampleCatalog;
use serde::{Deserialize, Serialize};
use std::fs::{self, File};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use vas_data::Point;
use vas_sampling::Sample;

/// Manifest entry describing one persisted sample.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ManifestEntry {
    method: String,
    target_size: usize,
    len: usize,
    has_densities: bool,
    file: String,
}

/// Manifest describing a persisted catalog.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Manifest {
    version: u32,
    samples: Vec<ManifestEntry>,
}

const MANIFEST_VERSION: u32 = 1;
const MANIFEST_FILE: &str = "catalog.json";

/// Writes a catalog into `dir` (created if needed). Any previous catalog in
/// the same directory is overwritten.
pub fn save_catalog(catalog: &SampleCatalog, dir: impl AsRef<Path>) -> io::Result<()> {
    let dir = dir.as_ref();
    fs::create_dir_all(dir)?;
    let mut manifest = Manifest {
        version: MANIFEST_VERSION,
        samples: Vec::new(),
    };
    for (i, sample) in catalog.samples().iter().enumerate() {
        let file = format!("sample_{i:03}_{}.bin", sample.len());
        write_sample(sample, &dir.join(&file))?;
        manifest.samples.push(ManifestEntry {
            method: sample.method.clone(),
            target_size: sample.target_size,
            len: sample.len(),
            has_densities: sample.has_densities(),
            file,
        });
    }
    let json = serde_json::to_string_pretty(&manifest)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    fs::write(dir.join(MANIFEST_FILE), json)
}

/// Loads a catalog previously written by [`save_catalog`].
pub fn load_catalog(dir: impl AsRef<Path>) -> io::Result<SampleCatalog> {
    let dir = dir.as_ref();
    let manifest: Manifest = serde_json::from_str(&fs::read_to_string(dir.join(MANIFEST_FILE))?)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    if manifest.version != MANIFEST_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported catalog version {}", manifest.version),
        ));
    }
    let mut catalog = SampleCatalog::new();
    for entry in &manifest.samples {
        let sample = read_sample(&dir.join(&entry.file), entry)?;
        catalog.insert(sample);
    }
    Ok(catalog)
}

/// Path of the manifest inside a catalog directory (exposed for tooling).
pub fn manifest_path(dir: impl AsRef<Path>) -> PathBuf {
    dir.as_ref().join(MANIFEST_FILE)
}

fn write_sample(sample: &Sample, path: &Path) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    for p in &sample.points {
        w.write_all(&p.x.to_le_bytes())?;
        w.write_all(&p.y.to_le_bytes())?;
        w.write_all(&p.value.to_le_bytes())?;
    }
    if let Some(densities) = &sample.densities {
        for d in densities {
            w.write_all(&d.to_le_bytes())?;
        }
    }
    w.flush()
}

fn read_sample(path: &Path, entry: &ManifestEntry) -> io::Result<Sample> {
    let mut r = BufReader::new(File::open(path)?);
    let mut points = Vec::with_capacity(entry.len);
    let mut buf = [0u8; 8];
    for _ in 0..entry.len {
        let mut coords = [0.0f64; 3];
        for c in &mut coords {
            r.read_exact(&mut buf)?;
            *c = f64::from_le_bytes(buf);
        }
        points.push(Point::with_value(coords[0], coords[1], coords[2]));
    }
    let mut sample = Sample::new(entry.method.clone(), entry.target_size, points);
    if entry.has_densities {
        let mut densities = Vec::with_capacity(entry.len);
        for _ in 0..entry.len {
            r.read_exact(&mut buf)?;
            densities.push(u64::from_le_bytes(buf));
        }
        sample = sample.with_densities(densities);
    }
    // Trailing garbage means the file does not match the manifest.
    if r.read(&mut buf)? != 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "sample file {} is larger than its manifest entry",
                path.display()
            ),
        ));
    }
    Ok(sample)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vas_data::GeolifeGenerator;
    use vas_sampling::{Sampler, UniformSampler};

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("vas-persist-{}-{name}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn catalog_with_densities() -> SampleCatalog {
        let d = GeolifeGenerator::with_size(3_000, 71).generate();
        let mut catalog = SampleCatalog::new();
        for k in [50usize, 200] {
            let sample = UniformSampler::new(k, 1).sample_dataset(&d);
            let counts = vas_core::embed_density(&sample, &d);
            catalog.insert(sample.with_densities(counts));
        }
        catalog.insert(UniformSampler::new(500, 2).sample_dataset(&d));
        catalog
    }

    #[test]
    fn round_trip_preserves_everything() {
        let dir = temp_dir("roundtrip");
        let catalog = catalog_with_densities();
        save_catalog(&catalog, &dir).unwrap();
        assert!(manifest_path(&dir).exists());

        let loaded = load_catalog(&dir).unwrap();
        assert_eq!(loaded.sizes(), catalog.sizes());
        for (a, b) in loaded.samples().iter().zip(catalog.samples()) {
            assert_eq!(a.points, b.points);
            assert_eq!(a.densities, b.densities);
            assert_eq!(a.method, b.method);
            assert_eq!(a.target_size, b.target_size);
        }
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn save_overwrites_previous_catalog() {
        let dir = temp_dir("overwrite");
        let catalog = catalog_with_densities();
        save_catalog(&catalog, &dir).unwrap();
        // Save a smaller catalog on top and reload: only the new contents remain.
        let d = GeolifeGenerator::with_size(500, 3).generate();
        let mut small = SampleCatalog::new();
        small.insert(UniformSampler::new(10, 1).sample_dataset(&d));
        save_catalog(&small, &dir).unwrap();
        let loaded = load_catalog(&dir).unwrap();
        assert_eq!(loaded.sizes(), vec![10]);
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn missing_directory_is_an_error() {
        assert!(load_catalog("/definitely/not/a/real/catalog/dir").is_err());
    }

    #[test]
    fn corrupted_manifest_is_an_error() {
        let dir = temp_dir("corrupt");
        fs::write(manifest_path(&dir), "not json at all").unwrap();
        let err = load_catalog(&dir).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn truncated_sample_file_is_an_error() {
        let dir = temp_dir("truncated");
        let catalog = catalog_with_densities();
        save_catalog(&catalog, &dir).unwrap();
        // Truncate the first sample file.
        let manifest: Manifest =
            serde_json::from_str(&fs::read_to_string(manifest_path(&dir)).unwrap()).unwrap();
        let victim = dir.join(&manifest.samples[0].file);
        let bytes = fs::read(&victim).unwrap();
        fs::write(&victim, &bytes[..bytes.len() / 2]).unwrap();
        assert!(load_catalog(&dir).is_err());
        fs::remove_dir_all(dir).ok();
    }
}
