//! Persistence of sample catalogs.
//!
//! The paper treats VAS samples as an *offline index*: built once, stored in
//! the database and queried many times (Section II-B/D). This module gives
//! the catalog a durable form so the expensive construction step does not
//! have to be repeated across process restarts.
//!
//! Format version 2: each catalog is a small JSON manifest plus one
//! **chunked columnar file** (`vas-stream`'s `.vaschunk` spill format —
//! provenance header, then `x`/`y`/`value` column chunks) per sample, with
//! density counters in a raw little-endian `u64` sidecar when present.
//! Catalog persistence and dataset spill therefore share a single codec:
//! one set of round-trip/corruption guarantees, one place to evolve the
//! on-disk layout. Version-1 catalogs (headerless `f64` triples with
//! densities appended in the same file) remain readable.
//!
//! All writes are crash-safe: each file is staged as a temp sibling,
//! fsync'd and renamed over the target (`vas_stream::write_atomic`), and
//! the manifest is written last as the commit point of the whole save.
//! Failures surface as typed [`vas_stream::VasError`] values.

use crate::catalog::SampleCatalog;
use serde::{Deserialize, Serialize};
use std::fs::{self, File};
use std::io::{BufReader, Read};
use std::path::{Path, PathBuf};
use std::time::Instant;
use vas_data::{DatasetKind, Point};
use vas_obs::{Counter, Phase, Recorder};
use vas_sampling::Sample;
use vas_stream::{
    commit_staged, staging_sibling, write_atomic, ChunkedReader, ChunkedWriter, VasError,
};

/// Manifest entry describing one persisted sample (format version 2).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ManifestEntry {
    method: String,
    target_size: usize,
    len: usize,
    /// Chunked columnar file holding the sample points.
    file: String,
    /// Raw little-endian `u64` sidecar holding the density counters, when
    /// the density-embedding pass has been run.
    density_file: Option<String>,
}

/// Manifest describing a persisted catalog (format version 2).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Manifest {
    version: u32,
    samples: Vec<ManifestEntry>,
}

/// Just the version field, parsed first so the right reader can be chosen.
#[derive(Debug, Clone, Deserialize)]
struct ManifestProbe {
    version: u32,
}

/// Manifest entry of the legacy (version 1) format: one headerless binary
/// file of `f64` (x, y, value) triples, densities appended in-file.
#[derive(Debug, Clone, Deserialize)]
struct LegacyManifestEntry {
    method: String,
    target_size: usize,
    len: usize,
    has_densities: bool,
    file: String,
}

#[derive(Debug, Clone, Deserialize)]
struct LegacyManifest {
    samples: Vec<LegacyManifestEntry>,
}

const MANIFEST_VERSION: u32 = 2;
const LEGACY_MANIFEST_VERSION: u32 = 1;
const MANIFEST_FILE: &str = "catalog.json";
/// Chunk size used for persisted samples. Samples are `K`-sized (10⁴-ish),
/// so a few chunks per file; small enough that partial reads stay cheap.
const SAMPLE_CHUNK_SIZE: usize = 4_096;

/// Deletes every sample file referenced by an existing manifest in `dir`
/// (either format version), so a re-save never strands orphaned sample data
/// from a previous — possibly differently-named or legacy-format — catalog.
/// Unreadable or unparsable manifests are ignored: the save then simply
/// overwrites what it can.
fn remove_previous_catalog_files(dir: &Path) {
    let Ok(text) = fs::read_to_string(dir.join(MANIFEST_FILE)) else {
        return;
    };
    let mut stale: Vec<String> = Vec::new();
    if let Ok(manifest) = serde_json::from_str::<Manifest>(&text) {
        for entry in manifest.samples {
            stale.push(entry.file);
            stale.extend(entry.density_file);
        }
    } else if let Ok(manifest) = serde_json::from_str::<LegacyManifest>(&text) {
        for entry in manifest.samples {
            stale.push(entry.file);
        }
    }
    for file in stale {
        fs::remove_file(dir.join(file)).ok();
    }
}

/// Streams one sample into its chunked columnar file via a staged sibling,
/// promoted over the target only after the writer has fsync'd (the
/// `write_atomic` protocol for streamed files). On error the staging file is
/// removed and the target is untouched.
fn write_sample_chunk(target: &Path, sample: &Sample) -> Result<(), VasError> {
    let tmp = staging_sibling(target);
    let result = (|| {
        let mut writer = ChunkedWriter::create(
            &tmp,
            &sample.method,
            DatasetKind::External,
            SAMPLE_CHUNK_SIZE,
        )?;
        writer.write_points(&sample.points)?;
        writer.finish()?;
        commit_staged(&tmp, target)
    })();
    if result.is_err() {
        fs::remove_file(&tmp).ok();
    }
    result.map_err(|e| VasError::io(format!("persisting sample to {}", target.display()), e))
}

/// Writes a catalog into `dir` (created if needed). Any previous catalog in
/// the same directory is overwritten — including its sample files, which are
/// removed first so stale data cannot accumulate across saves or format
/// migrations. Always writes the current (version 2, chunked columnar)
/// format.
///
/// Every file — sample chunks, density sidecars, and finally the manifest —
/// is replaced atomically (temp + fsync + rename). The manifest is written
/// **last**, so it is the commit point of the save: a crash mid-save leaves
/// the previous manifest referencing the previous (still intact) files,
/// never a manifest pointing at torn data.
pub fn save_catalog(catalog: &SampleCatalog, dir: impl AsRef<Path>) -> Result<(), VasError> {
    save_catalog_recorded(catalog, dir, &Recorder::detached())
}

/// [`save_catalog`] with a [`Recorder`]: the save's wall-clock feeds the
/// `persist_save` phase when timing is enabled, and reaching the manifest
/// commit point counts `storage_persist_commits` and appends a
/// `persist_commit` journal event.
pub fn save_catalog_recorded(
    catalog: &SampleCatalog,
    dir: impl AsRef<Path>,
    recorder: &Recorder,
) -> Result<(), VasError> {
    let started = recorder.timing_enabled().then(Instant::now);
    let result = {
        let mut span = recorder.span("persist_commit");
        span.attr("samples", catalog.len());
        save_catalog_inner(catalog, dir.as_ref())
    };
    if let Some(t0) = started {
        recorder.record_phase_ns(Phase::PersistSave, t0.elapsed().as_nanos() as u64);
    }
    if result.is_ok() {
        recorder.inc(Counter::StoragePersistCommits, 1);
        recorder.event(
            "persist_commit",
            &[
                ("dir", dir.as_ref().display().to_string().as_str().into()),
                ("samples", (catalog.len() as u64).into()),
            ],
        );
    }
    result
}

fn save_catalog_inner(catalog: &SampleCatalog, dir: &Path) -> Result<(), VasError> {
    fs::create_dir_all(dir)
        .map_err(|e| VasError::io(format!("creating catalog dir {}", dir.display()), e))?;
    remove_previous_catalog_files(dir);
    let mut manifest = Manifest {
        version: MANIFEST_VERSION,
        samples: Vec::new(),
    };
    for (i, sample) in catalog.samples().iter().enumerate() {
        let file = format!("sample_{i:03}_{}.vaschunk", sample.len());
        write_sample_chunk(&dir.join(&file), sample)?;
        let density_file = match &sample.densities {
            Some(densities) => {
                let name = format!("sample_{i:03}_{}.density.bin", sample.len());
                let mut bytes = Vec::with_capacity(densities.len() * 8);
                for d in densities {
                    bytes.extend_from_slice(&d.to_le_bytes());
                }
                write_atomic(dir.join(&name), &bytes)
                    .map_err(|e| VasError::io(format!("persisting density sidecar {name}"), e))?;
                Some(name)
            }
            None => None,
        };
        manifest.samples.push(ManifestEntry {
            method: sample.method.clone(),
            target_size: sample.target_size,
            len: sample.len(),
            file,
            density_file,
        });
    }
    let json = serde_json::to_string_pretty(&manifest).map_err(|e| VasError::Corrupt {
        path: manifest_path(dir).display().to_string(),
        detail: format!("manifest serialization failed: {e}"),
    })?;
    write_atomic(manifest_path(dir), json.as_bytes())
        .map_err(|e| VasError::io("persisting catalog manifest", e))
}

/// Loads a catalog previously written by [`save_catalog`] — either the
/// current chunked columnar format or the legacy version-1 triple files.
/// Every failure mode (missing files, malformed JSON, version skew,
/// truncated or oversized sample data) surfaces as a typed [`VasError`].
pub fn load_catalog(dir: impl AsRef<Path>) -> Result<SampleCatalog, VasError> {
    let dir = dir.as_ref();
    let manifest_file = manifest_path(dir);
    let manifest_text = fs::read_to_string(&manifest_file)
        .map_err(|e| VasError::io(format!("reading manifest {}", manifest_file.display()), e))?;
    let corrupt = |detail: String| VasError::Corrupt {
        path: manifest_file.display().to_string(),
        detail,
    };
    let probe: ManifestProbe = serde_json::from_str(&manifest_text)
        .map_err(|e| corrupt(format!("manifest is not valid JSON: {e}")))?;
    match probe.version {
        MANIFEST_VERSION => {
            let manifest: Manifest = serde_json::from_str(&manifest_text)
                .map_err(|e| corrupt(format!("malformed version-2 manifest: {e}")))?;
            let mut catalog = SampleCatalog::new();
            for entry in &manifest.samples {
                catalog.insert(read_sample(dir, entry)?);
            }
            Ok(catalog)
        }
        LEGACY_MANIFEST_VERSION => {
            let manifest: LegacyManifest = serde_json::from_str(&manifest_text)
                .map_err(|e| corrupt(format!("malformed version-1 manifest: {e}")))?;
            let mut catalog = SampleCatalog::new();
            for entry in &manifest.samples {
                catalog.insert(read_sample_v1(&dir.join(&entry.file), entry)?);
            }
            Ok(catalog)
        }
        other => Err(VasError::UnsupportedVersion {
            path: manifest_file.display().to_string(),
            found: other,
            supported: &[LEGACY_MANIFEST_VERSION, MANIFEST_VERSION],
        }),
    }
}

/// Path of the manifest inside a catalog directory (exposed for tooling).
pub fn manifest_path(dir: impl AsRef<Path>) -> PathBuf {
    dir.as_ref().join(MANIFEST_FILE)
}

fn read_sample(dir: &Path, entry: &ManifestEntry) -> Result<Sample, VasError> {
    let path = dir.join(&entry.file);
    let open_err = |e| VasError::io(format!("opening sample file {}", path.display()), e);
    let dataset = ChunkedReader::open(&path)
        .map_err(open_err)?
        .read_dataset()
        .map_err(|e| VasError::io(format!("reading sample file {}", path.display()), e))?;
    if dataset.len() != entry.len {
        return Err(VasError::Mismatch {
            expected: format!("{} points (manifest)", entry.len),
            found: format!("{} points in {}", dataset.len(), path.display()),
        });
    }
    let mut sample = Sample::new(entry.method.clone(), entry.target_size, dataset.points);
    if let Some(density_file) = &entry.density_file {
        let path = dir.join(density_file);
        let sidecar_err =
            |e| VasError::io(format!("reading density sidecar {}", path.display()), e);
        let mut r = BufReader::new(File::open(&path).map_err(sidecar_err)?);
        let mut densities = Vec::with_capacity(entry.len);
        let mut buf = [0u8; 8];
        for _ in 0..entry.len {
            r.read_exact(&mut buf).map_err(sidecar_err)?;
            densities.push(u64::from_le_bytes(buf));
        }
        if r.read(&mut buf).map_err(sidecar_err)? != 0 {
            return Err(VasError::Corrupt {
                path: path.display().to_string(),
                detail: "density sidecar is larger than its manifest entry".into(),
            });
        }
        sample = sample.with_densities(densities);
    }
    Ok(sample)
}

/// Reader for the legacy (version 1) sample files: `entry.len` little-endian
/// `f64` (x, y, value) triples, then `entry.len` `u64` density counters when
/// `has_densities` is set.
fn read_sample_v1(path: &Path, entry: &LegacyManifestEntry) -> Result<Sample, VasError> {
    let read_err = |e| VasError::io(format!("reading legacy sample file {}", path.display()), e);
    let mut r = BufReader::new(File::open(path).map_err(read_err)?);
    let mut points = Vec::with_capacity(entry.len);
    let mut buf = [0u8; 8];
    for _ in 0..entry.len {
        let mut coords = [0.0f64; 3];
        for c in &mut coords {
            r.read_exact(&mut buf).map_err(read_err)?;
            *c = f64::from_le_bytes(buf);
        }
        points.push(Point::with_value(coords[0], coords[1], coords[2]));
    }
    let mut sample = Sample::new(entry.method.clone(), entry.target_size, points);
    if entry.has_densities {
        let mut densities = Vec::with_capacity(entry.len);
        for _ in 0..entry.len {
            r.read_exact(&mut buf).map_err(read_err)?;
            densities.push(u64::from_le_bytes(buf));
        }
        sample = sample.with_densities(densities);
    }
    // Trailing garbage means the file does not match the manifest.
    if r.read(&mut buf).map_err(read_err)? != 0 {
        return Err(VasError::Corrupt {
            path: path.display().to_string(),
            detail: "legacy sample file is larger than its manifest entry".into(),
        });
    }
    Ok(sample)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufWriter, Write};
    use vas_data::GeolifeGenerator;
    use vas_sampling::{Sampler, UniformSampler};

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("vas-persist-{}-{name}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn catalog_with_densities() -> SampleCatalog {
        let d = GeolifeGenerator::with_size(3_000, 71).generate();
        let mut catalog = SampleCatalog::new();
        for k in [50usize, 200] {
            let sample = UniformSampler::new(k, 1).sample_dataset(&d);
            let counts = vas_core::embed_density(&sample, &d);
            catalog.insert(sample.with_densities(counts));
        }
        catalog.insert(UniformSampler::new(500, 2).sample_dataset(&d));
        catalog
    }

    #[test]
    fn round_trip_preserves_everything() {
        let dir = temp_dir("roundtrip");
        let catalog = catalog_with_densities();
        save_catalog(&catalog, &dir).unwrap();
        assert!(manifest_path(&dir).exists());

        let loaded = load_catalog(&dir).unwrap();
        assert_eq!(loaded.sizes(), catalog.sizes());
        for (a, b) in loaded.samples().iter().zip(catalog.samples()) {
            assert_eq!(a.points, b.points);
            assert_eq!(a.densities, b.densities);
            assert_eq!(a.method, b.method);
            assert_eq!(a.target_size, b.target_size);
        }
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn recorded_save_counts_and_journals_the_commit() {
        use std::sync::Arc;
        let dir = temp_dir("recorded");
        let catalog = catalog_with_densities();
        let journal = Arc::new(vas_obs::Journal::in_memory());
        let recorder = Recorder::new(Arc::new(vas_obs::MetricsRegistry::new()))
            .with_journal(Arc::clone(&journal))
            .with_timing(true);
        save_catalog_recorded(&catalog, &dir, &recorder).unwrap();
        assert_eq!(recorder.registry().get(Counter::StoragePersistCommits), 1);
        assert!(journal.contains_event("persist_commit"));
        assert_eq!(
            recorder
                .registry()
                .snapshot()
                .phase_calls(Phase::PersistSave),
            1
        );

        // A failed save (unwritable dir) reaches no commit point.
        let file_as_dir = dir.join("not-a-dir");
        fs::write(&file_as_dir, b"x").unwrap();
        assert!(save_catalog_recorded(&catalog, &file_as_dir, &recorder).is_err());
        assert_eq!(recorder.registry().get(Counter::StoragePersistCommits), 1);
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn samples_are_stored_in_the_shared_chunked_format() {
        // The rewire's point: a persisted sample file is a plain .vaschunk
        // spill, openable by the generic streaming reader.
        let dir = temp_dir("sharedcodec");
        let catalog = catalog_with_densities();
        save_catalog(&catalog, &dir).unwrap();
        let manifest: Manifest =
            serde_json::from_str(&fs::read_to_string(manifest_path(&dir)).unwrap()).unwrap();
        assert_eq!(manifest.version, 2);
        for entry in &manifest.samples {
            assert!(entry.file.ends_with(".vaschunk"), "{}", entry.file);
            let mut reader = ChunkedReader::open(dir.join(&entry.file)).unwrap();
            assert_eq!(reader.header().count as usize, entry.len);
            assert_eq!(reader.header().name, entry.method);
            let points = reader.read_dataset().unwrap().points;
            assert_eq!(points.len(), entry.len);
        }
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn save_overwrites_previous_catalog() {
        let dir = temp_dir("overwrite");
        let catalog = catalog_with_densities();
        save_catalog(&catalog, &dir).unwrap();
        // Save a smaller catalog on top and reload: only the new contents remain.
        let d = GeolifeGenerator::with_size(500, 3).generate();
        let mut small = SampleCatalog::new();
        small.insert(UniformSampler::new(10, 1).sample_dataset(&d));
        save_catalog(&small, &dir).unwrap();
        let loaded = load_catalog(&dir).unwrap();
        assert_eq!(loaded.sizes(), vec![10]);
        // The previous catalog's sample files (including density sidecars)
        // must be gone: only the new manifest + one sample file remain.
        let remaining: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(remaining.len(), 2, "stale files left behind: {remaining:?}");
        assert!(remaining.contains(&MANIFEST_FILE.to_string()));
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn resaving_over_a_legacy_catalog_removes_its_files() {
        // Migration path: a v1 catalog is loaded, then re-saved in the
        // chunked format; the old .bin files must not be stranded.
        let dir = temp_dir("migrate");
        let d = GeolifeGenerator::with_size(300, 13).generate();
        let sample = UniformSampler::new(20, 1).sample_dataset(&d);
        let file = "sample_000_20.bin";
        {
            let mut w = BufWriter::new(File::create(dir.join(file)).unwrap());
            for p in &sample.points {
                w.write_all(&p.x.to_le_bytes()).unwrap();
                w.write_all(&p.y.to_le_bytes()).unwrap();
                w.write_all(&p.value.to_le_bytes()).unwrap();
            }
        }
        fs::write(
            manifest_path(&dir),
            format!(
                r#"{{"version": 1, "samples": [{{"method": "uniform", "target_size": 20, "len": 20, "has_densities": false, "file": "{file}"}}]}}"#
            ),
        )
        .unwrap();

        let legacy = load_catalog(&dir).unwrap();
        save_catalog(&legacy, &dir).unwrap();
        assert!(!dir.join(file).exists(), "legacy sample file was stranded");
        let migrated = load_catalog(&dir).unwrap();
        assert_eq!(migrated.samples()[0].points, sample.points);
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn missing_directory_is_an_error() {
        assert!(load_catalog("/definitely/not/a/real/catalog/dir").is_err());
    }

    #[test]
    fn corrupted_manifest_is_an_error() {
        let dir = temp_dir("corrupt");
        fs::write(manifest_path(&dir), "not json at all").unwrap();
        let err = load_catalog(&dir).unwrap_err();
        assert!(matches!(err, VasError::Corrupt { .. }), "{err}");
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn unsupported_version_is_an_error() {
        let dir = temp_dir("version");
        fs::write(manifest_path(&dir), r#"{"version": 99, "samples": []}"#).unwrap();
        let err = load_catalog(&dir).unwrap_err();
        assert!(
            matches!(err, VasError::UnsupportedVersion { found: 99, .. }),
            "{err}"
        );
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn save_leaves_no_staging_files_behind() {
        let dir = temp_dir("staging");
        save_catalog(&catalog_with_densities(), &dir).unwrap();
        let leftovers: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "stray staging files: {leftovers:?}");
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn truncated_sample_file_is_an_error() {
        let dir = temp_dir("truncated");
        let catalog = catalog_with_densities();
        save_catalog(&catalog, &dir).unwrap();
        // Truncate the first sample file.
        let manifest: Manifest =
            serde_json::from_str(&fs::read_to_string(manifest_path(&dir)).unwrap()).unwrap();
        let victim = dir.join(&manifest.samples[0].file);
        let bytes = fs::read(&victim).unwrap();
        fs::write(&victim, &bytes[..bytes.len() / 2]).unwrap();
        assert!(load_catalog(&dir).is_err());
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn truncated_density_sidecar_is_an_error() {
        let dir = temp_dir("densitytrunc");
        let catalog = catalog_with_densities();
        save_catalog(&catalog, &dir).unwrap();
        let manifest: Manifest =
            serde_json::from_str(&fs::read_to_string(manifest_path(&dir)).unwrap()).unwrap();
        let sidecar = manifest.samples[0].density_file.clone().unwrap();
        let victim = dir.join(sidecar);
        let bytes = fs::read(&victim).unwrap();
        fs::write(&victim, &bytes[..bytes.len() - 8]).unwrap();
        assert!(load_catalog(&dir).is_err());
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn legacy_v1_catalogs_remain_readable() {
        // Hand-write a version-1 catalog (raw f64 triples, densities
        // appended in the same file) and load it through the compat path.
        let dir = temp_dir("legacy");
        let d = GeolifeGenerator::with_size(400, 9).generate();
        let sample = UniformSampler::new(25, 4).sample_dataset(&d);
        let counts = vas_core::embed_density(&sample, &d);
        let sample = sample.with_densities(counts);

        let file = "sample_000_25.bin";
        {
            let mut w = BufWriter::new(File::create(dir.join(file)).unwrap());
            for p in &sample.points {
                w.write_all(&p.x.to_le_bytes()).unwrap();
                w.write_all(&p.y.to_le_bytes()).unwrap();
                w.write_all(&p.value.to_le_bytes()).unwrap();
            }
            for c in sample.densities.as_ref().unwrap() {
                w.write_all(&c.to_le_bytes()).unwrap();
            }
        }
        let manifest = format!(
            r#"{{"version": 1, "samples": [{{"method": "uniform", "target_size": 25, "len": 25, "has_densities": true, "file": "{file}"}}]}}"#
        );
        fs::write(manifest_path(&dir), manifest).unwrap();

        let loaded = load_catalog(&dir).unwrap();
        assert_eq!(loaded.samples().len(), 1);
        let back = &loaded.samples()[0];
        assert_eq!(back.points, sample.points);
        assert_eq!(back.densities, sample.densities);
        assert_eq!(back.method, "uniform");
        assert_eq!(back.target_size, 25);
        fs::remove_dir_all(dir).ok();
    }
}
