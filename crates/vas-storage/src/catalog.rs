//! The offline sample catalog.
//!
//! Section II-D of the paper: samples are built **offline**, like an index,
//! for the column pairs that are frequently visualized; at query time the
//! database picks a pre-built sample whose size fits the latency budget.
//! [`SampleCatalog`] is that ladder of samples for one projected dataset:
//! a sorted collection of samples of increasing size, each tagged with the
//! method that produced it, plus the selection rule "largest sample not
//! exceeding the budget".

use std::time::Instant;
use vas_data::Dataset;
use vas_obs::{Counter, Phase, Recorder};
use vas_sampling::{Sample, Sampler};

/// A ladder of pre-built samples of increasing size for one dataset
/// projection.
#[derive(Debug, Clone, Default)]
pub struct SampleCatalog {
    /// Samples sorted by ascending actual size.
    samples: Vec<Sample>,
}

impl SampleCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a catalog by running `sampler_factory(k)` for every size in
    /// `sizes` over the same dataset. The factory lets callers choose the
    /// method (uniform, stratified, VAS) and per-size configuration.
    pub fn build<S, F>(dataset: &Dataset, sizes: &[usize], sampler_factory: F) -> Self
    where
        S: Sampler,
        F: FnMut(usize) -> S,
    {
        Self::build_recorded(dataset, sizes, sampler_factory, &Recorder::detached())
    }

    /// [`build`](Self::build) with a [`Recorder`]: each per-size run counts
    /// into `storage_catalog_samples_built` and, with timing enabled, feeds
    /// its wall-clock into the `catalog_build` phase histogram.
    pub fn build_recorded<S, F>(
        dataset: &Dataset,
        sizes: &[usize],
        mut sampler_factory: F,
        recorder: &Recorder,
    ) -> Self
    where
        S: Sampler,
        F: FnMut(usize) -> S,
    {
        let mut catalog = Self::new();
        for &k in sizes {
            let mut sampler = sampler_factory(k);
            let started = recorder.timing_enabled().then(Instant::now);
            let sample = {
                let mut span = recorder.span("catalog_build");
                span.attr("k", k);
                sampler.sample_dataset(dataset)
            };
            if let Some(t0) = started {
                recorder.record_phase_ns(Phase::CatalogBuild, t0.elapsed().as_nanos() as u64);
            }
            recorder.inc(Counter::StorageCatalogSamplesBuilt, 1);
            catalog.insert(sample);
        }
        catalog
    }

    /// [`build`](Self::build) with the per-size sampler runs fanned out over
    /// `threads` scoped workers (`0` = available parallelism).
    ///
    /// The samplers are constructed by `sampler_factory` on the calling
    /// thread **in `sizes` order** (so a stateful factory — seeding, say —
    /// behaves exactly as in the sequential build), each worker runs one
    /// sampler over the shared dataset, and the finished samples are
    /// inserted in `sizes` order — the ordered-index reduction that makes
    /// the catalog bit-identical to the sequential build at any thread
    /// count. Sampler runs over the same dataset are independent, so the
    /// ladder build scales with its size count.
    pub fn build_parallel<S, F>(
        dataset: &Dataset,
        sizes: &[usize],
        sampler_factory: F,
        threads: usize,
    ) -> Self
    where
        S: Sampler + Send,
        F: FnMut(usize) -> S,
    {
        Self::build_parallel_recorded(
            dataset,
            sizes,
            sampler_factory,
            threads,
            &Recorder::detached(),
        )
    }

    /// [`build_parallel`](Self::build_parallel) with a [`Recorder`]: the
    /// fan-out counts worker tasks into the registry
    /// ([`vas_par::par_map_vec_ordered_recorded`]), each per-size run counts
    /// into `storage_catalog_samples_built` and, with timing enabled, feeds
    /// the `catalog_build` phase histogram.
    pub fn build_parallel_recorded<S, F>(
        dataset: &Dataset,
        sizes: &[usize],
        mut sampler_factory: F,
        threads: usize,
        recorder: &Recorder,
    ) -> Self
    where
        S: Sampler + Send,
        F: FnMut(usize) -> S,
    {
        let samplers: Vec<S> = sizes.iter().map(|&k| sampler_factory(k)).collect();
        let samples =
            vas_par::par_map_vec_ordered_recorded(recorder, threads, samplers, |i, mut sampler| {
                let started = recorder.timing_enabled().then(Instant::now);
                let sample = {
                    let mut span = recorder.span("catalog_build");
                    span.attr("size_index", i);
                    sampler.sample_dataset(dataset)
                };
                if let Some(t0) = started {
                    recorder.record_phase_ns(Phase::CatalogBuild, t0.elapsed().as_nanos() as u64);
                }
                recorder.inc(Counter::StorageCatalogSamplesBuilt, 1);
                sample
            });
        let mut catalog = Self::new();
        for sample in samples {
            catalog.insert(sample);
        }
        catalog
    }

    /// Builds a **nested** ladder: the largest sample is drawn from the full
    /// dataset, and every smaller sample is drawn from the next larger one,
    /// so `S_100 ⊆ S_1000 ⊆ S_10000 ⊆ D`.
    ///
    /// Nesting has two practical benefits for the offline-index use case of
    /// Section II-D: the total construction cost is dominated by the single
    /// largest run (the smaller ones scan only the previous sample), and a
    /// client that upgrades its latency budget mid-session only receives
    /// *additional* points rather than a disjoint set, so already-rendered
    /// dots never disappear.
    pub fn build_nested<S, F>(dataset: &Dataset, sizes: &[usize], mut sampler_factory: F) -> Self
    where
        S: Sampler,
        F: FnMut(usize) -> S,
    {
        let mut catalog = Self::new();
        let mut ordered: Vec<usize> = sizes.to_vec();
        ordered.sort_unstable();
        ordered.dedup();

        let mut source = dataset.clone();
        for &k in ordered.iter().rev() {
            let mut sampler = sampler_factory(k);
            let sample = sampler.sample_dataset(&source);
            source = Dataset::from_points(format!("{}[{k}]", dataset.name), sample.points.clone());
            catalog.insert(sample);
        }
        catalog
    }

    /// Adds a sample to the catalog.
    pub fn insert(&mut self, sample: Sample) {
        self.samples.push(sample);
        self.samples.sort_by_key(Sample::len);
    }

    /// Number of samples stored.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when the catalog holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The stored samples, sorted by ascending size.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// The available sample sizes, ascending.
    pub fn sizes(&self) -> Vec<usize> {
        self.samples.iter().map(Sample::len).collect()
    }

    /// The largest sample whose size does not exceed `max_points` — the
    /// paper's budget-to-sample conversion. Returns `None` when every stored
    /// sample is larger than the budget (the caller then either renders
    /// nothing or falls back to the smallest sample, a policy decision left
    /// to the engine).
    pub fn best_within(&self, max_points: usize) -> Option<&Sample> {
        self.samples.iter().rev().find(|s| s.len() <= max_points)
    }

    /// The smallest stored sample, if any.
    pub fn smallest(&self) -> Option<&Sample> {
        self.samples.first()
    }

    /// The largest stored sample, if any.
    pub fn largest(&self) -> Option<&Sample> {
        self.samples.last()
    }

    /// Total number of points stored across all samples (the storage
    /// footprint of the "index").
    pub fn total_points(&self) -> usize {
        self.samples.iter().map(Sample::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vas_data::GeolifeGenerator;
    use vas_sampling::UniformSampler;

    fn dataset() -> Dataset {
        GeolifeGenerator::with_size(5_000, 61).generate()
    }

    fn catalog() -> SampleCatalog {
        SampleCatalog::build(&dataset(), &[100, 1_000, 2_500], |k| {
            UniformSampler::new(k, 42)
        })
    }

    #[test]
    fn build_creates_one_sample_per_size() {
        let c = catalog();
        assert_eq!(c.len(), 3);
        assert_eq!(c.sizes(), vec![100, 1_000, 2_500]);
        assert_eq!(c.total_points(), 3_600);
        assert!(!c.is_empty());
    }

    #[test]
    fn best_within_picks_the_largest_fitting_sample() {
        let c = catalog();
        assert_eq!(c.best_within(5_000).unwrap().len(), 2_500);
        assert_eq!(c.best_within(2_500).unwrap().len(), 2_500);
        assert_eq!(c.best_within(2_499).unwrap().len(), 1_000);
        assert_eq!(c.best_within(100).unwrap().len(), 100);
        assert!(c.best_within(99).is_none());
    }

    #[test]
    fn smallest_and_largest() {
        let c = catalog();
        assert_eq!(c.smallest().unwrap().len(), 100);
        assert_eq!(c.largest().unwrap().len(), 2_500);
        let empty = SampleCatalog::new();
        assert!(empty.smallest().is_none());
        assert!(empty.best_within(1_000).is_none());
    }

    #[test]
    fn parallel_build_is_bit_identical_to_sequential() {
        let d = dataset();
        let sizes = [100usize, 400, 1_000, 2_500];
        let sequential = SampleCatalog::build(&d, &sizes, |k| UniformSampler::new(k, 42));
        for threads in [1usize, 2, 4] {
            let parallel =
                SampleCatalog::build_parallel(&d, &sizes, |k| UniformSampler::new(k, 42), threads);
            assert_eq!(parallel.sizes(), sequential.sizes(), "threads {threads}");
            for (a, b) in parallel.samples().iter().zip(sequential.samples()) {
                assert_eq!(a.method, b.method);
                assert_eq!(a.points.len(), b.points.len());
                for (p, q) in a.points.iter().zip(&b.points) {
                    assert_eq!(p.x.to_bits(), q.x.to_bits(), "threads {threads}");
                    assert_eq!(p.y.to_bits(), q.y.to_bits(), "threads {threads}");
                    assert_eq!(p.value.to_bits(), q.value.to_bits(), "threads {threads}");
                }
            }
        }
    }

    #[test]
    fn recorded_builds_count_samples_and_time_the_catalog_phase() {
        use std::sync::Arc;
        let d = dataset();
        let sizes = [100usize, 400, 1_000];
        let recorder = Recorder::new(Arc::new(vas_obs::MetricsRegistry::new())).with_timing(true);
        let sequential =
            SampleCatalog::build_recorded(&d, &sizes, |k| UniformSampler::new(k, 42), &recorder);
        assert_eq!(
            recorder.registry().get(Counter::StorageCatalogSamplesBuilt),
            3
        );
        let snap = recorder.registry().snapshot();
        assert_eq!(snap.phase_calls(Phase::CatalogBuild), 3);

        let parallel = SampleCatalog::build_parallel_recorded(
            &d,
            &sizes,
            |k| UniformSampler::new(k, 42),
            4,
            &recorder,
        );
        assert_eq!(
            recorder.registry().get(Counter::StorageCatalogSamplesBuilt),
            6
        );
        assert!(recorder.registry().get(Counter::ParTasksExecuted) > 0);
        for (a, b) in parallel.samples().iter().zip(sequential.samples()) {
            assert_eq!(a.points.len(), b.points.len());
        }
    }

    #[test]
    fn parallel_build_calls_the_factory_in_sizes_order() {
        // Stateful factories (e.g. deriving per-size seeds from a counter)
        // must observe the same call sequence as the sequential build.
        let d = dataset();
        let mut calls = Vec::new();
        let _ = SampleCatalog::build_parallel(
            &d,
            &[500, 100, 300],
            |k| {
                calls.push(k);
                UniformSampler::new(k, 1)
            },
            4,
        );
        assert_eq!(calls, vec![500, 100, 300]);
    }

    #[test]
    fn nested_catalog_produces_subset_chain() {
        let d = dataset();
        let sizes = [50usize, 400, 1_500];
        let c = SampleCatalog::build_nested(&d, &sizes, |k| UniformSampler::new(k, 9));
        assert_eq!(c.sizes(), vec![50, 400, 1_500]);
        // Every smaller sample is a subset of the next larger one.
        let samples = c.samples();
        for window in samples.windows(2) {
            let (small, large) = (&window[0], &window[1]);
            for p in &small.points {
                assert!(
                    large.points.contains(p),
                    "nested property violated between sizes {} and {}",
                    small.len(),
                    large.len()
                );
            }
        }
        // And the largest is a subset of the dataset.
        for p in &samples.last().unwrap().points {
            assert!(d.points.contains(p));
        }
    }

    #[test]
    fn nested_catalog_deduplicates_sizes() {
        let d = dataset();
        let c = SampleCatalog::build_nested(&d, &[100, 100, 300], |k| UniformSampler::new(k, 1));
        assert_eq!(c.sizes(), vec![100, 300]);
    }

    #[test]
    fn insert_keeps_samples_sorted() {
        let d = dataset();
        let mut c = SampleCatalog::new();
        c.insert(UniformSampler::new(500, 1).sample_dataset(&d));
        c.insert(UniformSampler::new(50, 1).sample_dataset(&d));
        c.insert(UniformSampler::new(200, 1).sample_dataset(&d));
        assert_eq!(c.sizes(), vec![50, 200, 500]);
    }
}
