//! A minimal in-memory columnar table.
//!
//! The store only needs what the visualization workload of the paper needs:
//! numeric columns, full scans, range-predicate filters on the plotted
//! columns, and projection of a column pair (plus an optional value column)
//! into plot [`Point`]s. Everything is `f64`; visualization queries in the
//! paper are over continuous ranges, not categorical data.

use std::collections::BTreeMap;
use vas_data::{BoundingBox, Dataset, Point};

/// A named reference to a column of a [`Table`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ColumnRef(pub String);

impl<T: Into<String>> From<T> for ColumnRef {
    fn from(name: T) -> Self {
        ColumnRef(name.into())
    }
}

/// An immutable, column-major table of `f64` values.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    columns: BTreeMap<String, Vec<f64>>,
    n_rows: usize,
}

impl Table {
    /// Builds a table from named columns.
    ///
    /// # Panics
    /// Panics if no columns are supplied or the columns have differing
    /// lengths.
    pub fn new(name: impl Into<String>, columns: Vec<(String, Vec<f64>)>) -> Self {
        assert!(!columns.is_empty(), "a table needs at least one column");
        let n_rows = columns[0].1.len();
        for (col_name, values) in &columns {
            assert_eq!(
                values.len(),
                n_rows,
                "column {col_name} has {} rows, expected {n_rows}",
                values.len()
            );
        }
        Self {
            name: name.into(),
            columns: columns.into_iter().collect(),
            n_rows,
        }
    }

    /// Builds the conventional three-column (`x`, `y`, `value`) table from a
    /// point dataset — the shape of the Geolife table in the paper.
    pub fn from_dataset(dataset: &Dataset) -> Self {
        Self::new(
            dataset.name.clone(),
            vec![
                (
                    "x".to_string(),
                    dataset.points.iter().map(|p| p.x).collect(),
                ),
                (
                    "y".to_string(),
                    dataset.points.iter().map(|p| p.y).collect(),
                ),
                (
                    "value".to_string(),
                    dataset.points.iter().map(|p| p.value).collect(),
                ),
            ],
        )
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Names of the columns, sorted.
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.keys().map(String::as_str).collect()
    }

    /// The values of a column, or `None` if it does not exist.
    pub fn column(&self, name: &str) -> Option<&[f64]> {
        self.columns.get(name).map(Vec::as_slice)
    }

    /// Projects two columns (and an optional value column) into plot points.
    ///
    /// # Panics
    /// Panics if a named column does not exist.
    pub fn project(&self, x_col: &str, y_col: &str, value_col: Option<&str>) -> Vec<Point> {
        let xs = self
            .column(x_col)
            .unwrap_or_else(|| panic!("no such column: {x_col}"));
        let ys = self
            .column(y_col)
            .unwrap_or_else(|| panic!("no such column: {y_col}"));
        let values = value_col.map(|c| {
            self.column(c)
                .unwrap_or_else(|| panic!("no such column: {c}"))
        });
        (0..self.n_rows)
            .map(|i| Point::with_value(xs[i], ys[i], values.map_or(0.0, |v| v[i])))
            .collect()
    }

    /// Projects two columns restricted to rows whose (x, y) pair falls inside
    /// `region` — the "tool-generated query" of the paper's Figure 3, i.e.
    /// `SELECT x, y, value FROM t WHERE x BETWEEN … AND y BETWEEN …`.
    pub fn scan_region(
        &self,
        x_col: &str,
        y_col: &str,
        value_col: Option<&str>,
        region: &BoundingBox,
    ) -> Vec<Point> {
        self.project(x_col, y_col, value_col)
            .into_iter()
            .filter(|p| region.contains(p))
            .collect()
    }

    /// Converts the projection of the whole table into a [`Dataset`] (used to
    /// hand the table to the offline samplers).
    pub fn to_dataset(&self, x_col: &str, y_col: &str, value_col: Option<&str>) -> Dataset {
        Dataset::from_points(
            format!("{}:{}x{}", self.name, x_col, y_col),
            self.project(x_col, y_col, value_col),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vas_data::GeolifeGenerator;

    fn table() -> Table {
        Table::new(
            "t",
            vec![
                ("x".into(), vec![0.0, 1.0, 2.0, 3.0]),
                ("y".into(), vec![0.0, 10.0, 20.0, 30.0]),
                ("alt".into(), vec![5.0, 6.0, 7.0, 8.0]),
            ],
        )
    }

    #[test]
    fn construction_and_metadata() {
        let t = table();
        assert_eq!(t.name(), "t");
        assert_eq!(t.n_rows(), 4);
        assert_eq!(t.column_names(), vec!["alt", "x", "y"]);
        assert_eq!(t.column("x").unwrap(), &[0.0, 1.0, 2.0, 3.0]);
        assert!(t.column("missing").is_none());
    }

    #[test]
    fn projection_with_and_without_value() {
        let t = table();
        let pts = t.project("x", "y", Some("alt"));
        assert_eq!(pts[2], Point::with_value(2.0, 20.0, 7.0));
        let no_val = t.project("x", "y", None);
        assert_eq!(no_val[2], Point::new(2.0, 20.0));
    }

    #[test]
    fn scan_region_filters_rows() {
        let t = table();
        let region = BoundingBox::new(0.5, 5.0, 2.5, 25.0);
        let pts = t.scan_region("x", "y", Some("alt"), &region);
        assert_eq!(pts.len(), 2);
        assert!(pts.iter().all(|p| region.contains(p)));
    }

    #[test]
    fn from_dataset_round_trips() {
        let d = GeolifeGenerator::with_size(500, 3).generate();
        let t = Table::from_dataset(&d);
        assert_eq!(t.n_rows(), 500);
        let back = t.to_dataset("x", "y", Some("value"));
        assert_eq!(back.points, d.points);
    }

    #[test]
    #[should_panic(expected = "expected 4")]
    fn mismatched_column_lengths_rejected() {
        let _ = Table::new(
            "bad",
            vec![("x".into(), vec![0.0; 4]), ("y".into(), vec![0.0; 3])],
        );
    }

    #[test]
    #[should_panic(expected = "no such column")]
    fn unknown_column_panics() {
        let _ = table().project("x", "nope", None);
    }
}
