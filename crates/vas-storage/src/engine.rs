//! The dynamic-reduction visualization query engine.
//!
//! This is the reproduction of the software architecture in Figure 3 of the
//! paper (and of ScalaR's "dynamic reduction" layer): the visualization tool
//! issues a query naming a table, the two columns to plot, an optional value
//! column, an optional range filter (the current viewport) and an optional
//! **point budget**; the engine answers from the full table when no budget is
//! given and from the best pre-built sample otherwise.

use crate::catalog::SampleCatalog;
use crate::table::Table;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use vas_data::{BoundingBox, Point};
use vas_sampling::Sampler;

/// A visualization query issued by the tool.
#[derive(Debug, Clone)]
pub struct VizQuery {
    /// Table to read.
    pub table: String,
    /// Column plotted on the x axis.
    pub x_col: String,
    /// Column plotted on the y axis.
    pub y_col: String,
    /// Optional column encoded by color.
    pub value_col: Option<String>,
    /// Optional viewport filter (`None` = full extent).
    pub region: Option<BoundingBox>,
    /// Optional point budget; `None` requests exact results.
    pub max_points: Option<usize>,
}

impl VizQuery {
    /// A full-extent, exact query over the conventional `x`/`y`/`value`
    /// schema.
    pub fn full(table: impl Into<String>) -> Self {
        Self {
            table: table.into(),
            x_col: "x".into(),
            y_col: "y".into(),
            value_col: Some("value".into()),
            region: None,
            max_points: None,
        }
    }

    /// Restricts the query to a viewport.
    pub fn in_region(mut self, region: BoundingBox) -> Self {
        self.region = Some(region);
        self
    }

    /// Applies a point budget (switches the engine to a pre-built sample).
    pub fn with_budget(mut self, max_points: usize) -> Self {
        self.max_points = Some(max_points);
        self
    }
}

/// The result of a visualization query.
#[derive(Debug, Clone)]
pub struct VizResult {
    /// Points to render.
    pub points: Vec<Point>,
    /// `true` when the answer came from a pre-built sample rather than the
    /// base table.
    pub from_sample: bool,
    /// Size of the source relation the points were filtered from (the full
    /// table row count, or the chosen sample's size).
    pub source_size: usize,
}

/// Errors the engine can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The named table has not been registered.
    UnknownTable(String),
    /// The named column does not exist in the table.
    UnknownColumn(String),
    /// A budgeted query was issued but no sample catalog exists for the
    /// table/column pair (the offline index was never built).
    NoCatalog(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            EngineError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            EngineError::NoCatalog(key) => {
                write!(f, "no sample catalog built for projection {key}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// The visualization query engine: registered tables plus per-projection
/// sample catalogs. Reads are lock-free once built (catalogs sit behind an
/// `RwLock` so concurrent query threads can share the engine).
#[derive(Debug, Default)]
pub struct VizEngine {
    tables: BTreeMap<String, Table>,
    catalogs: RwLock<BTreeMap<String, SampleCatalog>>,
}

impl VizEngine {
    /// Creates an empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a table.
    pub fn register_table(&mut self, table: Table) {
        self.tables.insert(table.name().to_string(), table);
    }

    /// Registered table names.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }

    /// Looks up a registered table.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Key identifying a projection's catalog.
    fn projection_key(table: &str, x_col: &str, y_col: &str) -> String {
        format!("{table}:{x_col}x{y_col}")
    }

    /// Validates a projection of a registered table and materializes it as
    /// a dataset — the shared front half of the catalog builders.
    fn projected_dataset(
        &self,
        table: &str,
        x_col: &str,
        y_col: &str,
        value_col: Option<&str>,
    ) -> Result<vas_data::Dataset, EngineError> {
        let t = self
            .tables
            .get(table)
            .ok_or_else(|| EngineError::UnknownTable(table.to_string()))?;
        for col in [Some(x_col), Some(y_col), value_col].into_iter().flatten() {
            if t.column(col).is_none() {
                return Err(EngineError::UnknownColumn(col.to_string()));
            }
        }
        Ok(t.to_dataset(x_col, y_col, value_col))
    }

    /// Builds the offline sample catalog for a projection of a registered
    /// table — the paper's index-construction step. `sizes` is the ladder of
    /// sample sizes to materialize and `sampler_factory` chooses the method.
    pub fn build_catalog<S, F>(
        &self,
        table: &str,
        x_col: &str,
        y_col: &str,
        value_col: Option<&str>,
        sizes: &[usize],
        sampler_factory: F,
    ) -> Result<(), EngineError>
    where
        S: Sampler,
        F: FnMut(usize) -> S,
    {
        let dataset = self.projected_dataset(table, x_col, y_col, value_col)?;
        let catalog = SampleCatalog::build(&dataset, sizes, sampler_factory);
        self.catalogs
            .write()
            .insert(Self::projection_key(table, x_col, y_col), catalog);
        Ok(())
    }

    /// [`build_catalog`](Self::build_catalog) with the per-size sampler runs
    /// fanned out over `threads` scoped workers
    /// ([`SampleCatalog::build_parallel`]); the stored catalog is
    /// bit-identical to the sequential build at any thread count.
    #[allow(clippy::too_many_arguments)]
    pub fn build_catalog_parallel<S, F>(
        &self,
        table: &str,
        x_col: &str,
        y_col: &str,
        value_col: Option<&str>,
        sizes: &[usize],
        sampler_factory: F,
        threads: usize,
    ) -> Result<(), EngineError>
    where
        S: Sampler + Send,
        F: FnMut(usize) -> S,
    {
        let dataset = self.projected_dataset(table, x_col, y_col, value_col)?;
        let catalog = SampleCatalog::build_parallel(&dataset, sizes, sampler_factory, threads);
        self.catalogs
            .write()
            .insert(Self::projection_key(table, x_col, y_col), catalog);
        Ok(())
    }

    /// The sample sizes available for a projection (empty if no catalog).
    pub fn catalog_sizes(&self, table: &str, x_col: &str, y_col: &str) -> Vec<usize> {
        self.catalogs
            .read()
            .get(&Self::projection_key(table, x_col, y_col))
            .map(SampleCatalog::sizes)
            .unwrap_or_default()
    }

    /// Answers a visualization query.
    ///
    /// * Without a budget the full table is scanned (optionally filtered by
    ///   the viewport region) — exact but slow for large tables.
    /// * With a budget the engine picks the largest pre-built sample that
    ///   fits; if even the smallest sample exceeds the budget, the smallest
    ///   sample is used (rendering something beats rendering nothing).
    pub fn query(&self, q: &VizQuery) -> Result<VizResult, EngineError> {
        let table = self
            .tables
            .get(&q.table)
            .ok_or_else(|| EngineError::UnknownTable(q.table.clone()))?;
        for col in [
            Some(q.x_col.as_str()),
            Some(q.y_col.as_str()),
            q.value_col.as_deref(),
        ]
        .into_iter()
        .flatten()
        {
            if table.column(col).is_none() {
                return Err(EngineError::UnknownColumn(col.to_string()));
            }
        }

        match q.max_points {
            None => {
                let points = match &q.region {
                    Some(region) => {
                        table.scan_region(&q.x_col, &q.y_col, q.value_col.as_deref(), region)
                    }
                    None => table.project(&q.x_col, &q.y_col, q.value_col.as_deref()),
                };
                Ok(VizResult {
                    points,
                    from_sample: false,
                    source_size: table.n_rows(),
                })
            }
            Some(budget) => {
                let key = Self::projection_key(&q.table, &q.x_col, &q.y_col);
                let catalogs = self.catalogs.read();
                let catalog = catalogs
                    .get(&key)
                    .ok_or_else(|| EngineError::NoCatalog(key.clone()))?;
                let sample = catalog
                    .best_within(budget)
                    .or_else(|| catalog.smallest())
                    .ok_or_else(|| EngineError::NoCatalog(key.clone()))?;
                let points = match &q.region {
                    Some(region) => sample.filter_region(region),
                    None => sample.points.clone(),
                };
                Ok(VizResult {
                    points,
                    from_sample: true,
                    source_size: sample.len(),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vas_data::GeolifeGenerator;
    use vas_sampling::UniformSampler;

    fn engine() -> VizEngine {
        let d = GeolifeGenerator::with_size(4_000, 71).generate();
        let mut e = VizEngine::new();
        e.register_table(Table::from_dataset(&d));
        e
    }

    fn table_name() -> String {
        "geolife-sim-4000".to_string()
    }

    #[test]
    fn exact_query_returns_all_rows() {
        let e = engine();
        let r = e.query(&VizQuery::full(table_name())).unwrap();
        assert_eq!(r.points.len(), 4_000);
        assert!(!r.from_sample);
        assert_eq!(r.source_size, 4_000);
    }

    #[test]
    fn region_filter_restricts_rows() {
        let e = engine();
        let full = e.query(&VizQuery::full(table_name())).unwrap();
        let bounds = vas_data::BoundingBox::from_points(&full.points);
        let region = bounds.subregion(0.25, 0.25, 0.75, 0.75);
        let r = e
            .query(&VizQuery::full(table_name()).in_region(region))
            .unwrap();
        assert!(!r.points.is_empty());
        assert!(r.points.len() < full.points.len());
        assert!(r.points.iter().all(|p| region.contains(p)));
    }

    #[test]
    fn budgeted_query_uses_the_catalog() {
        let e = engine();
        e.build_catalog(
            &table_name(),
            "x",
            "y",
            Some("value"),
            &[100, 500, 2_000],
            |k| UniformSampler::new(k, 5),
        )
        .unwrap();
        assert_eq!(
            e.catalog_sizes(&table_name(), "x", "y"),
            vec![100, 500, 2_000]
        );

        let r = e
            .query(&VizQuery::full(table_name()).with_budget(600))
            .unwrap();
        assert!(r.from_sample);
        assert_eq!(r.source_size, 500);
        assert_eq!(r.points.len(), 500);

        // Budget below the smallest sample falls back to the smallest.
        let r = e
            .query(&VizQuery::full(table_name()).with_budget(10))
            .unwrap();
        assert_eq!(r.source_size, 100);
    }

    #[test]
    fn parallel_catalog_build_matches_sequential() {
        let e = engine();
        e.build_catalog(&table_name(), "x", "y", Some("value"), &[100, 500], |k| {
            UniformSampler::new(k, 5)
        })
        .unwrap();
        let sequential = e
            .query(&VizQuery::full(table_name()).with_budget(500))
            .unwrap();
        e.build_catalog_parallel(
            &table_name(),
            "x",
            "y",
            Some("value"),
            &[100, 500],
            |k| UniformSampler::new(k, 5),
            4,
        )
        .unwrap();
        let parallel = e
            .query(&VizQuery::full(table_name()).with_budget(500))
            .unwrap();
        assert_eq!(parallel.points, sequential.points);
        assert!(matches!(
            e.build_catalog_parallel(
                &table_name(),
                "x",
                "bogus",
                None,
                &[10],
                |k| UniformSampler::new(k, 0),
                2,
            )
            .unwrap_err(),
            EngineError::UnknownColumn(_)
        ));
    }

    #[test]
    fn budgeted_query_without_catalog_errors() {
        let e = engine();
        let err = e
            .query(&VizQuery::full(table_name()).with_budget(100))
            .unwrap_err();
        assert!(matches!(err, EngineError::NoCatalog(_)));
        assert!(err.to_string().contains("no sample catalog"));
    }

    #[test]
    fn unknown_table_and_column_errors() {
        let e = engine();
        assert!(matches!(
            e.query(&VizQuery::full("nope")).unwrap_err(),
            EngineError::UnknownTable(_)
        ));
        let mut q = VizQuery::full(table_name());
        q.x_col = "missing".into();
        assert!(matches!(
            e.query(&q).unwrap_err(),
            EngineError::UnknownColumn(_)
        ));
        assert!(matches!(
            e.build_catalog(&table_name(), "x", "bogus", None, &[10], |k| {
                UniformSampler::new(k, 0)
            })
            .unwrap_err(),
            EngineError::UnknownColumn(_)
        ));
    }

    #[test]
    fn budgeted_region_query_filters_the_sample() {
        let e = engine();
        e.build_catalog(&table_name(), "x", "y", Some("value"), &[1_000], |k| {
            UniformSampler::new(k, 5)
        })
        .unwrap();
        let full = e.query(&VizQuery::full(table_name())).unwrap();
        let bounds = vas_data::BoundingBox::from_points(&full.points);
        let region = bounds.subregion(0.4, 0.4, 0.6, 0.6);
        let r = e
            .query(
                &VizQuery::full(table_name())
                    .with_budget(1_000)
                    .in_region(region),
            )
            .unwrap();
        assert!(r.from_sample);
        assert!(r.points.iter().all(|p| region.contains(p)));
        assert!(r.points.len() <= 1_000);
    }

    #[test]
    fn table_registration_and_lookup() {
        let e = engine();
        assert_eq!(e.table_names(), vec![table_name()]);
        assert!(e.table(&table_name()).is_some());
        assert!(e.table("missing").is_none());
    }
}
