//! # vas-storage
//!
//! The data-management substrate of the reproduction: an in-memory columnar
//! store, an offline sample catalog, and a ScalaR-style *dynamic reduction*
//! query engine.
//!
//! The paper's architecture (Figure 3) places an RDBMS behind the
//! visualization tool; the tool issues a query naming the columns to plot and
//! a filter range, and the database answers either from the full table or —
//! when a latency bound is in force — from one of several **pre-built
//! samples** kept alongside the table (Section II-D describes VAS as "a
//! specialized index designed for visualization workloads"). This crate
//! implements that path end to end:
//!
//! * [`table`] — a minimal columnar [`Table`](table::Table) with range-filter
//!   scans and column-pair projection into plot points.
//! * [`catalog`] — the [`SampleCatalog`](catalog::SampleCatalog): per
//!   (table, column-pair) a ladder of offline samples of increasing size,
//!   built with any [`Sampler`](vas_sampling::Sampler).
//! * [`engine`] — the [`VizEngine`](engine::VizEngine): accepts
//!   [`VizQuery`](engine::VizQuery)s carrying an optional point budget and
//!   answers them from the smallest adequate source, exactly like ScalaR's
//!   dynamic-reduction layer.
//! * [`persist`] — durable storage of catalogs (JSON manifest + compact
//!   binary point files), so the offline index survives restarts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod engine;
pub mod persist;
pub mod table;

pub use catalog::SampleCatalog;
pub use engine::{VizEngine, VizQuery, VizResult};
pub use persist::{load_catalog, manifest_path, save_catalog, save_catalog_recorded};
pub use table::{ColumnRef, Table};
