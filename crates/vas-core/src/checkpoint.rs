//! Crash-safe checkpointing of the streaming Interchange build.
//!
//! A `.vascheckpt` file captures **everything the sampler's future output
//! depends on** at a chunk boundary of
//! [`VasSampler::build_from_source_checkpointed`](crate::VasSampler::build_from_source_checkpointed):
//! the sample slots, responsibilities, hill-climb counters, the adaptive
//! speculation spacing, the stream position (pass + chunks consumed), and a
//! byte-exact snapshot of the locality index (see `vas_spatial::snapshot` —
//! visitation order is history-dependent state, so the index cannot simply
//! be rebuilt). Resuming from the file and streaming the rest of the source
//! produces a sample **bit-identical** to the uninterrupted run, per
//! locality backend and at every thread count (pinned in
//! `tests/determinism.rs` and swept by the `fault_matrix` harness).
//!
//! The file is written atomically (temp + fsync + rename via
//! [`vas_stream::write_atomic`]), so a crash mid-checkpoint leaves the
//! previous checkpoint intact, never a torn file. The container is
//! self-validating: magic, version, payload length and a CRC-32 over the
//! payload; any single-bit corruption is rejected with a typed
//! [`VasError`] before any state is restored.
//!
//! ## File layout
//!
//! ```text
//! offset  size  field
//! 0       8     magic "VASCKPT\0"
//! 8       4     version (u32 LE) = 1
//! 12      8     payload length (u64 LE)
//! 20      n     payload (sampler state; see interchange.rs)
//! 20+n    4     CRC-32 (IEEE) over the payload bytes
//! ```

use std::path::PathBuf;
use vas_sampling::Sample;
use vas_stream::crc32::crc32;
use vas_stream::VasError;

/// Magic bytes opening every `.vascheckpt` file.
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"VASCKPT\0";
/// Container version this build writes and reads.
pub const CHECKPOINT_VERSION: u32 = 1;
/// Container bytes before the payload (magic + version + payload length).
const HEADER_LEN: usize = 8 + 4 + 8;

/// When and where [`VasSampler::build_from_source_checkpointed`]
/// (crate::VasSampler::build_from_source_checkpointed) persists its state,
/// plus an optional deterministic kill switch for crash-recovery tests.
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    /// Checkpoint file path; replaced atomically on every checkpoint.
    pub path: PathBuf,
    /// Persist after every N source chunks (0 disables periodic
    /// checkpoints).
    pub every_chunks: u64,
    /// Fault injection: stop the build after this many chunks have been
    /// observed **by this run** — simulating a crash at a chunk boundary —
    /// and return [`BuildOutcome::Halted`] instead of finishing. `None`
    /// (the default) runs to completion.
    pub halt_after_chunks: Option<u64>,
}

impl CheckpointPolicy {
    /// Checkpoints to `path` after every `every_chunks` chunks.
    pub fn every(path: impl Into<PathBuf>, every_chunks: u64) -> Self {
        Self {
            path: path.into(),
            every_chunks,
            halt_after_chunks: None,
        }
    }

    /// Arms the deterministic kill switch (see
    /// [`halt_after_chunks`](Self::halt_after_chunks)).
    pub fn halting_after(mut self, chunks: u64) -> Self {
        self.halt_after_chunks = Some(chunks);
        self
    }
}

/// How a checkpointed build ended.
#[derive(Debug)]
pub enum BuildOutcome {
    /// The source was exhausted and the sampler finalized.
    Complete(Sample),
    /// The [`CheckpointPolicy::halt_after_chunks`] kill switch fired; the
    /// build can be resumed from the last checkpoint.
    Halted {
        /// Zero-based pass index the build stopped in.
        pass: u64,
        /// Chunks consumed from the start of that pass.
        chunks_consumed: u64,
    },
}

impl BuildOutcome {
    /// The final sample, if the build ran to completion.
    pub fn into_sample(self) -> Option<Sample> {
        match self {
            BuildOutcome::Complete(sample) => Some(sample),
            BuildOutcome::Halted { .. } => None,
        }
    }

    /// `true` when the kill switch fired.
    pub fn is_halted(&self) -> bool {
        matches!(self, BuildOutcome::Halted { .. })
    }
}

/// Wraps a checkpoint payload in the self-validating container.
pub(crate) fn encode_container(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + 4);
    out.extend_from_slice(&CHECKPOINT_MAGIC);
    out.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out
}

/// Validates the container (magic, version, length, CRC) and returns the
/// payload slice.
pub(crate) fn decode_container<'a>(path: &str, bytes: &'a [u8]) -> Result<&'a [u8], VasError> {
    if bytes.len() < HEADER_LEN + 4 {
        return Err(VasError::Truncated {
            path: path.to_string(),
            promised: (HEADER_LEN + 4) as u64,
            found: bytes.len() as u64,
        });
    }
    if bytes[..8] != CHECKPOINT_MAGIC {
        return Err(VasError::Corrupt {
            path: path.to_string(),
            detail: "bad checkpoint magic".into(),
        });
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != CHECKPOINT_VERSION {
        return Err(VasError::UnsupportedVersion {
            path: path.to_string(),
            found: version,
            supported: &[CHECKPOINT_VERSION],
        });
    }
    let payload_len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    let payload_len: usize = payload_len.try_into().map_err(|_| VasError::Corrupt {
        path: path.to_string(),
        detail: format!("payload length {payload_len} overflows usize"),
    })?;
    let expected_total = HEADER_LEN + payload_len + 4;
    if bytes.len() < expected_total {
        return Err(VasError::Truncated {
            path: path.to_string(),
            promised: expected_total as u64,
            found: bytes.len() as u64,
        });
    }
    if bytes.len() > expected_total {
        return Err(VasError::Corrupt {
            path: path.to_string(),
            detail: format!(
                "{} trailing bytes after checkpoint",
                bytes.len() - expected_total
            ),
        });
    }
    let payload = &bytes[HEADER_LEN..HEADER_LEN + payload_len];
    let stored = u32::from_le_bytes(bytes[expected_total - 4..].try_into().expect("4 bytes"));
    let computed = crc32(payload);
    if stored != computed {
        return Err(VasError::ChecksumMismatch {
            path: path.to_string(),
            region: "checkpoint payload".into(),
            stored,
            computed,
        });
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn container_round_trips() {
        let payload = b"sampler state goes here".to_vec();
        let file = encode_container(&payload);
        let back = decode_container("t.vascheckpt", &file).unwrap();
        assert_eq!(back, &payload[..]);
    }

    #[test]
    fn every_single_bit_flip_in_the_container_is_rejected() {
        let payload: Vec<u8> = (0u8..=255).collect();
        let file = encode_container(&payload);
        assert!(decode_container("t", &file).is_ok());
        for bit in 0..file.len() * 8 {
            let mut bad = file.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            assert!(
                decode_container("t", &bad).is_err(),
                "flip of bit {bit} went undetected"
            );
        }
    }

    #[test]
    fn truncation_and_trailing_garbage_are_typed_errors() {
        let file = encode_container(b"abc");
        for keep in 0..file.len() {
            let err = decode_container("t", &file[..keep]).unwrap_err();
            assert!(
                matches!(err, VasError::Truncated { .. } | VasError::Corrupt { .. }),
                "keep {keep}: {err}"
            );
        }
        let mut long = file.clone();
        long.push(0);
        assert!(matches!(
            decode_container("t", &long).unwrap_err(),
            VasError::Corrupt { .. }
        ));
    }

    #[test]
    fn wrong_version_is_a_typed_error() {
        let mut file = encode_container(b"abc");
        file[8..12].copy_from_slice(&9u32.to_le_bytes());
        assert!(matches!(
            decode_container("t", &file).unwrap_err(),
            VasError::UnsupportedVersion { found: 9, .. }
        ));
    }
}
