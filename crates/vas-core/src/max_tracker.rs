//! A tournament tree tracking the maximum of a mutable array of scores.
//!
//! The Interchange Shrink step must find the element with the **largest
//! responsibility** in the expanded sample for every candidate tuple. A
//! linear scan makes every candidate — including the overwhelmingly common
//! *rejected* ones — cost `O(K)`. [`MaxTracker`] keeps a complete binary
//! tournament over the responsibility array instead, so the running maximum
//! is an `O(1)` read and each of the sparse updates produced by an accepted
//! replacement is an `O(log K)` path fix. Rejected candidates therefore cost
//! only their neighbourhood kernel evaluations.
//!
//! ## Tie-breaking contract
//!
//! [`max`](MaxTracker::max) returns the **lowest index** attaining the
//! maximum value. This mirrors a first-wins linear scan (`v > best`), which
//! is exactly what the pre-existing Interchange implementation did — the
//! contract that keeps the optimized inner loop bit-identical to the legacy
//! one even when responsibilities tie (e.g. many isolated slots at 0.0).
//!
//! The tree compares slot *values* only; values must never be NaN (kernel
//! sums are finite and non-negative). Unused capacity leaves hold
//! `f64::NEG_INFINITY` so they can never win a match.

/// Indexed max-tournament over a dense array of `f64` scores.
///
/// Slots are addressed `0..len`. The structure is rebuilt in `O(len)` and
/// updated in `O(log len)` per changed slot.
#[derive(Debug, Clone, Default)]
pub struct MaxTracker {
    /// Number of live slots.
    len: usize,
    /// Leaf capacity; a power of two (or 0 when empty).
    cap: usize,
    /// Slot values, padded to `cap` with `NEG_INFINITY`.
    values: Vec<f64>,
    /// Match winners: `winners[node]` for `node in 1..2*cap` is the leaf index
    /// winning the subtree rooted at `node`; leaves live at `cap + i`.
    winners: Vec<u32>,
    /// Slots written by [`set_deferred`](Self::set_deferred) whose ancestor
    /// matches have not been replayed yet.
    dirty: Vec<u32>,
    /// Reusable frontier buffer for [`flush`](Self::flush).
    scratch: Vec<u32>,
}

impl MaxTracker {
    /// An empty tracker (no slots).
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds the tournament over `values` in `O(len)`.
    pub fn rebuild(&mut self, values: &[f64]) {
        self.dirty.clear();
        self.len = values.len();
        if self.len == 0 {
            self.cap = 0;
            self.values.clear();
            self.winners.clear();
            return;
        }
        // Node ids are u32 and leaves live at `cap + i` with
        // `cap = len.next_power_of_two()`, so `cap + len` must fit in u32:
        // at most 2^31 slots.
        assert!(
            self.len <= 1usize << 31,
            "MaxTracker supports at most 2^31 slots"
        );
        self.cap = self.len.next_power_of_two();
        self.values.clear();
        self.values.extend_from_slice(values);
        self.values.resize(self.cap, f64::NEG_INFINITY);
        self.winners.clear();
        self.winners.resize(2 * self.cap, 0);
        for i in 0..self.cap {
            self.winners[self.cap + i] = i as u32;
        }
        // Bottom-up: each internal node takes the better of its two children,
        // the left (lower-index) child winning ties.
        for node in (1..self.cap).rev() {
            self.winners[node] = self.play(self.winners[2 * node], self.winners[2 * node + 1]);
        }
    }

    /// Number of live slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the tracker holds no slots.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current value of slot `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> f64 {
        assert!(i < self.len, "slot {i} out of bounds (len {})", self.len);
        self.values[i]
    }

    /// Sets slot `i` to `value` and repairs the winner path in `O(log len)`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn set(&mut self, i: usize, value: f64) {
        assert!(i < self.len, "slot {i} out of bounds (len {})", self.len);
        self.values[i] = value;
        let mut node = (self.cap + i) / 2;
        while node >= 1 {
            self.winners[node] = self.play(self.winners[2 * node], self.winners[2 * node + 1]);
            node /= 2;
        }
    }

    /// Writes `value` into slot `i` **without** repairing the ancestor
    /// matches, deferring that work to the next [`flush`](Self::flush).
    ///
    /// This is the lazy half of the re-heapify used by an accepted
    /// Interchange replacement: the sparse responsibility deltas of one
    /// accept often share most of their ancestor paths, so replaying each
    /// path once per *batch* (in `flush`) costs `O(D)` node matches instead
    /// of the `O(D·log K)` a `set` per slot would.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn set_deferred(&mut self, i: usize, value: f64) {
        assert!(i < self.len, "slot {i} out of bounds (len {})", self.len);
        self.values[i] = value;
        self.dirty.push(i as u32);
    }

    /// Replays the matches above every slot written by
    /// [`set_deferred`](Self::set_deferred) since the last flush (or
    /// rebuild). Levels are processed bottom-up with shared ancestors
    /// deduplicated, so each affected node is recomputed exactly once. No-op
    /// when nothing is dirty.
    pub fn flush(&mut self) {
        if self.dirty.is_empty() {
            return;
        }
        if self.cap <= 1 {
            // The root *is* the single leaf; nothing to replay.
            self.dirty.clear();
            return;
        }
        let mut frontier = std::mem::take(&mut self.scratch);
        frontier.clear();
        frontier.extend(self.dirty.drain(..).map(|i| (self.cap as u32 + i) >> 1));
        frontier.sort_unstable();
        frontier.dedup();
        // All leaves sit at the same depth (cap is a power of two), so the
        // frontier stays level-synchronized as it walks towards the root.
        loop {
            for &node in &frontier {
                let n = node as usize;
                let w = self.play(self.winners[2 * n], self.winners[2 * n + 1]);
                self.winners[n] = w;
            }
            if frontier[0] == 1 {
                break;
            }
            for node in frontier.iter_mut() {
                *node >>= 1;
            }
            frontier.dedup();
        }
        self.scratch = frontier;
    }

    /// The `(index, value)` of the maximum slot, ties resolved to the lowest
    /// index; `None` when empty.
    ///
    /// # Panics
    /// Debug-panics if deferred writes have not been flushed.
    pub fn max(&self) -> Option<(usize, f64)> {
        debug_assert!(
            self.dirty.is_empty(),
            "MaxTracker::max read with unflushed deferred writes"
        );
        if self.len == 0 {
            return None;
        }
        // For cap == 1 the single leaf sits at winners[1] itself.
        let winner = self.winners[1] as usize;
        Some((winner, self.values[winner]))
    }

    /// Winner of a match between leaves `a` and `b`; `a` (always the
    /// lower-index side in tree order) wins ties.
    #[inline]
    fn play(&self, a: u32, b: u32) -> u32 {
        if self.values[b as usize] > self.values[a as usize] {
            b
        } else {
            a
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference: first-wins linear argmax, exactly the scan the legacy
    /// Interchange Shrink step performed.
    fn linear_argmax(values: &[f64]) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for (i, &v) in values.iter().enumerate() {
            if best.is_none_or(|(_, b)| v > b) {
                best = Some((i, v));
            }
        }
        best
    }

    #[test]
    fn empty_tracker() {
        let t = MaxTracker::new();
        assert!(t.is_empty());
        assert_eq!(t.max(), None);
    }

    #[test]
    fn single_slot() {
        let mut t = MaxTracker::new();
        t.rebuild(&[3.5]);
        assert_eq!(t.max(), Some((0, 3.5)));
        t.set(0, -1.0);
        assert_eq!(t.max(), Some((0, -1.0)));
    }

    #[test]
    fn ties_resolve_to_the_lowest_index() {
        let mut t = MaxTracker::new();
        t.rebuild(&[0.0, 1.0, 1.0, 0.5, 1.0]);
        assert_eq!(t.max(), Some((1, 1.0)));
        // Raising a later slot to the same value must not steal the win.
        t.set(4, 1.0);
        assert_eq!(t.max(), Some((1, 1.0)));
        // A strictly greater later slot does win.
        t.set(4, 1.0 + 1e-12);
        assert_eq!(t.max().unwrap().0, 4);
        // Dropping it hands the win back to the earliest of the tied slots.
        t.set(4, 0.0);
        assert_eq!(t.max(), Some((1, 1.0)));
    }

    #[test]
    fn all_equal_values_pick_slot_zero() {
        let mut t = MaxTracker::new();
        t.rebuild(&vec![0.0; 37]);
        assert_eq!(t.max(), Some((0, 0.0)));
    }

    #[test]
    fn non_power_of_two_lengths() {
        for n in [1usize, 2, 3, 5, 7, 9, 31, 33, 100] {
            let values: Vec<f64> = (0..n).map(|i| ((i * 7919) % 101) as f64).collect();
            let mut t = MaxTracker::new();
            t.rebuild(&values);
            assert_eq!(t.len(), n);
            assert_eq!(t.max(), linear_argmax(&values), "n = {n}");
        }
    }

    #[test]
    fn rebuild_replaces_previous_contents() {
        let mut t = MaxTracker::new();
        t.rebuild(&[9.0, 1.0, 2.0]);
        assert_eq!(t.max(), Some((0, 9.0)));
        t.rebuild(&[1.0, 2.0]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.max(), Some((1, 2.0)));
        t.rebuild(&[]);
        assert_eq!(t.max(), None);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn set_checks_bounds() {
        let mut t = MaxTracker::new();
        t.rebuild(&[1.0, 2.0]);
        t.set(2, 0.0);
    }

    proptest::proptest! {
        /// The tracker always agrees with a first-wins linear argmax scan
        /// under an arbitrary interleaving of rebuilds and sparse updates —
        /// the exact access pattern of the Interchange inner loop (rebuild on
        /// fill, sparse deltas on accept, slot replacement on swap).
        #[test]
        fn agrees_with_linear_argmax_under_interleaved_ops(
            initial in proptest::collection::vec(-100.0f64..100.0, 1..130),
            ops in proptest::collection::vec(
                (0usize..130, -100.0f64..100.0, proptest::bool::ANY),
                0..200,
            ),
        ) {
            let mut reference = initial.clone();
            let mut tracker = MaxTracker::new();
            tracker.rebuild(&initial);
            proptest::prop_assert_eq!(tracker.max(), linear_argmax(&reference));
            for (slot, value, additive) in ops {
                let i = slot % reference.len();
                // Model both update flavours the sampler performs: additive
                // responsibility deltas and outright slot replacement.
                let new = if additive { reference[i] + value } else { value };
                reference[i] = new;
                tracker.set(i, new);
                proptest::prop_assert_eq!(tracker.max(), linear_argmax(&reference));
                proptest::prop_assert_eq!(tracker.get(i), new);
            }
        }

        /// Deferred batches (`set_deferred` × D then one `flush`) reach the
        /// same state as eager per-slot `set` calls — the lazy re-heapify an
        /// accepted replacement relies on.
        #[test]
        fn deferred_batches_match_eager_sets(
            initial in proptest::collection::vec(-100.0f64..100.0, 1..100),
            batches in proptest::collection::vec(
                proptest::collection::vec((0usize..100, -100.0f64..100.0), 1..25),
                0..25,
            ),
        ) {
            let mut eager = MaxTracker::new();
            let mut lazy = MaxTracker::new();
            eager.rebuild(&initial);
            lazy.rebuild(&initial);
            for batch in batches {
                for (slot, value) in batch {
                    let i = slot % initial.len();
                    // Duplicate slots within a batch are allowed: the last
                    // write must win, exactly as with eager sets.
                    eager.set(i, value);
                    lazy.set_deferred(i, value);
                }
                lazy.flush();
                proptest::prop_assert_eq!(lazy.max(), eager.max());
            }
        }

        /// Duplicated (tied) values never break the lowest-index contract.
        #[test]
        fn tie_heavy_streams_keep_lowest_index(
            picks in proptest::collection::vec((0usize..40, 0u8..4), 1..120),
        ) {
            // Values drawn from a 4-value alphabet force constant ties.
            let mut reference = vec![0.0f64; 40];
            let mut tracker = MaxTracker::new();
            tracker.rebuild(&reference);
            for (slot, level) in picks {
                reference[slot] = level as f64;
                tracker.set(slot, level as f64);
                proptest::prop_assert_eq!(tracker.max(), linear_argmax(&reference));
            }
        }
    }
}
