//! # vas-core
//!
//! The core contribution of *"Visualization-Aware Sampling for Very Large
//! Databases"* (Park, Cafarella, Mozafari — ICDE 2016): selecting a size-`K`
//! subset of a 2-D dataset that minimizes a visualization-driven loss, so
//! that scatter and map plots rendered from the sample remain faithful at
//! every zoom level.
//!
//! ## The VAS problem
//!
//! For a proximity kernel `κ` (Gaussian by default), the paper defines the
//! visualization loss of a sample `S` as `∫ 1 / Σ_{s∈S} κ(x, s) dx` and shows
//! (via a second-order Taylor expansion) that minimizing it is equivalent to
//! the combinatorial problem
//!
//! ```text
//!     min_{S ⊆ D, |S| = K}  Σ_{i<j} κ̃(s_i, s_j)
//! ```
//!
//! i.e. picking `K` points that are as mutually spread-out as possible under
//! the kernel. The problem is NP-hard; the paper's practical solver is the
//! **Interchange** hill-climbing algorithm with *responsibility* bookkeeping
//! (Expand/Shrink) and an R-tree locality optimization.
//!
//! ## Crate layout
//!
//! * [`kernel`] — proximity kernels and bandwidth (ε) selection.
//! * [`objective`] — the optimization objective and responsibilities.
//! * [`interchange`] — the Interchange algorithm in its three variants
//!   (`Naive`, `ExpandShrink`, `ExpandShrinkLocality`) behind the
//!   [`VasSampler`](interchange::VasSampler) type, which implements the common
//!   [`Sampler`](vas_sampling::Sampler) trait. Out-of-core datasets stream
//!   through
//!   [`VasSampler::build_from_source`](interchange::VasSampler::build_from_source),
//!   which drives the same loop from any `vas_stream::PointSource` in
//!   `K + one-chunk` memory, bit-identical to an in-memory build.
//! * [`density`] — the density-embedding second pass (Section V).
//! * [`outlier`] — outlier-preserving sample augmentation (the paper's
//!   future-work discussion on outlier-detection tasks).
//!
//! ## Quick start
//!
//! ```
//! use vas_core::{VasConfig, VasSampler};
//! use vas_sampling::Sampler;
//! use vas_data::GeolifeGenerator;
//!
//! let data = GeolifeGenerator::with_size(2_000, 42).generate();
//! let mut sampler = VasSampler::from_dataset(&data, VasConfig::new(100));
//! let sample = sampler.sample_dataset(&data);
//! assert_eq!(sample.len(), 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod density;
pub mod interchange;
pub mod kernel;
pub mod max_tracker;
pub mod objective;
pub mod outlier;
pub mod shard;

pub use checkpoint::{BuildOutcome, CheckpointPolicy};
pub use density::{density_counts_threaded, embed_density};
pub use interchange::{InterchangeStrategy, ProgressEvent, VasConfig, VasSampler};
pub use kernel::{GaussianKernel, Kernel, KernelKind};
pub use max_tracker::MaxTracker;
pub use objective::{objective, responsibilities, responsibility_of};
pub use outlier::{find_outliers, with_outliers, Outlier};
pub use shard::{shard_budgets, ShardedSampler};
pub use vas_spatial::{AnyLocalityIndex, LocalityBackend, LocalityIndex};
