//! The Interchange algorithm (Algorithm 1 of the paper) and the
//! [`VasSampler`] built on top of it.
//!
//! Interchange is a hill-climbing solver for the VAS optimization problem:
//! it starts from the first `K` points of the stream and, for every further
//! data point, performs a *valid replacement* — swapping the new point into
//! the sample whenever doing so decreases the objective
//! `Σ_{i<j} κ̃(s_i, s_j)`.
//!
//! The replacement test is implemented with the paper's Expand/Shrink trick:
//! the *responsibility* of every sample element is maintained incrementally,
//! the candidate is (conceptually) added to form a set of size `K+1`, and the
//! element with the largest responsibility in the expanded set is dropped.
//! Theorem 2 shows this performs exactly the valid replacements.
//!
//! Three strategies reproduce the ablation of Figure 10:
//!
//! * [`InterchangeStrategy::Naive`] — "No ES": responsibilities are recomputed
//!   from scratch for every candidate (`O(K²)` kernel evaluations per tuple).
//! * [`InterchangeStrategy::ExpandShrink`] — "ES": incremental
//!   responsibilities, `O(K)` kernel evaluations per tuple.
//! * [`InterchangeStrategy::ExpandShrinkLocality`] — "ES+Loc": a spatial
//!   index over the current sample restricts kernel evaluations to the
//!   candidate's neighbourhood, exploiting the locality of the proximity
//!   function.
//!
//! The locality strategy is generic over the spatial index through the
//! [`LocalityIndex`] trait: the paper's R-tree, a dynamic k-d tree and the
//! default [`HashGrid`](vas_spatial::HashGrid) (cutoff-sized spatial-hash
//! cells — the fastest backend on this fixed-radius churn workload) are
//! interchangeable via [`VasConfig::with_locality_backend`], and
//! [`VasSampler::with_index`] accepts any statically-typed backend.
//!
//! With [`VasConfig::with_threads`] above 1, the chunked entry points
//! ([`VasSampler::observe_chunk`] and the `build*` drivers) run the
//! locality strategy's candidate phase behind a **speculative kernel
//! pre-evaluation** front: scoped workers compute each candidate's
//! neighbourhood kernel sums against a sample-epoch snapshot, and the
//! sequential accept/reject consumer replays them in stream order,
//! recomputing only candidates invalidated by an accepted replacement —
//! bit-identical to the sequential loop at every thread count.

use crate::checkpoint::{self, BuildOutcome, CheckpointPolicy};
use crate::kernel::{GaussianKernel, Kernel};
use crate::max_tracker::MaxTracker;
use crate::objective::objective;
use std::path::Path;
use std::time::{Duration, Instant};
use vas_data::{BoundingBox, Dataset, Point};
use vas_obs::{Counter, Phase, Recorder, ValueSeries};
use vas_sampling::{Sample, Sampler};
use vas_spatial::snapshot::{self as snap, SnapshotReader};
use vas_spatial::{AnyLocalityIndex, LocalityBackend, LocalityIndex, NeighborBatch};
use vas_stream::{write_atomic, PointSource, VasError};

/// Which inner-loop implementation the Interchange algorithm uses.
///
/// All strategies implement the same hill-climbing rule; `Naive` and
/// `ExpandShrink` produce bit-identical samples, while
/// `ExpandShrinkLocality` may differ negligibly because kernel values below
/// the locality threshold are treated as zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterchangeStrategy {
    /// Recompute responsibilities from scratch for every candidate ("No ES").
    Naive,
    /// Incrementally maintained responsibilities ("ES").
    ExpandShrink,
    /// Incremental responsibilities plus spatial-index neighbourhood pruning
    /// ("ES+Loc"); the index backend is chosen by
    /// [`VasConfig::with_locality_backend`].
    ExpandShrinkLocality,
}

impl InterchangeStrategy {
    /// Label used in experiment output ("No ES", "ES", "ES+Loc").
    pub fn label(&self) -> &'static str {
        match self {
            InterchangeStrategy::Naive => "No ES",
            InterchangeStrategy::ExpandShrink => "ES",
            InterchangeStrategy::ExpandShrinkLocality => "ES+Loc",
        }
    }
}

/// Configuration of the [`VasSampler`].
#[derive(Debug, Clone)]
pub struct VasConfig {
    /// Sample-size budget `K`.
    pub k: usize,
    /// Inner-loop strategy (default: `ExpandShrinkLocality`).
    pub strategy: InterchangeStrategy,
    /// Kernel bandwidth ε. `None` selects the paper's rule
    /// (dataset extent diagonal / 100) from the data itself.
    pub epsilon: Option<f64>,
    /// Kernel values below this threshold are treated as zero by the locality
    /// strategy (the paper's example threshold is ≈1e-7).
    pub locality_threshold: f64,
    /// Number of passes over the dataset made by [`VasSampler::build`]
    /// (the streaming [`Sampler`] interface always performs a single pass).
    pub passes: usize,
    /// Emit a [`ProgressEvent`] every this many observed tuples
    /// (0 disables progress reporting).
    pub progress_every: u64,
    /// Use the pre-optimization inner loop (`O(K)` Shrink scan, allocating
    /// spatial queries). Retained as the measured baseline of the
    /// `fig10_inner_loop` benchmark and as the reference implementation the
    /// determinism suite checks the optimized loop against bit-for-bit.
    pub legacy_inner_loop: bool,
    /// Which spatial index the locality strategy keeps the sample in
    /// (default: [`LocalityBackend::HashGrid`]). Only consulted by the
    /// runtime-dispatched constructors ([`VasSampler::new`],
    /// [`VasSampler::from_dataset`]); statically-typed samplers built with
    /// [`VasSampler::with_index`] bring their own backend.
    pub locality_backend: LocalityBackend,
    /// Force the point-at-a-time **scalar** kernel-evaluation path instead
    /// of the batched gather-then-evaluate path (SoA lanes through
    /// [`Kernel::eval_dist2_batch`]) that `ExpandShrink`/
    /// `ExpandShrinkLocality` candidates use by default. The two paths are
    /// bit-identical (pinned in `tests/determinism.rs`); this switch exists
    /// as the measured baseline of the `fig10_inner_loop` kernel-phase
    /// benchmark and as the reference the determinism suite compares
    /// against.
    pub scalar_kernel_path: bool,
    /// Worker threads for the chunked entry points
    /// ([`VasSampler::observe_chunk`] and the `build*` drivers built on it).
    /// `1` (the default) is the plain sequential loop; above 1 the
    /// `ExpandShrinkLocality` strategy runs its **speculative kernel
    /// pre-evaluation** front: per-chunk workers compute each candidate's
    /// neighbourhood kernel sums against a sample-epoch snapshot while the
    /// accept/reject decision stays on the calling thread, consuming the
    /// pre-evaluated deltas in stream order — bit-identical to the
    /// sequential path at every thread count (pinned in
    /// `tests/determinism.rs`). `0` asks the OS for the available
    /// parallelism. Strategies without locality fall back to the sequential
    /// loop.
    pub threads: usize,
    /// Fault injection for the recovery harness: make the speculative
    /// pre-evaluation front panic in a worker when the sampler's
    /// lifetime-total count of speculated batches reaches this value. The
    /// panic is **contained**: the batch's pre-evaluated buffers are
    /// discarded and the batch re-runs on the reference sequential path, so
    /// the final sample keeps every bit (pinned by the `fault_matrix`
    /// harness). `None` (the default) injects nothing.
    pub inject_speculation_panic_at: Option<u64>,
}

impl VasConfig {
    /// Default configuration for a sample of size `k`.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            strategy: InterchangeStrategy::ExpandShrinkLocality,
            epsilon: None,
            locality_threshold: 1e-6,
            passes: 1,
            progress_every: 0,
            legacy_inner_loop: false,
            scalar_kernel_path: false,
            locality_backend: LocalityBackend::default(),
            threads: 1,
            inject_speculation_panic_at: None,
        }
    }

    /// Sets the inner-loop strategy.
    pub fn with_strategy(mut self, strategy: InterchangeStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Fixes the kernel bandwidth ε explicitly.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = Some(epsilon);
        self
    }

    /// Sets the number of passes used by [`VasSampler::build`].
    pub fn with_passes(mut self, passes: usize) -> Self {
        self.passes = passes.max(1);
        self
    }

    /// Sets the progress reporting interval (in observed tuples).
    pub fn with_progress_every(mut self, every: u64) -> Self {
        self.progress_every = every;
        self
    }

    /// Sets the locality threshold used by `ExpandShrinkLocality`.
    pub fn with_locality_threshold(mut self, threshold: f64) -> Self {
        self.locality_threshold = threshold;
        self
    }

    /// Selects the pre-optimization inner loop (see
    /// [`legacy_inner_loop`](Self::legacy_inner_loop)). Benchmarking and
    /// regression-testing only — the optimized loop produces bit-identical
    /// samples faster.
    pub fn with_legacy_inner_loop(mut self, legacy: bool) -> Self {
        self.legacy_inner_loop = legacy;
        self
    }

    /// Forces the scalar kernel-evaluation path (see
    /// [`scalar_kernel_path`](Self::scalar_kernel_path)). Benchmarking and
    /// regression-testing only — the batched path produces bit-identical
    /// samples faster.
    pub fn with_scalar_kernel_path(mut self, scalar: bool) -> Self {
        self.scalar_kernel_path = scalar;
        self
    }

    /// Selects the spatial-index backend the locality strategy uses (see
    /// [`locality_backend`](Self::locality_backend)).
    pub fn with_locality_backend(mut self, backend: LocalityBackend) -> Self {
        self.locality_backend = backend;
        self
    }

    /// Sets the worker-thread count for the chunked entry points (see
    /// [`threads`](Self::threads); `0` = available parallelism).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Arms the speculation-panic fault injector (see
    /// [`inject_speculation_panic_at`](Self::inject_speculation_panic_at)).
    /// Testing and fault-matrix use only.
    pub fn with_injected_speculation_panic(mut self, at_batch: u64) -> Self {
        self.inject_speculation_panic_at = Some(at_batch);
        self
    }
}

/// A snapshot of Interchange progress, reported periodically while scanning.
///
/// The Figure 9 experiment ("processing time vs quality") is generated by
/// recording these events.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgressEvent {
    /// Number of tuples observed so far (across all passes).
    pub tuples_processed: u64,
    /// Number of valid replacements performed so far.
    pub replacements: u64,
    /// Current value of the optimization objective `Σ_{i<j} κ̃(s_i, s_j)`.
    /// For the locality strategy this is exact up to the ignored kernel tails.
    pub objective: f64,
    /// Wall-clock time since the sampler was created (or last reset).
    pub elapsed: Duration,
}

/// Callback receiving [`ProgressEvent`]s.
pub type ProgressSink = Box<dyn FnMut(ProgressEvent) + Send>;

/// Largest speculative pre-evaluation batch (see [`VasConfig::threads`]).
/// One batch is snapshot → fan-out → ordered apply; the cap bounds the
/// delta-buffer footprint (~`m·16` bytes per candidate for neighbourhood
/// size `m`). The *actual* batch size adapts to the observed accept
/// spacing — an accept throws away the remainder's pre-evaluated deltas,
/// so batches aim for ≈ 1 accept each: early in the hill climb (accept
/// spacing below [`MIN_PRE_EVAL_BATCH`], rate `≈ K/t` on a shuffled
/// stream) candidates run sequentially, and batches grow with the spacing
/// up to this cap.
const PRE_EVAL_BATCH: usize = 2_048;

/// Smallest batch worth a fan-out (a few scoped-thread spawns, ~10–30µs
/// each, against `MIN_PRE_EVAL_BATCH · m` kernel evaluations); doubles as
/// the speculation gate — accept spacings below this mean the fan-out
/// would mostly compute deltas an accept throws away.
const MIN_PRE_EVAL_BATCH: usize = 128;

/// When an accept invalidates a batch remainder at least this long, the
/// remainder is **re-speculated** (a fresh fan-out against the new epoch)
/// instead of finished sequentially — the recompute work stays on the
/// workers. Shorter remainders are cheaper to finish live than to re-spawn
/// for.
const RESPECULATE_MIN_REMAINDER: usize = 192;

/// At most this many re-speculations per batch; a batch that keeps
/// accepting past it finishes sequentially (the adaptive batch sizing in
/// [`VasSampler::observe_chunk`] then shrinks the next batches until the
/// accept rate settles).
const MAX_RESPECULATIONS: usize = 8;

/// Per-worker output buffers of the speculative pre-evaluation front.
///
/// Worker `w` writes its candidates' deltas into the lane-parallel flat
/// arrays `ids[w]`/`vals[w]` (struct-of-arrays: `ids[w][n]` is the sample
/// slot whose kernel value is `vals[w][n]`) in candidate-then-visitation
/// order, with per-candidate `(delta_count, cand_rsp)` records in `meta[w]`;
/// `gathers[w]` is the worker's reusable batch-gather scratch and `ranges`
/// records the stripe split of the last fan-out. The consumer walks worker
/// stripes in range order, which is exactly stream order.
#[derive(Debug, Default)]
struct PreEvalScratch {
    ids: Vec<Vec<usize>>,
    vals: Vec<Vec<f64>>,
    meta: Vec<Vec<(u32, f64)>>,
    gathers: Vec<NeighborBatch>,
    ranges: Vec<std::ops::Range<usize>>,
}

impl PreEvalScratch {
    /// Makes sure `workers` buffer sets exist (capacity is kept across
    /// batches).
    fn ensure_workers(&mut self, workers: usize) {
        self.ids.resize_with(workers.max(self.ids.len()), Vec::new);
        self.vals
            .resize_with(workers.max(self.vals.len()), Vec::new);
        self.meta
            .resize_with(workers.max(self.meta.len()), Vec::new);
        self.gathers
            .resize_with(workers.max(self.gathers.len()), NeighborBatch::new);
    }
}

/// The worker body of the speculative pre-evaluation front: for every
/// candidate in `candidates`, evaluate the kernel against its neighbourhood
/// in the frozen `index` snapshot — the identical query, evaluation and
/// summation order the sequential Expand step performs, so a pre-evaluated
/// delta block substitutes for the live computation bit-for-bit as long as
/// the snapshot is still valid.
///
/// By default each candidate is gather-then-batch-evaluated: the index fills
/// `gather`'s SoA lanes in visitation order, [`Kernel::eval_dist2_batch`]
/// maps them in one vectorizable sweep, and `cand_rsp` folds the value lanes
/// left-to-right — the exact association order of the scalar visitor, which
/// `scalar` selects instead (the benchmarked baseline).
#[allow(clippy::too_many_arguments)]
fn pre_eval_range<L: LocalityIndex>(
    index: &L,
    kernel: GaussianKernel,
    cutoff: f64,
    scalar: bool,
    candidates: &[Point],
    ids: &mut Vec<usize>,
    vals: &mut Vec<f64>,
    meta: &mut Vec<(u32, f64)>,
    gather: &mut NeighborBatch,
) {
    ids.clear();
    vals.clear();
    meta.clear();
    for p in candidates {
        let start = ids.len();
        let mut cand_rsp = 0.0;
        if scalar {
            index.for_each_in_radius_with_dist2(p, cutoff, |i, _, d2| {
                let v = kernel.eval_dist2(d2);
                ids.push(i);
                vals.push(v);
                cand_rsp += v;
            });
        } else {
            index.gather_in_radius_into(p, cutoff, gather);
            ids.extend_from_slice(&gather.ids);
            vals.resize(start + gather.len(), 0.0);
            kernel.eval_dist2_batch(&gather.dist2, &mut vals[start..]);
            for &v in &vals[start..] {
                cand_rsp += v;
            }
        }
        meta.push(((ids.len() - start) as u32, cand_rsp));
    }
}

/// The VAS sampler: Interchange over a stream of points.
///
/// Generic over the [`LocalityIndex`] backend the locality strategy keeps the
/// sample in. The default instantiation dispatches at runtime via
/// [`AnyLocalityIndex`] (selected by [`VasConfig::with_locality_backend`],
/// default [`HashGrid`](vas_spatial::HashGrid)); performance-critical callers
/// can pin a concrete backend with [`VasSampler::with_index`].
pub struct VasSampler<L: LocalityIndex = AnyLocalityIndex> {
    config: VasConfig,
    kernel: Option<GaussianKernel>,
    /// Locality cutoff radius (cached; `cutoff2` is its square). Both are
    /// derived once per kernel install so the hot loop never calls `sqrt`.
    cutoff: f64,
    cutoff2: f64,
    /// Current sample, slot-indexed; slots are stable across replacements.
    points: Vec<Point>,
    /// Responsibilities without the ½ factor: `rsp[i] = Σ_{j≠i} κ̃(s_i, s_j)`.
    rsp: Vec<f64>,
    /// Spatial index over the sample (ids are slot indices); only maintained
    /// by the locality strategy.
    index: L,
    /// Tournament tree over `rsp`, giving the Shrink step its maximum in
    /// `O(1)`; only maintained by the (non-legacy) locality strategy.
    max_tracker: MaxTracker,
    /// Whether `max_tracker` currently mirrors `rsp`. Cleared by every path
    /// that mutates `rsp` without updating the tracker (fill, legacy loop,
    /// naive rebuilds) and restored lazily on the next candidate.
    tracker_fresh: bool,
    /// Reusable SoA gather scratch for the per-candidate neighbourhood query
    /// (`ids` lane-parallel to `dist2`), so the steady-state replacement test
    /// performs no allocation. The scalar path reuses its `ids` buffer too.
    gather: NeighborBatch,
    /// Reusable buffer of per-candidate kernel values, lane-parallel to
    /// `gather.ids` (the other half of the SoA delta representation).
    scratch_vals: Vec<f64>,
    /// Per-worker buffers of the speculative pre-evaluation front, reused
    /// across batches so the steady-state parallel path allocates nothing.
    pre_eval: PreEvalScratch,
    /// Running estimate of the candidate-stream accept spacing (candidates
    /// per accept), driving the adaptive speculation batch size. Starts at
    /// 0 so the earliest (hottest) candidates run sequentially while the
    /// spacing is measured.
    accept_spacing: u64,
    /// Running objective value (½ of the responsibility sum, maintained
    /// incrementally).
    objective: f64,
    seen: u64,
    replacements: u64,
    /// Lifetime count of speculated batches (drives the deterministic
    /// panic-injection hook, [`VasConfig::inject_speculation_panic_at`]).
    speculated: u64,
    /// Metrics/journal sink ([`Recorder::detached`] by default): kernel
    /// lanes, contained panics, accepts/rejects and checkpoint events live
    /// in its registry rather than in dedicated fields. Strictly off the
    /// data path — nothing it measures feeds back into sampled state.
    recorder: Recorder,
    progress: Option<ProgressSink>,
    started: Instant,
}

impl<L: LocalityIndex> std::fmt::Debug for VasSampler<L> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VasSampler")
            .field("config", &self.config)
            .field("sample_len", &self.points.len())
            .field("seen", &self.seen)
            .field("replacements", &self.replacements)
            .field("objective", &self.objective)
            .finish()
    }
}

impl VasSampler {
    /// Creates a sampler whose locality backend is chosen at runtime from
    /// [`VasConfig::locality_backend`]. If `config.epsilon` is `None`, the
    /// bandwidth is resolved from the extent of the first `K` buffered
    /// points.
    pub fn new(config: VasConfig) -> Self {
        let index = AnyLocalityIndex::new(config.locality_backend);
        Self::with_index(config, index)
    }

    /// Creates a sampler whose bandwidth (if not fixed in the config) follows
    /// the paper's rule applied to `dataset`: ε = extent diagonal / 100.
    pub fn from_dataset(dataset: &Dataset, config: VasConfig) -> Self {
        let index = AnyLocalityIndex::new(config.locality_backend);
        Self::from_dataset_with_index(dataset, config, index)
    }
}

/// Tag values for [`InterchangeStrategy`] in the checkpoint payload.
fn strategy_tag(strategy: InterchangeStrategy) -> u8 {
    match strategy {
        InterchangeStrategy::Naive => 0,
        InterchangeStrategy::ExpandShrink => 1,
        InterchangeStrategy::ExpandShrinkLocality => 2,
    }
}

fn strategy_from_tag(tag: u8) -> Result<InterchangeStrategy, VasError> {
    match tag {
        0 => Ok(InterchangeStrategy::Naive),
        1 => Ok(InterchangeStrategy::ExpandShrink),
        2 => Ok(InterchangeStrategy::ExpandShrinkLocality),
        other => Err(VasError::Checkpoint {
            detail: format!("unknown strategy tag {other}"),
        }),
    }
}

/// Tag values for [`LocalityBackend`] in the checkpoint payload.
fn backend_tag(backend: LocalityBackend) -> u8 {
    match backend {
        LocalityBackend::RTree => 0,
        LocalityBackend::KdTree => 1,
        LocalityBackend::HashGrid => 2,
    }
}

fn backend_from_tag(tag: u8) -> Result<LocalityBackend, VasError> {
    match tag {
        0 => Ok(LocalityBackend::RTree),
        1 => Ok(LocalityBackend::KdTree),
        2 => Ok(LocalityBackend::HashGrid),
        other => Err(VasError::Checkpoint {
            detail: format!("unknown locality backend tag {other}"),
        }),
    }
}

/// A resume precondition that must match between the checkpoint and the
/// caller's configuration/source.
fn require_match<T: PartialEq + std::fmt::Debug>(
    what: &str,
    expected: T,
    found: T,
) -> Result<(), VasError> {
    if expected == found {
        Ok(())
    } else {
        Err(VasError::Mismatch {
            expected: format!("{what} {expected:?}"),
            found: format!("{found:?}"),
        })
    }
}

/// Checkpoint/resume for the runtime-dispatched sampler. The index snapshot
/// codec is backend-tagged (see [`vas_spatial::snapshot`]), so these entry
/// points live on the [`AnyLocalityIndex`]-backed sampler every driver and
/// benchmark uses.
impl VasSampler {
    /// Serializes the full sampler state plus the stream position into a
    /// checkpoint payload (the container framing — magic, version, CRC — is
    /// applied by [`write_checkpoint`](Self::write_checkpoint)).
    fn encode_checkpoint_payload(
        &self,
        pass: u64,
        chunks_consumed: u64,
        source_name: &str,
        chunk_capacity: u64,
    ) -> Result<Vec<u8>, VasError> {
        let kernel = self.kernel.as_ref().ok_or(VasError::Checkpoint {
            detail: "cannot checkpoint before the kernel bandwidth is resolved".into(),
        })?;
        let mut out = Vec::new();
        snap::put_u64(&mut out, self.config.k as u64);
        snap::put_u8(&mut out, strategy_tag(self.config.strategy));
        snap::put_u8(&mut out, self.config.legacy_inner_loop as u8);
        snap::put_u8(&mut out, self.config.scalar_kernel_path as u8);
        snap::put_u8(&mut out, backend_tag(self.config.locality_backend));
        snap::put_f64(&mut out, self.config.locality_threshold);
        snap::put_u64(&mut out, self.config.passes.max(1) as u64);
        snap::put_f64(&mut out, kernel.epsilon());
        snap::put_usize(&mut out, source_name.len());
        out.extend_from_slice(source_name.as_bytes());
        snap::put_u64(&mut out, chunk_capacity);
        snap::put_u64(&mut out, pass);
        snap::put_u64(&mut out, chunks_consumed);
        snap::put_usize(&mut out, self.points.len());
        for p in &self.points {
            snap::put_f64(&mut out, p.x);
            snap::put_f64(&mut out, p.y);
            snap::put_f64(&mut out, p.value);
        }
        snap::put_usize(&mut out, self.rsp.len());
        for &r in &self.rsp {
            snap::put_f64(&mut out, r);
        }
        snap::put_f64(&mut out, self.objective);
        snap::put_u64(&mut out, self.seen);
        snap::put_u64(&mut out, self.replacements);
        snap::put_u64(&mut out, self.accept_spacing);
        snap::put_u64(
            &mut out,
            self.recorder.registry().get(Counter::CoreKernelLanes),
        );
        snap::put_u64(&mut out, self.speculated);
        snap::put_u64(
            &mut out,
            self.recorder
                .registry()
                .get(Counter::CoreContainedWorkerPanics),
        );
        let index_bytes = self.index.snapshot();
        snap::put_usize(&mut out, index_bytes.len());
        out.extend_from_slice(&index_bytes);
        Ok(out)
    }

    /// Atomically persists a checkpoint of the sampler at the given stream
    /// position: the file at `path` is replaced via temp + fsync + rename,
    /// so a crash mid-write leaves the previous checkpoint intact.
    pub fn write_checkpoint(
        &self,
        path: &Path,
        pass: u64,
        chunks_consumed: u64,
        source_name: &str,
        chunk_capacity: u64,
    ) -> Result<(), VasError> {
        let payload =
            self.encode_checkpoint_payload(pass, chunks_consumed, source_name, chunk_capacity)?;
        let bytes = checkpoint::encode_container(&payload);
        write_atomic(path, &bytes)
            .map_err(|e| VasError::io(format!("writing checkpoint {}", path.display()), e))
    }

    /// Restores a sampler from a checkpoint file, verifying that `config`
    /// asks for the run the checkpoint belongs to (budget, strategy,
    /// backend, threshold, passes — everything the sample bits depend on;
    /// thread count and progress reporting may differ, as the output is
    /// bit-identical across them).
    ///
    /// Returns the sampler plus the stream position to resume from:
    /// `(pass, chunks_consumed, source_name, chunk_capacity)`.
    pub fn resume_from_checkpoint(
        path: &Path,
        config: VasConfig,
    ) -> Result<(Self, u64, u64, String, u64), VasError> {
        Self::resume_from_checkpoint_recorded(path, config, Recorder::detached())
    }

    /// [`resume_from_checkpoint`](Self::resume_from_checkpoint) with a
    /// [`Recorder`] attached to the restored sampler: the checkpointed
    /// kernel-lane and contained-panic totals are restored into its
    /// registry, `core_checkpoint_resumes` is counted and a
    /// `checkpoint_resume` event is journaled.
    pub fn resume_from_checkpoint_recorded(
        path: &Path,
        config: VasConfig,
        recorder: Recorder,
    ) -> Result<(Self, u64, u64, String, u64), VasError> {
        let label = path.display().to_string();
        let bytes = std::fs::read(path)
            .map_err(|e| VasError::io(format!("reading checkpoint {label}"), e))?;
        let payload = checkpoint::decode_container(&label, &bytes)?;
        let mut r = SnapshotReader::new(payload);
        let ck = |e: snap::SnapshotError| VasError::Checkpoint {
            detail: e.to_string(),
        };

        let k = r.take_usize("k").map_err(ck)?;
        let strategy = strategy_from_tag(r.take_u8("strategy").map_err(ck)?)?;
        let legacy = r.take_u8("legacy flag").map_err(ck)? != 0;
        let scalar = r.take_u8("scalar flag").map_err(ck)? != 0;
        let backend = backend_from_tag(r.take_u8("backend").map_err(ck)?)?;
        let threshold = r.take_f64("locality threshold").map_err(ck)?;
        let passes = r.take_u64("passes").map_err(ck)?;
        require_match("sample budget k", k, config.k)?;
        require_match("strategy", strategy, config.strategy)?;
        require_match("legacy_inner_loop", legacy, config.legacy_inner_loop)?;
        require_match("scalar_kernel_path", scalar, config.scalar_kernel_path)?;
        require_match("locality_backend", backend, config.locality_backend)?;
        require_match(
            "locality_threshold bits",
            threshold.to_bits(),
            config.locality_threshold.to_bits(),
        )?;
        require_match("passes", passes, config.passes.max(1) as u64)?;

        let epsilon = r.take_f64("epsilon").map_err(ck)?;
        if !epsilon.is_finite() || epsilon <= 0.0 {
            return Err(VasError::Checkpoint {
                detail: format!("checkpointed bandwidth {epsilon} is not finite positive"),
            });
        }
        if let Some(fixed) = config.epsilon {
            require_match("epsilon bits", epsilon.to_bits(), fixed.to_bits())?;
        }
        let name_len = r.take_usize("source name length").map_err(ck)?;
        let mut name_bytes = Vec::with_capacity(name_len.min(1 << 16));
        for _ in 0..name_len {
            name_bytes.push(r.take_u8("source name byte").map_err(ck)?);
        }
        let source_name = String::from_utf8(name_bytes).map_err(|_| VasError::Checkpoint {
            detail: "source name is not valid UTF-8".into(),
        })?;
        let chunk_capacity = r.take_u64("chunk capacity").map_err(ck)?;
        let pass = r.take_u64("pass index").map_err(ck)?;
        let chunks_consumed = r.take_u64("chunks consumed").map_err(ck)?;

        let n_points = r.take_usize("sample point count").map_err(ck)?;
        let mut points = Vec::with_capacity(n_points.min(1 << 20));
        for _ in 0..n_points {
            let x = r.take_f64("sample point x").map_err(ck)?;
            let y = r.take_f64("sample point y").map_err(ck)?;
            let value = r.take_f64("sample point value").map_err(ck)?;
            points.push(Point::with_value(x, y, value));
        }
        let n_rsp = r.take_usize("responsibility count").map_err(ck)?;
        let mut rsp = Vec::with_capacity(n_rsp.min(1 << 20));
        for _ in 0..n_rsp {
            rsp.push(r.take_f64("responsibility").map_err(ck)?);
        }
        let objective = r.take_f64("objective").map_err(ck)?;
        let seen = r.take_u64("seen").map_err(ck)?;
        let replacements = r.take_u64("replacements").map_err(ck)?;
        let accept_spacing = r.take_u64("accept spacing").map_err(ck)?;
        let kernel_lanes = r.take_u64("kernel lanes").map_err(ck)?;
        let speculated = r.take_u64("speculated batches").map_err(ck)?;
        let contained = r.take_u64("contained panics").map_err(ck)?;
        let index_len = r.take_usize("index snapshot length").map_err(ck)?;
        let mut index_bytes = Vec::with_capacity(index_len.min(1 << 20));
        for _ in 0..index_len {
            index_bytes.push(r.take_u8("index snapshot byte").map_err(ck)?);
        }
        r.expect_end().map_err(ck)?;

        if rsp.len() != points.len() {
            return Err(VasError::Checkpoint {
                detail: format!(
                    "{} responsibilities for {} sample points",
                    rsp.len(),
                    points.len()
                ),
            });
        }
        let index = AnyLocalityIndex::restore(&index_bytes).map_err(|e| VasError::Checkpoint {
            detail: e.to_string(),
        })?;
        require_match("index backend", index.backend(), backend)?;

        let mut sampler = VasSampler::new(config);
        sampler.recorder = recorder;
        sampler.install_kernel(GaussianKernel::new(epsilon));
        sampler.points = points;
        sampler.rsp = rsp;
        sampler.index = index;
        sampler.objective = objective;
        sampler.seen = seen;
        sampler.replacements = replacements;
        sampler.accept_spacing = accept_spacing;
        sampler
            .recorder
            .set_restored(Counter::CoreKernelLanes, kernel_lanes);
        sampler.speculated = speculated;
        sampler
            .recorder
            .set_restored(Counter::CoreContainedWorkerPanics, contained);
        sampler.recorder.inc(Counter::CoreCheckpointResumes, 1);
        sampler.recorder.event(
            "checkpoint_resume",
            &[
                ("pass", pass.into()),
                ("chunks_consumed", chunks_consumed.into()),
                ("points", (sampler.points.len() as u64).into()),
            ],
        );
        // The tournament tree is a pure function of `rsp`; leaving it stale
        // triggers the same lazy deterministic rebuild every other
        // rsp-mutating path uses.
        sampler.max_tracker = MaxTracker::new();
        sampler.tracker_fresh = false;
        Ok((sampler, pass, chunks_consumed, source_name, chunk_capacity))
    }

    /// [`build_from_source`](Self::build_from_source) with periodic crash
    /// checkpoints per `policy`, from the beginning of the stream.
    ///
    /// Returns [`BuildOutcome::Complete`] with the final sample, or — only
    /// when the policy's deterministic kill switch is armed —
    /// [`BuildOutcome::Halted`], from which
    /// [`resume_build_from_source`](Self::resume_build_from_source) continues
    /// bit-identically.
    pub fn build_from_source_checkpointed<S: PointSource>(
        &mut self,
        source: &mut S,
        policy: &CheckpointPolicy,
    ) -> Result<BuildOutcome, VasError> {
        if self.kernel.is_none() {
            source.reset().map_err(|e| self.fatal(VasError::from(e)))?;
            let stats =
                vas_stream::scan_stats(source).map_err(|e| self.fatal(VasError::from(e)))?;
            self.install_kernel(GaussianKernel::for_bounds(&stats.bounds));
        }
        self.run_checkpointed(source, policy, 0, 0)
    }

    /// Resumes a checkpointed build: restores the sampler from
    /// `policy.path`, verifies the checkpoint belongs to (`config`,
    /// `source`), skips the chunks already consumed and streams the rest —
    /// producing a final sample **bit-identical** to the uninterrupted run.
    pub fn resume_build_from_source<S: PointSource>(
        config: VasConfig,
        source: &mut S,
        policy: &CheckpointPolicy,
    ) -> Result<(Self, BuildOutcome), VasError> {
        Self::resume_build_from_source_recorded(config, source, policy, Recorder::detached())
    }

    /// [`resume_build_from_source`](Self::resume_build_from_source) with a
    /// [`Recorder`] attached before the restore, so the resumed run's
    /// counters, phases and journal events land in the caller's registry.
    pub fn resume_build_from_source_recorded<S: PointSource>(
        config: VasConfig,
        source: &mut S,
        policy: &CheckpointPolicy,
        recorder: Recorder,
    ) -> Result<(Self, BuildOutcome), VasError> {
        let (mut sampler, pass, chunks, source_name, chunk_capacity) =
            Self::resume_from_checkpoint_recorded(&policy.path, config, recorder)?;
        require_match("source name", source_name.as_str(), source.name())?;
        require_match(
            "source chunk capacity",
            chunk_capacity,
            source.chunk_capacity() as u64,
        )?;
        let outcome = sampler.run_checkpointed(source, policy, pass, chunks)?;
        Ok((sampler, outcome))
    }

    /// The checkpointed streaming loop shared by fresh and resumed builds:
    /// per pass, skip `start_chunks` chunks (resume only), then observe
    /// chunk by chunk, checkpointing every `policy.every_chunks` chunks and
    /// honouring the deterministic kill switch.
    fn run_checkpointed<S: PointSource>(
        &mut self,
        source: &mut S,
        policy: &CheckpointPolicy,
        start_pass: u64,
        start_chunks: u64,
    ) -> Result<BuildOutcome, VasError> {
        let mut root = self.recorder.root_span("build_checkpointed");
        root.attr("start_pass", start_pass);
        root.attr("start_chunks", start_chunks);
        let passes = self.config.passes.max(1) as u64;
        let source_name = source.name().to_string();
        let chunk_capacity = source.chunk_capacity() as u64;
        let mut buf = Vec::new();
        let mut halted_after = 0u64;
        for pass in start_pass..passes {
            source.reset().map_err(|e| self.fatal(VasError::from(e)))?;
            let skip = if pass == start_pass { start_chunks } else { 0 };
            let mut chunk_index = 0u64;
            while chunk_index < skip {
                let n = source
                    .next_chunk(&mut buf)
                    .map_err(|e| self.fatal(VasError::from(e)))?;
                if n == 0 {
                    return Err(self.fatal(VasError::Mismatch {
                        expected: format!("at least {skip} chunks in source {source_name:?}"),
                        found: format!("{chunk_index} chunks"),
                    }));
                }
                chunk_index += 1;
            }
            loop {
                let n = source
                    .next_chunk(&mut buf)
                    .map_err(|e| self.fatal(VasError::from(e)))?;
                if n == 0 {
                    break;
                }
                self.observe_chunk(&buf);
                chunk_index += 1;
                halted_after += 1;
                if policy.every_chunks > 0 && chunk_index.is_multiple_of(policy.every_chunks) {
                    self.write_checkpoint(
                        &policy.path,
                        pass,
                        chunk_index,
                        &source_name,
                        chunk_capacity,
                    )?;
                    self.recorder.inc(Counter::CoreCheckpointWrites, 1);
                    self.recorder.event(
                        "checkpoint_write",
                        &[
                            ("pass", pass.into()),
                            ("chunk_index", chunk_index.into()),
                            ("points", (self.points.len() as u64).into()),
                        ],
                    );
                }
                if policy.halt_after_chunks == Some(halted_after) {
                    return Ok(BuildOutcome::Halted {
                        pass,
                        chunks_consumed: chunk_index,
                    });
                }
            }
        }
        Ok(BuildOutcome::Complete(self.finalize()))
    }
}

impl<L: LocalityIndex> VasSampler<L> {
    /// Creates a sampler over an explicit (statically-typed) locality index;
    /// `index` is cleared before use. See [`VasSampler::new`] for the
    /// bandwidth-resolution behaviour.
    pub fn with_index(config: VasConfig, index: L) -> Self {
        let kernel = config.epsilon.map(GaussianKernel::new);
        let mut sampler = Self {
            cutoff: f64::INFINITY,
            cutoff2: f64::INFINITY,
            kernel: None,
            points: Vec::new(),
            rsp: Vec::new(),
            index,
            max_tracker: MaxTracker::new(),
            tracker_fresh: false,
            gather: NeighborBatch::new(),
            scratch_vals: Vec::new(),
            pre_eval: PreEvalScratch::default(),
            accept_spacing: 0,
            objective: 0.0,
            seen: 0,
            replacements: 0,
            speculated: 0,
            recorder: Recorder::detached(),
            progress: None,
            started: Instant::now(),
            config,
        };
        sampler.index.reset(1.0);
        if let Some(k) = kernel {
            sampler.install_kernel(k);
        }
        sampler
    }

    /// [`VasSampler::from_dataset`] over an explicit locality index.
    pub fn from_dataset_with_index(dataset: &Dataset, config: VasConfig, index: L) -> Self {
        let mut sampler = Self::with_index(config, index);
        if sampler.kernel.is_none() {
            sampler.install_kernel(GaussianKernel::for_dataset(dataset));
        }
        sampler
    }

    /// Registers a progress callback (see [`VasConfig::progress_every`]).
    pub fn set_progress_sink(&mut self, sink: ProgressSink) {
        self.progress = Some(sink);
    }

    /// Attaches a shared [`Recorder`]: kernel lanes, accepts/rejects,
    /// contained panics and checkpoint events count into its registry;
    /// phase timings and journal events flow to it when enabled. Note that
    /// [`finalize`](Sampler::finalize) resets the registry's
    /// build-scoped counters (accepts, rejects, kernel lanes), so a
    /// registry shared across *concurrent* builds will see those views
    /// interleave — lifetime counters are unaffected.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// Builder-style [`Self::set_recorder`].
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// The attached [`Recorder`] ([`Recorder::detached`] unless one was
    /// installed).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The resolved kernel, if the bandwidth has been determined yet.
    pub fn kernel(&self) -> Option<&GaussianKernel> {
        self.kernel.as_ref()
    }

    /// Number of valid replacements performed so far.
    pub fn replacements(&self) -> u64 {
        self.replacements
    }

    /// Number of kernel-value lanes evaluated through the batched
    /// [`Kernel::eval_dist2_batch`] path so far (zero when
    /// [`VasConfig::scalar_kernel_path`] is set).
    ///
    /// Thin view over the metrics registry (`Counter::CoreKernelLanes`);
    /// kept for compatibility — new code should read the registry of the
    /// attached recorder directly.
    pub fn kernel_lanes(&self) -> u64 {
        self.recorder.registry().get(Counter::CoreKernelLanes)
    }

    /// Speculative batches whose worker panicked and were **contained**: the
    /// pre-evaluated buffers were discarded and the batch re-ran on the
    /// reference sequential path, changing no sample bit. Zero in a healthy
    /// run.
    ///
    /// Thin view over the metrics registry
    /// (`Counter::CoreContainedWorkerPanics`); kept for compatibility — new
    /// code should read the registry of the attached recorder directly.
    pub fn contained_worker_panics(&self) -> u64 {
        self.recorder
            .registry()
            .get(Counter::CoreContainedWorkerPanics)
    }

    /// Current value of the optimization objective.
    pub fn current_objective(&self) -> f64 {
        self.objective
    }

    /// Current sample contents (slot order).
    pub fn current_sample(&self) -> &[Point] {
        &self.points
    }

    /// Occupancy statistics of the locality index's cell decomposition, when
    /// the configured backend has one (the `HashGrid` does; tree backends
    /// return `None`). An on-demand probe of the same signal the sampler
    /// records through `vas-obs` when the fill phase completes — the
    /// measurement the density-adaptive cell-sizing decision was missing.
    pub fn grid_occupancy(&self) -> Option<vas_spatial::GridOccupancy> {
        self.index.occupancy_stats()
    }

    /// Runs the configured number of passes over `dataset` and returns the
    /// final sample. Multi-pass runs continue improving the same sample, as
    /// the paper does when more processing time is available.
    pub fn build(&mut self, dataset: &Dataset) -> Sample {
        let mut root = self.recorder.root_span("build");
        root.attr("n", dataset.len());
        root.attr("k", self.config.k);
        if self.kernel.is_none() {
            self.install_kernel(GaussianKernel::for_dataset(dataset));
        }
        for _ in 0..self.config.passes.max(1) {
            self.observe_chunk(&dataset.points);
        }
        self.finalize()
    }

    /// Streaming counterpart of [`build`](Self::build): runs the configured
    /// number of passes over any [`PointSource`] and returns the final
    /// sample, holding at most the sample (`K` slots) plus one source chunk
    /// in memory.
    ///
    /// If no bandwidth was fixed in the config, a one-pass bounds scan over
    /// the source resolves ε by the paper's rule first — folding the extent
    /// in stream order, so the resolved kernel is **bit-identical** to the
    /// one [`build`](Self::build) derives from the materialized dataset.
    /// Because the source contract guarantees a stable point order across
    /// `reset`s, the whole run is then bit-identical to `build` over the
    /// equivalent in-memory dataset (pinned in `tests/determinism.rs`).
    ///
    /// Errors from the underlying source (I/O, malformed rows) abort the
    /// build and surface as a typed [`VasError`] (corruption, truncation and
    /// retry exhaustion stay distinguishable); the sampler is left
    /// mid-stream and should be discarded or finalized.
    pub fn build_from_source<S: PointSource>(
        &mut self,
        source: &mut S,
    ) -> Result<Sample, VasError> {
        // A *root* span: besides heading the causal tree, it becomes the
        // tracer's ambient parent so decode spans recorded on the read-ahead
        // pipeline thread (spawned before this call) still land under the
        // build.
        let mut root = self.recorder.root_span("build_from_source");
        root.attr("k", self.config.k);
        root.attr("passes", self.config.passes.max(1));
        if self.kernel.is_none() {
            source.reset().map_err(|e| self.fatal(VasError::from(e)))?;
            let stats =
                vas_stream::scan_stats(source).map_err(|e| self.fatal(VasError::from(e)))?;
            self.install_kernel(GaussianKernel::for_bounds(&stats.bounds));
        }
        let mut buf = Vec::new();
        for _ in 0..self.config.passes.max(1) {
            source.reset().map_err(|e| self.fatal(VasError::from(e)))?;
            while source
                .next_chunk(&mut buf)
                .map_err(|e| self.fatal(VasError::from(e)))?
                > 0
            {
                self.observe_chunk(&buf);
            }
        }
        Ok(self.finalize())
    }

    /// Marks a build-fatal error on the observability side — journals a
    /// `fatal` event and dumps the flight recorder's ring to its post-mortem
    /// file, if one is attached — then hands the error back unchanged.
    /// Purely observational: the error value and the sampler state are
    /// untouched.
    fn fatal(&self, err: VasError) -> VasError {
        let _ = self.recorder.fatal(&err.to_string());
        err
    }

    /// Streaming counterpart of
    /// [`build_until_converged`](Self::build_until_converged): rescans the
    /// source until a full pass performs no valid replacement or
    /// `max_passes` is reached. Returns the sample and the passes made.
    pub fn build_from_source_until_converged<S: PointSource>(
        &mut self,
        source: &mut S,
        max_passes: usize,
    ) -> Result<(Sample, usize), VasError> {
        let mut root = self.recorder.root_span("build_from_source_until_converged");
        root.attr("k", self.config.k);
        root.attr("max_passes", max_passes);
        if self.kernel.is_none() {
            source.reset().map_err(|e| self.fatal(VasError::from(e)))?;
            let stats =
                vas_stream::scan_stats(source).map_err(|e| self.fatal(VasError::from(e)))?;
            self.install_kernel(GaussianKernel::for_bounds(&stats.bounds));
        }
        let mut buf = Vec::new();
        let mut passes = 0usize;
        loop {
            let before = self.replacements;
            source.reset().map_err(|e| self.fatal(VasError::from(e)))?;
            let mut streamed = 0u64;
            while source
                .next_chunk(&mut buf)
                .map_err(|e| self.fatal(VasError::from(e)))?
                > 0
            {
                streamed += buf.len() as u64;
                self.observe_chunk(&buf);
            }
            passes += 1;
            let replacements_this_pass = self.replacements - before;
            // Mirrors `build_until_converged`: the first pass also fills the
            // sample, so convergence requires a full sample and at least one
            // complete refinement pass.
            let filled = self.points.len() as u64 >= (self.config.k as u64).min(streamed);
            if (passes > 1 && replacements_this_pass == 0 && filled) || passes >= max_passes.max(1)
            {
                break;
            }
        }
        Ok((self.finalize(), passes))
    }

    /// Runs passes over `dataset` until a full pass performs **no** valid
    /// replacement (the paper's "run until no replacement decreases the
    /// optimization objective") or `max_passes` is reached, whichever comes
    /// first. Returns the sample together with the number of passes made.
    ///
    /// Convergence in this sense is a local optimum of the Interchange
    /// neighbourhood, which is exactly the state Theorem 3's approximation
    /// bound speaks about.
    pub fn build_until_converged(
        &mut self,
        dataset: &Dataset,
        max_passes: usize,
    ) -> (Sample, usize) {
        let mut root = self.recorder.root_span("build_until_converged");
        root.attr("n", dataset.len());
        root.attr("max_passes", max_passes);
        if self.kernel.is_none() {
            self.install_kernel(GaussianKernel::for_dataset(dataset));
        }
        let mut passes = 0usize;
        loop {
            let before = self.replacements;
            self.observe_chunk(&dataset.points);
            passes += 1;
            let replacements_this_pass = self.replacements - before;
            // The very first pass also fills the sample, so "no replacements"
            // only counts as convergence once the sample is full and at least
            // one complete refinement pass has run.
            let filled = self.points.len() >= self.config.k.min(dataset.len());
            if (passes > 1 && replacements_this_pass == 0 && filled) || passes >= max_passes.max(1)
            {
                break;
            }
        }
        (self.finalize(), passes)
    }

    /// Observes every point of `chunk` in order — the chunked counterpart of
    /// [`observe`](Sampler::observe), and the entry point of the parallel
    /// execution path.
    ///
    /// With [`VasConfig::threads`] ≤ 1 (or a strategy the parallel front
    /// does not cover) this is exactly the sequential `observe` loop. Above
    /// 1, `ExpandShrinkLocality` candidates run through **speculative kernel
    /// pre-evaluation**: the chunk is cut into batches of at most
    /// [`PRE_EVAL_BATCH`] candidates; for each batch, scoped workers
    /// partition the candidates into contiguous ranges and compute every
    /// candidate's neighbourhood `(slot, κ̃)` deltas against the *frozen*
    /// sample index (the batch's epoch snapshot); the calling thread then
    /// replays the batch **in stream order**, feeding each pre-evaluated
    /// block to the unchanged Shrink/accept logic. An accepted replacement
    /// mutates the sample and thereby invalidates the remaining pre-evaluated
    /// blocks of the batch — a long remainder is **re-speculated** (fresh
    /// fan-out against the new epoch), a short one finishes on the live
    /// index, and batches are only speculated at all while the accept rate
    /// is low (the adaptive gate below) — so at steady state, where accepts
    /// are ≪1% of candidates, almost all kernel work leaves the critical
    /// thread while the output stays bit-identical at every thread count
    /// (pinned in `tests/determinism.rs`).
    pub fn observe_chunk(&mut self, chunk: &[Point]) {
        let mut span = self.recorder.span("observe_chunk");
        span.attr("chunk_len", chunk.len());
        let replacements_before = self.replacements;
        let len_before = self.points.len();
        let was_filling = self.config.k > 0 && len_before < self.config.k;
        self.observe_chunk_inner(chunk);
        // Chunk-granularity observability accounting: every point of the
        // chunk was either a fill, an accepted replacement or a rejection.
        let accepts = self.replacements - replacements_before;
        let filled = (self.points.len() - len_before) as u64;
        self.recorder.inc(Counter::CoreAccepts, accepts);
        self.recorder.inc(
            Counter::CoreRejects,
            (chunk.len() as u64).saturating_sub(filled + accepts),
        );
        if was_filling && self.points.len() >= self.config.k {
            self.recorder.event(
                "phase_transition",
                &[
                    ("from", "fill".into()),
                    ("to", "candidate".into()),
                    ("seen", self.seen.into()),
                ],
            );
            // The fill just completed, so the locality index holds a full
            // K-sample: the representative moment to probe grid occupancy
            // (the density-adaptive cell-sizing signal). The probe scans the
            // whole cell table, so it only runs when observability is
            // attached — a detached build never pays for it.
            if self.recorder.timing_enabled() || self.recorder.journal().is_some() {
                if let Some(occ) = self.index.occupancy_stats() {
                    self.recorder
                        .record_value(ValueSeries::GridOccupiedCells, occ.cells_occupied as u64);
                    self.recorder.record_value(
                        ValueSeries::GridMaxCellPoints,
                        occ.max_points_per_cell as u64,
                    );
                    self.recorder.event(
                        "grid_occupancy",
                        &[
                            ("cells_occupied", (occ.cells_occupied as u64).into()),
                            ("points", (occ.points as u64).into()),
                            (
                                "mean_points_per_cell",
                                vas_obs::EventValue::F64(occ.mean_points_per_cell),
                            ),
                            (
                                "max_points_per_cell",
                                (occ.max_points_per_cell as u64).into(),
                            ),
                        ],
                    );
                }
            }
        }
    }

    fn observe_chunk_inner(&mut self, chunk: &[Point]) {
        let threads = vas_par::effective_threads(self.config.threads);
        let speculative = threads > 1
            && self.config.strategy == InterchangeStrategy::ExpandShrinkLocality
            && !self.config.legacy_inner_loop
            && self.config.k > 0
            && self.kernel.is_some();
        if !speculative {
            let mut rest = chunk;
            if self.points.len() < self.config.k {
                let fill = (self.config.k - self.points.len()).min(rest.len());
                let started = self.recorder.timing_enabled().then(Instant::now);
                {
                    let _span = self.recorder.span("fill");
                    for p in &rest[..fill] {
                        self.observe(*p);
                    }
                }
                if let Some(t0) = started {
                    self.recorder
                        .record_phase_ns(Phase::Fill, t0.elapsed().as_nanos() as u64);
                }
                rest = &rest[fill..];
            }
            if rest.is_empty() {
                return;
            }
            let started = self.recorder.timing_enabled().then(Instant::now);
            {
                let _span = self.recorder.span("candidate_eval");
                for p in rest {
                    self.observe(*p);
                }
            }
            if let Some(t0) = started {
                self.recorder
                    .record_phase_ns(Phase::CandidateEval, t0.elapsed().as_nanos() as u64);
            }
            return;
        }
        let mut rest = chunk;
        // The fill phase (and a possible mid-chunk fill → candidate
        // transition) stays sequential: it mutates the index per point.
        if self.points.len() < self.config.k {
            let fill = (self.config.k - self.points.len()).min(rest.len());
            let started = self.recorder.timing_enabled().then(Instant::now);
            {
                let _span = self.recorder.span("fill");
                for p in &rest[..fill] {
                    self.observe(*p);
                }
            }
            if let Some(t0) = started {
                self.recorder
                    .record_phase_ns(Phase::Fill, t0.elapsed().as_nanos() as u64);
            }
            rest = &rest[fill..];
        }
        while !rest.is_empty() {
            // Adaptive batch sizing: aim for ≈ 1 accept per batch. The
            // estimator is the accept spacing observed over recent batches
            // — a pure function of the stream, so the sizing (like
            // everything else here) is deterministic, and both paths
            // produce identical output anyway. Below the minimum spacing
            // the hill climb is too hot to speculate on at all (the
            // fan-out would mostly compute deltas an accept throws away)
            // and candidates run sequentially while the spacing keeps
            // being measured.
            let spacing = self.accept_spacing;
            let take = rest
                .len()
                .min((spacing as usize).clamp(MIN_PRE_EVAL_BATCH, PRE_EVAL_BATCH));
            let (batch, tail) = rest.split_at(take);
            let before = self.replacements;
            // `take` can undershoot the minimum at a chunk tail — such a
            // sliver is cheaper to run sequentially than to fan out for.
            if spacing >= MIN_PRE_EVAL_BATCH as u64 && take >= MIN_PRE_EVAL_BATCH {
                self.observe_candidates_speculative(batch, threads);
            } else {
                let started = self.recorder.timing_enabled().then(Instant::now);
                {
                    let _span = self.recorder.span("candidate_eval");
                    for p in batch {
                        self.observe(*p);
                    }
                }
                if let Some(t0) = started {
                    self.recorder
                        .record_phase_ns(Phase::CandidateEval, t0.elapsed().as_nanos() as u64);
                }
            }
            let accepts = self.replacements - before;
            self.accept_spacing = if accepts == 0 {
                self.accept_spacing.saturating_add(take as u64)
            } else {
                take as u64 / (accepts + 1)
            };
            rest = tail;
        }
    }

    /// One speculative batch: snapshot → parallel pre-evaluation → ordered
    /// sequential apply; on invalidation, **re-speculate** what is left. See
    /// [`observe_chunk`](Self::observe_chunk).
    fn observe_candidates_speculative(&mut self, batch: &[Point], threads: usize) {
        let mut rest = batch;
        let mut respeculations = 0usize;
        while !rest.is_empty() {
            // The epoch snapshot: the index only changes when a replacement
            // is accepted, so "no accept since the fan-out" ⟺ "the
            // pre-evaluated deltas are exactly what a live Expand would
            // compute now".
            let snapshot = self.replacements;
            let started = self.recorder.timing_enabled().then(Instant::now);
            let pre_eval_ok = {
                let mut span = self.recorder.span("candidate_eval");
                span.attr("batch_len", rest.len());
                self.pre_evaluate(rest, threads)
            };
            if let Some(t0) = started {
                self.recorder
                    .record_phase_ns(Phase::CandidateEval, t0.elapsed().as_nanos() as u64);
            }
            if !pre_eval_ok {
                // A worker panicked mid-fan-out: the pre-evaluated buffers
                // are unusable (possibly half-written), but the sample, the
                // index and the stream position are untouched — the fan-out
                // only *reads* the frozen index. Contain the failure by
                // finishing the batch on the reference sequential path,
                // which is bit-identical to a successful speculation by the
                // determinism contract.
                self.recorder.inc(Counter::CoreContainedWorkerPanics, 1);
                // A contained panic is the flight recorder's moment: dump
                // the recent span/event ring before degrading, so the
                // post-mortem shows what led up to the poisoned fan-out.
                let _ = self.recorder.fatal("contained_worker_panic");
                let started = self.recorder.timing_enabled().then(Instant::now);
                {
                    let _span = self.recorder.span("accept_churn");
                    for p in rest {
                        self.seen += 1;
                        self.observe_candidate(*p);
                        self.maybe_report_progress();
                    }
                }
                if let Some(t0) = started {
                    self.recorder
                        .record_phase_ns(Phase::AcceptChurn, t0.elapsed().as_nanos() as u64);
                }
                return;
            }
            let started = self.recorder.timing_enabled().then(Instant::now);
            let applied = {
                let _span = self.recorder.span("speculation_replay");
                self.apply_pre_evaluated(rest, snapshot)
            };
            if let Some(t0) = started {
                self.recorder
                    .record_phase_ns(Phase::SpeculationReplay, t0.elapsed().as_nanos() as u64);
            }
            rest = &rest[applied..];
            if rest.is_empty() {
                return;
            }
            // `applied < len` means an accept invalidated the remainder's
            // pre-evaluations. A large remainder is worth a fresh fan-out
            // (the loop re-speculates it against the new epoch); a small
            // one — or a batch that keeps accepting — is cheaper to finish
            // on the live index directly.
            respeculations += 1;
            if rest.len() < RESPECULATE_MIN_REMAINDER || respeculations > MAX_RESPECULATIONS {
                let started = self.recorder.timing_enabled().then(Instant::now);
                {
                    let _span = self.recorder.span("accept_churn");
                    for p in rest {
                        self.seen += 1;
                        self.observe_candidate(*p);
                        self.maybe_report_progress();
                    }
                }
                if let Some(t0) = started {
                    self.recorder
                        .record_phase_ns(Phase::AcceptChurn, t0.elapsed().as_nanos() as u64);
                }
                return;
            }
        }
    }

    /// Fans `candidates` out over `threads` scoped workers, each computing
    /// its contiguous stripe's neighbourhood deltas against the frozen
    /// index, into the reusable per-worker buffers.
    ///
    /// Returns `false` when a worker **panicked**: the panic is contained
    /// (every worker is joined, the calling thread's own stripe runs under
    /// `catch_unwind`) and the caller must treat the pre-evaluated buffers
    /// as poison — nothing else is touched, so degrading the batch to the
    /// sequential path is safe and bit-identical.
    fn pre_evaluate(&mut self, candidates: &[Point], threads: usize) -> bool {
        let kernel = self.kernel.expect("kernel resolved");
        let cutoff = self.cutoff;
        let scalar = self.config.scalar_kernel_path;
        let batch_index = self.speculated;
        self.speculated += 1;
        let inject_panic = self.config.inject_speculation_panic_at == Some(batch_index);
        let ranges = vas_par::split_ranges(candidates.len(), threads);
        let workers = ranges.len();
        self.pre_eval.ensure_workers(workers);
        self.pre_eval.ranges.clear();
        self.pre_eval.ranges.extend(ranges.iter().cloned());
        // Cross-thread span propagation: capture the consuming thread's
        // open span (the batch's candidate_eval span) before the fan-out so
        // every worker-task span parents under it. Both are `None`/inert
        // without an attached tracer.
        let span_parent = self.recorder.current_ctx();
        let worker_recorder = self.recorder.clone();
        // Split the borrows: workers share the frozen index (`&L` is
        // `Sync`) and each owns one disjoint output buffer set.
        let Self {
            index, pre_eval, ..
        } = &mut *self;
        let index = &*index;
        let id_bufs = &mut pre_eval.ids[..workers];
        let val_bufs = &mut pre_eval.vals[..workers];
        let meta_bufs = &mut pre_eval.meta[..workers];
        let gather_bufs = &mut pre_eval.gathers[..workers];
        let mut poisoned = false;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers.saturating_sub(1));
            let mut stripes = ranges.iter().cloned().zip(
                id_bufs
                    .iter_mut()
                    .zip(val_bufs.iter_mut())
                    .zip(meta_bufs.iter_mut().zip(gather_bufs.iter_mut())),
            );
            let first = stripes.next().expect("at least one range");
            // The injected fault hits a *spawned* worker when there is one
            // (exercising the cross-thread containment path), else the
            // calling thread's own stripe.
            let mut inject_in_spawned = inject_panic && workers > 1;
            for (range, ((ids, vals), (meta, gather))) in stripes {
                let stripe = &candidates[range];
                let worker_injects = std::mem::take(&mut inject_in_spawned);
                let rec = worker_recorder.clone();
                handles.push(scope.spawn(move || {
                    let mut span = rec.span_under("worker_task", span_parent);
                    span.attr("site", "pre_eval");
                    span.attr("stripe_len", stripe.len());
                    if worker_injects {
                        panic!("injected speculation fault (batch {batch_index})");
                    }
                    pre_eval_range(
                        index, kernel, cutoff, scalar, stripe, ids, vals, meta, gather,
                    );
                }));
            }
            // The calling thread is worker 0; contain its own stripe too so
            // a panic here cannot leak past the scope while the spawned
            // workers are still running.
            let (range, ((ids, vals), (meta, gather))) = first;
            let stripe = &candidates[range];
            let mut span = worker_recorder.span_under("worker_task", span_parent);
            span.attr("site", "pre_eval");
            span.attr("stripe_len", stripe.len());
            let own = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                if inject_panic && workers == 1 {
                    panic!("injected speculation fault (batch {batch_index})");
                }
                pre_eval_range(
                    index, kernel, cutoff, scalar, stripe, ids, vals, meta, gather,
                );
            }));
            drop(span);
            poisoned |= own.is_err();
            for h in handles {
                poisoned |= h.join().is_err();
            }
        });
        if poisoned {
            return false;
        }
        if !scalar {
            let lanes = self.pre_eval.vals[..workers]
                .iter()
                .map(|v| v.len() as u64)
                .sum::<u64>();
            self.recorder.inc(Counter::CoreKernelLanes, lanes);
        }
        true
    }

    /// Replays pre-evaluated candidates **in stream order** until the batch
    /// is exhausted or the epoch goes stale (the candidate that *causes* the
    /// accept still consumes its own valid pre-evaluation). Returns how many
    /// candidates were consumed. Worker stripes are contiguous ranges in
    /// ascending order, so walking them in order is walking the batch in
    /// stream order.
    fn apply_pre_evaluated(&mut self, batch: &[Point], snapshot: u64) -> usize {
        let scratch = std::mem::take(&mut self.pre_eval);
        let mut applied = 0usize;
        'stripes: for (w, range) in scratch.ranges.iter().enumerate() {
            let mut cursor = 0usize;
            for (j, &(len, cand_rsp)) in scratch.meta[w].iter().enumerate() {
                if self.replacements != snapshot {
                    break 'stripes;
                }
                let point = batch[range.start + j];
                let ids = &scratch.ids[w][cursor..cursor + len as usize];
                let vals = &scratch.vals[w][cursor..cursor + len as usize];
                cursor += len as usize;
                self.seen += 1;
                self.shrink_apply_es_locality(point, ids, vals, cand_rsp);
                self.maybe_report_progress();
                applied += 1;
            }
        }
        self.pre_eval = scratch;
        applied
    }

    fn install_kernel(&mut self, kernel: GaussianKernel) {
        let cutoff = kernel.effective_radius(self.config.locality_threshold);
        self.cutoff = cutoff;
        self.cutoff2 = cutoff * cutoff;
        self.kernel = Some(kernel);
        if self.index.is_empty() {
            // Re-tune the (still empty) index to the cutoff radius every
            // radius query will use: the HashGrid sizes its cells from it.
            self.index.reset(cutoff);
        }
    }

    /// Resolves the kernel bandwidth from the points buffered so far
    /// (used when streaming without a pre-declared ε).
    fn resolve_kernel_from_buffer(&mut self) {
        let bounds = BoundingBox::from_points(&self.points);
        let diag = bounds.diagonal();
        let epsilon = if diag.is_finite() && diag > 0.0 {
            diag / 100.0
        } else {
            1.0
        };
        self.install_kernel(GaussianKernel::new(epsilon));
        // Initialize responsibilities of the buffered points.
        self.initialize_state();
    }

    /// (Re)computes responsibilities, the locality index and the objective
    /// for the current `points`. Called once the kernel becomes available.
    fn initialize_state(&mut self) {
        let kernel = self.kernel.expect("kernel resolved");
        let n = self.points.len();
        self.rsp = vec![0.0; n];
        self.objective = 0.0;
        self.index.reset(self.cutoff);
        self.tracker_fresh = false;
        let use_locality = self.config.strategy == InterchangeStrategy::ExpandShrinkLocality;
        if use_locality {
            let mut neighbors: Vec<(usize, Point)> = Vec::new();
            for (i, p) in self.points.iter().enumerate() {
                // Contributions against already-inserted points only.
                self.index.query_radius_into(p, self.cutoff, &mut neighbors);
                for &(j, q) in &neighbors {
                    let v = kernel.eval(p, &q);
                    self.rsp[i] += v;
                    self.rsp[j] += v;
                    self.objective += v;
                }
                self.index.insert(i, *p);
            }
        } else {
            for i in 0..n {
                for j in (i + 1)..n {
                    let v = kernel.eval(&self.points[i], &self.points[j]);
                    self.rsp[i] += v;
                    self.rsp[j] += v;
                    self.objective += v;
                }
            }
        }
    }

    /// Handles a point while the sample is still being filled (|S| < K).
    fn observe_fill(&mut self, point: Point) {
        let slot = self.points.len();
        if let Some(kernel) = self.kernel {
            let use_locality = self.config.strategy == InterchangeStrategy::ExpandShrinkLocality;
            let mut own = 0.0;
            if use_locality {
                let cutoff = self.cutoff;
                let Self { index, rsp, .. } = self;
                index.for_each_in_radius_with_dist2(&point, cutoff, |j, _, d2| {
                    let v = kernel.eval_dist2(d2);
                    rsp[j] += v;
                    own += v;
                });
                self.index.insert(slot, point);
            } else {
                for (j, q) in self.points.iter().enumerate() {
                    let v = kernel.eval(&point, q);
                    self.rsp[j] += v;
                    own += v;
                }
            }
            self.objective += own;
            self.points.push(point);
            self.rsp.push(own);
            self.tracker_fresh = false;
        } else {
            // Bandwidth not known yet: buffer and defer.
            self.points.push(point);
            if self.points.len() == self.config.k {
                self.resolve_kernel_from_buffer();
            }
        }
    }

    /// Handles a candidate point once the sample is full: the Expand/Shrink
    /// replacement test.
    fn observe_candidate(&mut self, point: Point) {
        match (self.config.strategy, self.config.legacy_inner_loop) {
            (InterchangeStrategy::Naive, _) => self.candidate_naive(point),
            (InterchangeStrategy::ExpandShrink, false) => self.candidate_es_full(point),
            (InterchangeStrategy::ExpandShrinkLocality, false) => self.candidate_es_locality(point),
            (InterchangeStrategy::ExpandShrink, true) => self.candidate_es_legacy(point, false),
            (InterchangeStrategy::ExpandShrinkLocality, true) => {
                self.candidate_es_legacy(point, true)
            }
        }
    }

    /// "No ES": recompute every responsibility of the expanded set from
    /// scratch, then drop the maximum. `O(K²)` kernel evaluations.
    fn candidate_naive(&mut self, point: Point) {
        let kernel = self.kernel.expect("kernel resolved");
        let k = self.points.len();
        // Responsibilities in the expanded set S ∪ {t}, computed from scratch.
        let mut expanded_rsp = vec![0.0; k + 1];
        for i in 0..k {
            for j in (i + 1)..k {
                let v = kernel.eval(&self.points[i], &self.points[j]);
                expanded_rsp[i] += v;
                expanded_rsp[j] += v;
            }
            let v = kernel.eval(&self.points[i], &point);
            expanded_rsp[i] += v;
            expanded_rsp[k] += v;
        }
        let (max_idx, _) = argmax(&expanded_rsp);
        if max_idx == k {
            return; // the candidate itself is the most redundant: reject
        }
        // Accept: replace slot `max_idx` with the candidate and rebuild the
        // bookkeeping from scratch (this strategy has no incremental state).
        self.points[max_idx] = point;
        self.replacements += 1;
        self.rsp = crate::objective::responsibilities(&kernel, &self.points)
            .into_iter()
            .map(|r| 2.0 * r)
            .collect();
        self.objective = objective(&kernel, &self.points);
        self.tracker_fresh = false;
    }

    /// Rebuilds the max-responsibility tournament from `rsp` if a
    /// non-tracking path (fill, naive, legacy) has touched `rsp` since the
    /// tracker last mirrored it.
    fn ensure_tracker(&mut self) {
        if !self.tracker_fresh {
            self.max_tracker.rebuild(&self.rsp);
            self.tracker_fresh = true;
        }
    }

    /// "ES" without locality: incremental Expand/Shrink with a dense delta
    /// vector. Inherently `O(K)` per tuple (every slot's responsibility
    /// changes in the expanded set), but allocation-free in steady state.
    fn candidate_es_full(&mut self, point: Point) {
        let kernel = self.kernel.expect("kernel resolved");
        let k = self.points.len();

        // --- Expand: vals[i] = κ̃(t, s_i) for every slot, in slot order (the
        // deltas are dense, so the slot index IS the lane index). By default
        // the squared distances are laid out as flat lanes and mapped in one
        // vectorizable `eval_dist2_batch` sweep; the scalar baseline
        // evaluates point-at-a-time. Both compute `eval_dist2(dist2(t, s_i))`
        // per lane in the same order, so they are bit-identical.
        let mut gather = std::mem::take(&mut self.gather);
        let mut vals = std::mem::take(&mut self.scratch_vals);
        gather.clear();
        vals.clear();
        let mut cand_rsp = 0.0;
        if self.config.scalar_kernel_path {
            for q in self.points.iter() {
                let v = kernel.eval(&point, q);
                vals.push(v);
                cand_rsp += v;
            }
        } else {
            for q in self.points.iter() {
                gather.dist2.push(point.dist2(q));
            }
            vals.resize(k, 0.0);
            kernel.eval_dist2_batch(&gather.dist2, &mut vals);
            self.recorder.inc(Counter::CoreKernelLanes, k as u64);
            for &v in &vals {
                cand_rsp += v;
            }
        }

        // --- Shrink: largest responsibility in the expanded set. Because
        // the deltas are dense and slot-ordered, `vals[i]` plays the role
        // the legacy loop's scattered `delta_of` vector played, without the
        // per-tuple allocation.
        let mut max_idx = usize::MAX; // usize::MAX encodes "the candidate"
        let mut max_val = cand_rsp;
        for (i, &r) in self.rsp.iter().enumerate() {
            let r = r + vals[i];
            if r > max_val {
                max_val = r;
                max_idx = i;
            }
        }

        if max_idx == usize::MAX {
            self.gather = gather;
            self.scratch_vals = vals;
            return; // candidate is the most redundant element: reject
        }

        // --- Accept: replace slot `max_idx` ("s_j") with the candidate.
        let removed = self.points[max_idx];
        let removed_rsp = self.rsp[max_idx];
        for (i, &v) in vals.iter().enumerate() {
            if i != max_idx {
                self.rsp[i] += v;
            }
        }
        let kappa_t_removed = vals[max_idx];
        for i in 0..k {
            if i != max_idx {
                self.rsp[i] -= kernel.eval(&removed, &self.points[i]);
            }
        }

        let new_rsp = cand_rsp - kappa_t_removed;
        self.points[max_idx] = point;
        self.rsp[max_idx] = new_rsp;
        self.objective += new_rsp - removed_rsp;
        self.replacements += 1;
        self.tracker_fresh = false;
        self.gather = gather;
        self.scratch_vals = vals;
    }

    /// "ES+Loc": Expand/Shrink with spatial-index locality **and** the
    /// max-responsibility tournament.
    ///
    /// A rejected candidate — the overwhelmingly common case once the sample
    /// has converged — costs only its neighbourhood kernel evaluations plus
    /// an `O(1)` read of the tournament root: the `O(K)` Shrink scan of the
    /// legacy loop is gone. An accepted candidate additionally pays
    /// `O(log K)` per touched neighbour to repair the tournament.
    fn candidate_es_locality(&mut self, point: Point) {
        let kernel = self.kernel.expect("kernel resolved");

        // --- Expand: evaluate the kernel against the candidate's
        // neighbourhood only. By default the index batch-gathers the
        // neighbourhood's `(id, dist2)` SoA lanes (in visitation order) and
        // one `eval_dist2_batch` sweep maps the distance lanes to kernel
        // values; `cand_rsp` then folds the value lanes left-to-right —
        // exactly the association order of the scalar visitor path
        // (`scalar_kernel_path`, the benchmarked baseline), so the two are
        // bit-identical.
        let mut gather = std::mem::take(&mut self.gather);
        let mut vals = std::mem::take(&mut self.scratch_vals);
        let mut cand_rsp = 0.0;
        if self.config.scalar_kernel_path {
            gather.clear();
            vals.clear();
            self.index
                .for_each_in_radius_with_dist2(&point, self.cutoff, |i, _, d2| {
                    let v = kernel.eval_dist2(d2);
                    gather.ids.push(i);
                    vals.push(v);
                    cand_rsp += v;
                });
        } else {
            self.index
                .gather_in_radius_into(&point, self.cutoff, &mut gather);
            vals.clear();
            vals.resize(gather.len(), 0.0);
            kernel.eval_dist2_batch(&gather.dist2, &mut vals);
            self.recorder
                .inc(Counter::CoreKernelLanes, gather.len() as u64);
            for &v in &vals {
                cand_rsp += v;
            }
        }

        self.shrink_apply_es_locality(point, &gather.ids, &vals, cand_rsp);
        self.gather = gather;
        self.scratch_vals = vals;
    }

    /// The Shrink + accept half of the "ES+Loc" replacement test, fed either
    /// by the live Expand above or by a **pre-evaluated** delta block from
    /// the speculative front ([`VasSampler::observe_chunk`]); both produce
    /// the identical SoA delta lanes (`ids[n]` is the sample slot whose
    /// kernel value is `vals[n]`), so this path is shared verbatim.
    fn shrink_apply_es_locality(
        &mut self,
        point: Point,
        ids: &[usize],
        vals: &[f64],
        cand_rsp: f64,
    ) {
        let kernel = self.kernel.expect("kernel resolved");

        // --- Shrink: the expanded-set maximum is either the candidate, a
        // neighbour slot raised by its delta, or the standing maximum over
        // all base responsibilities — which the tournament hands over in
        // O(1). Tie-breaking matches the legacy first-wins linear scan
        // because the tournament resolves ties to the lowest index.
        self.ensure_tracker();
        let mut max_idx = usize::MAX; // usize::MAX encodes "the candidate"
        let mut max_val = cand_rsp;
        if let Some((i, r)) = self.max_tracker.max() {
            if r > max_val {
                max_val = r;
                max_idx = i;
            }
        }
        for (&i, &v) in ids.iter().zip(vals) {
            let r = self.rsp[i] + v;
            if r > max_val {
                max_val = r;
                max_idx = i;
            }
        }

        if max_idx == usize::MAX {
            return; // candidate is the most redundant element: reject
        }

        // --- Accept: replace slot `max_idx` ("s_j") with the candidate.
        // Responsibility updates are written into the tournament lazily
        // (`set_deferred`) and the dirtied ancestor matches are replayed once
        // at the end (`flush`): one accept touches up to 2·|neighbourhood|
        // slots whose paths overlap heavily, so the batched replay costs
        // `O(D)` node matches instead of `O(D·log K)`.
        let removed = self.points[max_idx];
        let removed_rsp = self.rsp[max_idx];

        // Add the candidate's contributions to its neighbours.
        for (&i, &v) in ids.iter().zip(vals) {
            if i != max_idx {
                self.rsp[i] += v;
                self.max_tracker.set_deferred(i, self.rsp[i]);
            }
        }
        // Subtract the removed element's contributions from its neighbours.
        let kappa_t_removed = ids
            .iter()
            .position(|&i| i == max_idx)
            .map(|n| vals[n])
            .unwrap_or_else(|| kernel.eval(&point, &removed));
        {
            let cutoff = self.cutoff;
            let Self {
                index,
                rsp,
                max_tracker,
                ..
            } = self;
            index.for_each_in_radius_with_dist2(&removed, cutoff, |i, _, d2| {
                if i != max_idx {
                    rsp[i] -= kernel.eval_dist2(d2);
                    max_tracker.set_deferred(i, rsp[i]);
                }
            });
        }
        self.index.remove(max_idx, &removed);
        self.index.insert(max_idx, point);

        let new_rsp = cand_rsp - kappa_t_removed;
        self.points[max_idx] = point;
        self.rsp[max_idx] = new_rsp;
        self.max_tracker.set_deferred(max_idx, new_rsp);
        self.max_tracker.flush();
        self.objective += new_rsp - removed_rsp;
        self.replacements += 1;
    }

    /// The pre-optimization "ES" / "ES+Loc" inner loop, retained verbatim as
    /// the benchmark baseline and the bit-identity reference (see
    /// [`VasConfig::legacy_inner_loop`]).
    fn candidate_es_legacy(&mut self, point: Point, locality: bool) {
        let kernel = self.kernel.expect("kernel resolved");
        let k = self.points.len();

        // --- Expand: responsibilities the candidate would add.
        // deltas[i] = κ̃(t, s_i) for the slots we evaluate.
        let (neighbor_ids, mut cand_rsp): (Vec<usize>, f64) = if locality {
            let neighbors = self.index.query_radius(&point, self.cutoff2.sqrt());
            let ids: Vec<usize> = neighbors.iter().map(|(id, _)| *id).collect();
            (ids, 0.0)
        } else {
            ((0..k).collect(), 0.0)
        };
        let mut deltas: Vec<(usize, f64)> = Vec::with_capacity(neighbor_ids.len());
        for &i in &neighbor_ids {
            let v = kernel.eval(&point, &self.points[i]);
            deltas.push((i, v));
            cand_rsp += v;
        }

        // --- Shrink: find the largest responsibility in the expanded set.
        // Non-neighbour slots keep their current responsibility; neighbour
        // slots gain their delta.
        let mut max_idx = usize::MAX; // usize::MAX encodes "the candidate"
        let mut max_val = cand_rsp;
        // Apply deltas temporarily by scanning: rsp_i' = rsp_i (+ delta_i).
        // To avoid a hash lookup per slot we scan deltas separately.
        let mut delta_of = vec![0.0; 0];
        if locality {
            // Sparse deltas: first scan all slots with their base value, then
            // adjust the neighbour slots.
            for (i, &r) in self.rsp.iter().enumerate() {
                if r > max_val {
                    max_val = r;
                    max_idx = i;
                }
            }
            for &(i, v) in &deltas {
                let r = self.rsp[i] + v;
                if r > max_val {
                    max_val = r;
                    max_idx = i;
                }
            }
        } else {
            delta_of = vec![0.0; k];
            for &(i, v) in &deltas {
                delta_of[i] = v;
            }
            for (i, &r) in self.rsp.iter().enumerate() {
                let r = r + delta_of[i];
                if r > max_val {
                    max_val = r;
                    max_idx = i;
                }
            }
        }

        if max_idx == usize::MAX {
            return; // candidate is the most redundant element: reject
        }

        // --- Accept: replace slot `max_idx` ("s_j") with the candidate.
        let removed = self.points[max_idx];
        let removed_rsp = self.rsp[max_idx];

        // Add the candidate's contributions to its neighbours.
        for &(i, v) in &deltas {
            if i != max_idx {
                self.rsp[i] += v;
            }
        }
        // Subtract the removed element's contributions from its neighbours.
        let kappa_t_removed;
        if locality {
            kappa_t_removed = deltas
                .iter()
                .find(|(i, _)| *i == max_idx)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| kernel.eval(&point, &removed));
            for (i, q) in self.index.query_radius(&removed, self.cutoff2.sqrt()) {
                if i != max_idx {
                    self.rsp[i] -= kernel.eval(&removed, &q);
                }
            }
            self.index.remove(max_idx, &removed);
            self.index.insert(max_idx, point);
        } else {
            kappa_t_removed = delta_of[max_idx];
            for i in 0..k {
                if i != max_idx {
                    self.rsp[i] -= kernel.eval(&removed, &self.points[i]);
                }
            }
        }

        let new_rsp = cand_rsp - kappa_t_removed;
        self.points[max_idx] = point;
        self.rsp[max_idx] = new_rsp;
        self.objective += new_rsp - removed_rsp;
        self.replacements += 1;
        // The legacy loop never maintains the tournament.
        self.tracker_fresh = false;
    }

    fn maybe_report_progress(&mut self) {
        if self.config.progress_every == 0 {
            return;
        }
        if !self.seen.is_multiple_of(self.config.progress_every) {
            return;
        }
        let event = ProgressEvent {
            tuples_processed: self.seen,
            replacements: self.replacements,
            objective: self.objective,
            elapsed: self.started.elapsed(),
        };
        if let Some(sink) = self.progress.as_mut() {
            sink(event);
        }
    }

    fn reset(&mut self) {
        self.points = Vec::new();
        self.rsp = Vec::new();
        self.index.reset(self.cutoff);
        self.max_tracker = MaxTracker::new();
        self.tracker_fresh = false;
        self.gather = NeighborBatch::new();
        self.scratch_vals = Vec::new();
        self.pre_eval = PreEvalScratch::default();
        self.accept_spacing = 0;
        self.objective = 0.0;
        self.seen = 0;
        self.replacements = 0;
        self.speculated = 0;
        // Resets the registry's build-scoped counters (accepts, rejects,
        // kernel lanes). `core_contained_worker_panics` deliberately
        // survives: it is the sampler-lifetime health counter callers
        // inspect *after* a build to learn whether any speculative batch
        // was poisoned.
        self.recorder.registry().reset_build_counters();
        self.started = Instant::now();
        // Keep the resolved kernel: it describes the data domain, which does
        // not change between passes or reuse on the same table.
    }
}

impl<L: LocalityIndex> Sampler for VasSampler<L> {
    fn name(&self) -> &str {
        "vas"
    }

    fn target_size(&self) -> usize {
        self.config.k
    }

    fn observe(&mut self, point: Point) {
        self.seen += 1;
        if self.config.k == 0 {
            return;
        }
        if self.points.len() < self.config.k {
            self.observe_fill(point);
        } else {
            self.observe_candidate(point);
        }
        self.maybe_report_progress();
    }

    fn finalize(&mut self) -> Sample {
        if self.kernel.is_none() && !self.points.is_empty() {
            // Stream ended before the buffer filled: resolve now so that the
            // responsibilities (and any later density pass) are well defined.
            self.resolve_kernel_from_buffer();
        }
        let points = std::mem::take(&mut self.points);
        let sample = Sample::new("vas", self.config.k, points);
        self.reset();
        sample
    }
}

/// Index and value of the maximum element (ties resolved to the first).
fn argmax(values: &[f64]) -> (usize, f64) {
    let mut idx = 0;
    let mut best = f64::NEG_INFINITY;
    for (i, &v) in values.iter().enumerate() {
        if v > best {
            best = v;
            idx = i;
        }
    }
    (idx, best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::objective as objective_of;
    use vas_data::GeolifeGenerator;
    use vas_sampling::UniformSampler;

    fn small_dataset() -> Dataset {
        GeolifeGenerator::with_size(3_000, 17).generate()
    }

    #[test]
    fn produces_sample_of_requested_size() {
        let d = small_dataset();
        let mut s = VasSampler::from_dataset(&d, VasConfig::new(150));
        let sample = s.sample_dataset(&d);
        assert_eq!(sample.len(), 150);
        assert_eq!(sample.method, "vas");
        // All sample points come from the dataset.
        for p in &sample.points {
            assert!(d.points.contains(p));
        }
    }

    #[test]
    fn sample_smaller_than_budget_when_data_is_small() {
        let d = Dataset::from_points("tiny", (0..10).map(|i| Point::new(i as f64, 0.0)).collect());
        let mut s = VasSampler::from_dataset(&d, VasConfig::new(100));
        let sample = s.sample_dataset(&d);
        assert_eq!(sample.len(), 10);
    }

    #[test]
    fn zero_budget() {
        let d = small_dataset();
        let mut s = VasSampler::from_dataset(&d, VasConfig::new(0));
        assert!(s.sample_dataset(&d).is_empty());
    }

    #[test]
    fn naive_and_expand_shrink_agree_until_near_ties() {
        // Both strategies implement the identical replacement rule, so their
        // per-tuple decisions must agree exactly until a near-tie in
        // responsibilities is resolved differently by floating-point
        // summation order. On this workload that first divergence happens
        // only deep into the stream; we require perfect agreement for a
        // meaningful prefix, and that both keep obeying the hill-climbing
        // invariant afterwards.
        let d = GeolifeGenerator::with_size(400, 3).generate();
        let k = 30;
        let kernel = GaussianKernel::for_dataset(&d);
        let eps = kernel.bandwidth();
        let mut naive = VasSampler::from_dataset(
            &d,
            VasConfig::new(k)
                .with_strategy(InterchangeStrategy::Naive)
                .with_epsilon(eps),
        );
        let mut es = VasSampler::from_dataset(
            &d,
            VasConfig::new(k)
                .with_strategy(InterchangeStrategy::ExpandShrink)
                .with_epsilon(eps),
        );
        let mut agreed_prefix = 0usize;
        let mut diverged = false;
        for (i, p) in d.iter().enumerate() {
            naive.observe(*p);
            es.observe(*p);
            if !diverged {
                if naive.current_sample() == es.current_sample() {
                    agreed_prefix = i + 1;
                } else {
                    diverged = true;
                }
            }
        }
        assert!(
            agreed_prefix >= 100,
            "strategies disagreed after only {agreed_prefix} tuples"
        );
        // Regardless of where the paths split, both must end up with a far
        // better objective than uniform sampling over the same stream.
        let uni = UniformSampler::new(k, 1).sample_dataset(&d);
        let o_uni = objective_of(&kernel, &uni.points);
        let o_naive = objective_of(&kernel, naive.current_sample());
        let o_es = objective_of(&kernel, es.current_sample());
        assert!(o_naive < o_uni, "naive {o_naive} vs uniform {o_uni}");
        assert!(o_es < o_uni, "ES {o_es} vs uniform {o_uni}");
    }

    #[test]
    fn naive_strategy_never_increases_objective_after_fill() {
        let d = GeolifeGenerator::with_size(600, 29).generate();
        let kernel = GaussianKernel::for_dataset(&d);
        let k = 40;
        let mut s = VasSampler::from_dataset(
            &d,
            VasConfig::new(k)
                .with_strategy(InterchangeStrategy::Naive)
                .with_epsilon(kernel.bandwidth()),
        );
        let mut prev = f64::INFINITY;
        for (i, p) in d.iter().enumerate() {
            s.observe(*p);
            if i + 1 >= k {
                let cur = objective_of(&kernel, s.current_sample());
                if i + 1 > k {
                    assert!(
                        cur <= prev + 1e-9,
                        "naive objective increased at tuple {i}: {prev} -> {cur}"
                    );
                }
                prev = cur;
            }
        }
    }

    #[test]
    fn locality_matches_expand_shrink_closely() {
        let d = GeolifeGenerator::with_size(2_000, 5).generate();
        let k = 100;
        let kernel = GaussianKernel::for_dataset(&d);
        let eps = kernel.bandwidth();
        let mut es = VasSampler::from_dataset(
            &d,
            VasConfig::new(k)
                .with_strategy(InterchangeStrategy::ExpandShrink)
                .with_epsilon(eps),
        );
        let mut loc = VasSampler::from_dataset(
            &d,
            VasConfig::new(k)
                .with_strategy(InterchangeStrategy::ExpandShrinkLocality)
                .with_epsilon(eps),
        );
        let a = es.sample_dataset(&d);
        let b = loc.sample_dataset(&d);
        let oa = objective_of(&kernel, &a.points);
        let ob = objective_of(&kernel, &b.points);
        // Truncating kernel tails flips near-tie replacement decisions, so the
        // two hill climbs reach *different* local optima; landing below ES is
        // fine. What the locality speed-up must not do is give up sample
        // quality, so only the regression direction is bounded.
        assert!(
            ob <= oa * 1.05 + 1e-9,
            "ES+Loc lost too much quality: ES={oa}, ES+Loc={ob}"
        );
    }

    #[test]
    fn vas_beats_uniform_sampling_on_the_objective() {
        let d = small_dataset();
        let k = 200;
        let kernel = GaussianKernel::for_dataset(&d);
        let mut vas = VasSampler::from_dataset(&d, VasConfig::new(k));
        let vas_sample = vas.sample_dataset(&d);
        let uni_sample = UniformSampler::new(k, 7).sample_dataset(&d);
        let vas_obj = objective_of(&kernel, &vas_sample.points);
        let uni_obj = objective_of(&kernel, &uni_sample.points);
        assert!(
            vas_obj < uni_obj,
            "VAS objective {vas_obj} should beat uniform {uni_obj}"
        );
    }

    #[test]
    fn replacements_only_decrease_the_objective() {
        // Track the objective after every observation: the hill-climbing
        // invariant is that accepted replacements never increase it.
        let d = GeolifeGenerator::with_size(1_500, 11).generate();
        let mut s = VasSampler::from_dataset(
            &d,
            VasConfig::new(80).with_strategy(InterchangeStrategy::ExpandShrink),
        );
        let mut prev = f64::INFINITY;
        let mut fill_done = false;
        for (i, p) in d.iter().enumerate() {
            s.observe(*p);
            if i + 1 == 80 {
                fill_done = true;
                prev = s.current_objective();
            } else if fill_done {
                let cur = s.current_objective();
                assert!(
                    cur <= prev + 1e-9,
                    "objective increased at tuple {i}: {prev} -> {cur}"
                );
                prev = cur;
            }
        }
    }

    #[test]
    fn incremental_objective_matches_reference() {
        let d = GeolifeGenerator::with_size(1_000, 13).generate();
        let kernel = GaussianKernel::for_dataset(&d);
        let mut s = VasSampler::from_dataset(
            &d,
            VasConfig::new(60)
                .with_strategy(InterchangeStrategy::ExpandShrink)
                .with_epsilon(kernel.bandwidth()),
        );
        for p in d.iter() {
            s.observe(*p);
        }
        let incremental = s.current_objective();
        let reference = objective_of(&kernel, s.current_sample());
        assert!(
            (incremental - reference).abs() < 1e-6 * (1.0 + reference),
            "incremental {incremental} vs reference {reference}"
        );
    }

    #[test]
    fn multi_pass_does_not_worsen_quality() {
        let d = GeolifeGenerator::with_size(2_000, 19).generate();
        let kernel = GaussianKernel::for_dataset(&d);
        let one = VasSampler::from_dataset(&d, VasConfig::new(100).with_passes(1)).build(&d);
        let three = VasSampler::from_dataset(&d, VasConfig::new(100).with_passes(3)).build(&d);
        let o1 = objective_of(&kernel, &one.points);
        let o3 = objective_of(&kernel, &three.points);
        assert!(o3 <= o1 + 1e-9, "more passes must not hurt: {o1} -> {o3}");
    }

    #[test]
    fn streaming_without_dataset_resolves_bandwidth() {
        let d = small_dataset();
        let mut s = VasSampler::new(VasConfig::new(50));
        assert!(s.kernel().is_none());
        let sample = s.sample_dataset(&d);
        assert_eq!(sample.len(), 50);
    }

    #[test]
    fn short_stream_resolves_bandwidth_at_finalize() {
        let d = Dataset::from_points("short", (0..5).map(|i| Point::new(i as f64, 1.0)).collect());
        let mut s = VasSampler::new(VasConfig::new(50));
        let sample = s.sample_dataset(&d);
        assert_eq!(sample.len(), 5);
        assert!(s.kernel().is_some());
    }

    #[test]
    fn progress_events_are_emitted_and_monotone() {
        let d = small_dataset();
        let events = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let sink_events = events.clone();
        let mut s = VasSampler::from_dataset(&d, VasConfig::new(100).with_progress_every(500));
        s.set_progress_sink(Box::new(move |e| sink_events.lock().unwrap().push(e)));
        let _ = s.sample_dataset(&d);
        let events = events.lock().unwrap();
        assert!(!events.is_empty());
        for w in events.windows(2) {
            assert!(w[1].tuples_processed > w[0].tuples_processed);
            assert!(w[1].replacements >= w[0].replacements);
            // After the fill phase the objective only decreases.
            if w[0].tuples_processed > 100 {
                assert!(w[1].objective <= w[0].objective + 1e-9);
            }
        }
    }

    #[test]
    fn vas_sample_is_more_spread_out_than_uniform() {
        // The qualitative claim behind Figure 1: VAS covers sparse regions.
        let d = small_dataset();
        let k = 300;
        let vas = VasSampler::from_dataset(&d, VasConfig::new(k)).sample_dataset_helper(&d);
        let uni = UniformSampler::new(k, 3).sample_dataset(&d);
        // Count occupied cells of a coarse grid: more occupied cells = better
        // spatial coverage.
        let occupied =
            |pts: &[Point]| vas_spatial::UniformGrid::build(pts, 30, 30).occupied_cells();
        assert!(
            occupied(&vas.points) >= occupied(&uni.points),
            "VAS should cover at least as many cells as uniform sampling"
        );
    }

    impl VasSampler {
        /// Test helper: run a full pass (avoids the name clash with the
        /// `Sampler` trait method inside this test module).
        fn sample_dataset_helper(mut self, d: &Dataset) -> Sample {
            self.sample_dataset(d)
        }
    }

    #[test]
    fn build_until_converged_reaches_a_local_optimum() {
        let d = GeolifeGenerator::with_size(800, 23).generate();
        let kernel = GaussianKernel::for_dataset(&d);
        let mut sampler = VasSampler::from_dataset(
            &d,
            VasConfig::new(40)
                .with_strategy(InterchangeStrategy::ExpandShrink)
                .with_epsilon(kernel.bandwidth()),
        );
        let (sample, passes) = sampler.build_until_converged(&d, 20);
        assert_eq!(sample.len(), 40);
        assert!(
            passes >= 2,
            "needs at least one refinement pass, got {passes}"
        );
        assert!(passes <= 20);
        // Converged means: one more pass over the data changes nothing.
        let mut again = VasSampler::from_dataset(
            &d,
            VasConfig::new(40)
                .with_strategy(InterchangeStrategy::ExpandShrink)
                .with_epsilon(kernel.bandwidth()),
        );
        let (first, p1) = again.build_until_converged(&d, 20);
        if p1 < 20 {
            let obj_first = objective_of(&kernel, &first.points);
            // Re-running from that converged sample performs no improving swap,
            // so the objective cannot decrease further within one extra pass.
            let mut resume = VasSampler::from_dataset(
                &d,
                VasConfig::new(40)
                    .with_strategy(InterchangeStrategy::ExpandShrink)
                    .with_epsilon(kernel.bandwidth()),
            );
            for p in &first.points {
                resume.observe(*p);
            }
            for p in d.iter() {
                resume.observe(*p);
            }
            let resumed = resume.finalize();
            let obj_resumed = objective_of(&kernel, &resumed.points);
            assert!(obj_resumed <= obj_first + 1e-9);
        }
    }

    #[test]
    fn optimized_inner_loop_matches_legacy_bitwise_per_tuple() {
        // The tentpole refactor's contract: the tournament-tree Shrink and
        // the zero-allocation queries must not change a single replacement
        // decision. Lock-step the optimized and legacy samplers and compare
        // the full sample bit-for-bit after *every* observation.
        let d = GeolifeGenerator::with_size(3_000, 41).generate();
        let k = 120;
        // ES ignores the index entirely; ES+Loc must hold the contract on
        // every locality backend.
        let mut cases = vec![(
            InterchangeStrategy::ExpandShrink,
            LocalityBackend::default(),
        )];
        for backend in LocalityBackend::ALL {
            cases.push((InterchangeStrategy::ExpandShrinkLocality, backend));
        }
        for (strategy, backend) in cases {
            let eps = GaussianKernel::for_dataset(&d).bandwidth();
            let base = VasConfig::new(k)
                .with_strategy(strategy)
                .with_epsilon(eps)
                .with_locality_backend(backend);
            let mut optimized = VasSampler::from_dataset(&d, base.clone());
            let mut legacy = VasSampler::from_dataset(&d, base.with_legacy_inner_loop(true));
            for (t, p) in d.iter().enumerate() {
                optimized.observe(*p);
                legacy.observe(*p);
                let (a, b) = (optimized.current_sample(), legacy.current_sample());
                assert_eq!(a.len(), b.len());
                for (i, (pa, pb)) in a.iter().zip(b).enumerate() {
                    assert!(
                        pa.x.to_bits() == pb.x.to_bits() && pa.y.to_bits() == pb.y.to_bits(),
                        "{}/{backend}: slot {i} diverged at tuple {t}: {pa:?} vs {pb:?}",
                        strategy.label()
                    );
                }
                assert_eq!(
                    optimized.replacements(),
                    legacy.replacements(),
                    "{}/{backend}: replacement count diverged at tuple {t}",
                    strategy.label()
                );
            }
            assert_eq!(
                optimized.current_objective().to_bits(),
                legacy.current_objective().to_bits(),
                "{}/{backend}: objective bits diverged",
                strategy.label()
            );
        }
    }

    #[test]
    fn optimized_loop_survives_multiple_passes() {
        // Multi-pass runs exercise the tracker across fill → candidates →
        // another full pass without a reset in between.
        let d = GeolifeGenerator::with_size(1_200, 59).generate();
        let eps = GaussianKernel::for_dataset(&d).bandwidth();
        let base = VasConfig::new(80)
            .with_strategy(InterchangeStrategy::ExpandShrinkLocality)
            .with_epsilon(eps)
            .with_passes(3);
        let fast = VasSampler::from_dataset(&d, base.clone()).build(&d);
        let slow = VasSampler::from_dataset(&d, base.with_legacy_inner_loop(true)).build(&d);
        assert_eq!(fast.points, slow.points);
    }

    #[test]
    fn tracker_state_survives_streaming_reuse() {
        // finalize() resets the sampler; a second stream through the same
        // instance must behave exactly like a fresh sampler.
        let d = GeolifeGenerator::with_size(2_000, 71).generate();
        let eps = GaussianKernel::for_dataset(&d).bandwidth();
        let config = VasConfig::new(100)
            .with_strategy(InterchangeStrategy::ExpandShrinkLocality)
            .with_epsilon(eps);
        let mut reused = VasSampler::from_dataset(&d, config.clone());
        let _ = reused.sample_dataset(&d);
        let second = reused.sample_dataset(&d);
        let fresh = VasSampler::from_dataset(&d, config).sample_dataset(&d);
        assert_eq!(second.points, fresh.points);
    }

    #[test]
    fn strategy_labels() {
        assert_eq!(InterchangeStrategy::Naive.label(), "No ES");
        assert_eq!(InterchangeStrategy::ExpandShrink.label(), "ES");
        assert_eq!(InterchangeStrategy::ExpandShrinkLocality.label(), "ES+Loc");
    }

    #[test]
    fn every_locality_backend_produces_a_full_quality_sample() {
        // Different backends visit neighbourhoods in different orders, so the
        // hill climbs may reach different local optima — but each must yield
        // a complete sample whose objective beats uniform sampling.
        let d = GeolifeGenerator::with_size(2_500, 61).generate();
        let k = 120;
        let kernel = GaussianKernel::for_dataset(&d);
        let uni = UniformSampler::new(k, 5).sample_dataset(&d);
        let o_uni = objective_of(&kernel, &uni.points);
        for backend in LocalityBackend::ALL {
            let config = VasConfig::new(k)
                .with_epsilon(kernel.bandwidth())
                .with_locality_backend(backend);
            let sample = VasSampler::from_dataset(&d, config).sample_dataset(&d);
            assert_eq!(sample.len(), k, "backend {backend}");
            let o = objective_of(&kernel, &sample.points);
            assert!(
                o < o_uni,
                "backend {backend}: {o} should beat uniform {o_uni}"
            );
        }
    }

    #[test]
    fn statically_typed_backend_matches_the_runtime_dispatched_one() {
        // `with_index` pins the backend at compile time; the produced sample
        // must be bit-identical to the enum-dispatched sampler configured for
        // the same backend.
        let d = GeolifeGenerator::with_size(2_000, 67).generate();
        let eps = GaussianKernel::for_dataset(&d).bandwidth();
        let config = VasConfig::new(100)
            .with_epsilon(eps)
            .with_locality_backend(LocalityBackend::HashGrid);
        let via_enum = VasSampler::from_dataset(&d, config.clone()).sample_dataset(&d);
        let via_static =
            VasSampler::from_dataset_with_index(&d, config, vas_spatial::HashGrid::new())
                .sample_dataset(&d);
        assert_eq!(via_enum.points, via_static.points);
    }

    #[test]
    fn config_backend_defaults_to_hashgrid() {
        assert_eq!(
            VasConfig::new(10).locality_backend,
            LocalityBackend::HashGrid
        );
    }

    fn assert_samples_bitwise_equal(a: &[Point], b: &[Point], what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: lengths differ");
        for (i, (p, q)) in a.iter().zip(b).enumerate() {
            assert!(
                p.x.to_bits() == q.x.to_bits() && p.y.to_bits() == q.y.to_bits(),
                "{what}: slot {i} diverged: {p:?} vs {q:?}"
            );
        }
    }

    #[test]
    fn build_from_source_is_bit_identical_to_build() {
        // The streaming entry point must not change a single replacement
        // decision, including the ε resolution pre-pass (no epsilon in the
        // config → both paths must derive the same bandwidth).
        let d = GeolifeGenerator::with_size(4_000, 83).generate();
        for k in [0usize, 150] {
            let config = VasConfig::new(k);
            let reference = VasSampler::from_dataset(&d, config.clone()).build(&d);
            let mut streaming = VasSampler::new(config);
            let mut source = vas_stream::DatasetSource::with_chunk_size(&d, 257);
            let sample = streaming.build_from_source(&mut source).unwrap();
            assert_samples_bitwise_equal(&sample.points, &reference.points, "stream vs build");
        }
    }

    #[test]
    fn build_from_source_multi_pass_matches_build() {
        let d = GeolifeGenerator::with_size(1_500, 7).generate();
        let config = VasConfig::new(90).with_passes(3);
        let reference = VasSampler::from_dataset(&d, config.clone()).build(&d);
        let mut streaming = VasSampler::new(config);
        let mut source = vas_stream::DatasetSource::with_chunk_size(&d, 64);
        let sample = streaming.build_from_source(&mut source).unwrap();
        assert_samples_bitwise_equal(&sample.points, &reference.points, "multi-pass");
    }

    #[test]
    fn build_from_source_until_converged_matches_in_memory() {
        let d = GeolifeGenerator::with_size(800, 23).generate();
        let eps = GaussianKernel::for_dataset(&d).bandwidth();
        let config = VasConfig::new(40)
            .with_strategy(InterchangeStrategy::ExpandShrink)
            .with_epsilon(eps);
        let (reference, ref_passes) =
            VasSampler::from_dataset(&d, config.clone()).build_until_converged(&d, 20);
        let mut streaming = VasSampler::new(config);
        let mut source = vas_stream::DatasetSource::with_chunk_size(&d, 100);
        let (sample, passes) = streaming
            .build_from_source_until_converged(&mut source, 20)
            .unwrap();
        assert_eq!(passes, ref_passes);
        assert_samples_bitwise_equal(&sample.points, &reference.points, "until converged");
    }

    #[test]
    fn speculative_pre_evaluation_is_bit_identical_to_sequential() {
        // The tentpole contract of the parallel execution subsystem: the
        // speculative pre-evaluation front must not change a single
        // replacement decision at any thread count, on any locality backend,
        // single- and multi-pass.
        let d = GeolifeGenerator::with_size(4_000, 91).generate();
        let k = 150;
        for backend in LocalityBackend::ALL {
            for passes in [1usize, 2] {
                let config = VasConfig::new(k)
                    .with_locality_backend(backend)
                    .with_passes(passes);
                let reference = VasSampler::from_dataset(&d, config.clone()).build(&d);
                for threads in [2usize, 3, 4] {
                    let parallel =
                        VasSampler::from_dataset(&d, config.clone().with_threads(threads))
                            .build(&d);
                    assert_samples_bitwise_equal(
                        &parallel.points,
                        &reference.points,
                        &format!("threads {threads} vs 1 ({backend}, {passes} passes)"),
                    );
                }
            }
        }
    }

    #[test]
    fn speculative_path_matches_sequential_through_build_from_source() {
        // Same contract through the streaming entry point, including the
        // ε-resolution pre-pass, across awkward chunk sizes (chunks smaller,
        // equal to and larger than the pre-evaluation batch).
        let d = GeolifeGenerator::with_size(5_000, 97).generate();
        let reference = VasSampler::from_dataset(&d, VasConfig::new(200)).build(&d);
        for chunk in [128usize, 2_048, 5_000] {
            let mut streaming = VasSampler::new(VasConfig::new(200).with_threads(4));
            let mut source = vas_stream::DatasetSource::with_chunk_size(&d, chunk);
            let sample = streaming.build_from_source(&mut source).unwrap();
            assert_samples_bitwise_equal(
                &sample.points,
                &reference.points,
                &format!("parallel stream chunk {chunk}"),
            );
        }
    }

    #[test]
    fn observe_chunk_equals_observe_loop_sequentially() {
        // threads = 1 must be *the* sequential loop, not a near-copy.
        let d = GeolifeGenerator::with_size(2_000, 101).generate();
        let config = VasConfig::new(100);
        let mut chunked = VasSampler::from_dataset(&d, config.clone());
        let mut plain = VasSampler::from_dataset(&d, config);
        for chunk in d.points.chunks(333) {
            chunked.observe_chunk(chunk);
        }
        for p in d.iter() {
            plain.observe(*p);
        }
        assert_samples_bitwise_equal(
            chunked.current_sample(),
            plain.current_sample(),
            "observe_chunk vs observe",
        );
        assert_eq!(chunked.replacements(), plain.replacements());
        assert_eq!(chunked.seen, plain.seen);
    }

    #[test]
    fn speculative_path_emits_identical_progress_events() {
        let d = GeolifeGenerator::with_size(3_000, 107).generate();
        let collect = |threads: usize| {
            let events = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
            let sink = events.clone();
            let mut s = VasSampler::from_dataset(
                &d,
                VasConfig::new(100)
                    .with_progress_every(250)
                    .with_threads(threads),
            );
            s.set_progress_sink(Box::new(move |e| sink.lock().unwrap().push(e)));
            let _ = s.build(&d);
            let events = events.lock().unwrap();
            events
                .iter()
                .map(|e| (e.tuples_processed, e.replacements, e.objective.to_bits()))
                .collect::<Vec<_>>()
        };
        assert_eq!(collect(1), collect(4));
    }

    #[test]
    fn sampler_crosses_threads() {
        // The audit the parallel drivers rely on: a sampler (any backend)
        // can be moved to a worker thread wholesale.
        fn assert_send<T: Send>() {}
        assert_send::<VasSampler>();
        assert_send::<VasSampler<vas_spatial::HashGrid>>();
        assert_send::<VasSampler<vas_spatial::RTree>>();
        assert_send::<VasSampler<vas_spatial::KdTree>>();
        let d = GeolifeGenerator::with_size(500, 3).generate();
        let handle = std::thread::spawn(move || {
            let mut s = VasSampler::from_dataset(&d, VasConfig::new(50));
            s.sample_dataset(&d).len()
        });
        assert_eq!(handle.join().unwrap(), 50);
    }

    fn temp_checkpoint(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "vas-core-ckpt-{}-{tag}.vascheckpt",
            std::process::id()
        ))
    }

    fn assert_samples_bit_equal(a: &Sample, b: &Sample, what: &str) {
        assert_eq!(a.points.len(), b.points.len(), "{what}: lengths differ");
        for (i, (p, q)) in a.points.iter().zip(&b.points).enumerate() {
            assert!(
                p.x.to_bits() == q.x.to_bits()
                    && p.y.to_bits() == q.y.to_bits()
                    && p.value.to_bits() == q.value.to_bits(),
                "{what}: point {i} differs"
            );
        }
    }

    /// Kill-and-resume at several chunk boundaries, every backend: the
    /// resumed build must reproduce the uninterrupted sample bit for bit.
    /// (The exhaustive boundary × thread sweep lives in
    /// `tests/determinism.rs` and the `fault_matrix` harness.)
    #[test]
    fn checkpoint_resume_is_bit_identical_per_backend() {
        let d = GeolifeGenerator::with_size(4_000, 11).generate();
        for backend in LocalityBackend::ALL {
            let config = VasConfig::new(120).with_locality_backend(backend);
            let mut clean_src = vas_stream::DatasetSource::with_chunk_size(&d, 512);
            let clean = VasSampler::new(config.clone())
                .build_from_source(&mut clean_src)
                .unwrap();

            for kill_after in [1u64, 3, 5, 7] {
                let path = temp_checkpoint(&format!("{backend}-{kill_after}"));
                let policy = CheckpointPolicy::every(&path, 1).halting_after(kill_after);
                let mut src = vas_stream::DatasetSource::with_chunk_size(&d, 512);
                let outcome = VasSampler::new(config.clone())
                    .build_from_source_checkpointed(&mut src, &policy)
                    .unwrap();
                assert!(outcome.is_halted(), "{backend}: kill switch did not fire");

                let resume_policy = CheckpointPolicy::every(&path, 1);
                let mut src = vas_stream::DatasetSource::with_chunk_size(&d, 512);
                let (sampler, outcome) =
                    VasSampler::resume_build_from_source(config.clone(), &mut src, &resume_policy)
                        .unwrap();
                let resumed = outcome.into_sample().expect("resumed run completes");
                assert_samples_bit_equal(
                    &resumed,
                    &clean,
                    &format!("{backend}, killed after chunk {kill_after}"),
                );
                assert_eq!(sampler.contained_worker_panics(), 0);
                std::fs::remove_file(&path).ok();
            }
        }
    }

    /// A checkpoint written mid-pass with a sparser cadence than the kill
    /// point: the resume re-processes the chunks after the last checkpoint
    /// and still lands on the clean sample's bits.
    #[test]
    fn resume_from_stale_checkpoint_reprocesses_the_gap() {
        let d = GeolifeGenerator::with_size(3_000, 7).generate();
        let config = VasConfig::new(80);
        let mut clean_src = vas_stream::DatasetSource::with_chunk_size(&d, 256);
        let clean = VasSampler::new(config.clone())
            .build_from_source(&mut clean_src)
            .unwrap();

        let path = temp_checkpoint("stale");
        // Checkpoints at chunks 3, 6, 9…; killed after chunk 7 → resume
        // restarts from chunk 6's state and re-observes chunk 7.
        let policy = CheckpointPolicy::every(&path, 3).halting_after(7);
        let mut src = vas_stream::DatasetSource::with_chunk_size(&d, 256);
        let outcome = VasSampler::new(config.clone())
            .build_from_source_checkpointed(&mut src, &policy)
            .unwrap();
        assert!(outcome.is_halted());

        let mut src = vas_stream::DatasetSource::with_chunk_size(&d, 256);
        let (_, outcome) = VasSampler::resume_build_from_source(
            config,
            &mut src,
            &CheckpointPolicy::every(&path, 3),
        )
        .unwrap();
        assert_samples_bit_equal(
            &outcome.into_sample().unwrap(),
            &clean,
            "stale checkpoint resume",
        );
        std::fs::remove_file(&path).ok();
    }

    /// Resume preconditions: a checkpoint must refuse a mismatching
    /// configuration or source.
    #[test]
    fn resume_rejects_mismatched_config_and_source() {
        let d = GeolifeGenerator::with_size(2_000, 5).generate();
        let config = VasConfig::new(60);
        let path = temp_checkpoint("mismatch");
        let policy = CheckpointPolicy::every(&path, 1).halting_after(2);
        let mut src = vas_stream::DatasetSource::with_chunk_size(&d, 256);
        VasSampler::new(config.clone())
            .build_from_source_checkpointed(&mut src, &policy)
            .unwrap();

        // Wrong budget.
        let err = VasSampler::resume_from_checkpoint(&path, VasConfig::new(61)).unwrap_err();
        assert!(matches!(err, VasError::Mismatch { .. }), "{err}");
        // Wrong backend.
        let err = VasSampler::resume_from_checkpoint(
            &path,
            VasConfig::new(60).with_locality_backend(LocalityBackend::RTree),
        )
        .unwrap_err();
        assert!(matches!(err, VasError::Mismatch { .. }), "{err}");
        // Wrong source (different chunk capacity).
        let mut other = vas_stream::DatasetSource::with_chunk_size(&d, 128);
        let err =
            VasSampler::resume_build_from_source(config.clone(), &mut other, &policy).unwrap_err();
        assert!(matches!(err, VasError::Mismatch { .. }), "{err}");
        // Corrupted checkpoint: flip one byte.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let err = VasSampler::resume_from_checkpoint(&path, config).unwrap_err();
        assert!(
            matches!(
                err,
                VasError::ChecksumMismatch { .. }
                    | VasError::Corrupt { .. }
                    | VasError::UnsupportedVersion { .. }
                    | VasError::Truncated { .. }
            ),
            "{err}"
        );
        std::fs::remove_file(&path).ok();
    }

    /// An injected worker panic in the speculative front is contained: the
    /// build completes, the counter records it, and the sample keeps every
    /// bit of the healthy parallel run.
    #[test]
    fn speculation_panic_is_contained_bit_identically() {
        let d = GeolifeGenerator::with_size(6_000, 13).generate();
        let base = VasConfig::new(100).with_threads(2);
        let mut src = vas_stream::DatasetSource::with_chunk_size(&d, 512);
        let healthy = VasSampler::new(base.clone())
            .build_from_source(&mut src)
            .unwrap();

        let mut faulty_sampler = VasSampler::new(base.with_injected_speculation_panic(0));
        // Quiet the injected panic's default stderr backtrace for this
        // scope; containment is observable through the counter.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let mut src = vas_stream::DatasetSource::with_chunk_size(&d, 512);
        let faulty = faulty_sampler.build_from_source(&mut src).unwrap();
        std::panic::set_hook(prev);
        assert!(
            faulty_sampler.contained_worker_panics() >= 1,
            "injected panic was never contained (speculation may not have run)"
        );
        assert_samples_bit_equal(&faulty, &healthy, "panic containment");
    }

    proptest::proptest! {
        /// Checkpoint round-trip under adversarial float payloads: values
        /// carry NaN / -0.0 / subnormal bit patterns (and coordinates may be
        /// -0.0 or subnormal — any finite bits), the build is killed at an
        /// arbitrary chunk boundary, and the resume must land on the clean
        /// build's bits exactly.
        #[test]
        fn checkpoint_round_trip_survives_special_float_payloads(
            raw in proptest::collection::vec(
                (-50.0f64..50.0, -50.0f64..50.0, -1.0e6f64..1.0e6, 0u8..8),
                300..700,
            ),
            kill_after in 1u64..6,
            chunk in 48usize..160,
        ) {
            let points: Vec<Point> = raw
                .iter()
                .map(|&(x, y, v, special)| {
                    // Smuggle the special bit patterns in through the value
                    // channel (any f64) and the coordinates (any finite f64).
                    let (x, y, v) = match special {
                        0 => (x, y, f64::NAN),
                        1 => (x, y, -0.0),
                        2 => (x, y, 5e-324),
                        3 => (-0.0, y, v),
                        4 => (x, 5e-324, v),
                        5 => (x, -0.0, -v),
                        _ => (x, y, v),
                    };
                    Point::with_value(x, y, v)
                })
                .collect();
            let d = Dataset::new("proptest", vas_data::DatasetKind::External, points);
            let config = VasConfig::new(40);
            let mut src = vas_stream::DatasetSource::with_chunk_size(&d, chunk);
            let clean = VasSampler::new(config.clone())
                .build_from_source(&mut src)
                .unwrap();

            let path = std::env::temp_dir().join(format!(
                "vas-core-ckpt-prop-{}-{kill_after}-{chunk}.vascheckpt",
                std::process::id()
            ));
            let policy = CheckpointPolicy::every(&path, 1).halting_after(kill_after);
            let mut src = vas_stream::DatasetSource::with_chunk_size(&d, chunk);
            let outcome = VasSampler::new(config.clone())
                .build_from_source_checkpointed(&mut src, &policy)
                .unwrap();
            let resumed = if outcome.is_halted() {
                let mut src = vas_stream::DatasetSource::with_chunk_size(&d, chunk);
                let (_, outcome) = VasSampler::resume_build_from_source(
                    config,
                    &mut src,
                    &CheckpointPolicy::every(&path, 1),
                )
                .unwrap();
                outcome.into_sample().unwrap()
            } else {
                // The kill point fell past the stream's end: the run
                // completed; its sample must already match.
                outcome.into_sample().unwrap()
            };
            std::fs::remove_file(&path).ok();
            proptest::prop_assert_eq!(resumed.points.len(), clean.points.len());
            for (p, q) in resumed.points.iter().zip(&clean.points) {
                proptest::prop_assert_eq!(p.x.to_bits(), q.x.to_bits());
                proptest::prop_assert_eq!(p.y.to_bits(), q.y.to_bits());
                proptest::prop_assert_eq!(p.value.to_bits(), q.value.to_bits());
            }
        }

        /// Arbitrary single-byte corruption anywhere in a checkpoint file
        /// must surface as a typed error from resume — never a panic, never
        /// a silently restored sampler.
        #[test]
        fn corrupted_checkpoint_resumes_to_typed_errors(
            offset_frac in 0.0f64..1.0,
            flip in 1u8..255,
            truncate in proptest::bool::ANY,
        ) {
            let d = GeolifeGenerator::with_size(1_500, 3).generate();
            let config = VasConfig::new(50);
            let path = std::env::temp_dir().join(format!(
                "vas-core-ckpt-corrupt-{}-{flip}-{truncate}.vascheckpt",
                std::process::id()
            ));
            let policy = CheckpointPolicy::every(&path, 1).halting_after(2);
            let mut src = vas_stream::DatasetSource::with_chunk_size(&d, 256);
            VasSampler::new(config.clone())
                .build_from_source_checkpointed(&mut src, &policy)
                .unwrap();

            let mut bytes = std::fs::read(&path).unwrap();
            let offset = ((bytes.len() - 1) as f64 * offset_frac) as usize;
            if truncate {
                bytes.truncate(offset);
            } else {
                bytes[offset] ^= flip;
            }
            std::fs::write(&path, &bytes).unwrap();
            let err = VasSampler::resume_from_checkpoint(&path, config).unwrap_err();
            std::fs::remove_file(&path).ok();
            proptest::prop_assert!(
                matches!(
                    err,
                    VasError::ChecksumMismatch { .. }
                        | VasError::Corrupt { .. }
                        | VasError::Truncated { .. }
                        | VasError::UnsupportedVersion { .. }
                        | VasError::Checkpoint { .. }
                ),
                "unexpected error shape: {}", err
            );
        }
    }

    #[test]
    fn build_from_source_propagates_source_errors() {
        // A CSV with a malformed row mid-stream must surface the error.
        let path =
            std::env::temp_dir().join(format!("vas-core-badsource-{}.csv", std::process::id()));
        std::fs::write(&path, "1.0,2.0\n3.0,4.0\nbroken,row,here\n").unwrap();
        let mut source = vas_stream::CsvSource::open(&path, "bad").unwrap();
        let mut sampler = VasSampler::new(VasConfig::new(10));
        let err = sampler.build_from_source(&mut source).unwrap_err();
        assert_eq!(err.io_kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_file(path).ok();
    }
}
