//! The VAS optimization objective and the *responsibility* bookkeeping
//! quantity (Definitions 1 and 2 of the paper).
//!
//! * The **objective** of a sample `S` is `Σ_{i<j} κ̃(s_i, s_j)` — the total
//!   pairwise proximity mass. VAS seeks the size-`K` subset minimizing it.
//! * The **responsibility** of an element `s_i` is
//!   `rsp_S(s_i) = ½ Σ_{j≠i} κ̃(s_i, s_j)`, i.e. the share of the objective
//!   that `s_i` participates in. The Expand/Shrink trick of the Interchange
//!   algorithm maintains responsibilities incrementally so that a replacement
//!   test costs `O(K)` instead of `O(K²)`.
//!
//! These free functions are the *reference* (quadratic) implementations used
//! by the exact solver, the tests and the evaluation harness; the Interchange
//! algorithm keeps its own incremental state.

use crate::kernel::Kernel;
use vas_data::Point;

/// The optimization objective `Σ_{i<j} κ̃(s_i, s_j)` of a candidate sample.
///
/// Runs in `O(|points|²)` kernel evaluations; intended for evaluation and for
/// small instances (e.g. the Table II exact-solver comparison), not for the
/// sampling hot path.
pub fn objective<K: Kernel + ?Sized>(kernel: &K, points: &[Point]) -> f64 {
    let mut total = 0.0;
    for i in 0..points.len() {
        for j in (i + 1)..points.len() {
            total += kernel.eval(&points[i], &points[j]);
        }
    }
    total
}

/// The responsibility `rsp_S(s_i) = ½ Σ_{j≠i} κ̃(s_i, s_j)` of element `idx`
/// within `points`.
///
/// # Panics
/// Panics if `idx` is out of bounds.
pub fn responsibility_of<K: Kernel + ?Sized>(kernel: &K, points: &[Point], idx: usize) -> f64 {
    assert!(idx < points.len(), "index out of bounds");
    let mut sum = 0.0;
    for (j, p) in points.iter().enumerate() {
        if j != idx {
            sum += kernel.eval(&points[idx], p);
        }
    }
    0.5 * sum
}

/// Responsibilities of every element of `points` (quadratic reference
/// implementation).
pub fn responsibilities<K: Kernel + ?Sized>(kernel: &K, points: &[Point]) -> Vec<f64> {
    let n = points.len();
    let mut rsp = vec![0.0; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let v = kernel.eval(&points[i], &points[j]);
            rsp[i] += 0.5 * v;
            rsp[j] += 0.5 * v;
        }
    }
    rsp
}

/// The average pairwise objective `objective / (K·(K-1))` used by Theorem 3's
/// approximation bound. Returns 0 for samples with fewer than two points.
pub fn averaged_objective<K: Kernel + ?Sized>(kernel: &K, points: &[Point]) -> f64 {
    let k = points.len();
    if k < 2 {
        return 0.0;
    }
    objective(kernel, points) / (k as f64 * (k as f64 - 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::GaussianKernel;
    use proptest::prelude::*;

    fn kernel() -> GaussianKernel {
        GaussianKernel::new(1.0)
    }

    #[test]
    fn objective_of_tiny_sets() {
        let k = kernel();
        assert_eq!(objective(&k, &[]), 0.0);
        assert_eq!(objective(&k, &[Point::new(0.0, 0.0)]), 0.0);
        let two = [Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
        assert!((objective(&k, &two) - (-0.5f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn objective_counts_each_pair_once() {
        let k = kernel();
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
        ];
        let expected =
            k.eval(&pts[0], &pts[1]) + k.eval(&pts[0], &pts[2]) + k.eval(&pts[1], &pts[2]);
        assert!((objective(&k, &pts) - expected).abs() < 1e-12);
    }

    #[test]
    fn spreading_points_reduces_objective() {
        let k = kernel();
        let tight: Vec<Point> = (0..10).map(|i| Point::new(i as f64 * 0.1, 0.0)).collect();
        let spread: Vec<Point> = (0..10).map(|i| Point::new(i as f64 * 3.0, 0.0)).collect();
        assert!(objective(&k, &spread) < objective(&k, &tight));
    }

    #[test]
    fn responsibilities_sum_to_objective() {
        let k = kernel();
        let pts: Vec<Point> = (0..12)
            .map(|i| Point::new((i as f64 * 0.7).sin(), (i as f64 * 1.3).cos()))
            .collect();
        let rsp = responsibilities(&k, &pts);
        let total: f64 = rsp.iter().sum();
        assert!((total - objective(&k, &pts)).abs() < 1e-9);
    }

    #[test]
    fn responsibility_of_matches_batch() {
        let k = kernel();
        let pts: Vec<Point> = (0..8)
            .map(|i| Point::new(i as f64 * 0.5, (i as f64).sqrt()))
            .collect();
        let batch = responsibilities(&k, &pts);
        for (i, expected) in batch.iter().enumerate() {
            assert!((responsibility_of(&k, &pts, i) - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn averaged_objective_handles_small_sets() {
        let k = kernel();
        assert_eq!(averaged_objective(&k, &[]), 0.0);
        assert_eq!(averaged_objective(&k, &[Point::new(0.0, 0.0)]), 0.0);
        let two = [Point::new(0.0, 0.0), Point::new(0.0, 0.0)];
        // objective = 1 (single coincident pair), K(K-1) = 2
        assert!((averaged_objective(&k, &two) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn responsibility_of_checks_bounds() {
        let _ = responsibility_of(&kernel(), &[Point::new(0.0, 0.0)], 3);
    }

    proptest! {
        /// The objective is invariant under permutation of the points.
        #[test]
        fn objective_is_permutation_invariant(
            xs in proptest::collection::vec((-10.0f64..10.0, -10.0f64..10.0), 2..20)
        ) {
            let k = kernel();
            let pts: Vec<Point> = xs.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let mut reversed = pts.clone();
            reversed.reverse();
            let a = objective(&k, &pts);
            let b = objective(&k, &reversed);
            prop_assert!((a - b).abs() < 1e-9 * (1.0 + a.abs()));
        }

        /// Removing the element with the largest responsibility never increases
        /// the objective by more than removing any other element would — i.e.
        /// the Shrink rule removes a maximally-responsible element.
        #[test]
        fn removing_max_responsibility_is_greedy_optimal(
            xs in proptest::collection::vec((-5.0f64..5.0, -5.0f64..5.0), 3..15)
        ) {
            let k = kernel();
            let pts: Vec<Point> = xs.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let rsp = responsibilities(&k, &pts);
            let max_idx = rsp
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i)
                .unwrap();
            let objective_without = |drop: usize| {
                let reduced: Vec<Point> = pts
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != drop)
                    .map(|(_, p)| *p)
                    .collect();
                objective(&k, &reduced)
            };
            let best = objective_without(max_idx);
            for i in 0..pts.len() {
                prop_assert!(best <= objective_without(i) + 1e-9);
            }
        }

        /// Responsibilities are non-negative and each is at most half the
        /// number of other points (kernel values are ≤ 1).
        #[test]
        fn responsibility_bounds(
            xs in proptest::collection::vec((-5.0f64..5.0, -5.0f64..5.0), 2..20)
        ) {
            let k = kernel();
            let pts: Vec<Point> = xs.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let rsp = responsibilities(&k, &pts);
            for r in rsp {
                prop_assert!(r >= 0.0);
                prop_assert!(r <= 0.5 * (pts.len() - 1) as f64 + 1e-12);
            }
        }
    }
}
