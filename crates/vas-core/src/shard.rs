//! Sharded sampling: deterministic spatial partition → per-shard
//! Interchange → ordered merge.
//!
//! The single-sampler inner loop is kernel-bound; the next multiplier is
//! *across* samplers. [`ShardedSampler`] splits the input into `S` spatially
//! coherent sub-streams with the [`ShardPartitioner`] (a pure per-point
//! cell → shard function over the `HashGrid` decomposition), fans out one
//! fully independent Interchange sampler per shard — its own
//! `LocalityIndex`, its own budget, its own recorder clone — and reduces
//! the shard samples to the final K-sample with one more Interchange pass
//! in **ordered fan-in**.
//!
//! ## Determinism contract
//!
//! For a fixed shard count `S`, a sharded build is **bit-identical** across
//! thread counts, chunk sizes, queue depths, and the in-memory vs streaming
//! entry points — the same contract every other path in this workspace
//! honours, pinned in `tests/determinism.rs`. The pieces:
//!
//! * shard *assignment* is a stateless per-point function (chunking and
//!   scheduling cannot move a point between shards),
//! * each shard sampler observes exactly its sub-stream in stream order
//!   (FIFO queues, one owner per sampler), and a sampler's output is
//!   already chunk-boundary- and thread-count-invariant,
//! * the merge consumes the shard samples in shard order on one thread.
//!
//! `S` itself is a **quality knob**, not a free parameter: different `S`
//! values select different (all deterministic) samples. `S = 1` is exactly
//! the unsharded build — the single shard gets the full `K` budget and the
//! merge pass reduces to an identity fill — so `build_sharded` with one
//! shard is bit-for-bit `build`.
//!
//! ## Budgets and border reconciliation
//!
//! For `S > 1` each shard gets its `split_ranges(K, S)` share plus a 50%
//! oversample. The union the merge sees is therefore ≈ 1.5 K points, and
//! the merge's Expand/Shrink pass does the *responsibility-weighted border
//! reconciliation*: points a shard over-selected near a shard border carry
//! high responsibility in the union and are exactly the ones the merge
//! drops first. The residual quality gap vs the unsharded sampler is
//! measured (loss ratio in `results/BENCH_shard.json`), never hidden.

use crate::interchange::{VasConfig, VasSampler};
use crate::kernel::{GaussianKernel, Kernel};
use vas_data::{Dataset, Point};
use vas_obs::{Counter, Phase, Recorder};
use vas_par::{scatter_ordered, split_ranges};
use vas_sampling::{Sample, Sampler};
use vas_spatial::ShardPartitioner;
use vas_stream::{PointSource, VasError};

/// Chunks in flight per shard queue on the streaming path. Bounds producer
/// run-ahead (memory ≤ `S × depth` chunks) while still letting shard
/// workers evaluate batch `b` while the producer routes batch `b + 1`.
const SCATTER_DEPTH: usize = 4;

/// Per-shard sample budgets: each shard's `split_ranges(K, S)` share, plus
/// a 50% border oversample when `S > 1` (see the module docs). `S = 1`
/// gets exactly `K` — the invariant behind the `S = 1 ≡ unsharded`
/// equivalence.
pub fn shard_budgets(k: usize, shards: usize) -> Vec<usize> {
    let mut budgets = vec![0usize; shards];
    for (i, range) in split_ranges(k, shards).into_iter().enumerate() {
        budgets[i] = range.len();
    }
    if shards > 1 {
        for b in &mut budgets {
            *b += *b / 2;
        }
    }
    budgets
}

/// The sharded build driver: partition, per-shard Interchange fan-out,
/// ordered merge. See the [module docs](self) for the contract.
#[derive(Debug)]
pub struct ShardedSampler {
    config: VasConfig,
    shards: usize,
    recorder: Recorder,
}

impl ShardedSampler {
    /// Creates a sharded driver over `shards` shards; every shard sampler
    /// and the merge pass inherit `config` (strategy, backend, threads,
    /// locality threshold), with only the budget and the resolved bandwidth
    /// overridden per shard.
    ///
    /// # Panics
    /// Panics when `shards == 0`.
    pub fn new(config: VasConfig, shards: usize) -> Self {
        assert!(shards > 0, "shard count must be at least 1");
        Self {
            config,
            shards,
            recorder: Recorder::detached(),
        }
    }

    /// Attaches a recorder (builder form). Shard workers record through
    /// clones of it — same registry, same tracer — so a traced sharded
    /// build yields one causal tree with `S` worker subtrees.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// The attached recorder.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The configuration every shard sampler derives from.
    pub fn config(&self) -> &VasConfig {
        &self.config
    }

    /// The partitioner a build with this resolved `kernel` uses: cells are
    /// sized to the locality cutoff radius, matching the per-shard
    /// `HashGrid` geometry.
    fn partitioner(&self, kernel: &GaussianKernel) -> ShardPartitioner {
        ShardPartitioner::new(
            self.shards,
            kernel.effective_radius(self.config.locality_threshold),
        )
    }

    /// The per-shard sampler configuration: the shared config with the
    /// shard's budget and the globally resolved bandwidth. Fixing ε here is
    /// what keeps every shard (and the merge) on the *same* kernel the
    /// unsharded build would resolve — shards must not re-derive bandwidth
    /// from their own sub-stream's extent.
    fn shard_config(&self, budget: usize, epsilon: f64) -> VasConfig {
        let mut cfg = self.config.clone();
        cfg.k = budget;
        cfg.epsilon = Some(epsilon);
        cfg
    }

    /// In-memory sharded build: the counterpart of [`VasSampler::build`].
    /// Bit-identical to it at `shards == 1`; deterministic for any fixed
    /// shard count.
    pub fn build_sharded(&mut self, dataset: &Dataset) -> Sample {
        let mut root = self.recorder.root_span("build_sharded");
        root.attr("n", dataset.len());
        root.attr("k", self.config.k);
        root.attr("shards", self.shards);
        let kernel = match self.config.epsilon {
            Some(eps) => GaussianKernel::new(eps),
            None => GaussianKernel::for_dataset(dataset),
        };
        let partitioner = self.partitioner(&kernel);
        let parts: Vec<Vec<Point>> = {
            let _span = self.recorder.span("shard_partition");
            let mut parts: Vec<Vec<Point>> = (0..self.shards).map(|_| Vec::new()).collect();
            partitioner.scatter_chunk(&dataset.points, &mut parts);
            parts
        };
        let epsilon = kernel.epsilon();
        let budgets = shard_budgets(self.config.k, self.shards);
        let passes = self.config.passes.max(1);
        let recorder = self.recorder.clone();
        let work: Vec<(Vec<Point>, usize)> = parts.into_iter().zip(budgets).collect();
        let shard_samples = vas_par::par_map_vec_ordered_recorded(
            &recorder,
            self.shards,
            work,
            |shard, (points, budget)| {
                let mut sampler = VasSampler::new(self.shard_config(budget, epsilon))
                    .with_recorder(recorder.clone());
                {
                    let _fill = recorder.phase(Phase::ShardFill);
                    for _ in 0..passes {
                        sampler.observe_chunk(&points);
                    }
                }
                finish_shard(&recorder, shard, sampler, (passes * points.len()) as u64)
            },
        );
        self.merge_shard_samples(epsilon, shard_samples)
    }

    /// Streaming sharded build: the counterpart of
    /// [`VasSampler::build_from_source`], in bounded memory — at most the
    /// shard samples plus `S × depth` in-flight chunks.
    ///
    /// The calling thread decodes and routes chunks; `S` persistent shard
    /// workers consume their queues *free-running* (the producer routes
    /// batch `b + 1` while workers evaluate batch `b` — see
    /// [`vas_par::scatter_ordered`]). Bit-identical to
    /// [`build_sharded`](Self::build_sharded) over the equivalent in-memory
    /// dataset, at any queue depth, chunk size, or thread count.
    pub fn build_sharded_from_source<S: PointSource>(
        &mut self,
        source: &mut S,
    ) -> Result<Sample, VasError> {
        let mut root = self.recorder.root_span("build_sharded_from_source");
        root.attr("k", self.config.k);
        root.attr("shards", self.shards);
        root.attr("passes", self.config.passes.max(1));
        let recorder = self.recorder.clone();
        let fatal = |err: VasError| {
            let _ = recorder.fatal(&err.to_string());
            err
        };
        let kernel = match self.config.epsilon {
            Some(eps) => GaussianKernel::new(eps),
            None => {
                // Same ε-resolution as the unsharded streaming path: a
                // bounds scan in stream order, so the resolved kernel is
                // bit-identical to the one `build_sharded` derives from the
                // materialized dataset.
                source.reset().map_err(|e| fatal(VasError::from(e)))?;
                let stats = vas_stream::scan_stats(source).map_err(|e| fatal(VasError::from(e)))?;
                GaussianKernel::for_bounds(&stats.bounds)
            }
        };
        let partitioner = self.partitioner(&kernel);
        let epsilon = kernel.epsilon();
        let shards = self.shards;
        let passes = self.config.passes.max(1);
        let workers: Vec<VasSampler<vas_spatial::AnyLocalityIndex>> =
            shard_budgets(self.config.k, shards)
                .into_iter()
                .map(|budget| {
                    VasSampler::new(self.shard_config(budget, epsilon))
                        .with_recorder(recorder.clone())
                })
                .collect();
        let shard_samples = scatter_ordered(
            &recorder,
            SCATTER_DEPTH,
            workers.into_iter().map(|s| (s, 0u64)).collect(),
            |send| -> Result<(), VasError> {
                let mut buf = Vec::new();
                for _ in 0..passes {
                    source.reset().map_err(|e| fatal(VasError::from(e)))?;
                    while source
                        .next_chunk(&mut buf)
                        .map_err(|e| fatal(VasError::from(e)))?
                        > 0
                    {
                        let mut parts: Vec<Vec<Point>> = (0..shards).map(|_| Vec::new()).collect();
                        partitioner.scatter_chunk(&buf, &mut parts);
                        for (shard, points) in parts.into_iter().enumerate() {
                            // A dead queue means that worker panicked; stop
                            // feeding and let the join surface it.
                            if !points.is_empty() && !send(shard, points) {
                                return Ok(());
                            }
                        }
                    }
                }
                Ok(())
            },
            |_, (sampler, fed), points: Vec<Point>| {
                let _fill = recorder.phase(Phase::ShardFill);
                *fed += points.len() as u64;
                sampler.observe_chunk(&points);
            },
            |shard, (sampler, fed)| finish_shard(&recorder, shard, sampler, fed),
        )?;
        Ok(self.merge_shard_samples(epsilon, shard_samples))
    }

    /// The ordered merge: one Interchange pass over the shard-sample union,
    /// consumed in shard order on the calling thread. Runs exactly one pass
    /// regardless of `config.passes` (shard workers already replayed the
    /// configured passes over the raw data), which is also what keeps the
    /// `S = 1` union — exactly `K` points — an identity fill.
    fn merge_shard_samples(&self, epsilon: f64, shard_samples: Vec<Vec<Point>>) -> Sample {
        let _guard = self.recorder.phase(Phase::ShardMerge);
        let mut span = self.recorder.span("shard_merge");
        span.attr("shards", shard_samples.len());
        let union: usize = shard_samples.iter().map(Vec::len).sum();
        span.attr("union_len", union);
        let mut cfg = self.shard_config(self.config.k, epsilon);
        cfg.passes = 1;
        let mut merger = VasSampler::new(cfg).with_recorder(self.recorder.clone());
        for points in &shard_samples {
            merger.observe_chunk(points);
        }
        merger.finalize()
    }
}

/// Finalizes one shard worker: captures its tallies *before* `finalize`
/// resets the shared registry's per-build counters, accumulates them into
/// the lifetime shard aggregates, and journals a `shard_built` event.
fn finish_shard(
    recorder: &Recorder,
    shard: usize,
    mut sampler: VasSampler<vas_spatial::AnyLocalityIndex>,
    fed: u64,
) -> Vec<Point> {
    let replacements = sampler.replacements();
    let sample = sampler.finalize();
    let accepts = sample.points.len() as u64 + replacements;
    recorder.inc(Counter::CoreShardAccepts, accepts);
    recorder.inc(Counter::CoreShardRejects, fed.saturating_sub(accepts));
    recorder.event(
        "shard_built",
        &[
            ("shard", (shard as u64).into()),
            ("budget", (sample.target_size as u64).into()),
            ("sample_len", (sample.points.len() as u64).into()),
            ("fed", fed.into()),
            ("replacements", replacements.into()),
        ],
    );
    sample.points
}

#[cfg(test)]
mod tests {
    use super::*;
    use vas_data::GeolifeGenerator;

    fn dataset(n: usize) -> Dataset {
        GeolifeGenerator::with_size(n, 20_160_516).generate()
    }

    fn assert_bitwise(a: &[Point], b: &[Point], what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: lengths differ");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                x.x.to_bits() == y.x.to_bits()
                    && x.y.to_bits() == y.y.to_bits()
                    && x.value.to_bits() == y.value.to_bits(),
                "{what}: point {i} differs: {x:?} vs {y:?}"
            );
        }
    }

    #[test]
    fn budgets_sum_to_k_at_one_shard_and_oversample_above() {
        assert_eq!(shard_budgets(100, 1), vec![100]);
        let b = shard_budgets(100, 4);
        assert_eq!(b.len(), 4);
        assert!(b.iter().sum::<usize>() > 100, "S > 1 must oversample");
        assert!(b.iter().sum::<usize>() <= 150 + 4);
        // More shards than budget: trailing shards get zero, never panic
        // (and a budget of 1 has no half to oversample).
        let tiny = shard_budgets(2, 4);
        assert_eq!(tiny, vec![1, 1, 0, 0]);
    }

    #[test]
    fn one_shard_matches_unsharded_build_bitwise() {
        let data = dataset(3_000);
        let config = VasConfig::new(150);
        let reference = VasSampler::new(config.clone()).build(&data);
        let sharded = ShardedSampler::new(config, 1).build_sharded(&data);
        assert_bitwise(
            &reference.points,
            &sharded.points,
            "S=1 sharded vs unsharded",
        );
    }

    #[test]
    fn streaming_matches_in_memory_for_every_shard_count() {
        let data = dataset(3_000);
        for shards in [1usize, 2, 4] {
            let config = VasConfig::new(120);
            let reference = ShardedSampler::new(config.clone(), shards).build_sharded(&data);
            for chunk in [277usize, 1_024] {
                let mut source = vas_stream::DatasetSource::with_chunk_size(&data, chunk);
                let got = ShardedSampler::new(config.clone(), shards)
                    .build_sharded_from_source(&mut source)
                    .expect("in-memory source cannot fail");
                assert_bitwise(
                    &reference.points,
                    &got.points,
                    &format!("shards {shards} chunk {chunk}"),
                );
            }
        }
    }

    #[test]
    fn sharded_build_reports_shard_tallies_and_one_causal_tree() {
        use std::sync::Arc;
        let data = dataset(2_000);
        let tracer = Arc::new(vas_obs::Tracer::new());
        let journal = Arc::new(vas_obs::Journal::in_memory());
        let recorder = Recorder::detached()
            .with_tracer(Arc::clone(&tracer))
            .with_journal(Arc::clone(&journal));
        let shards = 3;
        let sample = ShardedSampler::new(VasConfig::new(90), shards)
            .with_recorder(recorder.clone())
            .build_sharded(&data);
        assert_eq!(sample.points.len(), 90);
        let snap = recorder.registry().snapshot();
        assert!(snap.counter(Counter::CoreShardAccepts) >= 90);
        assert!(journal.contains_event("shard_built"));
        let spans = tracer.spans();
        let root: Vec<_> = spans.iter().filter(|s| s.parent.is_none()).collect();
        assert_eq!(root.len(), 1, "exactly one build root");
        assert_eq!(root[0].name, "build_sharded");
        let workers = spans.iter().filter(|s| s.name == "worker_task").count();
        assert_eq!(workers, shards, "one worker subtree per shard");
        assert!(spans.iter().any(|s| s.name == "shard_merge"));
    }

    #[test]
    fn shard_counts_are_a_quality_knob_not_a_lottery() {
        // Different S may select different samples, but each S is stable:
        // building twice gives the same bits.
        let data = dataset(2_500);
        for shards in [2usize, 4] {
            let config = VasConfig::new(100);
            let a = ShardedSampler::new(config.clone(), shards).build_sharded(&data);
            let b = ShardedSampler::new(config, shards).build_sharded(&data);
            assert_bitwise(&a.points, &b.points, &format!("rebuild at S={shards}"));
            assert_eq!(a.points.len(), 100);
        }
    }

    #[test]
    fn zero_shards_is_rejected() {
        let result = std::panic::catch_unwind(|| ShardedSampler::new(VasConfig::new(10), 0));
        assert!(result.is_err());
    }
}
