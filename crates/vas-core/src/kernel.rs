//! Proximity kernels.
//!
//! The paper measures how well a sampled point "covers" a location of the
//! plot plane with a proximity function `κ(x, s) = exp(-‖x-s‖² / 2ε²)`
//! (Section III), and notes that any decreasing *convex* function of the
//! distance works. After the Taylor expansion, the pairwise term `κ̃(s_i,s_j)`
//! is again a proximity function of the same form, and "in practice, it is
//! sufficient to use any proximity function directly in place of κ̃".
//!
//! This module provides the Gaussian kernel used throughout the paper plus a
//! few alternatives, all behind the [`Kernel`] trait, and the ε-selection
//! rule from footnote 2 (`ε ≈ max pairwise distance / 100`).
//!
//! ## Batched evaluation and the lane-order determinism rule
//!
//! The Interchange hot loop spends most of a rejected candidate on kernel
//! evaluations (~90 `exp` calls behind delta bookkeeping at paper scale), so
//! kernels can also be evaluated over flat **lanes** of squared distances:
//! [`Kernel::eval_dist2_batch`] maps `dist2[i] → out[i]` over plain `f64`
//! slices that the compiler can autovectorize, fed by the spatial layer's
//! `gather_in_radius_into` batch queries.
//!
//! Batching is only legal under the repo's bit-identical determinism
//! contract because of two rules, which every implementation and caller must
//! keep:
//!
//! 1. **Elementwise bit-identity** — `eval_dist2_batch` must produce, lane
//!    for lane, exactly the bits `eval_dist2` would produce for that input
//!    (including NaN payloads, `-0.0`, subnormals, and the Gaussian
//!    underflow early-out). Overrides may restructure control flow (e.g.
//!    branch-free select instead of an early return) but not the arithmetic.
//! 2. **Fixed lane order** — callers fill lanes in the exact visitation
//!    order of the scalar visitor path and fold reductions left-to-right
//!    over the lanes, so every floating-point sum associates in the same
//!    order as the scalar loop it replaces.
//!
//! The scalar `eval`/`eval_dist2` path is still used where batching buys
//! nothing: the sampler's reservoir fill phase, the accept path's
//! removed-neighbourhood subtraction, objective initialization, and the
//! legacy (paper-faithful) inner loop.

use serde::{Deserialize, Serialize};
use vas_data::{Dataset, Point};

/// A symmetric proximity function over pairs of 2-D points.
///
/// Implementations must be positive, equal to their maximum at distance zero,
/// and non-increasing in the distance. The Interchange locality optimization
/// additionally relies on [`effective_radius`](Kernel::effective_radius):
/// beyond that distance the kernel value is negligible and pairs can be
/// skipped without materially changing the objective.
pub trait Kernel: Send + Sync {
    /// Kernel value for the pair `(a, b)`.
    ///
    /// Provided: computes the squared distance once and defers to
    /// [`eval_dist2`](Self::eval_dist2), which is the single place each
    /// kernel family's arithmetic lives.
    #[inline]
    fn eval(&self, a: &Point, b: &Point) -> f64 {
        self.eval_dist2(a.dist2(b))
    }

    /// Kernel value as a function of squared distance (hot path used by the
    /// Interchange inner loops, avoids recomputing the subtraction).
    fn eval_dist2(&self, dist2: f64) -> f64;

    /// Evaluates the kernel over a flat batch of squared distances, writing
    /// `out[i] = eval_dist2(dist2[i])` for every lane.
    ///
    /// Each output lane must be **bit-identical** to the corresponding
    /// scalar [`eval_dist2`](Self::eval_dist2) call — see the module docs
    /// for the lane-order determinism rule. The default is the scalar loop;
    /// implementations may override it with a branch-free body that
    /// autovectorizes, as [`GaussianKernel`] does.
    ///
    /// # Panics
    /// Panics if the slices differ in length.
    #[inline]
    fn eval_dist2_batch(&self, dist2: &[f64], out: &mut [f64]) {
        assert_eq!(
            dist2.len(),
            out.len(),
            "kernel batch lanes must line up: {} dist2 vs {} out",
            dist2.len(),
            out.len()
        );
        for (o, &d2) in out.iter_mut().zip(dist2) {
            *o = self.eval_dist2(d2);
        }
    }

    /// Distance beyond which the kernel value drops below `threshold`.
    /// Returns `f64::INFINITY` if the kernel never drops below it.
    fn effective_radius(&self, threshold: f64) -> f64;

    /// The bandwidth parameter ε of the kernel.
    fn bandwidth(&self) -> f64;
}

/// Which kernel family to use; all are parameterized by a bandwidth ε.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KernelKind {
    /// `exp(-d² / 2ε²)` — the kernel used in the paper.
    Gaussian,
    /// `exp(-d / ε)` — heavier tails than the Gaussian.
    Laplacian,
    /// `max(0, 1 - d²/ε²)` — compact support, zero beyond ε.
    Epanechnikov,
    /// `1 / (1 + d²/ε²)` — heavy polynomial tail.
    InverseQuadratic,
}

/// The Gaussian proximity kernel `exp(-d² / 2ε²)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GaussianKernel {
    epsilon: f64,
    inv_two_eps2: f64,
}

/// Exponents beyond which `exp(-x)` underflows to exactly `0.0` in `f64`
/// (the true cutover is ≈745.2, where the result drops below the smallest
/// subnormal; 750 leaves a safety margin). Pairs this far apart can skip the
/// `exp` call entirely **without changing the result by a single bit** —
/// which is what lets the Interchange hot loop use the early-out while the
/// determinism suite still demands bit-identical samples.
const GAUSSIAN_UNDERFLOW_EXPONENT: f64 = 750.0;

impl GaussianKernel {
    /// Creates a Gaussian kernel with bandwidth `epsilon`.
    ///
    /// # Panics
    /// Panics unless `epsilon` is finite and positive.
    pub fn new(epsilon: f64) -> Self {
        assert!(
            epsilon.is_finite() && epsilon > 0.0,
            "kernel bandwidth must be positive and finite, got {epsilon}"
        );
        Self {
            epsilon,
            inv_two_eps2: 1.0 / (2.0 * epsilon * epsilon),
        }
    }

    /// Bandwidth selection rule from the paper (footnote 2):
    /// `ε ≈ max pairwise distance / 100`, where the maximum pairwise distance
    /// is approximated by the diagonal of the dataset's bounding box.
    ///
    /// Falls back to `ε = 1` for datasets with fewer than two distinct
    /// positions (the kernel value is then constant anyway).
    pub fn for_dataset(dataset: &Dataset) -> Self {
        Self::for_points(&dataset.points)
    }

    /// Same as [`for_dataset`](Self::for_dataset) for a raw point slice.
    pub fn for_points(points: &[Point]) -> Self {
        Self::for_bounds(&vas_data::BoundingBox::from_points(points))
    }

    /// Same as [`for_dataset`](Self::for_dataset) for a pre-computed extent.
    ///
    /// This is the entry point the streaming pipeline uses: a one-pass
    /// bounds scan over a `PointSource` folds the extent in stream order
    /// (bit-identical to `BoundingBox::from_points`), so streaming and
    /// in-memory builds resolve bit-identical bandwidths.
    pub fn for_bounds(bounds: &vas_data::BoundingBox) -> Self {
        let diag = bounds.diagonal();
        if diag.is_finite() && diag > 0.0 {
            Self::new(diag / 100.0)
        } else {
            Self::new(1.0)
        }
    }

    /// The bandwidth ε this kernel was constructed with (used by the
    /// checkpoint codec to reconstruct the kernel bit-identically).
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The convolved kernel `κ̃` obtained by integrating `κ(x,a)·κ(x,b)` over
    /// the plane: another Gaussian with bandwidth `√2·ε`. The paper notes the
    /// original kernel can be used directly; this constructor is provided for
    /// callers that want the mathematically exact pairwise term.
    pub fn convolved(&self) -> Self {
        Self::new(self.epsilon * std::f64::consts::SQRT_2)
    }
}

impl Kernel for GaussianKernel {
    #[inline]
    fn eval_dist2(&self, dist2: f64) -> f64 {
        let x = dist2 * self.inv_two_eps2;
        // Early-out for pairs beyond the kernel's support: `exp(-x)` is
        // exactly 0.0 there, so skipping the (expensive) exp call is
        // value-preserving. This is the hot-path guard for the full-scan
        // (`ES`/`Naive`) Interchange variants, where far pairs dominate.
        if x > GAUSSIAN_UNDERFLOW_EXPONENT {
            return 0.0;
        }
        (-x).exp()
    }

    #[inline]
    fn eval_dist2_batch(&self, dist2: &[f64], out: &mut [f64]) {
        assert_eq!(
            dist2.len(),
            out.len(),
            "kernel batch lanes must line up: {} dist2 vs {} out",
            dist2.len(),
            out.len()
        );
        let inv_two_eps2 = self.inv_two_eps2;
        for (o, &d2) in out.iter_mut().zip(dist2) {
            // Branch-free form of the scalar early-out: compute the exp
            // unconditionally, then select. Bit-identical to `eval_dist2` on
            // every lane: past the threshold `exp(-x)` is exactly 0.0 anyway
            // (so the select changes nothing but spares the scalar path's
            // branch), and on a NaN lane the comparison is false, letting
            // the NaN from `exp` through just like the scalar early return.
            // Crucially `x` itself is never clamped — `f64::min(NaN, c)`
            // would have laundered NaN lanes into finite values.
            let x = d2 * inv_two_eps2;
            let e = (-x).exp();
            *o = if x > GAUSSIAN_UNDERFLOW_EXPONENT {
                0.0
            } else {
                e
            };
        }
    }

    fn effective_radius(&self, threshold: f64) -> f64 {
        assert!(
            threshold > 0.0 && threshold < 1.0,
            "threshold must be in (0, 1)"
        );
        // exp(-r²/2ε²) = t  ⇒  r = ε·√(2·ln(1/t))
        self.epsilon * (2.0 * (1.0 / threshold).ln()).sqrt()
    }

    fn bandwidth(&self) -> f64 {
        self.epsilon
    }
}

/// A kernel of any [`KernelKind`] with a fixed bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GenericKernel {
    kind: KernelKind,
    epsilon: f64,
}

impl GenericKernel {
    /// Creates a kernel of the given family and bandwidth.
    ///
    /// # Panics
    /// Panics unless `epsilon` is finite and positive.
    pub fn new(kind: KernelKind, epsilon: f64) -> Self {
        assert!(
            epsilon.is_finite() && epsilon > 0.0,
            "kernel bandwidth must be positive and finite, got {epsilon}"
        );
        Self { kind, epsilon }
    }

    /// The kernel family.
    pub fn kind(&self) -> KernelKind {
        self.kind
    }
}

impl Kernel for GenericKernel {
    #[inline]
    fn eval_dist2(&self, dist2: f64) -> f64 {
        let e = self.epsilon;
        match self.kind {
            KernelKind::Gaussian => (-dist2 / (2.0 * e * e)).exp(),
            KernelKind::Laplacian => (-(dist2.sqrt()) / e).exp(),
            KernelKind::Epanechnikov => (1.0 - dist2 / (e * e)).max(0.0),
            KernelKind::InverseQuadratic => 1.0 / (1.0 + dist2 / (e * e)),
        }
    }

    fn effective_radius(&self, threshold: f64) -> f64 {
        assert!(
            threshold > 0.0 && threshold < 1.0,
            "threshold must be in (0, 1)"
        );
        let e = self.epsilon;
        match self.kind {
            KernelKind::Gaussian => e * (2.0 * (1.0 / threshold).ln()).sqrt(),
            KernelKind::Laplacian => e * (1.0 / threshold).ln(),
            KernelKind::Epanechnikov => e, // exactly zero beyond ε
            KernelKind::InverseQuadratic => e * (1.0 / threshold - 1.0).max(0.0).sqrt(),
        }
    }

    fn bandwidth(&self) -> f64 {
        self.epsilon
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_values() {
        let k = GaussianKernel::new(1.0);
        let a = Point::new(0.0, 0.0);
        assert_eq!(k.eval(&a, &a), 1.0);
        // distance 1: exp(-1/2)
        let b = Point::new(1.0, 0.0);
        assert!((k.eval(&a, &b) - (-0.5f64).exp()).abs() < 1e-12);
        // symmetric
        assert_eq!(k.eval(&a, &b), k.eval(&b, &a));
    }

    #[test]
    fn gaussian_is_monotone_decreasing_in_distance() {
        let k = GaussianKernel::new(0.5);
        let a = Point::new(0.0, 0.0);
        let mut prev = f64::INFINITY;
        for i in 0..20 {
            let d = i as f64 * 0.3;
            let v = k.eval(&a, &Point::new(d, 0.0));
            assert!(v <= prev);
            assert!(v > 0.0);
            prev = v;
        }
    }

    #[test]
    fn effective_radius_bounds_kernel_value() {
        for kind in [
            KernelKind::Gaussian,
            KernelKind::Laplacian,
            KernelKind::Epanechnikov,
            KernelKind::InverseQuadratic,
        ] {
            let k = GenericKernel::new(kind, 2.0);
            let threshold = 1e-6;
            let r = k.effective_radius(threshold);
            assert!(r.is_finite());
            let just_outside = r * 1.001;
            assert!(
                k.eval_dist2(just_outside * just_outside) <= threshold * 1.01,
                "{kind:?}: value beyond effective radius too large"
            );
        }
    }

    #[test]
    fn underflow_early_out_is_bit_identical_to_exp() {
        let k = GaussianKernel::new(1.0);
        // Straddle the early-out threshold (x = d²/2 here): everywhere the
        // shortcut fires, a direct exp call must produce the same bits.
        for x in [
            0.0, 1.0, 100.0, 700.0, 744.0, 745.0, 746.0, 749.9, 750.0, 750.1, 800.0, 1e6, 1e300,
        ] {
            let dist2: f64 = 2.0 * x;
            let direct = f64::exp(-(dist2 * 0.5));
            let fast = k.eval_dist2(dist2);
            assert_eq!(
                fast.to_bits(),
                direct.to_bits(),
                "x = {x}: {fast} vs {direct}"
            );
        }
        // And beyond the threshold the value really is exactly zero.
        assert_eq!(k.eval_dist2(2.0 * 751.0), 0.0);
    }

    /// Squared-distance edge cases the batch path must reproduce bit-for-bit:
    /// NaN (payload preserved through `exp`), signed zero, subnormals, both
    /// infinities, and a dense straddle of the Gaussian underflow early-out
    /// boundary (`x = dist2 / 2ε²` around 750 at ε = 1).
    fn edge_dist2_values() -> Vec<f64> {
        let mut v = vec![
            f64::NAN,
            -0.0,
            0.0,
            5e-324, // smallest positive subnormal
            f64::MIN_POSITIVE,
            f64::INFINITY,
            f64::NEG_INFINITY,
            1e300,
            -1.0,
        ];
        for x in [700.0, 744.0, 745.0, 746.0, 749.9, 750.0, 750.1, 800.0] {
            v.push(2.0 * x);
        }
        v
    }

    fn assert_batch_matches_scalar<K: Kernel>(k: &K, dist2: &[f64], what: &str) {
        let mut out = vec![f64::NAN; dist2.len()];
        k.eval_dist2_batch(dist2, &mut out);
        for (i, (&d2, &got)) in dist2.iter().zip(&out).enumerate() {
            let want = k.eval_dist2(d2);
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "{what}: lane {i} (dist2 = {d2:?}): batch {got:?} vs scalar {want:?}"
            );
        }
    }

    #[test]
    fn batch_eval_matches_scalar_on_edge_inputs() {
        let edges = edge_dist2_values();
        assert_batch_matches_scalar(&GaussianKernel::new(1.0), &edges, "gaussian ε=1");
        assert_batch_matches_scalar(&GaussianKernel::new(0.013), &edges, "gaussian ε=0.013");
        for kind in [
            KernelKind::Gaussian,
            KernelKind::Laplacian,
            KernelKind::Epanechnikov,
            KernelKind::InverseQuadratic,
        ] {
            assert_batch_matches_scalar(&GenericKernel::new(kind, 1.7), &edges, "generic");
        }
    }

    #[test]
    fn batch_eval_handles_empty_and_preserves_untouched_capacity() {
        let k = GaussianKernel::new(1.0);
        let mut out: Vec<f64> = Vec::new();
        k.eval_dist2_batch(&[], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "kernel batch lanes must line up")]
    fn batch_eval_rejects_mismatched_lanes() {
        let k = GaussianKernel::new(1.0);
        let mut out = vec![0.0; 3];
        k.eval_dist2_batch(&[1.0, 2.0], &mut out);
    }

    proptest::proptest! {
        /// The batched Gaussian lane body (branch-free select) is bit-identical
        /// to the scalar `eval_dist2` for arbitrary squared distances mixed
        /// with hand-picked edge lanes at arbitrary positions — the property
        /// the entire batched Interchange path rests on.
        #[test]
        fn gaussian_batch_is_bitwise_scalar_prop(
            dist2 in proptest::collection::vec(-1.0e4f64..1.0e4, 1..64),
            eps in 0.01f64..10.0,
            scale in -300.0f64..300.0,
        ) {
            let k = GaussianKernel::new(eps);
            // Random lanes spanning many binades (including values whose
            // exponent `x` straddles the underflow early-out for this ε),
            // plus every hand-picked edge value spliced in.
            let mut lanes: Vec<f64> = dist2
                .iter()
                .map(|&d| d * (scale / 100.0).exp2())
                .collect();
            lanes.extend(edge_dist2_values());
            // Lanes right at the early-out boundary for THIS bandwidth.
            let two_eps2 = 2.0 * eps * eps;
            for x in [749.0, 750.0, 751.0] {
                lanes.push(x * two_eps2);
            }
            assert_batch_matches_scalar(&k, &lanes, "prop");
        }
    }

    #[test]
    fn paper_footnote_locality_example() {
        // The paper quotes 1.12e-7 at distance 4 for its kernel (ε = 1 and no
        // factor 2 in the denominator); with our exp(-d²/2ε²) convention the
        // same point is reached at ε = 1/√2.
        let k = GaussianKernel::new(std::f64::consts::FRAC_1_SQRT_2);
        let v = k.eval(&Point::new(0.0, 0.0), &Point::new(4.0, 0.0));
        assert!((v - 1.12e-7).abs() < 0.02e-7, "got {v}");
    }

    #[test]
    fn bandwidth_selection_follows_footnote_rule() {
        let points = vec![Point::new(0.0, 0.0), Point::new(30.0, 40.0)];
        let d = Dataset::from_points("two", points);
        let k = GaussianKernel::for_dataset(&d);
        // diagonal = 50 ⇒ ε = 0.5
        assert!((k.bandwidth() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_selection_degenerate_dataset() {
        let d = Dataset::from_points("one", vec![Point::new(3.0, 3.0)]);
        assert_eq!(GaussianKernel::for_dataset(&d).bandwidth(), 1.0);
        let empty = Dataset::from_points("none", vec![]);
        assert_eq!(GaussianKernel::for_dataset(&empty).bandwidth(), 1.0);
    }

    #[test]
    fn convolved_kernel_has_wider_bandwidth() {
        let k = GaussianKernel::new(2.0);
        let c = k.convolved();
        assert!((c.bandwidth() - 2.0 * std::f64::consts::SQRT_2).abs() < 1e-12);
        // Wider bandwidth ⇒ larger value at the same non-zero distance.
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 0.0);
        assert!(c.eval(&a, &b) > k.eval(&a, &b));
    }

    #[test]
    fn epanechnikov_has_compact_support() {
        let k = GenericKernel::new(KernelKind::Epanechnikov, 1.5);
        let a = Point::new(0.0, 0.0);
        assert_eq!(k.eval(&a, &Point::new(1.6, 0.0)), 0.0);
        assert!(k.eval(&a, &Point::new(1.0, 0.0)) > 0.0);
    }

    #[test]
    fn all_kernels_peak_at_zero_distance() {
        for kind in [
            KernelKind::Gaussian,
            KernelKind::Laplacian,
            KernelKind::Epanechnikov,
            KernelKind::InverseQuadratic,
        ] {
            let k = GenericKernel::new(kind, 1.0);
            assert_eq!(k.eval_dist2(0.0), 1.0, "{kind:?}");
            assert!(k.eval_dist2(4.0) < 1.0, "{kind:?}");
        }
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn rejects_zero_bandwidth() {
        let _ = GaussianKernel::new(0.0);
    }

    #[test]
    #[should_panic(expected = "threshold must be in")]
    fn rejects_bad_threshold() {
        let _ = GaussianKernel::new(1.0).effective_radius(2.0);
    }
}
