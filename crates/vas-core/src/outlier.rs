//! Outlier-preserving augmentation of a VAS sample.
//!
//! The paper's conclusion lists outlier detection among the user goals left
//! to future work, and Section II-D warns that a spreading sample "could in
//! principle be harmful to some goals". This module implements the natural
//! remedy sketched by that discussion: after the main VAS sample is built, a
//! second scan finds the dataset points that are *most isolated from the
//! sample* — points whose neighbourhood the sample failed to cover — and adds
//! the strongest of them to the sample within a small extra budget.
//!
//! Because VAS already spreads its budget into sparse regions, the distances
//! involved are small for most datasets; the augmentation matters exactly
//! when a handful of extreme outliers sit far outside every covered region
//! (e.g. GPS glitches), which are precisely the points an analyst doing
//! outlier detection must see.

use crate::kernel::Kernel;
use vas_data::{Dataset, Point};
use vas_sampling::Sample;
use vas_spatial::KdTree;

/// An outlier candidate discovered by [`find_outliers`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Outlier {
    /// The data point.
    pub point: Point,
    /// Its distance to the nearest sampled point (the isolation score).
    pub distance_to_sample: f64,
}

/// Returns the `budget` dataset points that are farthest from any point of
/// `sample`, in decreasing order of isolation. Ties are resolved by scan
/// order. Returns an empty vector when the sample is empty (every point is
/// equally "uncovered" then, and augmentation is meaningless).
pub fn find_outliers(sample: &[Point], dataset: &Dataset, budget: usize) -> Vec<Outlier> {
    if sample.is_empty() || budget == 0 || dataset.is_empty() {
        return Vec::new();
    }
    let tree = KdTree::from_points(sample);
    // Keep the `budget` most isolated points with a simple bounded insertion
    // sort — budget is tiny compared to N.
    let mut top: Vec<Outlier> = Vec::with_capacity(budget + 1);
    for p in dataset.iter() {
        let (_, nearest) = tree.nearest(p).expect("non-empty sample");
        let distance = nearest.dist(p);
        if top.len() < budget || distance > top.last().expect("non-empty top").distance_to_sample {
            let outlier = Outlier {
                point: *p,
                distance_to_sample: distance,
            };
            let pos = top
                .iter()
                .position(|o| o.distance_to_sample < distance)
                .unwrap_or(top.len());
            top.insert(pos, outlier);
            if top.len() > budget {
                top.pop();
            }
        }
    }
    top
}

/// Augments `sample` with up to `budget` outliers whose isolation exceeds
/// `min_distance` (pass `0.0` to always use the full budget). Density
/// counters, when present, are extended with a count of 1 for each added
/// point so the sample stays internally consistent.
pub fn with_outliers(
    sample: Sample,
    dataset: &Dataset,
    budget: usize,
    min_distance: f64,
) -> Sample {
    let outliers = find_outliers(&sample.points, dataset, budget);
    let mut sample = sample;
    for o in outliers {
        if o.distance_to_sample <= min_distance {
            continue;
        }
        sample.points.push(o.point);
        if let Some(densities) = sample.densities.as_mut() {
            densities.push(1);
        }
    }
    sample
}

/// A sensible default isolation threshold: a multiple of the kernel's
/// effective radius, i.e. "farther than the sample's notion of *near* by a
/// wide margin".
pub fn default_outlier_threshold<K: Kernel + ?Sized>(kernel: &K) -> f64 {
    kernel.effective_radius(1e-6) * 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interchange::{VasConfig, VasSampler};
    use crate::kernel::GaussianKernel;
    use vas_data::GeolifeGenerator;
    use vas_sampling::Sampler;

    fn dataset_with_glitches() -> (Dataset, Vec<Point>) {
        let mut d = GeolifeGenerator::with_size(5_000, 77).generate();
        // Three GPS glitches far outside the normal extent.
        let glitches = vec![
            Point::with_value(130.0, 45.0, 0.0),
            Point::with_value(100.0, 30.0, 0.0),
            Point::with_value(125.0, 30.0, 0.0),
        ];
        d.points.extend(glitches.iter().copied());
        (d, glitches)
    }

    #[test]
    fn finds_the_injected_glitches() {
        let (d, glitches) = dataset_with_glitches();
        // A small sample that almost surely misses the glitches.
        let sample: Vec<Point> = d.points.iter().take(200).copied().collect();
        let outliers = find_outliers(&sample, &d, 3);
        assert_eq!(outliers.len(), 3);
        for o in &outliers {
            assert!(
                glitches.contains(&o.point),
                "unexpected outlier {:?}",
                o.point
            );
        }
        // Ordered by decreasing isolation.
        for w in outliers.windows(2) {
            assert!(w[0].distance_to_sample >= w[1].distance_to_sample);
        }
    }

    #[test]
    fn augmentation_adds_outliers_and_respects_threshold() {
        let (d, glitches) = dataset_with_glitches();
        let kernel = GaussianKernel::for_dataset(&d);
        let sample = VasSampler::from_dataset(&d, VasConfig::new(100)).sample_dataset(&d);
        let before = sample.len();
        let threshold = default_outlier_threshold(&kernel);
        let augmented = with_outliers(sample, &d, 5, threshold);
        // At least the glitches that the sample did not already contain are added.
        assert!(augmented.len() > before || glitches.iter().all(|g| augmented.points.contains(g)));
        for g in &glitches {
            assert!(
                augmented.points.contains(g),
                "glitch {g:?} missing after augmentation"
            );
        }
        // A huge threshold suppresses augmentation entirely.
        let sample2 = VasSampler::from_dataset(&d, VasConfig::new(100)).sample_dataset(&d);
        let len2 = sample2.len();
        let untouched = with_outliers(sample2, &d, 5, f64::INFINITY);
        assert_eq!(untouched.len(), len2);
    }

    #[test]
    fn density_counters_stay_consistent() {
        let (d, _) = dataset_with_glitches();
        let sample = VasSampler::from_dataset(&d, VasConfig::new(80)).sample_dataset(&d);
        let with_density = crate::density::with_embedded_density(sample, &d);
        let augmented = with_outliers(with_density, &d, 3, 0.0);
        assert!(augmented.has_densities());
        assert_eq!(
            augmented.densities.as_ref().unwrap().len(),
            augmented.points.len()
        );
    }

    #[test]
    fn empty_inputs_are_harmless() {
        let (d, _) = dataset_with_glitches();
        assert!(find_outliers(&[], &d, 5).is_empty());
        assert!(find_outliers(&d.points, &d, 0).is_empty());
        let empty = Dataset::from_points("none", vec![]);
        assert!(find_outliers(&d.points, &empty, 5).is_empty());
    }

    #[test]
    fn points_already_in_the_sample_are_not_outliers() {
        let (d, _) = dataset_with_glitches();
        // The sample is the full dataset: every distance is zero.
        let outliers = find_outliers(&d.points, &d, 5);
        assert!(outliers.iter().all(|o| o.distance_to_sample == 0.0));
    }
}
