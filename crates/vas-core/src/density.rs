//! Density embedding (Section V of the paper).
//!
//! VAS deliberately spreads its sample out, which erases visual density
//! information: a viewer can no longer tell dense areas from sparse ones.
//! The paper's fix is a cheap second pass over the dataset that attaches a
//! counter to every sampled point, incremented whenever that point is the
//! nearest sampled point to a scanned tuple. Renderers then re-encode density
//! via dot size or jitter. A k-d tree over the (small) sample makes the pass
//! `O(N log K)`.

use vas_data::{Dataset, Point};
use vas_sampling::Sample;
use vas_spatial::KdTree;

/// Runs the density-embedding pass: for every point of `dataset`, finds its
/// nearest neighbour within `sample` and increments that point's counter.
///
/// Returns the per-sample-point counters (parallel to `sample.points`); the
/// counters sum to `dataset.len()` whenever the sample is non-empty.
pub fn embed_density(sample: &Sample, dataset: &Dataset) -> Vec<u64> {
    density_counts(&sample.points, dataset)
}

/// Same as [`embed_density`] but consumes and returns the sample with the
/// counters attached.
pub fn with_embedded_density(sample: Sample, dataset: &Dataset) -> Sample {
    let counts = density_counts(&sample.points, dataset);
    sample.with_densities(counts)
}

/// Core of the pass, exposed for callers holding a raw point slice.
pub fn density_counts(sample_points: &[Point], dataset: &Dataset) -> Vec<u64> {
    density_counts_threaded(sample_points, dataset, 1)
}

/// [`density_counts`] over `threads` scoped workers: the dataset is split
/// into contiguous stripes, each worker accumulates a private counter vector
/// against the shared k-d tree, and the vectors are summed **in stripe
/// order**. Counter addition over `u64` is exact, so the result is
/// bit-identical to the sequential pass at any thread count (`0` = available
/// parallelism).
pub fn density_counts_threaded(
    sample_points: &[Point],
    dataset: &Dataset,
    threads: usize,
) -> Vec<u64> {
    if sample_points.is_empty() {
        return Vec::new();
    }
    let tree = KdTree::from_points(sample_points);
    let count_stripe = |points: &[Point]| {
        let mut counts = vec![0u64; sample_points.len()];
        for p in points {
            let (idx, _) = tree
                .nearest(p)
                .expect("tree built from a non-empty sample always has a nearest point");
            counts[idx] += 1;
        }
        counts
    };
    let threads = vas_par::effective_threads(threads);
    if threads <= 1 || dataset.is_empty() {
        return count_stripe(&dataset.points);
    }
    let stripe_len = dataset.len().div_ceil(threads);
    vas_par::par_chunk_fold_ordered(
        threads,
        &dataset.points,
        stripe_len,
        |_, stripe| count_stripe(stripe),
        |mut acc, stripe_counts| {
            for (a, b) in acc.iter_mut().zip(&stripe_counts) {
                *a += b;
            }
            acc
        },
    )
    .unwrap_or_else(|| vec![0u64; sample_points.len()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interchange::{VasConfig, VasSampler};
    use vas_data::GeolifeGenerator;
    use vas_sampling::Sampler;

    #[test]
    fn counts_sum_to_dataset_size() {
        let d = GeolifeGenerator::with_size(5_000, 21).generate();
        let mut sampler = VasSampler::from_dataset(&d, VasConfig::new(100));
        let sample = sampler.sample_dataset(&d);
        let counts = embed_density(&sample, &d);
        assert_eq!(counts.len(), sample.len());
        assert_eq!(counts.iter().sum::<u64>(), d.len() as u64);
    }

    #[test]
    fn with_embedded_density_attaches_counters() {
        let d = GeolifeGenerator::with_size(2_000, 22).generate();
        let mut sampler = VasSampler::from_dataset(&d, VasConfig::new(50));
        let sample = with_embedded_density(sampler.sample_dataset(&d), &d);
        assert!(sample.has_densities());
        assert_eq!(sample.total_density(), d.len() as u64);
    }

    #[test]
    fn empty_sample_yields_no_counts() {
        let d = GeolifeGenerator::with_size(100, 23).generate();
        let empty = Sample::new("vas", 0, vec![]);
        assert!(embed_density(&empty, &d).is_empty());
    }

    #[test]
    fn counters_reflect_local_density() {
        // Two sampled points, one inside a dense blob and one in a sparse
        // area: the dense one must receive (almost) all of the mass.
        let mut points = Vec::new();
        for i in 0..900 {
            let a = i as f64 * 0.007;
            points.push(Point::new(a.sin() * 0.1, a.cos() * 0.1)); // dense ring at origin
        }
        for i in 0..100 {
            points.push(Point::new(10.0 + (i % 10) as f64 * 0.01, 10.0)); // sparse far corner
        }
        let d = Dataset::from_points("two-regions", points);
        let sample_points = vec![Point::new(0.0, 0.0), Point::new(10.0, 10.0)];
        let counts = density_counts(&sample_points, &d);
        assert_eq!(counts[0], 900);
        assert_eq!(counts[1], 100);
    }

    #[test]
    fn threaded_density_counts_match_sequential_exactly() {
        let d = GeolifeGenerator::with_size(4_000, 27).generate();
        let sample_points: Vec<Point> = d.points.iter().step_by(53).copied().collect();
        let sequential = density_counts(&sample_points, &d);
        for threads in [2usize, 3, 4, 8] {
            let parallel = density_counts_threaded(&sample_points, &d, threads);
            assert_eq!(parallel, sequential, "threads {threads}");
        }
        // Empty sample stays empty on the parallel path too.
        assert!(density_counts_threaded(&[], &d, 4).is_empty());
    }

    #[test]
    fn every_dataset_point_is_assigned_to_its_true_nearest_sample_point() {
        let d = GeolifeGenerator::with_size(1_000, 25).generate();
        let sample_points: Vec<Point> = d.points.iter().step_by(97).copied().collect();
        let counts = density_counts(&sample_points, &d);
        // Brute-force reference.
        let mut expected = vec![0u64; sample_points.len()];
        for p in d.iter() {
            let nearest = sample_points
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.dist2(p).partial_cmp(&b.dist2(p)).unwrap())
                .map(|(i, _)| i)
                .unwrap();
            expected[nearest] += 1;
        }
        // Ties between equidistant sample points may be broken differently by
        // the tree and the brute-force scan; compare totals and allow a tiny
        // per-bucket discrepancy.
        assert_eq!(counts.iter().sum::<u64>(), expected.iter().sum::<u64>());
        let mismatched: u64 = counts
            .iter()
            .zip(&expected)
            .map(|(a, b)| a.abs_diff(*b))
            .sum();
        assert!(
            mismatched <= 2,
            "too many nearest-neighbour mismatches: {mismatched}"
        );
    }
}
