//! The [`Sampler`] trait shared by all sampling methods.
//!
//! Every method in the reproduction — uniform reservoir sampling, stratified
//! sampling and VAS itself — builds its sample in a **single sequential pass**
//! over the data, mirroring the offline sample-construction model of
//! Section II-B: the sample is built once, stored, and then queried many
//! times by the visualization tool.

use crate::sample::Sample;
use vas_data::{Dataset, Point};

/// A single-pass sampling method with a fixed size budget `K`.
pub trait Sampler {
    /// Short method name used in experiment output (e.g. `"uniform"`,
    /// `"stratified"`, `"vas"`).
    fn name(&self) -> &str;

    /// The sample-size budget `K` the sampler was configured with.
    fn target_size(&self) -> usize;

    /// Feeds one data point to the sampler.
    fn observe(&mut self, point: Point);

    /// Finishes the pass and extracts the selected sample, resetting the
    /// sampler to its initial (empty) state.
    fn finalize(&mut self) -> Sample;

    /// Convenience driver: observes every point of `dataset` in storage order
    /// and finalizes.
    fn sample_dataset(&mut self, dataset: &Dataset) -> Sample {
        for p in dataset.iter() {
            self.observe(*p);
        }
        self.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial sampler keeping the first K points, used to exercise the
    /// trait's default driver.
    struct FirstK {
        k: usize,
        buf: Vec<Point>,
    }

    impl Sampler for FirstK {
        fn name(&self) -> &str {
            "first-k"
        }
        fn target_size(&self) -> usize {
            self.k
        }
        fn observe(&mut self, point: Point) {
            if self.buf.len() < self.k {
                self.buf.push(point);
            }
        }
        fn finalize(&mut self) -> Sample {
            Sample::new("first-k", self.k, std::mem::take(&mut self.buf))
        }
    }

    #[test]
    fn sample_dataset_drives_observe_and_finalize() {
        let dataset =
            Dataset::from_points("d", (0..10).map(|i| Point::new(i as f64, 0.0)).collect());
        let mut sampler = FirstK { k: 3, buf: vec![] };
        let s = sampler.sample_dataset(&dataset);
        assert_eq!(s.len(), 3);
        assert_eq!(s.points[2], Point::new(2.0, 0.0));
        // finalize resets: a second run starts fresh.
        let s2 = sampler.sample_dataset(&dataset);
        assert_eq!(s2.len(), 3);
    }
}
