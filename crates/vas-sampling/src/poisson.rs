//! Poisson-disk ("blue noise") sampling — an additional spatial baseline.
//!
//! The paper compares VAS against uniform and stratified sampling. A natural
//! question is whether a simpler *geometric* spreading rule — accept a point
//! only if no already-accepted point lies within a minimum distance — would
//! achieve the same effect without solving an optimization problem. This
//! module implements that rule as a streaming sampler so the evaluation
//! harness (and downstream users) can compare it directly.
//!
//! The experiments show why the paper's formulation is still needed: the disk
//! radius must be fixed in advance from the target size and the domain
//! extent, so the method either stops short of the budget on skewed data
//! (dense areas saturate quickly, sparse areas cannot fill the remainder) or
//! over-samples emptiness; VAS's kernel objective adapts the trade-off
//! point by point and, unlike rejection, keeps improving with further passes.

use crate::sample::Sample;
use crate::traits::Sampler;
use vas_data::{BoundingBox, Point};
use vas_spatial::UniformGrid;

/// A streaming Poisson-disk sampler: the first point of the stream is always
/// accepted; any later point is accepted only if it lies at least `radius`
/// away from every accepted point, until `k` points have been accepted.
#[derive(Debug, Clone)]
pub struct PoissonDiskSampler {
    k: usize,
    radius: f64,
    bounds: BoundingBox,
    accepted: Vec<Point>,
    /// Coarse occupancy grid with cell side ≥ radius, so a neighbourhood
    /// check only needs to look at the 3×3 surrounding cells.
    grid: UniformGrid,
}

impl PoissonDiskSampler {
    /// Creates a sampler with an explicit exclusion radius over `bounds`.
    ///
    /// # Panics
    /// Panics if the radius is not positive and finite or the bounds are
    /// empty.
    pub fn new(k: usize, bounds: BoundingBox, radius: f64, _seed: u64) -> Self {
        assert!(
            radius.is_finite() && radius > 0.0,
            "exclusion radius must be positive"
        );
        assert!(!bounds.is_empty(), "sampling domain must be non-empty");
        // Cell side of at least `radius` keeps the neighbourhood check to the
        // 3×3 cells around the candidate.
        let cols = ((bounds.width() / radius).floor() as usize).clamp(1, 4_096);
        let rows = ((bounds.height() / radius).floor() as usize).clamp(1, 4_096);
        Self {
            k,
            radius,
            bounds,
            accepted: Vec::new(),
            grid: UniformGrid::new(bounds, cols, rows),
        }
    }

    /// Chooses the exclusion radius from the target size: the radius of a
    /// disc whose area is the domain area divided by `k` (so `k` discs tile
    /// the domain), shrunk by a packing factor so the budget is reachable on
    /// reasonably spread data.
    pub fn with_budget(k: usize, bounds: BoundingBox, seed: u64) -> Self {
        let k_f = k.max(1) as f64;
        let radius = (bounds.area() / (k_f * std::f64::consts::PI)).sqrt() * 0.7;
        Self::new(k, bounds, radius.max(1e-12), seed)
    }

    /// The exclusion radius in use.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Whether a candidate is far enough from every accepted point.
    fn is_admissible(&self, p: &Point) -> bool {
        let (col, row) = self.grid.cell_of(p);
        let r2 = self.radius * self.radius;
        for dc in -1i64..=1 {
            for dr in -1i64..=1 {
                let c = col as i64 + dc;
                let r = row as i64 + dr;
                if c < 0 || r < 0 || c >= self.grid.cols() as i64 || r >= self.grid.rows() as i64 {
                    continue;
                }
                for &idx in self.grid.cell(c as usize, r as usize) {
                    if self.accepted[idx].dist2(p) < r2 {
                        return false;
                    }
                }
            }
        }
        true
    }
}

impl Sampler for PoissonDiskSampler {
    fn name(&self) -> &str {
        "poisson-disk"
    }

    fn target_size(&self) -> usize {
        self.k
    }

    fn observe(&mut self, point: Point) {
        if self.k == 0 || self.accepted.len() >= self.k {
            return;
        }
        if self.accepted.is_empty() || self.is_admissible(&point) {
            let idx = self.accepted.len();
            self.accepted.push(point);
            self.grid.insert(idx, &point);
        }
    }

    fn finalize(&mut self) -> Sample {
        let points = std::mem::take(&mut self.accepted);
        let sample = Sample::new("poisson-disk", self.k, points);
        self.grid = UniformGrid::new(self.bounds, self.grid.cols(), self.grid.rows());
        sample
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vas_data::Dataset;

    fn grid_dataset(side: usize) -> Dataset {
        let mut pts = Vec::new();
        for i in 0..side {
            for j in 0..side {
                pts.push(Point::new(i as f64 / side as f64, j as f64 / side as f64));
            }
        }
        Dataset::from_points("grid", pts)
    }

    fn skewed_dataset() -> Dataset {
        // 95% of the points in a tight blob, 5% spread along a line.
        let mut pts = Vec::new();
        for i in 0..9_500 {
            let a = i as f64 * 0.01;
            pts.push(Point::new(0.5 + a.sin() * 0.01, 0.5 + a.cos() * 0.01));
        }
        for i in 0..500 {
            pts.push(Point::new(i as f64 / 500.0, 0.05));
        }
        Dataset::from_points("skewed", pts)
    }

    #[test]
    fn respects_minimum_distance() {
        let d = grid_dataset(50);
        let bounds = d.bounds();
        let mut s = PoissonDiskSampler::new(500, bounds, 0.07, 1);
        let sample = s.sample_dataset(&d);
        assert!(!sample.is_empty());
        for (i, a) in sample.points.iter().enumerate() {
            for b in &sample.points[(i + 1)..] {
                assert!(
                    a.dist(b) >= 0.07 - 1e-12,
                    "two accepted points are closer than the radius"
                );
            }
        }
    }

    #[test]
    fn stops_at_the_budget() {
        let d = grid_dataset(60);
        let mut s = PoissonDiskSampler::new(40, d.bounds(), 0.01, 2);
        let sample = s.sample_dataset(&d);
        assert_eq!(sample.len(), 40);
        assert_eq!(sample.method, "poisson-disk");
    }

    #[test]
    fn budget_radius_reaches_a_reasonable_fill_on_uniform_data() {
        let d = grid_dataset(80);
        let k = 200;
        let mut s = PoissonDiskSampler::with_budget(k, d.bounds(), 3);
        let sample = s.sample_dataset(&d);
        assert!(
            sample.len() as f64 >= 0.6 * k as f64,
            "only {} of {k} accepted on uniform data",
            sample.len()
        );
    }

    #[test]
    fn saturates_below_budget_on_skewed_data() {
        // The structural weakness VAS does not have: once the dense blob is
        // packed, the stream offers nothing admissible and the budget is
        // never reached.
        let d = skewed_dataset();
        let k = 2_000;
        let mut s = PoissonDiskSampler::with_budget(k, d.bounds(), 4);
        let sample = s.sample_dataset(&d);
        assert!(
            sample.len() < k / 2,
            "expected saturation well below the budget, got {}",
            sample.len()
        );
    }

    #[test]
    fn covers_sparse_regions_better_than_its_size_suggests() {
        let d = skewed_dataset();
        let mut s = PoissonDiskSampler::with_budget(500, d.bounds(), 5);
        let sample = s.sample_dataset(&d);
        // The sparse line (y ≈ 0.05) must be represented.
        let line = sample
            .points
            .iter()
            .filter(|p| (p.y - 0.05).abs() < 0.01)
            .count();
        assert!(line >= 5, "sparse line has only {line} representatives");
    }

    #[test]
    fn zero_budget_and_reuse() {
        let d = grid_dataset(10);
        let mut s = PoissonDiskSampler::new(0, d.bounds(), 0.1, 0);
        assert!(s.sample_dataset(&d).is_empty());
        let mut s = PoissonDiskSampler::new(5, d.bounds(), 0.05, 0);
        let a = s.sample_dataset(&d);
        let b = s.sample_dataset(&d);
        assert_eq!(a.points, b.points, "sampler must reset on finalize");
    }

    #[test]
    #[should_panic(expected = "radius must be positive")]
    fn rejects_bad_radius() {
        let _ = PoissonDiskSampler::new(10, BoundingBox::new(0.0, 0.0, 1.0, 1.0), 0.0, 0);
    }
}
