//! Stratified (grid) sampling — the paper's strongest baseline.
//!
//! Section VI-B describes the method: "Stratified sampling divides a domain
//! into non-overlapping bins and performs uniform random sampling for each
//! bin. Here, the number of the data points to draw for each bin is
//! determined in the most balanced way." The paper uses a 100-bin grid for
//! the user study and a 316×316 grid for Figure 1.
//!
//! The implementation keeps one reservoir per grid cell during the streaming
//! pass and solves the balanced-allocation problem at finalize time with a
//! water-filling scheme: bins that hold fewer points than their fair share
//! keep everything, and the unused budget is redistributed to the remaining
//! bins — reproducing the paper's worked example (two bins, budget 100, one
//! bin with only 10 points ⇒ allocations of 90 and 10).

use crate::sample::Sample;
use crate::traits::Sampler;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vas_data::{BoundingBox, Point};

/// Per-bin reservoir state.
#[derive(Debug, Clone, Default)]
struct Bin {
    reservoir: Vec<Point>,
    seen: u64,
}

/// Grid-stratified sampler with a fixed total budget `K`.
///
/// The stratification grid must be fixed before the pass starts, so the
/// sampler is constructed with the domain [`BoundingBox`]; in the offline
/// index-construction setting of the paper the domain is known (it is stored
/// as table metadata). Points falling outside the declared domain are clamped
/// into the border bins.
#[derive(Debug, Clone)]
pub struct StratifiedSampler {
    k: usize,
    seed: u64,
    bounds: BoundingBox,
    cols: usize,
    rows: usize,
    bins: Vec<Bin>,
    rng: StdRng,
}

impl StratifiedSampler {
    /// Creates a stratified sampler over `bounds` with a `cols × rows` grid.
    ///
    /// # Panics
    /// Panics if the grid is degenerate or `bounds` is empty.
    pub fn new(k: usize, bounds: BoundingBox, cols: usize, rows: usize, seed: u64) -> Self {
        assert!(cols > 0 && rows > 0, "grid dimensions must be positive");
        assert!(
            !bounds.is_empty(),
            "stratification domain must be non-empty"
        );
        Self {
            k,
            seed,
            bounds,
            cols,
            rows,
            bins: vec![Bin::default(); cols * rows],
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Convenience constructor matching the paper's user-study setup: a
    /// square grid with `side × side` bins (the paper uses `side = 10` for
    /// 100 bins, and `side = 316` for Figure 1).
    pub fn square(k: usize, bounds: BoundingBox, side: usize, seed: u64) -> Self {
        Self::new(k, bounds, side, side, seed)
    }

    /// Number of grid cells.
    pub fn n_bins(&self) -> usize {
        self.cols * self.rows
    }

    fn bin_index(&self, p: &Point) -> usize {
        let fx = (p.x - self.bounds.min_x) / self.bounds.width();
        let fy = (p.y - self.bounds.min_y) / self.bounds.height();
        let col = ((fx * self.cols as f64).floor() as isize).clamp(0, self.cols as isize - 1);
        let row = ((fy * self.rows as f64).floor() as isize).clamp(0, self.rows as isize - 1);
        row as usize * self.cols + col as usize
    }

    /// Balanced ("water-filling") allocation of the budget across bins given
    /// the number of available points per bin. Returns the per-bin quota.
    fn balanced_allocation(available: &[u64], budget: usize) -> Vec<usize> {
        let mut order: Vec<usize> = (0..available.len()).collect();
        order.sort_by_key(|&i| available[i]);
        let mut quota = vec![0usize; available.len()];
        let mut remaining = budget;
        let occupied: Vec<usize> = order
            .iter()
            .copied()
            .filter(|&i| available[i] > 0)
            .collect();
        let mut bins_left = occupied.len();
        for &i in &occupied {
            if remaining == 0 || bins_left == 0 {
                break;
            }
            // Fair share of the remaining budget across the remaining bins.
            let fair = remaining.div_ceil(bins_left);
            let take = fair.min(available[i] as usize).min(remaining);
            quota[i] = take;
            remaining -= take;
            bins_left -= 1;
        }
        quota
    }
}

impl Sampler for StratifiedSampler {
    fn name(&self) -> &str {
        "stratified"
    }

    fn target_size(&self) -> usize {
        self.k
    }

    fn observe(&mut self, point: Point) {
        if self.k == 0 {
            return;
        }
        let idx = self.bin_index(&point);
        let bin = &mut self.bins[idx];
        bin.seen += 1;
        // Per-bin reservoir: no bin can ever need more than K points.
        if bin.reservoir.len() < self.k {
            bin.reservoir.push(point);
        } else {
            let j = self.rng.gen_range(0..bin.seen);
            if (j as usize) < self.k {
                bin.reservoir[j as usize] = point;
            }
        }
    }

    fn finalize(&mut self) -> Sample {
        let available: Vec<u64> = self.bins.iter().map(|b| b.reservoir.len() as u64).collect();
        let quota = Self::balanced_allocation(&available, self.k);

        let mut points = Vec::with_capacity(self.k.min(available.iter().sum::<u64>() as usize));
        for (bin, &q) in self.bins.iter_mut().zip(&quota) {
            // The reservoir is already a uniform sample of the bin; take a
            // random subset of it to meet the quota.
            let reservoir = std::mem::take(&mut bin.reservoir);
            if q >= reservoir.len() {
                points.extend(reservoir);
            } else {
                // Partial Fisher–Yates: select q items uniformly.
                let mut pool = reservoir;
                for i in 0..q {
                    let j = self.rng.gen_range(i..pool.len());
                    pool.swap(i, j);
                }
                points.extend_from_slice(&pool[..q]);
            }
            bin.seen = 0;
        }

        let sample = Sample::new("stratified", self.k, points);
        self.rng = StdRng::seed_from_u64(self.seed);
        sample
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vas_data::Dataset;

    fn clustered_dataset() -> Dataset {
        // 9 500 points in a tight cluster near the origin, 500 points spread
        // in a far corner: the classic case where uniform sampling starves
        // the sparse region.
        let mut pts = Vec::new();
        for i in 0..9_500 {
            let t = i as f64 / 9_500.0;
            pts.push(Point::new(t.sin() * 0.05, t.cos() * 0.05));
        }
        for i in 0..500 {
            let t = i as f64 / 500.0;
            pts.push(Point::new(0.9 + 0.05 * t, 0.9 + 0.05 * (1.0 - t)));
        }
        Dataset::from_points("clustered", pts)
    }

    fn domain() -> BoundingBox {
        BoundingBox::new(-0.1, -0.1, 1.0, 1.0)
    }

    #[test]
    fn respects_budget() {
        let d = clustered_dataset();
        let s = StratifiedSampler::square(200, domain(), 10, 1).sample_dataset(&d);
        assert_eq!(s.len(), 200);
        assert_eq!(s.method, "stratified");
    }

    #[test]
    fn keeps_everything_when_budget_exceeds_data() {
        let d = Dataset::from_points(
            "small",
            (0..30).map(|i| Point::new(i as f64 / 30.0, 0.5)).collect(),
        );
        let s = StratifiedSampler::square(100, BoundingBox::new(0.0, 0.0, 1.0, 1.0), 5, 0)
            .sample_dataset(&d);
        assert_eq!(s.len(), 30);
    }

    #[test]
    fn deterministic_given_seed() {
        let d = clustered_dataset();
        let a = StratifiedSampler::square(128, domain(), 10, 9).sample_dataset(&d);
        let b = StratifiedSampler::square(128, domain(), 10, 9).sample_dataset(&d);
        assert_eq!(a.points, b.points);
    }

    #[test]
    fn sparse_regions_get_their_balanced_share() {
        let d = clustered_dataset();
        let k = 400;
        let s = StratifiedSampler::square(k, domain(), 10, 2).sample_dataset(&d);
        // The sparse corner holds 5% of the data but occupies its own bins;
        // balanced allocation should hand it far more than 5% of the budget.
        let corner = BoundingBox::new(0.85, 0.85, 1.0, 1.0);
        let corner_points = s.filter_region(&corner).len();
        assert!(
            corner_points > k / 10,
            "sparse corner got only {corner_points} of {k} points"
        );

        // Compare with uniform sampling, which should give the corner roughly 5%.
        let u = crate::uniform::UniformSampler::new(k, 2).sample_dataset(&d);
        let uniform_corner = u.filter_region(&corner).len();
        assert!(
            corner_points > uniform_corner,
            "stratified ({corner_points}) should cover the sparse corner better \
             than uniform ({uniform_corner})"
        );
    }

    #[test]
    fn balanced_allocation_matches_paper_example() {
        // Two bins, budget 100, second bin has only 10 points ⇒ 90 / 10.
        let quota = StratifiedSampler::balanced_allocation(&[1_000, 10], 100);
        assert_eq!(quota, vec![90, 10]);
        // Both bins rich ⇒ 50 / 50.
        let quota = StratifiedSampler::balanced_allocation(&[1_000, 1_000], 100);
        assert_eq!(quota, vec![50, 50]);
        // Budget larger than the data ⇒ everything is taken.
        let quota = StratifiedSampler::balanced_allocation(&[5, 7], 100);
        assert_eq!(quota, vec![5, 7]);
        // Empty bins get nothing.
        let quota = StratifiedSampler::balanced_allocation(&[0, 50, 0, 50], 10);
        assert_eq!(quota[0], 0);
        assert_eq!(quota[2], 0);
        assert_eq!(quota.iter().sum::<usize>(), 10);
    }

    #[test]
    fn allocation_never_exceeds_budget_or_availability() {
        let available = vec![3u64, 0, 17, 4, 250, 9, 1];
        for budget in [0usize, 1, 5, 20, 100, 1_000] {
            let quota = StratifiedSampler::balanced_allocation(&available, budget);
            let total: usize = quota.iter().sum();
            assert!(total <= budget);
            let possible: u64 = available.iter().sum();
            assert_eq!(total, budget.min(possible as usize));
            for (q, a) in quota.iter().zip(&available) {
                assert!(*q as u64 <= *a);
            }
        }
    }

    #[test]
    fn zero_budget_yields_empty_sample() {
        let d = clustered_dataset();
        let s = StratifiedSampler::square(0, domain(), 10, 0).sample_dataset(&d);
        assert!(s.is_empty());
    }

    #[test]
    fn points_outside_domain_are_clamped_not_lost() {
        let d = Dataset::from_points(
            "outside",
            vec![Point::new(-5.0, -5.0), Point::new(10.0, 10.0)],
        );
        let s = StratifiedSampler::square(10, BoundingBox::new(0.0, 0.0, 1.0, 1.0), 4, 0)
            .sample_dataset(&d);
        assert_eq!(s.len(), 2);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn rejects_zero_grid() {
        let _ = StratifiedSampler::new(10, BoundingBox::new(0.0, 0.0, 1.0, 1.0), 0, 3, 0);
    }
}
