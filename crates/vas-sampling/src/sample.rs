//! The [`Sample`] type: the output of every sampling method.

use vas_data::{BoundingBox, Point};

/// A sample `S ⊆ D` selected by some sampling method.
///
/// Besides the selected points, a sample records which method produced it and
/// — when the density embedding extension of Section V has been applied — a
/// per-point counter giving the number of original tuples whose nearest
/// sampled point it is. Renderers use those counters to scale dot sizes or
/// add jitter so that density information survives sampling.
#[derive(Debug, Clone)]
pub struct Sample {
    /// The selected points, in selection order.
    pub points: Vec<Point>,
    /// Density counters parallel to `points`; `None` until the density
    /// embedding pass has been run.
    pub densities: Option<Vec<u64>>,
    /// Name of the method that produced the sample (e.g. `"uniform"`).
    pub method: String,
    /// The sample-size budget the method was asked for (the paper's `K`).
    /// The actual `points.len()` can be smaller when the dataset itself is
    /// smaller than the budget.
    pub target_size: usize,
}

impl Sample {
    /// Creates a sample without density information.
    pub fn new(method: impl Into<String>, target_size: usize, points: Vec<Point>) -> Self {
        Self {
            points,
            densities: None,
            method: method.into(),
            target_size,
        }
    }

    /// Number of selected points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when no points were selected.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Spatial extent of the sample.
    pub fn bounds(&self) -> BoundingBox {
        BoundingBox::from_points(&self.points)
    }

    /// Attaches density counters produced by the density embedding pass.
    ///
    /// # Panics
    /// Panics if `densities.len() != self.len()`.
    pub fn with_densities(mut self, densities: Vec<u64>) -> Self {
        assert_eq!(
            densities.len(),
            self.points.len(),
            "density counters must be parallel to the sample points"
        );
        self.densities = Some(densities);
        self
    }

    /// `true` once density counters are attached.
    pub fn has_densities(&self) -> bool {
        self.densities.is_some()
    }

    /// The density counter for point `i`, defaulting to 1 when the embedding
    /// pass has not been run (each sampled point at least represents itself).
    pub fn density(&self, i: usize) -> u64 {
        self.densities.as_ref().map_or(1, |d| d[i])
    }

    /// Sum of all density counters. After a density-embedding pass over a
    /// dataset of `N` points this equals `N`.
    pub fn total_density(&self) -> u64 {
        match &self.densities {
            Some(d) => d.iter().sum(),
            None => self.points.len() as u64,
        }
    }

    /// Points of the sample falling inside `region` (used when rendering a
    /// zoomed viewport).
    pub fn filter_region(&self, region: &BoundingBox) -> Vec<Point> {
        self.points
            .iter()
            .filter(|p| region.contains(p))
            .copied()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Sample {
        Sample::new(
            "test",
            3,
            vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(0.0, 2.0),
            ],
        )
    }

    #[test]
    fn basic_accessors() {
        let s = sample();
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.method, "test");
        assert_eq!(s.target_size, 3);
        assert_eq!(s.bounds(), BoundingBox::new(0.0, 0.0, 1.0, 2.0));
    }

    #[test]
    fn densities_default_to_one() {
        let s = sample();
        assert!(!s.has_densities());
        assert_eq!(s.density(0), 1);
        assert_eq!(s.total_density(), 3);
    }

    #[test]
    fn with_densities_attaches_counters() {
        let s = sample().with_densities(vec![10, 20, 30]);
        assert!(s.has_densities());
        assert_eq!(s.density(1), 20);
        assert_eq!(s.total_density(), 60);
    }

    #[test]
    #[should_panic(expected = "parallel")]
    fn mismatched_densities_rejected() {
        let _ = sample().with_densities(vec![1, 2]);
    }

    #[test]
    fn filter_region() {
        let s = sample();
        let region = BoundingBox::new(-0.5, -0.5, 0.5, 0.5);
        assert_eq!(s.filter_region(&region), vec![Point::new(0.0, 0.0)]);
    }
}
