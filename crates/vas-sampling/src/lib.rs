//! # vas-sampling
//!
//! Baseline sampling methods and the common [`Sampler`] abstraction.
//!
//! The paper compares VAS against the two standard data-reduction methods
//! used by approximate query processing systems:
//!
//! * **Uniform random sampling** — single-pass reservoir sampling
//!   ([`UniformSampler`]), which tends to draw most of its points from dense
//!   areas.
//! * **Stratified sampling** — the domain is divided into non-overlapping
//!   grid bins and the per-bin allocations are made "as balanced as
//!   possible" ([`StratifiedSampler`]), exactly as described in
//!   Section VI-B of the paper.
//!
//! A third, purely geometric baseline — Poisson-disk / blue-noise rejection
//! ([`PoissonDiskSampler`]) — is provided to show why a fixed exclusion
//! radius is not a substitute for the VAS objective on skewed data.
//!
//! All baselines, and the VAS sampler implemented in `vas-core`, implement
//! the same single-pass [`Sampler`] trait so the experiment harness can treat
//! them interchangeably. The output of every sampler is a [`Sample`], which
//! optionally carries the per-point density counters added by the density
//! embedding extension.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod poisson;
pub mod sample;
pub mod stratified;
pub mod traits;
pub mod uniform;

pub use poisson::PoissonDiskSampler;
pub use sample::Sample;
pub use stratified::StratifiedSampler;
pub use traits::Sampler;
pub use uniform::UniformSampler;
