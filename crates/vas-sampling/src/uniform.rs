//! Uniform random sampling via the single-pass reservoir method.
//!
//! This is the paper's first baseline ("we implemented the single-pass
//! reservoir method for simple random sampling", Section VI-B). Every tuple
//! of the stream ends up in the sample with equal probability `K / N`, which
//! means dense regions dominate the sample — the weakness VAS is designed to
//! avoid.

use crate::sample::Sample;
use crate::traits::Sampler;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vas_data::Point;

/// Algorithm-R reservoir sampler with a fixed budget `K`.
#[derive(Debug, Clone)]
pub struct UniformSampler {
    k: usize,
    seed: u64,
    rng: StdRng,
    reservoir: Vec<Point>,
    seen: u64,
}

impl UniformSampler {
    /// Creates a sampler that keeps `k` points, seeded deterministically.
    pub fn new(k: usize, seed: u64) -> Self {
        Self {
            k,
            seed,
            rng: StdRng::seed_from_u64(seed),
            reservoir: Vec::with_capacity(k.min(1 << 20)),
            seen: 0,
        }
    }

    /// Number of points observed so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }
}

impl Sampler for UniformSampler {
    fn name(&self) -> &str {
        "uniform"
    }

    fn target_size(&self) -> usize {
        self.k
    }

    fn observe(&mut self, point: Point) {
        self.seen += 1;
        if self.k == 0 {
            return;
        }
        if self.reservoir.len() < self.k {
            self.reservoir.push(point);
        } else {
            // Classic Algorithm R: replace a random slot with probability K/seen.
            let j = self.rng.gen_range(0..self.seen);
            if (j as usize) < self.k {
                self.reservoir[j as usize] = point;
            }
        }
    }

    fn finalize(&mut self) -> Sample {
        let points = std::mem::take(&mut self.reservoir);
        let sample = Sample::new("uniform", self.k, points);
        // Reset so the sampler can be reused for another pass.
        self.rng = StdRng::seed_from_u64(self.seed);
        self.seen = 0;
        sample
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vas_data::Dataset;

    fn line_dataset(n: usize) -> Dataset {
        Dataset::from_points("line", (0..n).map(|i| Point::new(i as f64, 0.0)).collect())
    }

    #[test]
    fn keeps_everything_when_budget_exceeds_data() {
        let d = line_dataset(50);
        let s = UniformSampler::new(100, 0).sample_dataset(&d);
        assert_eq!(s.len(), 50);
        assert_eq!(s.method, "uniform");
        assert_eq!(s.target_size, 100);
    }

    #[test]
    fn respects_budget() {
        let d = line_dataset(10_000);
        let s = UniformSampler::new(100, 1).sample_dataset(&d);
        assert_eq!(s.len(), 100);
        // All selected points come from the dataset.
        assert!(s.points.iter().all(|p| p.y == 0.0 && p.x < 10_000.0));
    }

    #[test]
    fn deterministic_given_seed() {
        let d = line_dataset(5_000);
        let a = UniformSampler::new(64, 7).sample_dataset(&d);
        let b = UniformSampler::new(64, 7).sample_dataset(&d);
        assert_eq!(a.points, b.points);
        let c = UniformSampler::new(64, 8).sample_dataset(&d);
        assert_ne!(a.points, c.points);
    }

    #[test]
    fn zero_budget_yields_empty_sample() {
        let d = line_dataset(100);
        let s = UniformSampler::new(0, 0).sample_dataset(&d);
        assert!(s.is_empty());
    }

    #[test]
    fn no_duplicate_selections_from_distinct_stream() {
        let d = line_dataset(2_000);
        let s = UniformSampler::new(200, 3).sample_dataset(&d);
        let mut xs: Vec<i64> = s.points.iter().map(|p| p.x as i64).collect();
        xs.sort_unstable();
        xs.dedup();
        assert_eq!(xs.len(), 200, "reservoir must not duplicate stream items");
    }

    #[test]
    fn selection_is_approximately_uniform() {
        // Run many trials over a small stream and check each item's inclusion
        // frequency is close to K/N.
        let n = 50usize;
        let k = 10usize;
        let trials = 2_000usize;
        let d = line_dataset(n);
        let mut counts = vec![0usize; n];
        for t in 0..trials {
            let s = UniformSampler::new(k, t as u64).sample_dataset(&d);
            for p in &s.points {
                counts[p.x as usize] += 1;
            }
        }
        let expected = trials as f64 * k as f64 / n as f64; // 400
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expected).abs() < expected * 0.25,
                "item {i} selected {c} times, expected ≈{expected}"
            );
        }
    }

    #[test]
    fn finalize_resets_state() {
        let d = line_dataset(1_000);
        let mut sampler = UniformSampler::new(10, 5);
        let a = sampler.sample_dataset(&d);
        assert_eq!(sampler.seen(), 0);
        let b = sampler.sample_dataset(&d);
        assert_eq!(a.points, b.points, "reuse after finalize must be identical");
    }
}
