//! Property tests for the chunked columnar codec: every write → read cycle
//! must reproduce the input bit-for-bit, for any point count, any chunk
//! size, and the nastiest corners of IEEE-754 — `-0.0`, subnormals, extreme
//! magnitudes — plus error paths for truncated and corrupted files.

use proptest::prelude::*;
use vas_data::{Dataset, DatasetKind, Point};
use vas_stream::{spill_dataset, ChunkedReader, VasError};

/// Special values the round trip must preserve exactly. (`PartialEq` would
/// accept `-0.0 == 0.0`, so all comparisons below are on raw bits.)
const SPECIAL: [f64; 10] = [
    0.0,
    -0.0,
    5e-324,  // smallest positive subnormal
    -5e-324, // smallest negative subnormal
    f64::MIN_POSITIVE,
    -f64::MIN_POSITIVE,
    f64::MAX,
    f64::MIN,
    1e-308,
    1.5,
];

/// Maps a (selector, fallback) draw to either a special value or the random
/// fallback, so roughly half of all coordinates exercise the special pool.
fn mix(sel: usize, random: f64) -> f64 {
    if sel < SPECIAL.len() {
        SPECIAL[sel]
    } else {
        random
    }
}

fn unique_path(tag: &str, case: usize) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "vas-codec-prop-{}-{tag}-{case}.vaschunk",
        std::process::id()
    ))
}

fn assert_bits_equal(a: &[Point], b: &[Point], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: lengths differ");
    for (i, (p, q)) in a.iter().zip(b).enumerate() {
        assert_eq!(p.x.to_bits(), q.x.to_bits(), "{what}: x of point {i}");
        assert_eq!(p.y.to_bits(), q.y.to_bits(), "{what}: y of point {i}");
        assert_eq!(
            p.value.to_bits(),
            q.value.to_bits(),
            "{what}: value of point {i}"
        );
    }
}

proptest! {
    #[test]
    fn round_trip_is_bit_exact_for_any_points_and_chunk_size(
        raw in proptest::collection::vec(
            ((0usize..20, -1.0e6f64..1.0e6), (0usize..20, -1.0e6f64..1.0e6), (0usize..20, -1.0e6f64..1.0e6)),
            1..200,
        ),
        chunk_size in 1usize..64,
        case in 0usize..1_000_000,
    ) {
        let points: Vec<Point> = raw
            .iter()
            .map(|((sx, x), (sy, y), (sv, v))| {
                Point::with_value(mix(*sx, *x), mix(*sy, *y), mix(*sv, *v))
            })
            .collect();
        let dataset = Dataset::from_points("prop", points.clone());
        let path = unique_path("rt", case);
        let summary = spill_dataset(&dataset, &path, chunk_size).unwrap();
        prop_assert_eq!(summary.count, points.len() as u64);
        let expected_chunks = points.len().div_ceil(chunk_size) as u64;
        prop_assert_eq!(summary.chunks, expected_chunks);

        let mut reader = ChunkedReader::open(&path).unwrap();
        prop_assert_eq!(reader.header().count, points.len() as u64);
        prop_assert_eq!(reader.header().chunk_size, chunk_size);
        let back = reader.read_dataset().unwrap();
        assert_bits_equal(&back.points, &points, "round trip");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn chunk_boundary_counts_round_trip(
        chunk_size in 1usize..16,
        extra in 0usize..3,
        multiplier in 0usize..4,
        case in 0usize..1_000_000,
    ) {
        // Counts straddling chunk boundaries: m·c, m·c + 1, m·c + 2 — the
        // off-by-one territory where a length-prefix bug would hide.
        let n = chunk_size * multiplier + extra;
        let points: Vec<Point> = (0..n)
            .map(|i| Point::with_value(i as f64, -(i as f64), 0.5 * i as f64))
            .collect();
        let dataset = Dataset::from_points("boundary", points.clone());
        let path = unique_path("bd", case);
        spill_dataset(&dataset, &path, chunk_size).unwrap();
        let back = ChunkedReader::open(&path).unwrap().read_dataset().unwrap();
        assert_bits_equal(&back.points, &points, "boundary count");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn truncating_anywhere_in_the_data_section_is_detected(
        n in 1usize..60,
        chunk_size in 1usize..8,
        cut_frac in 0.0f64..1.0,
        case in 0usize..1_000_000,
    ) {
        let points: Vec<Point> = (0..n).map(|i| Point::new(i as f64, 2.0 * i as f64)).collect();
        let dataset = Dataset::from_points("trunc", points);
        let path = unique_path("tr", case);
        spill_dataset(&dataset, &path, chunk_size).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // Find where the data section starts (fixed header + name + header
        // CRC) and cut the file strictly inside the data bytes.
        let data_start = 62 + "trunc".len() + 4;
        let data_len = bytes.len() - data_start;
        prop_assert!(data_len > 0);
        let keep = data_start + ((data_len - 1) as f64 * cut_frac) as usize;
        std::fs::write(&path, &bytes[..keep]).unwrap();

        let mut reader = ChunkedReader::open(&path).unwrap();
        let err = reader.read_dataset().unwrap_err();
        let typed = VasError::from_io_chain(&err).expect("typed error in chain");
        prop_assert!(
            matches!(
                typed,
                VasError::Truncated { .. } | VasError::Corrupt { .. }
            ),
            "unexpected error class: {}",
            typed
        );
        std::fs::remove_file(path).ok();
    }
}

#[test]
fn empty_and_single_point_datasets_round_trip() {
    for (tag, points) in [
        ("empty", vec![]),
        (
            "single",
            vec![Point::with_value(-0.0, 5e-324, f64::MIN_POSITIVE)],
        ),
    ] {
        let dataset = Dataset::from_points(tag, points.clone());
        let path = unique_path(tag, 0);
        let summary = spill_dataset(&dataset, &path, 8).unwrap();
        assert_eq!(summary.count, points.len() as u64);
        let mut reader = ChunkedReader::open(&path).unwrap();
        assert_eq!(reader.header().kind, DatasetKind::External);
        let back = reader.read_dataset().unwrap();
        assert_bits_equal(&back.points, &points, tag);
        std::fs::remove_file(path).ok();
    }
}

#[test]
fn corrupting_a_chunk_length_is_detected() {
    let points: Vec<Point> = (0..32).map(|i| Point::new(i as f64, 0.0)).collect();
    let dataset = Dataset::from_points("corrupt", points);
    let path = unique_path("corrupt", 0);
    spill_dataset(&dataset, &path, 8).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    // First chunk length prefix sits right after the header + name + header
    // CRC.
    let len_offset = 62 + "corrupt".len() + 4;
    bytes[len_offset..len_offset + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();
    let mut reader = ChunkedReader::open(&path).unwrap();
    let err = reader.read_dataset().unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("corrupt length"), "{err}");
    std::fs::remove_file(path).ok();
}
