//! # vas-stream
//!
//! Out-of-core ingestion for the VAS reproduction: everything needed to run
//! the sampler over datasets far larger than memory.
//!
//! The paper's headline experiments stream 24.4M Geolife points through
//! Interchange; a fully materialized `Vec<Point>` does not get there. This
//! crate supplies the storage substrate that does, built around two pieces:
//!
//! * **[`PointSource`]** — the streaming-dataset abstraction: bounded-memory
//!   chunk iteration plus `len_hint` and `reset` (Interchange is single-pass
//!   per refinement pass, so rescanning is the only random access it needs).
//!   Adapters exist for every way points enter the system:
//!   [`DatasetSource`] (in-memory [`Dataset`](vas_data::Dataset)),
//!   [`CsvSource`] (streaming CSV), [`ChunkedReader`] (the spill format
//!   below), and the streaming generator sources ([`GeolifeSource`],
//!   [`GaussianMixtureSource`], [`SplomSource`]) that emit chunks straight
//!   out of the `vas-data` generator iterators — same seed, bit-identical
//!   points, never materializing the dataset. [`PrefetchSource`] wraps any
//!   owned source with a pipelined read-ahead worker (chunk *n+1* is decoded
//!   while the consumer drains chunk *n*) without changing the stream by a
//!   bit, and `Box<dyn PointSource + Send>` is itself a source, so
//!   heterogeneous pipelines can cross thread boundaries.
//! * **The chunked columnar spill format** — [`ChunkedWriter`] /
//!   [`ChunkedReader`]: a binary file with a provenance header (name, kind,
//!   bounds, count, chunk size) followed by fixed-size chunks of `x`/`y`/
//!   `value` column arrays as little-endian `f64`. Round-trips are bit-exact
//!   (including `-0.0`, subnormals and every NaN payload), truncation and
//!   trailing garbage are detected, and reading holds one chunk plus one
//!   column of scratch bytes at a time.
//!
//! On top sit [`StreamStats`] (the one-pass bounds/moments pre-pass that
//! resolves the kernel bandwidth without materializing anything) and
//! [`TrackingSource`] (a transparent wrapper recording peak chunk size and
//! streamed-point counts, used by the `geolife_scale` harness to *prove* the
//! resident-memory bound rather than assert it).
//!
//! ## Failure model
//!
//! This crate is also where the workspace's fault tolerance is grounded:
//!
//! * [`VasError`] — the typed, source-chained failure taxonomy every layer
//!   reports through (I/O vs corruption vs truncation vs retry exhaustion),
//!   with a shared transient-vs-fatal classification;
//! * the `.vaschunk` v2 format carries CRC-32 checksums over the header and
//!   every chunk ([`crc32`]), so torn writes and bit rot are detected, with
//!   an opt-in skip-and-report degraded mode ([`CorruptionPolicy`]);
//! * [`RetryingSource`] absorbs transient I/O errors with a bounded,
//!   deterministic retry budget ([`RetryPolicy`]); fatal errors pass through
//!   untouched;
//! * [`FaultInjectorSource`], [`FaultyRead`] and the file-corruption helpers
//!   ([`fault`]) inject *deterministic, seeded* faults so every recovery
//!   claim is proven by the `fault_matrix` harness rather than asserted;
//! * [`write_atomic`] replaces durable files via temp + fsync + rename so a
//!   crash never leaves a torn artifact.
//!
//! `VasSampler::build_from_source` in `vas-core` drives the Interchange loop
//! from any `PointSource` and is pinned bit-identical to `build()` over the
//! equivalent in-memory dataset.
//!
//! ## Data flow
//!
//! ```text
//! generator iterator ─┐
//! CSV file ───────────┼──▶ PointSource ──▶ spill_source ──▶ .vaschunk file
//! in-memory Dataset ──┘         │                                │
//!                               │                          ChunkedReader
//!                               ▼                                ▼
//!                     scan_stats (ε pre-pass) ──▶ VasSampler::build_from_source
//! ```
//!
//! ## Quick start
//!
//! ```
//! use vas_data::GeolifeGenerator;
//! use vas_stream::{spill_source, ChunkedReader, GeolifeSource, PointSource};
//!
//! let dir = std::env::temp_dir().join(format!("vas-stream-doc-{}", std::process::id()));
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join("geolife.vaschunk");
//!
//! // Stream 10K synthetic GPS points straight to disk, 1 chunk resident.
//! let mut source = GeolifeSource::new(GeolifeGenerator::with_size(10_000, 42), 2_048);
//! let summary = spill_source(&mut source, &path).unwrap();
//! assert_eq!(summary.count, 10_000);
//!
//! // Re-read it chunk by chunk.
//! let mut reader = ChunkedReader::open(&path).unwrap();
//! let mut buf = Vec::new();
//! let mut total = 0;
//! while reader.next_chunk(&mut buf).unwrap() > 0 {
//!     total += buf.len();
//! }
//! assert_eq!(total, 10_000);
//! std::fs::remove_dir_all(&dir).ok();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atomic;
pub mod chunked;
pub mod crc32;
pub mod csv;
pub mod error;
pub mod fault;
pub mod generate;
pub mod prefetch;
pub mod retry;
pub mod shard;
pub mod source;
pub mod stats;

pub use atomic::{commit_staged, staging_sibling, write_atomic};
pub use chunked::{
    spill_dataset, spill_source, ChunkedHeader, ChunkedReader, ChunkedSummary, ChunkedWriter,
    CorruptChunkReport, CorruptionPolicy,
};
pub use csv::CsvSource;
pub use error::{io_error_is_transient, VasError};
pub use fault::{
    flip_bit_in_file, truncate_file, FaultInjectorSource, FaultPlan, FaultyRead, ReadFaults,
};
pub use generate::{GaussianMixtureSource, GeolifeSource, SplomSource};
pub use prefetch::{PrefetchSource, DEFAULT_PREFETCH_DEPTH};
pub use retry::{RetryPolicy, RetryingSource};
pub use shard::ShardSource;
pub use source::{DatasetSource, PointSource, TrackingSource, DEFAULT_CHUNK_SIZE};
pub use stats::{scan_stats, StreamStats};
