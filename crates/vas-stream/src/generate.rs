//! Streaming generator sources: the `vas-data` synthetic workloads as
//! [`PointSource`]s that never materialize the dataset.
//!
//! Each source wraps the corresponding generator's point iterator
//! ([`GeolifeGenerator::points`], [`GaussianMixtureGenerator::points`],
//! [`SplomGenerator::points`]) — the same iterators `generate()` collects —
//! so a streamed run with a given seed produces bit-for-bit the points a
//! materialized run would, while holding one chunk. `reset` re-seeds the
//! iterator, making every source rescannable for multi-pass sampling.

use crate::source::PointSource;
use std::io;
use vas_data::{
    DatasetKind, GaussianMixtureGenerator, GaussianMixturePoints, GeolifeGenerator, GeolifePoints,
    Point, SplomGenerator, SplomPoints,
};

macro_rules! fill_chunk {
    ($self:ident, $buf:ident) => {{
        $buf.clear();
        $buf.extend($self.iter.by_ref().take($self.chunk_size));
        Ok($buf.len())
    }};
}

/// Streaming [`PointSource`] over the synthetic Geolife trajectory
/// generator.
#[derive(Debug)]
pub struct GeolifeSource {
    generator: GeolifeGenerator,
    iter: GeolifePoints,
    name: String,
    chunk_size: usize,
}

impl GeolifeSource {
    /// Wraps `generator`, emitting `chunk_size`-point chunks.
    ///
    /// # Panics
    /// Panics if `chunk_size` is zero.
    pub fn new(generator: GeolifeGenerator, chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        Self {
            iter: generator.points(),
            name: format!("geolife-sim-{}", generator.config().n_points),
            chunk_size,
            generator,
        }
    }
}

impl PointSource for GeolifeSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> DatasetKind {
        DatasetKind::GeolifeSim
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.generator.config().n_points as u64)
    }

    fn chunk_capacity(&self) -> usize {
        self.chunk_size
    }

    fn next_chunk(&mut self, buf: &mut Vec<Point>) -> io::Result<usize> {
        fill_chunk!(self, buf)
    }

    fn reset(&mut self) -> io::Result<()> {
        self.iter = self.generator.points();
        Ok(())
    }
}

/// Streaming [`PointSource`] over a Gaussian-mixture generator.
#[derive(Debug)]
pub struct GaussianMixtureSource {
    generator: GaussianMixtureGenerator,
    iter: GaussianMixturePoints,
    name: String,
    chunk_size: usize,
    n_points: usize,
}

impl GaussianMixtureSource {
    /// Wraps `generator`, emitting `chunk_size`-point chunks.
    ///
    /// # Panics
    /// Panics if `chunk_size` is zero.
    pub fn new(generator: GaussianMixtureGenerator, chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        let iter = generator.points();
        let n_points = iter.len();
        Self {
            name: format!("gaussian-mixture-{}c-{}", generator.n_clusters(), n_points),
            iter,
            chunk_size,
            n_points,
            generator,
        }
    }
}

impl PointSource for GaussianMixtureSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> DatasetKind {
        DatasetKind::GaussianMixture
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.n_points as u64)
    }

    fn chunk_capacity(&self) -> usize {
        self.chunk_size
    }

    fn next_chunk(&mut self, buf: &mut Vec<Point>) -> io::Result<usize> {
        fill_chunk!(self, buf)
    }

    fn reset(&mut self) -> io::Result<()> {
        self.iter = self.generator.points();
        Ok(())
    }
}

/// Streaming [`PointSource`] over one column-pair projection of the SPLOM
/// table.
#[derive(Debug)]
pub struct SplomSource {
    generator: SplomGenerator,
    iter: SplomPoints,
    name: String,
    chunk_size: usize,
    cx: usize,
    cy: usize,
}

impl SplomSource {
    /// Wraps `generator` projected onto columns `(cx, cy)`, emitting
    /// `chunk_size`-point chunks.
    ///
    /// # Panics
    /// Panics if `chunk_size` is zero, a column is out of range, or
    /// `cx == cy`.
    pub fn new(generator: SplomGenerator, cx: usize, cy: usize, chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        Self {
            iter: generator.points(cx, cy),
            name: format!("splom-{cx}x{cy}"),
            chunk_size,
            cx,
            cy,
            generator,
        }
    }
}

impl PointSource for SplomSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> DatasetKind {
        DatasetKind::Splom
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.generator.config().n_rows as u64)
    }

    fn chunk_capacity(&self) -> usize {
        self.chunk_size
    }

    fn next_chunk(&mut self, buf: &mut Vec<Point>) -> io::Result<usize> {
        fill_chunk!(self, buf)
    }

    fn reset(&mut self) -> io::Result<()> {
        self.iter = self.generator.points(self.cx, self.cy);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_bitwise_equal(a: &[Point], b: &[Point], what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: lengths differ");
        for (i, (p, q)) in a.iter().zip(b).enumerate() {
            assert!(
                p.x.to_bits() == q.x.to_bits()
                    && p.y.to_bits() == q.y.to_bits()
                    && p.value.to_bits() == q.value.to_bits(),
                "{what}: point {i} diverged: {p:?} vs {q:?}"
            );
        }
    }

    #[test]
    fn geolife_source_matches_generate_and_rescans() {
        let gen = GeolifeGenerator::with_size(3_000, 41);
        let materialized = gen.generate();
        let mut source = GeolifeSource::new(gen, 251);
        assert_eq!(source.len_hint(), Some(3_000));
        assert_eq!(source.kind(), DatasetKind::GeolifeSim);
        assert_eq!(source.name(), materialized.name);
        let streamed = source.read_all().unwrap();
        assert_bitwise_equal(&streamed, &materialized.points, "geolife stream");
        source.reset().unwrap();
        let again = source.read_all().unwrap();
        assert_bitwise_equal(&again, &materialized.points, "geolife rescan");
    }

    #[test]
    fn gaussian_source_matches_generate() {
        let gen = GaussianMixtureGenerator::paper_clustering_dataset(2, 2_500, 5);
        let materialized = gen.generate();
        let mut source = GaussianMixtureSource::new(gen, 333);
        assert_eq!(source.name(), materialized.name);
        let streamed = source.read_all().unwrap();
        assert_bitwise_equal(&streamed, &materialized.points, "gaussian stream");
    }

    #[test]
    fn splom_source_matches_projection() {
        let gen = SplomGenerator::with_size(1_800, 9);
        let materialized = gen.generate_table().project(2, 4);
        let mut source = SplomSource::new(gen, 2, 4, 97);
        assert_eq!(source.name(), materialized.name);
        assert_eq!(source.len_hint(), Some(1_800));
        let streamed = source.read_all().unwrap();
        assert_bitwise_equal(&streamed, &materialized.points, "splom stream");
        source.reset().unwrap();
        let again = source.read_all().unwrap();
        assert_bitwise_equal(&again, &materialized.points, "splom rescan");
    }

    #[test]
    fn chunks_respect_capacity() {
        let mut source = GeolifeSource::new(GeolifeGenerator::with_size(1_000, 1), 64);
        let mut buf = Vec::new();
        let mut total = 0;
        while source.next_chunk(&mut buf).unwrap() > 0 {
            assert!(buf.len() <= 64);
            total += buf.len();
        }
        assert_eq!(total, 1_000);
    }
}
