//! CRC-32 (IEEE 802.3) checksums for on-disk integrity checks.
//!
//! The `.vaschunk` v2 format and the `.vascheckpt` checkpoint format both
//! guard their payloads with this checksum so that torn writes, truncation
//! and bit rot are *detected* rather than silently decoded into garbage
//! points. The polynomial is the ubiquitous reflected `0xEDB88320` (zlib,
//! PNG, ethernet), computed byte-at-a-time over a 256-entry table built at
//! first use — no external crate, no `unsafe`, and fast enough that the
//! checksum is noise next to the `f64` decode it protects.

use std::sync::OnceLock;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        t
    })
}

/// Incremental CRC-32 hasher.
///
/// ```
/// use vas_stream::crc32::Crc32;
/// let mut h = Crc32::new();
/// h.update(b"123456789");
/// assert_eq!(h.finish(), 0xCBF4_3926); // the standard check value
/// ```
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Feeds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let t = table();
        let mut c = self.state;
        for &b in bytes {
            c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    /// Returns the finished checksum (the hasher may keep being updated;
    /// `finish` is a pure read).
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot convenience: CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Check values from the CRC catalogue (CRC-32/ISO-HDLC).
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
        assert_eq!(crc32(&[0u8; 32]), 0x190A_55AD);
        assert_eq!(crc32(&[0xFFu8; 32]), 0xFF6C_AB0B);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let whole = crc32(&data);
        let mut h = Crc32::new();
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finish(), whole);
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let data: Vec<u8> = (0..64u8).collect();
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at byte {byte} bit {bit}");
            }
        }
    }
}
