//! Streaming CSV ingestion: [`CsvSource`] reads `x,y[,value]` rows chunk by
//! chunk, holding one line and one chunk in memory.
//!
//! This is the streaming counterpart of [`vas_data::io::read_csv`], built on
//! the same shared line parser and header rule
//! ([`vas_data::io::parse_point_line`] / [`vas_data::io::is_header_line`]),
//! so the two can never disagree about what a row means: the first non-blank
//! line is skipped as a header iff its first field is non-numeric, and every
//! other malformed line is an error naming the line number.

use crate::source::{PointSource, DEFAULT_CHUNK_SIZE};
use std::fs::File;
use std::io::{self, BufRead, BufReader, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use vas_data::io::{is_header_line, parse_point_line};
use vas_data::Point;

/// Streaming [`PointSource`] over an `x,y[,value]` CSV file.
#[derive(Debug)]
pub struct CsvSource {
    path: PathBuf,
    name: String,
    reader: BufReader<File>,
    chunk_size: usize,
    /// Zero-based index of the next line to read (for error messages).
    next_line: u64,
    /// Whether a non-blank line has been read yet (header detection applies
    /// only to the first one).
    seen_content: bool,
    line_buf: String,
}

impl CsvSource {
    /// Opens `path` with the [`DEFAULT_CHUNK_SIZE`].
    pub fn open(path: impl AsRef<Path>, name: impl Into<String>) -> io::Result<Self> {
        Self::open_with_chunk_size(path, name, DEFAULT_CHUNK_SIZE)
    }

    /// Opens `path` with an explicit chunk size.
    ///
    /// # Panics
    /// Panics if `chunk_size` is zero.
    pub fn open_with_chunk_size(
        path: impl AsRef<Path>,
        name: impl Into<String>,
        chunk_size: usize,
    ) -> io::Result<Self> {
        assert!(chunk_size > 0, "chunk size must be positive");
        let path = path.as_ref().to_path_buf();
        let reader = BufReader::new(File::open(&path)?);
        Ok(Self {
            path,
            name: name.into(),
            reader,
            chunk_size,
            next_line: 0,
            seen_content: false,
            line_buf: String::new(),
        })
    }
}

impl PointSource for CsvSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn len_hint(&self) -> Option<u64> {
        None // counting rows would cost the very scan we are trying to avoid
    }

    fn chunk_capacity(&self) -> usize {
        self.chunk_size
    }

    fn next_chunk(&mut self, buf: &mut Vec<Point>) -> io::Result<usize> {
        buf.clear();
        while buf.len() < self.chunk_size {
            self.line_buf.clear();
            if self.reader.read_line(&mut self.line_buf)? == 0 {
                break;
            }
            let lineno = self.next_line;
            self.next_line += 1;
            let trimmed = self.line_buf.trim();
            if trimmed.is_empty() {
                continue;
            }
            let first_content = !self.seen_content;
            self.seen_content = true;
            if first_content && is_header_line(trimmed) {
                continue;
            }
            match parse_point_line(trimmed) {
                Some(p) => buf.push(p),
                None => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "{}: malformed CSV row at line {}: {trimmed:?}",
                            self.path.display(),
                            lineno + 1
                        ),
                    ))
                }
            }
        }
        Ok(buf.len())
    }

    fn reset(&mut self) -> io::Result<()> {
        self.reader.seek(SeekFrom::Start(0))?;
        self.next_line = 0;
        self.seen_content = false;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::path::PathBuf;
    use vas_data::io::{read_csv, write_csv};
    use vas_data::GeolifeGenerator;

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("vas-stream-csv-{}-{name}", std::process::id()))
    }

    #[test]
    fn streaming_read_matches_materializing_read_csv() {
        let d = GeolifeGenerator::with_size(2_000, 31).generate();
        let path = temp_path("match.csv");
        write_csv(&d, &path).unwrap();
        let materialized = read_csv(&path, "m").unwrap();
        let mut source = CsvSource::open_with_chunk_size(&path, "s", 113).unwrap();
        let streamed = source.read_all().unwrap();
        assert_eq!(streamed, materialized.points);
        // And a reset rescans identically.
        source.reset().unwrap();
        assert_eq!(source.read_all().unwrap(), materialized.points);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn header_is_skipped_and_errors_name_the_line() {
        let path = temp_path("header.csv");
        {
            let mut f = File::create(&path).unwrap();
            writeln!(f, "x,y,value").unwrap();
            writeln!(f, "1.0,2.0,3.0").unwrap();
            writeln!(f, "oops,not,numbers").unwrap();
        }
        let mut source = CsvSource::open(&path, "h").unwrap();
        let err = source.read_all().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("line 3"), "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn header_after_leading_blank_lines_is_still_skipped() {
        let path = temp_path("blank-header.csv");
        {
            let mut f = File::create(&path).unwrap();
            writeln!(f).unwrap();
            writeln!(f, "x,y,value").unwrap();
            writeln!(f, "1.0,2.0,3.0").unwrap();
        }
        let mut source = CsvSource::open(&path, "blank").unwrap();
        let points = source.read_all().unwrap();
        assert_eq!(points, vec![vas_data::Point::with_value(1.0, 2.0, 3.0)]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn malformed_first_data_row_is_not_a_header() {
        let path = temp_path("badfirst.csv");
        {
            let mut f = File::create(&path).unwrap();
            writeln!(f, "1.0,oops").unwrap();
        }
        let mut source = CsvSource::open(&path, "b").unwrap();
        let err = source.read_all().unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn no_len_hint_and_bounded_chunks() {
        let d = GeolifeGenerator::with_size(300, 2).generate();
        let path = temp_path("chunks.csv");
        write_csv(&d, &path).unwrap();
        let mut source = CsvSource::open_with_chunk_size(&path, "c", 64).unwrap();
        assert_eq!(source.len_hint(), None);
        let mut buf = Vec::new();
        let mut total = 0;
        while source.next_chunk(&mut buf).unwrap() > 0 {
            assert!(buf.len() <= 64);
            total += buf.len();
        }
        assert_eq!(total, 300);
        std::fs::remove_file(path).ok();
    }
}
