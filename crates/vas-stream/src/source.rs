//! The [`PointSource`] trait — bounded-memory streaming access to a point
//! stream — plus the in-memory adapter and the instrumentation wrapper.
//!
//! A `PointSource` is to an out-of-core dataset what
//! [`Dataset::iter`](vas_data::Dataset::iter) is to a materialized one: a way
//! to hand every point to a single-pass consumer, in a stable order, as many
//! times as needed (`reset` rewinds to the first point). Points move in
//! *chunks* — the caller supplies a reusable buffer, the source refills it —
//! so the resident footprint of a scan is one chunk regardless of how many
//! points the stream holds.

use std::io;
use vas_data::{Dataset, DatasetKind, Point};

/// Default chunk size (points per [`PointSource::next_chunk`] refill) used by
/// the adapters when the caller does not specify one. 8K points ≈ 192 KiB of
/// `Point`s: big enough to amortize per-chunk costs, small enough that a
/// handful of resident chunks never matters.
pub const DEFAULT_CHUNK_SIZE: usize = 8_192;

/// A resettable, bounded-memory stream of [`Point`]s.
///
/// ## Contract
///
/// * [`next_chunk`](Self::next_chunk) clears `buf`, appends at most
///   [`chunk_capacity`](Self::chunk_capacity) points, and returns how many it
///   appended; `Ok(0)` means the stream is exhausted.
/// * The point order is **stable**: two full scans separated by a
///   [`reset`](Self::reset) yield bit-identical streams. The Interchange
///   hill-climb is order-sensitive, so this is what makes streaming runs
///   reproducible and lets the determinism suite pin them against in-memory
///   runs.
/// * [`len_hint`](Self::len_hint) is the total number of points one full
///   scan yields (from reset), when the source knows it cheaply. `None` for
///   sources that would have to scan to count (e.g. CSV).
pub trait PointSource {
    /// Short name of the underlying dataset (used in logs and provenance
    /// headers).
    fn name(&self) -> &str;

    /// Provenance of the stream, recorded in spill-file headers. Defaults to
    /// [`DatasetKind::External`]; adapters that know better override it.
    fn kind(&self) -> DatasetKind {
        DatasetKind::External
    }

    /// Total points per full scan, if cheaply known.
    fn len_hint(&self) -> Option<u64>;

    /// Maximum number of points one [`next_chunk`](Self::next_chunk) call
    /// appends — the caller's worst-case resident footprint per buffer.
    fn chunk_capacity(&self) -> usize;

    /// Clears `buf` and refills it with the next chunk. Returns the number
    /// of points appended; `Ok(0)` signals end-of-stream.
    fn next_chunk(&mut self, buf: &mut Vec<Point>) -> io::Result<usize>;

    /// Rewinds the source to the first point.
    fn reset(&mut self) -> io::Result<()>;

    /// Streams every remaining point into `f`, returning how many were
    /// visited. Resident memory: one chunk.
    fn for_each_point<F: FnMut(Point)>(&mut self, mut f: F) -> io::Result<u64>
    where
        Self: Sized,
    {
        let mut buf = Vec::with_capacity(self.chunk_capacity().min(DEFAULT_CHUNK_SIZE));
        let mut seen = 0u64;
        while self.next_chunk(&mut buf)? > 0 {
            seen += buf.len() as u64;
            for p in &buf {
                f(*p);
            }
        }
        Ok(seen)
    }

    /// Materializes every remaining point. Only for tests and small sources —
    /// this is exactly the allocation the streaming pipeline exists to avoid.
    fn read_all(&mut self) -> io::Result<Vec<Point>>
    where
        Self: Sized,
    {
        let mut out = Vec::new();
        self.for_each_point(|p| out.push(p))?;
        Ok(out)
    }
}

/// Mutable references stream the referent: lets a caller hand a source to a
/// consumer (e.g. `VasSampler::build_from_source`) without giving it up.
impl<S: PointSource + ?Sized> PointSource for &mut S {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn kind(&self) -> DatasetKind {
        (**self).kind()
    }

    fn len_hint(&self) -> Option<u64> {
        (**self).len_hint()
    }

    fn chunk_capacity(&self) -> usize {
        (**self).chunk_capacity()
    }

    fn next_chunk(&mut self, buf: &mut Vec<Point>) -> io::Result<usize> {
        (**self).next_chunk(buf)
    }

    fn reset(&mut self) -> io::Result<()> {
        (**self).reset()
    }
}

/// Boxed sources stream the boxed value: together with the `?Sized` bound
/// this makes `Box<dyn PointSource + Send>` a first-class source, which is
/// what lets heterogeneous sources cross thread boundaries (the prefetch
/// worker owns one).
impl<S: PointSource + ?Sized> PointSource for Box<S> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn kind(&self) -> DatasetKind {
        (**self).kind()
    }

    fn len_hint(&self) -> Option<u64> {
        (**self).len_hint()
    }

    fn chunk_capacity(&self) -> usize {
        (**self).chunk_capacity()
    }

    fn next_chunk(&mut self, buf: &mut Vec<Point>) -> io::Result<usize> {
        (**self).next_chunk(buf)
    }

    fn reset(&mut self) -> io::Result<()> {
        (**self).reset()
    }
}

/// [`PointSource`] over an in-memory [`Dataset`]: chunked views into the
/// backing `Vec<Point>`.
///
/// The adapter that lets every consumer be written once against
/// `PointSource` and still accept materialized data; it is also what the
/// determinism suite streams when pinning `build_from_source` against
/// `build` on the same dataset.
#[derive(Debug)]
pub struct DatasetSource<'a> {
    dataset: &'a Dataset,
    pos: usize,
    chunk_size: usize,
}

impl<'a> DatasetSource<'a> {
    /// Wraps `dataset` with the [`DEFAULT_CHUNK_SIZE`].
    pub fn new(dataset: &'a Dataset) -> Self {
        Self::with_chunk_size(dataset, DEFAULT_CHUNK_SIZE)
    }

    /// Wraps `dataset` with an explicit chunk size.
    ///
    /// # Panics
    /// Panics if `chunk_size` is zero.
    pub fn with_chunk_size(dataset: &'a Dataset, chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        Self {
            dataset,
            pos: 0,
            chunk_size,
        }
    }
}

impl PointSource for DatasetSource<'_> {
    fn name(&self) -> &str {
        &self.dataset.name
    }

    fn kind(&self) -> DatasetKind {
        self.dataset.kind
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.dataset.len() as u64)
    }

    fn chunk_capacity(&self) -> usize {
        self.chunk_size
    }

    fn next_chunk(&mut self, buf: &mut Vec<Point>) -> io::Result<usize> {
        buf.clear();
        let end = (self.pos + self.chunk_size).min(self.dataset.len());
        buf.extend_from_slice(&self.dataset.points[self.pos..end]);
        let n = end - self.pos;
        self.pos = end;
        Ok(n)
    }

    fn reset(&mut self) -> io::Result<()> {
        self.pos = 0;
        Ok(())
    }
}

/// Transparent [`PointSource`] wrapper that records what actually flowed
/// through: chunk count, point count and the largest chunk ever buffered.
///
/// The `geolife_scale` harness wraps its sources in this to *measure* the
/// peak resident point count instead of trusting the configured chunk size;
/// the counters are cumulative across `reset`s (multi-pass runs keep
/// accumulating).
#[derive(Debug)]
pub struct TrackingSource<S> {
    inner: S,
    chunks: u64,
    points: u64,
    max_chunk_len: usize,
}

impl<S: PointSource> TrackingSource<S> {
    /// Wraps `inner` with zeroed counters.
    pub fn new(inner: S) -> Self {
        Self {
            inner,
            chunks: 0,
            points: 0,
            max_chunk_len: 0,
        }
    }

    /// Number of non-empty chunks streamed so far.
    pub fn chunks(&self) -> u64 {
        self.chunks
    }

    /// Number of points streamed so far (across resets).
    pub fn points_streamed(&self) -> u64 {
        self.points
    }

    /// Largest chunk (in points) ever handed to a caller — the measured
    /// per-buffer resident footprint.
    pub fn max_chunk_len(&self) -> usize {
        self.max_chunk_len
    }

    /// Consumes the wrapper, returning the inner source.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: PointSource> PointSource for TrackingSource<S> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn kind(&self) -> DatasetKind {
        self.inner.kind()
    }

    fn len_hint(&self) -> Option<u64> {
        self.inner.len_hint()
    }

    fn chunk_capacity(&self) -> usize {
        self.inner.chunk_capacity()
    }

    fn next_chunk(&mut self, buf: &mut Vec<Point>) -> io::Result<usize> {
        let n = self.inner.next_chunk(buf)?;
        if n > 0 {
            self.chunks += 1;
            self.points += n as u64;
            self.max_chunk_len = self.max_chunk_len.max(n);
        }
        Ok(n)
    }

    fn reset(&mut self) -> io::Result<()> {
        self.inner.reset()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vas_data::GeolifeGenerator;

    #[test]
    fn dataset_source_streams_every_point_in_order() {
        let d = GeolifeGenerator::with_size(1_000, 3).generate();
        let mut source = DatasetSource::with_chunk_size(&d, 64);
        assert_eq!(source.len_hint(), Some(1_000));
        assert_eq!(source.chunk_capacity(), 64);
        let streamed = source.read_all().unwrap();
        assert_eq!(streamed, d.points);
        // Exhausted now; reset rewinds.
        assert!(source.read_all().unwrap().is_empty());
        source.reset().unwrap();
        assert_eq!(source.read_all().unwrap(), d.points);
    }

    #[test]
    fn dataset_source_chunk_sizes_cover_boundaries() {
        let d = GeolifeGenerator::with_size(100, 5).generate();
        for chunk in [1usize, 7, 99, 100, 101, 1000] {
            let mut source = DatasetSource::with_chunk_size(&d, chunk);
            let mut buf = Vec::new();
            let mut total = 0usize;
            while source.next_chunk(&mut buf).unwrap() > 0 {
                assert!(buf.len() <= chunk);
                total += buf.len();
            }
            assert_eq!(total, 100, "chunk size {chunk}");
        }
    }

    #[test]
    fn empty_dataset_streams_nothing() {
        let d = Dataset::from_points("empty", vec![]);
        let mut source = DatasetSource::new(&d);
        let mut buf = vec![Point::new(1.0, 1.0)];
        assert_eq!(source.next_chunk(&mut buf).unwrap(), 0);
        assert!(buf.is_empty(), "next_chunk must clear the buffer");
    }

    #[test]
    fn tracking_source_records_flow() {
        let d = GeolifeGenerator::with_size(250, 9).generate();
        let mut tracked = TrackingSource::new(DatasetSource::with_chunk_size(&d, 100));
        let mut count = 0u64;
        let seen = tracked.for_each_point(|_| count += 1).unwrap();
        assert_eq!(seen, 250);
        assert_eq!(count, 250);
        assert_eq!(tracked.points_streamed(), 250);
        assert_eq!(tracked.chunks(), 3); // 100 + 100 + 50
        assert_eq!(tracked.max_chunk_len(), 100);
        // Counters accumulate across resets.
        tracked.reset().unwrap();
        tracked.for_each_point(|_| {}).unwrap();
        assert_eq!(tracked.points_streamed(), 500);
        assert_eq!(tracked.name(), d.name);
        assert_eq!(tracked.len_hint(), Some(250));
    }

    #[test]
    fn trait_object_and_reference_sources_stream_identically() {
        let d = GeolifeGenerator::with_size(300, 7).generate();
        let reference = DatasetSource::with_chunk_size(&d, 50).read_all().unwrap();

        let mut boxed: Box<dyn PointSource + Send + '_> =
            Box::new(DatasetSource::with_chunk_size(&d, 50));
        assert_eq!(boxed.name(), d.name);
        assert_eq!(boxed.kind(), d.kind);
        assert_eq!(boxed.len_hint(), Some(300));
        assert_eq!(boxed.chunk_capacity(), 50);
        assert_eq!(boxed.read_all().unwrap(), reference);
        boxed.reset().unwrap();
        assert_eq!(boxed.read_all().unwrap(), reference);

        // Exercise the `&mut S` impl through a generic consumer taking the
        // source by value.
        fn drain<S: PointSource>(mut s: S) -> (Option<u64>, Vec<Point>) {
            (s.len_hint(), s.read_all().unwrap())
        }
        let mut inner = DatasetSource::with_chunk_size(&d, 50);
        let (hint, streamed) = drain(&mut inner);
        assert_eq!(hint, Some(300));
        assert_eq!(streamed, reference);
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_size_is_rejected() {
        let d = Dataset::from_points("d", vec![]);
        let _ = DatasetSource::with_chunk_size(&d, 0);
    }
}
