//! The typed failure taxonomy of the VAS stack.
//!
//! Everything that can go wrong on the data path — I/O, decode, integrity,
//! resume preconditions, retry exhaustion — is classified into one
//! [`VasError`] variant with enough context (path, chunk index, promised vs
//! found counts) to act on without re-running under a debugger. The design
//! rules:
//!
//! * **Source-chained.** Variants wrapping an underlying [`io::Error`] keep
//!   it reachable through [`std::error::Error::source`], so callers can walk
//!   the chain down to the OS errno.
//! * **Transient vs fatal is a property of the error, not the caller.**
//!   [`VasError::is_transient`] (and [`io_error_is_transient`] for raw
//!   `io::Error`s) encode the one retry policy the whole workspace shares:
//!   `Interrupted` / `WouldBlock` / `TimedOut` are worth retrying, anything
//!   else is not. `RetryingSource` consumes exactly this classification.
//! * **Interoperable with `io::Result`.** The [`PointSource`](crate::PointSource)
//!   trait keeps its `io::Result` surface (every adapter and wrapper stays
//!   source-compatible); a `VasError` crossing that boundary is wrapped via
//!   `From<VasError> for io::Error` with the typed value preserved as the
//!   boxed source, so downstream code can downcast it back out
//!   ([`VasError::from_io_chain`]).

use std::error::Error;
use std::fmt;
use std::io;

/// Typed failure cases across the stream/core/storage stack.
#[derive(Debug)]
pub enum VasError {
    /// An underlying I/O operation failed; `context` says which one.
    Io {
        /// What the stack was doing when the I/O failed.
        context: String,
        /// The failing OS-level error.
        source: io::Error,
    },
    /// A file's bytes do not decode as the format they claim to be.
    Corrupt {
        /// File (or stream) the corruption was found in.
        path: String,
        /// What exactly failed to decode.
        detail: String,
    },
    /// A format version this build does not read.
    UnsupportedVersion {
        /// File with the unsupported version.
        path: String,
        /// Version found in the header.
        found: u32,
        /// Versions this build accepts.
        supported: &'static [u32],
    },
    /// A checksum over on-disk bytes disagreed with the stored value.
    ChecksumMismatch {
        /// File the mismatch was found in.
        path: String,
        /// What the checksum covered (e.g. `"chunk 12"`, `"header"`).
        region: String,
        /// Checksum recorded in the file.
        stored: u32,
        /// Checksum computed over the bytes actually read.
        computed: u32,
    },
    /// A stream ended with fewer points than its header promised.
    Truncated {
        /// File (or stream) that came up short.
        path: String,
        /// Points the header promised.
        promised: u64,
        /// Points actually decoded.
        found: u64,
    },
    /// A resume/restore precondition did not hold (wrong source, wrong
    /// configuration, wrong chunk size).
    Mismatch {
        /// What the checkpoint or caller expected.
        expected: String,
        /// What was actually found.
        found: String,
    },
    /// A transient error kept failing past the retry budget.
    RetriesExhausted {
        /// What was being retried.
        context: String,
        /// Attempts made (initial try included).
        attempts: u32,
        /// The last transient error observed.
        source: io::Error,
    },
    /// Checkpoint encode/decode failed for a non-I/O reason.
    Checkpoint {
        /// What went wrong.
        detail: String,
    },
}

impl fmt::Display for VasError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VasError::Io { context, source } => write!(f, "{context}: {source}"),
            VasError::Corrupt { path, detail } => write!(f, "{path}: corrupt data: {detail}"),
            VasError::UnsupportedVersion {
                path,
                found,
                supported,
            } => write!(
                f,
                "{path}: unsupported format version {found} (this build reads {supported:?})"
            ),
            VasError::ChecksumMismatch {
                path,
                region,
                stored,
                computed,
            } => write!(
                f,
                "{path}: checksum mismatch over {region}: stored {stored:#010x}, computed {computed:#010x}"
            ),
            VasError::Truncated {
                path,
                promised,
                found,
            } => write!(
                f,
                "{path}: truncated: header promises {promised} points, found {found}"
            ),
            VasError::Mismatch { expected, found } => {
                write!(f, "mismatch: expected {expected}, found {found}")
            }
            VasError::RetriesExhausted {
                context,
                attempts,
                source,
            } => write!(
                f,
                "{context}: still failing after {attempts} attempts: {source}"
            ),
            VasError::Checkpoint { detail } => write!(f, "checkpoint: {detail}"),
        }
    }
}

impl Error for VasError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            VasError::Io { source, .. } | VasError::RetriesExhausted { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl VasError {
    /// Wraps an `io::Error` with a description of the failing operation.
    pub fn io(context: impl Into<String>, source: io::Error) -> Self {
        VasError::Io {
            context: context.into(),
            source,
        }
    }

    /// True when retrying the failed operation may plausibly succeed.
    ///
    /// Only wrapped I/O errors can be transient; every decode/integrity
    /// failure is final (the bytes will not improve on a second read).
    pub fn is_transient(&self) -> bool {
        match self {
            VasError::Io { source, .. } => io_error_is_transient(source),
            _ => false,
        }
    }

    /// The `io::ErrorKind` this error maps to when crossing an `io::Result`
    /// boundary.
    pub fn io_kind(&self) -> io::ErrorKind {
        match self {
            VasError::Io { source, .. } => source.kind(),
            VasError::RetriesExhausted { source, .. } => source.kind(),
            VasError::Truncated { .. } => io::ErrorKind::UnexpectedEof,
            _ => io::ErrorKind::InvalidData,
        }
    }

    /// Recovers a typed `VasError` from an `io::Error` whose custom payload
    /// (or deeper source chain) contains one — the inverse of
    /// `From<VasError> for io::Error`. Note `io::Error`'s own
    /// `Error::source` skips the payload, so the payload is probed directly.
    pub fn from_io_chain(err: &io::Error) -> Option<&VasError> {
        let mut source: Option<&(dyn Error + 'static)> =
            err.get_ref().map(|e| e as &(dyn Error + 'static));
        while let Some(e) = source {
            if let Some(v) = e.downcast_ref::<VasError>() {
                return Some(v);
            }
            source = e.source();
        }
        None
    }
}

impl From<io::Error> for VasError {
    fn from(source: io::Error) -> Self {
        // If the io::Error is just a VasError that crossed an io::Result
        // boundary, unwrap it back to the typed value instead of nesting.
        if err_chain_has_vas(&source) {
            if let Some(inner) = source
                .into_inner()
                .and_then(|b| b.downcast::<VasError>().ok())
            {
                return *inner;
            }
            unreachable!("chain probed before into_inner");
        }
        VasError::io("I/O error", source)
    }
}

fn err_chain_has_vas(err: &io::Error) -> bool {
    // Only a *direct* payload can be recovered by value via `into_inner`.
    err.get_ref()
        .map(|e| e.downcast_ref::<VasError>().is_some())
        .unwrap_or(false)
}

impl From<VasError> for io::Error {
    fn from(err: VasError) -> Self {
        io::Error::new(err.io_kind(), err)
    }
}

/// The shared transient-error classification: `Interrupted`, `WouldBlock`
/// and `TimedOut` are retryable, everything else is fatal.
pub fn io_error_is_transient(err: &io::Error) -> bool {
    matches!(
        err.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_context() {
        let e = VasError::Truncated {
            path: "a.vaschunk".into(),
            promised: 100,
            found: 42,
        };
        let s = e.to_string();
        assert!(
            s.contains("a.vaschunk") && s.contains("100") && s.contains("42"),
            "{s}"
        );

        let e = VasError::ChecksumMismatch {
            path: "b.vaschunk".into(),
            region: "chunk 3".into(),
            stored: 0xDEADBEEF,
            computed: 0x12345678,
        };
        let s = e.to_string();
        assert!(s.contains("chunk 3") && s.contains("0xdeadbeef"), "{s}");
    }

    #[test]
    fn source_chain_reaches_the_io_error() {
        let io = io::Error::new(io::ErrorKind::PermissionDenied, "no");
        let e = VasError::io("writing manifest", io);
        let src = e.source().expect("has a source");
        assert!(src.to_string().contains("no"));
    }

    #[test]
    fn transient_classification() {
        for kind in [
            io::ErrorKind::Interrupted,
            io::ErrorKind::WouldBlock,
            io::ErrorKind::TimedOut,
        ] {
            assert!(VasError::io("x", io::Error::new(kind, "t")).is_transient());
        }
        assert!(!VasError::io("x", io::Error::other("f")).is_transient());
        assert!(!VasError::Corrupt {
            path: "p".into(),
            detail: "d".into()
        }
        .is_transient());
    }

    #[test]
    fn io_round_trip_preserves_the_typed_error() {
        let original = VasError::ChecksumMismatch {
            path: "c.vaschunk".into(),
            region: "chunk 7".into(),
            stored: 1,
            computed: 2,
        };
        let as_io: io::Error = original.into();
        assert_eq!(as_io.kind(), io::ErrorKind::InvalidData);
        // Visible through the chain by reference...
        let seen = VasError::from_io_chain(&as_io).expect("typed error in chain");
        assert!(matches!(seen, VasError::ChecksumMismatch { stored: 1, .. }));
        // ...and recoverable by value through From.
        let back: VasError = as_io.into();
        assert!(matches!(
            back,
            VasError::ChecksumMismatch { computed: 2, .. }
        ));
    }
}
