//! [`PrefetchSource`] — pipelined chunk read-ahead for any [`PointSource`].
//!
//! The streaming sampler alternates between two kinds of work: *producing*
//! the next chunk (decoding a spill column, parsing CSV, running a
//! generator's trig) and *consuming* it (the Interchange replacement tests).
//! Run on one thread they serialize; `PrefetchSource` moves production onto a
//! [`vas_par::ReadAhead`] worker so chunk *n+1* is decoded while the sampler
//! is still draining chunk *n* — the ingest layer's ~3e6 points/s overlap
//! with the sampler's ~2e5 tuples/s instead of adding to them.
//!
//! Determinism is inherited, not re-proven: the wrapper hands the consumer
//! the exact chunks the inner source produces, in the exact order (single
//! producer, FIFO channel), so `tests/determinism.rs` can pin
//! `build_from_source` through a `PrefetchSource` against the sequential
//! path bit-for-bit.
//!
//! The inner source moves to the worker thread, so it must be
//! `Send + 'static` (own its file handle / generator — true for
//! [`ChunkedReader`](crate::ChunkedReader), [`CsvSource`](crate::CsvSource)
//! and the generator sources; the borrowed
//! [`DatasetSource`](crate::DatasetSource) stays on the caller's thread where
//! it belongs, since an in-memory slice has nothing to prefetch).

use crate::source::PointSource;
use std::io;
use std::time::Instant;
use vas_data::{DatasetKind, Point};
use vas_obs::{Phase, Recorder, ValueSeries};
use vas_par::{ReadAhead, Stage, Step};

/// Default read-ahead depth (produced chunks that may wait ahead of the
/// consumer): classic double buffering.
pub const DEFAULT_PREFETCH_DEPTH: usize = 2;

/// A [`PointSource`] wrapper that produces chunks on a background worker —
/// the pipelined read-ahead stage of the parallel execution subsystem.
///
/// The stream it yields is bit-identical to the wrapped source's (same
/// chunks, same order, across `reset`s); construction rewinds the inner
/// source so the pipeline always starts at the first point. Chunk buffers
/// are recycled through the worker, so the steady state allocates nothing.
#[derive(Debug)]
pub struct PrefetchSource {
    ahead: ReadAhead<DynSourceStage>,
    name: String,
    kind: DatasetKind,
    len_hint: Option<u64>,
    chunk_capacity: usize,
    recorder: Recorder,
}

/// The worker-side stage, type-erased so `PrefetchSource` itself needs no
/// type parameter (callers juggle readers, CSV and generator sources behind
/// one wrapper type).
struct DynSourceStage(Box<dyn PointSource + Send>);

impl Stage for DynSourceStage {
    type Item = Vec<Point>;
    type Error = io::Error;

    fn next(&mut self, reuse: Option<Vec<Point>>) -> Step<Vec<Point>, io::Error> {
        let mut buf = reuse.unwrap_or_default();
        match self.0.next_chunk(&mut buf) {
            Ok(0) => Step::Done,
            Ok(_) => Step::Item(buf),
            Err(e) => Step::Fail(e),
        }
    }

    fn rewind(&mut self) -> Result<(), io::Error> {
        self.0.reset()
    }
}

impl PrefetchSource {
    /// Wraps `source` with the [`DEFAULT_PREFETCH_DEPTH`].
    pub fn new<S: PointSource + Send + 'static>(source: S) -> Self {
        Self::with_depth(source, DEFAULT_PREFETCH_DEPTH)
    }

    /// Wraps `source`, allowing up to `depth` decoded chunks to wait ahead
    /// of the consumer.
    ///
    /// # Panics
    /// Panics if `depth` is zero.
    pub fn with_depth<S: PointSource + Send + 'static>(source: S, depth: usize) -> Self {
        let name = source.name().to_string();
        let kind = source.kind();
        let len_hint = source.len_hint();
        let chunk_capacity = source.chunk_capacity();
        let ahead = ReadAhead::spawn(DynSourceStage(Box::new(source)), depth);
        Self {
            ahead,
            name,
            kind,
            len_hint,
            chunk_capacity,
            recorder: Recorder::detached(),
        }
    }

    /// Attaches a shared [`Recorder`]: with timing enabled, each receive
    /// records how long the consumer waited for the worker (`prefetch_wait`)
    /// and samples the read-ahead channel occupancy into the
    /// `read_ahead_occupancy` series.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }
}

impl PointSource for PrefetchSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> DatasetKind {
        self.kind
    }

    fn len_hint(&self) -> Option<u64> {
        self.len_hint
    }

    fn chunk_capacity(&self) -> usize {
        self.chunk_capacity
    }

    fn next_chunk(&mut self, buf: &mut Vec<Point>) -> io::Result<usize> {
        buf.clear();
        self.recorder
            .record_value(ValueSeries::ReadAheadOccupancy, self.ahead.occupancy());
        let started = self.recorder.timing_enabled().then(Instant::now);
        let received = {
            let _span = self.recorder.span("prefetch_wait");
            self.ahead.recv()
        };
        if let Some(t0) = started {
            self.recorder
                .record_phase_ns(Phase::PrefetchWait, t0.elapsed().as_nanos() as u64);
        }
        match received? {
            Some(mut chunk) => {
                // Swap the produced chunk in and hand the consumer's spent
                // buffer back to the worker for reuse.
                std::mem::swap(buf, &mut chunk);
                self.ahead.recycle(chunk);
                Ok(buf.len())
            }
            None => Ok(0),
        }
    }

    fn reset(&mut self) -> io::Result<()> {
        self.ahead.reset();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunked::{spill_dataset, ChunkedReader};
    use crate::generate::GeolifeSource;
    use vas_data::GeolifeGenerator;

    fn bitwise_eq(a: &[Point], b: &[Point]) -> bool {
        a.len() == b.len()
            && a.iter().zip(b).all(|(p, q)| {
                p.x.to_bits() == q.x.to_bits()
                    && p.y.to_bits() == q.y.to_bits()
                    && p.value.to_bits() == q.value.to_bits()
            })
    }

    #[test]
    fn prefetched_generator_stream_is_bit_identical() {
        let generator = GeolifeGenerator::with_size(5_000, 11);
        let reference = generator.generate();
        let mut prefetched = PrefetchSource::new(GeolifeSource::new(generator, 257));
        assert_eq!(prefetched.name(), reference.name);
        assert_eq!(prefetched.len_hint(), Some(5_000));
        assert_eq!(prefetched.chunk_capacity(), 257);
        let streamed = prefetched.read_all().unwrap();
        assert!(bitwise_eq(&streamed, &reference.points));
        // Exhausted until reset; reset rescans the identical stream.
        assert!(prefetched.read_all().unwrap().is_empty());
        prefetched.reset().unwrap();
        let rescanned = prefetched.read_all().unwrap();
        assert!(bitwise_eq(&rescanned, &reference.points));
    }

    #[test]
    fn prefetched_chunked_reader_matches_direct_reads() {
        let data = GeolifeGenerator::with_size(3_000, 13).generate();
        let path =
            std::env::temp_dir().join(format!("vas-prefetch-test-{}.vaschunk", std::process::id()));
        spill_dataset(&data, &path, 173).unwrap();
        let direct = ChunkedReader::open(&path).unwrap().read_all().unwrap();
        let mut prefetched = PrefetchSource::with_depth(ChunkedReader::open(&path).unwrap(), 3);
        let streamed = prefetched.read_all().unwrap();
        assert!(bitwise_eq(&streamed, &direct));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn chunk_boundaries_are_preserved() {
        // The wrapper must not merge or split chunks: chunk sizes drive the
        // sampler's batching, which the determinism contract covers.
        let generator = GeolifeGenerator::with_size(1_000, 7);
        let mut direct = GeolifeSource::new(generator.clone(), 64);
        let mut prefetched = PrefetchSource::new(GeolifeSource::new(generator, 64));
        let (mut a, mut b) = (Vec::new(), Vec::new());
        loop {
            let n_direct = direct.next_chunk(&mut a).unwrap();
            let n_prefetched = prefetched.next_chunk(&mut b).unwrap();
            assert_eq!(n_direct, n_prefetched);
            assert!(bitwise_eq(&a, &b));
            if n_direct == 0 {
                break;
            }
        }
    }

    #[test]
    fn reset_mid_stream_restarts_cleanly() {
        let generator = GeolifeGenerator::with_size(2_000, 19);
        let reference = generator.generate();
        let mut prefetched = PrefetchSource::new(GeolifeSource::new(generator, 100));
        let mut buf = Vec::new();
        for _ in 0..5 {
            prefetched.next_chunk(&mut buf).unwrap();
        }
        prefetched.reset().unwrap();
        let streamed = prefetched.read_all().unwrap();
        assert!(bitwise_eq(&streamed, &reference.points));
    }

    #[test]
    fn errors_from_the_inner_source_surface() {
        let path =
            std::env::temp_dir().join(format!("vas-prefetch-badcsv-{}.csv", std::process::id()));
        std::fs::write(&path, "1.0,2.0\nnot,a,number\n").unwrap();
        let source = crate::csv::CsvSource::open(&path, "bad").unwrap();
        let mut prefetched = PrefetchSource::new(source);
        let err = prefetched.read_all().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn prefetch_source_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<PrefetchSource>();
    }
}
