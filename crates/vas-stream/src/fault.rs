//! Deterministic fault injection for the crash-safety test matrix.
//!
//! Real fault tolerance claims need injected faults to back them, and the
//! bit-identity contract needs those faults to be *reproducible*: every
//! injector here is driven by a seed and a counter, never by wall-clock or
//! OS entropy, so a failing matrix cell replays exactly.
//!
//! Three layers of injection:
//!
//! * [`FaultInjectorSource`] — wraps any [`PointSource`] and makes
//!   `next_chunk` fail with a **transient** error (`ErrorKind::Interrupted`)
//!   on a seeded pseudo-random schedule, each scheduled failure repeating a
//!   configured number of times before the call succeeds — the workload
//!   `RetryingSource` must absorb. A separate `fatal_after_chunks` knob
//!   injects a **permanent** error to prove fatal errors are *not* retried.
//! * [`FaultyRead`] — wraps any [`io::Read`] and injects interrupts, short
//!   reads, and in-flight bit flips at configured byte offsets, for testing
//!   readers below the `PointSource` level.
//! * [`flip_bit_in_file`] / [`truncate_file`] — on-disk corruption helpers
//!   simulating bit rot and torn writes, the inputs to the CRC-detection
//!   matrix cells.

use crate::source::PointSource;
use std::io::{self, Read};
use std::path::Path;
use vas_data::{DatasetKind, Point};

/// SplitMix64: the workspace's standard small deterministic mixer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Schedule for [`FaultInjectorSource`]: which `next_chunk` calls fail, how
/// hard, and when (if ever) the source dies for good.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seed for the pseudo-random transient schedule.
    pub seed: u64,
    /// Roughly one in `transient_every` chunk reads fails transiently
    /// (`0` disables transient injection).
    pub transient_every: u64,
    /// How many consecutive times each scheduled transient failure repeats
    /// before the read succeeds.
    pub transient_repeats: u32,
    /// After this many successful chunk reads, every further read fails
    /// permanently with [`io::ErrorKind::Other`] (`None` disables).
    pub fatal_after_chunks: Option<u64>,
}

impl FaultPlan {
    /// A plan that injects only transient faults.
    pub fn transient(seed: u64, every: u64, repeats: u32) -> Self {
        Self {
            seed,
            transient_every: every,
            transient_repeats: repeats,
            fatal_after_chunks: None,
        }
    }

    /// A plan that only kills the source after `chunks` successful reads.
    pub fn fatal_after(chunks: u64) -> Self {
        Self {
            seed: 0,
            transient_every: 0,
            transient_repeats: 0,
            fatal_after_chunks: Some(chunks),
        }
    }

    fn transient_failures_at(&self, chunk_index: u64) -> u32 {
        if self.transient_every == 0 {
            return 0;
        }
        if splitmix64(self.seed ^ chunk_index.wrapping_mul(0xA24B_AED4_963E_E407))
            .is_multiple_of(self.transient_every)
        {
            self.transient_repeats
        } else {
            0
        }
    }
}

/// A [`PointSource`] wrapper that injects deterministic transient and fatal
/// errors into `next_chunk` according to a [`FaultPlan`].
///
/// The schedule is keyed on the *logical chunk index within the current
/// scan* (reset by [`PointSource::reset`]), so every scan of the stream
/// fails at the same places — reproducible run to run and pass to pass.
#[derive(Debug)]
pub struct FaultInjectorSource<S> {
    inner: S,
    plan: FaultPlan,
    chunk_index: u64,
    attempts_at_index: u32,
    transient_injected: u64,
    fatal_injected: u64,
}

impl<S: PointSource> FaultInjectorSource<S> {
    /// Wraps `inner` with the fault schedule `plan`.
    pub fn new(inner: S, plan: FaultPlan) -> Self {
        Self {
            inner,
            plan,
            chunk_index: 0,
            attempts_at_index: 0,
            transient_injected: 0,
            fatal_injected: 0,
        }
    }

    /// Transient errors injected so far.
    pub fn transient_injected(&self) -> u64 {
        self.transient_injected
    }

    /// Fatal errors injected so far.
    pub fn fatal_injected(&self) -> u64 {
        self.fatal_injected
    }

    /// Unwraps the inner source.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: PointSource> PointSource for FaultInjectorSource<S> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn kind(&self) -> DatasetKind {
        self.inner.kind()
    }

    fn len_hint(&self) -> Option<u64> {
        self.inner.len_hint()
    }

    fn chunk_capacity(&self) -> usize {
        self.inner.chunk_capacity()
    }

    fn next_chunk(&mut self, buf: &mut Vec<Point>) -> io::Result<usize> {
        if let Some(limit) = self.plan.fatal_after_chunks {
            if self.chunk_index >= limit {
                self.fatal_injected += 1;
                return Err(io::Error::other(format!(
                    "injected fatal fault after {limit} chunks"
                )));
            }
        }
        let planned = self.plan.transient_failures_at(self.chunk_index);
        if self.attempts_at_index < planned {
            self.attempts_at_index += 1;
            self.transient_injected += 1;
            return Err(io::Error::new(
                io::ErrorKind::Interrupted,
                format!("injected transient fault at chunk {}", self.chunk_index),
            ));
        }
        let n = self.inner.next_chunk(buf)?;
        self.chunk_index += 1;
        self.attempts_at_index = 0;
        Ok(n)
    }

    fn reset(&mut self) -> io::Result<()> {
        self.inner.reset()?;
        self.chunk_index = 0;
        self.attempts_at_index = 0;
        Ok(())
    }
}

/// Where and how a [`FaultyRead`] misbehaves.
#[derive(Debug, Clone, Default)]
pub struct ReadFaults {
    /// Byte offsets at which one `ErrorKind::Interrupted` is injected (each
    /// fires once, when the read position first reaches it).
    pub interrupt_at: Vec<u64>,
    /// Cap on bytes returned per `read` call (`0` = uncapped), simulating
    /// short reads.
    pub max_read: usize,
    /// `(byte_offset, xor_mask)` pairs: as the stream passes each offset,
    /// the byte is XORed with the mask — in-flight bit corruption.
    pub flip: Vec<(u64, u8)>,
}

/// An [`io::Read`] wrapper injecting interrupts, short reads and bit flips
/// at configured byte offsets.
#[derive(Debug)]
pub struct FaultyRead<R> {
    inner: R,
    faults: ReadFaults,
    pos: u64,
    fired: Vec<bool>,
}

impl<R: Read> FaultyRead<R> {
    /// Wraps `inner` with the given fault configuration.
    pub fn new(inner: R, faults: ReadFaults) -> Self {
        let fired = vec![false; faults.interrupt_at.len()];
        Self {
            inner,
            faults,
            pos: 0,
            fired,
        }
    }

    /// Bytes consumed from the inner reader so far.
    pub fn position(&self) -> u64 {
        self.pos
    }
}

impl<R: Read> Read for FaultyRead<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        for (i, &off) in self.faults.interrupt_at.iter().enumerate() {
            if !self.fired[i] && self.pos >= off {
                self.fired[i] = true;
                return Err(io::Error::new(
                    io::ErrorKind::Interrupted,
                    format!("injected interrupt at byte {off}"),
                ));
            }
        }
        let cap = if self.faults.max_read > 0 {
            buf.len().min(self.faults.max_read)
        } else {
            buf.len()
        };
        let n = self.inner.read(&mut buf[..cap])?;
        for &(off, mask) in &self.faults.flip {
            if off >= self.pos && off < self.pos + n as u64 {
                buf[(off - self.pos) as usize] ^= mask;
            }
        }
        self.pos += n as u64;
        Ok(n)
    }
}

/// Flips one bit of the file at `path` (bit `bit_offset` counted from the
/// start of the file, LSB-first within each byte). Simulates bit rot for the
/// CRC-detection matrix.
pub fn flip_bit_in_file(path: impl AsRef<Path>, bit_offset: u64) -> io::Result<()> {
    let path = path.as_ref();
    let mut bytes = std::fs::read(path)?;
    let byte = (bit_offset / 8) as usize;
    if byte >= bytes.len() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "bit offset {bit_offset} is past the end of {} ({} bytes)",
                path.display(),
                bytes.len()
            ),
        ));
    }
    bytes[byte] ^= 1 << (bit_offset % 8);
    std::fs::write(path, bytes)
}

/// Truncates the file at `path` to `keep` bytes, simulating a torn write.
pub fn truncate_file(path: impl AsRef<Path>, keep: u64) -> io::Result<()> {
    let f = std::fs::OpenOptions::new().write(true).open(path)?;
    f.set_len(keep)?;
    f.sync_all()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::DatasetSource;
    use vas_data::Dataset;

    fn dataset(n: usize) -> Dataset {
        vas_data::GeolifeGenerator::with_size(n, 9).generate()
    }

    #[test]
    fn transient_schedule_is_deterministic_and_recoverable() {
        let d = dataset(2_000);
        let plan = FaultPlan::transient(42, 2, 2);
        let mut src = FaultInjectorSource::new(DatasetSource::with_chunk_size(&d, 128), plan);
        let mut buf = Vec::new();
        let mut points = Vec::new();
        let mut failures = 0u64;
        loop {
            match PointSource::next_chunk(&mut src, &mut buf) {
                Ok(0) => break,
                Ok(_) => points.extend_from_slice(&buf),
                Err(e) => {
                    assert_eq!(e.kind(), io::ErrorKind::Interrupted);
                    failures += 1;
                }
            }
        }
        assert_eq!(points.len(), 2_000, "retried stream must be complete");
        assert!(failures > 0, "plan should have injected something");
        assert_eq!(failures, src.transient_injected());

        // Same plan, fresh wrapper: identical failure count.
        let mut src2 = FaultInjectorSource::new(
            DatasetSource::with_chunk_size(&d, 128),
            FaultPlan::transient(42, 2, 2),
        );
        let mut failures2 = 0u64;
        loop {
            match PointSource::next_chunk(&mut src2, &mut buf) {
                Ok(0) => break,
                Ok(_) => {}
                Err(_) => failures2 += 1,
            }
        }
        assert_eq!(failures, failures2, "schedule must be reproducible");
    }

    #[test]
    fn fatal_injection_is_permanent() {
        let d = dataset(1_000);
        let mut src = FaultInjectorSource::new(
            DatasetSource::with_chunk_size(&d, 100),
            FaultPlan::fatal_after(3),
        );
        let mut buf = Vec::new();
        for _ in 0..3 {
            assert!(PointSource::next_chunk(&mut src, &mut buf).is_ok());
        }
        for _ in 0..5 {
            let err = PointSource::next_chunk(&mut src, &mut buf).unwrap_err();
            assert!(!crate::error::io_error_is_transient(&err));
        }
        assert_eq!(src.fatal_injected(), 5);
    }

    #[test]
    fn faulty_read_flips_and_interrupts() {
        let data: Vec<u8> = (0..100u8).collect();
        let faults = ReadFaults {
            interrupt_at: vec![0, 50],
            max_read: 7,
            flip: vec![(10, 0b0000_0100), (99, 0b1000_0000)],
        };
        let mut r = FaultyRead::new(&data[..], faults);
        let mut out = Vec::new();
        let mut buf = [0u8; 32];
        loop {
            match r.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => {
                    assert!(n <= 7, "short-read cap violated");
                    out.extend_from_slice(&buf[..n]);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(out.len(), 100);
        assert_eq!(out[10], 10 ^ 0b0000_0100);
        assert_eq!(out[99], 99 ^ 0b1000_0000);
        assert_eq!(out[11], 11, "neighbouring bytes untouched");
    }

    #[test]
    fn file_corruption_helpers() {
        let dir = std::env::temp_dir().join(format!("vas-fault-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("target.bin");
        std::fs::write(&path, [0u8; 16]).unwrap();
        flip_bit_in_file(&path, 8 * 3 + 5).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes[3], 1 << 5);
        assert!(flip_bit_in_file(&path, 16 * 8).is_err(), "past-EOF flip");
        truncate_file(&path, 4).unwrap();
        assert_eq!(std::fs::read(&path).unwrap().len(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }
}
