//! Bounded retry for transient stream errors.
//!
//! [`RetryingSource`] wraps any [`PointSource`] and absorbs **transient**
//! I/O failures (`Interrupted` / `WouldBlock` / `TimedOut` — the shared
//! classification in [`crate::error`]) by retrying the failed call up to a
//! configured budget, with deterministic linear backoff. Fatal errors —
//! decode failures, checksum mismatches, permission errors — pass through
//! on the first occurrence: retrying cannot fix bytes that are wrong, and
//! hiding them would turn a hard corruption signal into a hang.
//!
//! The wrapper is transparent to the stream contract: a retried
//! `next_chunk` returns exactly the chunk the inner source would have
//! returned, so wrapping a source changes no sample bit — only whether an
//! injected `Interrupted` kills the build.

use crate::error::{io_error_is_transient, VasError};
use crate::source::PointSource;
use std::io;
use std::time::Duration;
use vas_data::{DatasetKind, Point};
use vas_obs::{Counter, Recorder};

/// Retry budget and backoff for [`RetryingSource`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Maximum retries per failing call (initial attempt not counted); the
    /// call fails with [`VasError::RetriesExhausted`] after `1 + max_retries`
    /// transient errors.
    pub max_retries: u32,
    /// Backoff before retry *n* (1-based) is `n × backoff_step`. Zero (the
    /// test default) disables sleeping.
    pub backoff_step: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            backoff_step: Duration::from_millis(10),
        }
    }
}

impl RetryPolicy {
    /// A policy with `max_retries` and no backoff sleep (tests, benches).
    pub fn immediate(max_retries: u32) -> Self {
        Self {
            max_retries,
            backoff_step: Duration::ZERO,
        }
    }
}

/// A [`PointSource`] wrapper that retries transient errors per a
/// [`RetryPolicy`] and surfaces retry counters.
#[derive(Debug)]
pub struct RetryingSource<S> {
    inner: S,
    policy: RetryPolicy,
    recorder: Recorder,
}

impl<S: PointSource> RetryingSource<S> {
    /// Wraps `inner` with the given retry policy.
    pub fn new(inner: S, policy: RetryPolicy) -> Self {
        Self {
            inner,
            policy,
            recorder: Recorder::detached(),
        }
    }

    /// Attaches a shared [`Recorder`]: absorbed/exhausted retries count
    /// into its registry (`stream_retries_absorbed` /
    /// `stream_retries_exhausted`) and each absorbed transient appends a
    /// `retry` event to its journal.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Total transient errors absorbed (across all calls).
    ///
    /// Thin view over the metrics registry
    /// (`Counter::StreamRetriesAbsorbed`); kept for compatibility — new
    /// code should read the registry of the attached recorder directly.
    pub fn retries(&self) -> u64 {
        self.recorder.registry().get(Counter::StreamRetriesAbsorbed)
    }

    /// Calls that failed even after the full retry budget.
    ///
    /// Thin view over the metrics registry
    /// (`Counter::StreamRetriesExhausted`); kept for compatibility — new
    /// code should read the registry of the attached recorder directly.
    pub fn exhausted(&self) -> u64 {
        self.recorder
            .registry()
            .get(Counter::StreamRetriesExhausted)
    }

    /// Unwraps the inner source.
    pub fn into_inner(self) -> S {
        self.inner
    }

    fn with_retries<T>(
        &mut self,
        context: &str,
        mut op: impl FnMut(&mut S) -> io::Result<T>,
    ) -> io::Result<T> {
        let mut attempt = 0u32;
        loop {
            match op(&mut self.inner) {
                Ok(v) => return Ok(v),
                Err(e) if io_error_is_transient(&e) => {
                    if attempt >= self.policy.max_retries {
                        self.recorder.inc(Counter::StreamRetriesExhausted, 1);
                        self.recorder.event(
                            "retries_exhausted",
                            &[
                                ("context", context.into()),
                                ("attempts", u64::from(attempt + 1).into()),
                            ],
                        );
                        // Retry exhaustion is build-fatal: dump the flight
                        // recorder's recent-history ring (if attached) so
                        // the post-mortem shows the absorbed retries that
                        // led here.
                        let _ = self.recorder.fatal("retries_exhausted");
                        return Err(VasError::RetriesExhausted {
                            context: format!("{context} on source {:?}", self.inner.name()),
                            attempts: attempt + 1,
                            source: e,
                        }
                        .into());
                    }
                    attempt += 1;
                    self.recorder.inc(Counter::StreamRetriesAbsorbed, 1);
                    self.recorder.event(
                        "retry",
                        &[
                            ("context", context.into()),
                            ("attempt", u64::from(attempt).into()),
                        ],
                    );
                    // The span covers the backoff sleep, so a traced
                    // timeline shows the retry penalty as an interval.
                    let mut span = self.recorder.span("retry");
                    span.attr("context", context);
                    span.attr("attempt", attempt);
                    if !self.policy.backoff_step.is_zero() {
                        std::thread::sleep(self.policy.backoff_step * attempt);
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl<S: PointSource> PointSource for RetryingSource<S> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn kind(&self) -> DatasetKind {
        self.inner.kind()
    }

    fn len_hint(&self) -> Option<u64> {
        self.inner.len_hint()
    }

    fn chunk_capacity(&self) -> usize {
        self.inner.chunk_capacity()
    }

    fn next_chunk(&mut self, buf: &mut Vec<Point>) -> io::Result<usize> {
        self.with_retries("next_chunk", |s| s.next_chunk(buf))
    }

    fn reset(&mut self) -> io::Result<()> {
        self.with_retries("reset", |s| s.reset())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultInjectorSource, FaultPlan};
    use crate::source::DatasetSource;

    #[test]
    fn absorbs_transient_faults_bit_identically() {
        let d = vas_data::GeolifeGenerator::with_size(3_000, 5).generate();
        let clean: Vec<Point> = d.points.clone();

        let faulty = FaultInjectorSource::new(
            DatasetSource::with_chunk_size(&d, 256),
            FaultPlan::transient(7, 2, 2),
        );
        let mut src = RetryingSource::new(faulty, RetryPolicy::immediate(3));
        let streamed = src.read_all().unwrap();
        assert_eq!(streamed.len(), clean.len());
        for (i, (a, b)) in streamed.iter().zip(&clean).enumerate() {
            assert!(
                a.x.to_bits() == b.x.to_bits()
                    && a.y.to_bits() == b.y.to_bits()
                    && a.value.to_bits() == b.value.to_bits(),
                "point {i} differs"
            );
        }
        assert!(src.retries() > 0, "faults were scheduled");
        assert_eq!(src.exhausted(), 0);

        // A second scan hits the same schedule and recovers again.
        PointSource::reset(&mut src).unwrap();
        let again = src.read_all().unwrap();
        assert_eq!(again.len(), clean.len());
    }

    #[test]
    fn attached_recorder_journals_each_absorbed_retry() {
        use std::sync::Arc;
        let d = vas_data::GeolifeGenerator::with_size(3_000, 5).generate();
        let faulty = FaultInjectorSource::new(
            DatasetSource::with_chunk_size(&d, 256),
            FaultPlan::transient(7, 2, 2),
        );
        let journal = Arc::new(vas_obs::Journal::in_memory());
        let recorder = Recorder::new(Arc::new(vas_obs::MetricsRegistry::new()))
            .with_journal(Arc::clone(&journal));
        let mut src =
            RetryingSource::new(faulty, RetryPolicy::immediate(3)).with_recorder(recorder.clone());
        src.read_all().unwrap();
        let absorbed = recorder.registry().get(Counter::StreamRetriesAbsorbed);
        assert!(absorbed > 0);
        assert_eq!(src.retries(), absorbed, "getter is a thin registry view");
        let retry_lines = journal
            .lines()
            .iter()
            .filter(|l| l.contains("\"event\":\"retry\""))
            .count();
        assert_eq!(retry_lines as u64, absorbed);
    }

    #[test]
    fn budget_exhaustion_is_a_typed_error() {
        let d = vas_data::GeolifeGenerator::with_size(500, 5).generate();
        // Every chunk fails 5 times; a budget of 2 retries cannot get through.
        let faulty = FaultInjectorSource::new(
            DatasetSource::with_chunk_size(&d, 100),
            FaultPlan::transient(1, 1, 5),
        );
        let mut src = RetryingSource::new(faulty, RetryPolicy::immediate(2));
        let mut buf = Vec::new();
        let err = PointSource::next_chunk(&mut src, &mut buf).unwrap_err();
        let typed = VasError::from_io_chain(&err).expect("typed error in chain");
        assert!(
            matches!(typed, VasError::RetriesExhausted { attempts: 3, .. }),
            "{typed}"
        );
        assert_eq!(src.exhausted(), 1);
    }

    #[test]
    fn fatal_errors_pass_through_without_retry() {
        let d = vas_data::GeolifeGenerator::with_size(500, 5).generate();
        let faulty = FaultInjectorSource::new(
            DatasetSource::with_chunk_size(&d, 100),
            FaultPlan::fatal_after(1),
        );
        let mut src = RetryingSource::new(faulty, RetryPolicy::immediate(10));
        let mut buf = Vec::new();
        assert!(PointSource::next_chunk(&mut src, &mut buf).is_ok());
        let err = PointSource::next_chunk(&mut src, &mut buf).unwrap_err();
        assert!(err.to_string().contains("injected fatal fault"), "{err}");
        assert_eq!(src.retries(), 0, "fatal errors must not consume retries");
        assert_eq!(src.into_inner().fatal_injected(), 1, "exactly one attempt");
    }
}
