//! The chunked columnar spill format: `.vaschunk` files.
//!
//! A dataset on disk is a small provenance header followed by fixed-size
//! chunks of column arrays:
//!
//! ```text
//! offset  size  field
//!      0     8  magic  b"VASCHNK\0"
//!      8     4  format version (u32 LE; this build writes 2, reads 1 and 2)
//!     12     1  dataset kind tag (see DatasetKind mapping below)
//!     13     3  reserved (zero)
//!     16     4  chunk size in points (u32 LE)
//!     20     8  total point count (u64 LE; patched by `finish`)
//!     28    32  bounding box min_x, min_y, max_x, max_y (4 × f64 LE)
//!     60     2  dataset name length (u16 LE)
//!     62     n  dataset name (UTF-8)
//!   62+n     4  [v2] header CRC-32 over bytes 0..62+n (patched by `finish`)
//! data:        chunks, each:
//!              m (u32 LE, 1 ≤ m ≤ chunk size),
//!              [v2] chunk CRC-32 (u32 LE, over the 4 `m` bytes + all column
//!              bytes),
//!              then m × f64 x, m × f64 y, m × f64 value (LE)
//! ```
//!
//! Columns beat row-interleaved triples here for the same reason they do in
//! any scan-heavy store: a consumer that only needs positions (the sampler
//! never reads `value` during the replacement test) walks two dense arrays,
//! and per-column compression/mmap become possible later without a format
//! break. All values are raw IEEE-754 bit patterns, so round-trips are exact
//! for `-0.0`, subnormals and NaN payloads alike.
//!
//! The writer streams: it stages one chunk of columns in memory, flushes it
//! when full, and back-patches the count, bounds and header checksum into
//! the header on [`ChunkedWriter::finish`] — so a spill never knows the
//! total in advance and never holds more than one chunk.
//!
//! ## Integrity (format v2)
//!
//! Version 2 adds CRC-32 checksums (see [`crate::crc32`]) over the header
//! and over every chunk, so *any* single-bit flip in the file is detected —
//! a property the test suite proves exhaustively for small files. Failure
//! modes map to typed [`VasError`]s:
//!
//! * a crash before `finish` leaves the header checksum as zeros, which
//!   [`ChunkedReader::open`] rejects as a checksum mismatch — an unfinished
//!   spill can never be mistaken for a complete dataset;
//! * a torn or truncated chunk fails its checksum (or its column read) with
//!   the file path, chunk index and byte counts in the error;
//! * a back-patched count that disagrees with the chunks actually present
//!   fails with a [`VasError::Truncated`] naming both counts.
//!
//! By default corruption is a **hard error** — a sample built from silently
//! dropped points is not the sample the caller asked for. For salvage
//! workflows, [`ChunkedReader::set_corruption_policy`] opts into
//! [`CorruptionPolicy::SkipChunks`]: chunks failing their checksum are
//! skipped, each recorded as a [`CorruptChunkReport`], and the end-of-file
//! accounting requires `read + skipped == promised` so the degraded stream
//! still cannot *silently* lose data.

use crate::crc32::Crc32;
use crate::error::VasError;
use crate::source::PointSource;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;
use vas_data::{BoundingBox, Dataset, DatasetKind, Point};
use vas_obs::{Counter, Phase, Recorder};

const MAGIC: [u8; 8] = *b"VASCHNK\0";
/// Version this build writes.
const FORMAT_VERSION: u32 = 2;
/// Versions this build reads.
const SUPPORTED_VERSIONS: &[u32] = &[1, 2];
/// Byte offset of the back-patched `count` field.
const COUNT_OFFSET: u64 = 20;
/// Bytes of header before the variable-length name.
const HEADER_FIXED_LEN: usize = 62;

fn kind_tag(kind: DatasetKind) -> u8 {
    match kind {
        DatasetKind::GeolifeSim => 0,
        DatasetKind::Splom => 1,
        DatasetKind::GaussianMixture => 2,
        DatasetKind::External => 3,
    }
}

fn tag_kind(tag: u8) -> Option<DatasetKind> {
    match tag {
        0 => Some(DatasetKind::GeolifeSim),
        1 => Some(DatasetKind::Splom),
        2 => Some(DatasetKind::GaussianMixture),
        3 => Some(DatasetKind::External),
        _ => None,
    }
}

/// Parsed header of a chunked columnar file.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkedHeader {
    /// Format version (1 or 2).
    pub version: u32,
    /// Provenance of the spilled dataset.
    pub kind: DatasetKind,
    /// Nominal chunk size: every chunk but the last holds exactly this many
    /// points.
    pub chunk_size: usize,
    /// Total points in the file.
    pub count: u64,
    /// Spatial extent of the spilled points, accumulated in stream order
    /// (bit-identical to `BoundingBox::from_points` over the same stream).
    pub bounds: BoundingBox,
    /// Dataset name.
    pub name: String,
}

/// Summary returned by [`ChunkedWriter::finish`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkedSummary {
    /// Points written.
    pub count: u64,
    /// Extent of the written points.
    pub bounds: BoundingBox,
    /// Chunks flushed (including the final partial one).
    pub chunks: u64,
    /// Total file size in bytes.
    pub bytes: u64,
}

/// What a [`ChunkedReader`] does when a chunk fails its checksum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CorruptionPolicy {
    /// Fail the read with a typed error (the default).
    #[default]
    Strict,
    /// Skip the corrupt chunk, record a [`CorruptChunkReport`], and carry on
    /// with the next chunk — explicit opt-in for salvage workflows. Only
    /// meaningful for format v2 (v1 files carry no checksums).
    SkipChunks,
}

/// One corrupt chunk skipped under [`CorruptionPolicy::SkipChunks`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorruptChunkReport {
    /// Zero-based index of the chunk within the current scan.
    pub chunk_index: u64,
    /// Byte offset of the chunk's length prefix in the file.
    pub byte_offset: u64,
    /// Points the skipped chunk claimed to hold.
    pub points_lost: u64,
    /// Checksum stored in the file.
    pub stored_crc: u32,
    /// Checksum computed over the bytes actually read.
    pub computed_crc: u32,
}

/// Streaming writer for the chunked columnar format (always writes v2).
///
/// Stages at most one chunk of columns (`3 × chunk_size` f64s) plus its
/// encoded bytes in memory.
#[derive(Debug)]
pub struct ChunkedWriter {
    file: BufWriter<File>,
    chunk_size: usize,
    xs: Vec<f64>,
    ys: Vec<f64>,
    vs: Vec<f64>,
    /// Reusable byte scratch: the whole chunk's column bytes are encoded
    /// here so the chunk checksum can be computed before anything is
    /// written (the mirror of the reader's `col_buf`).
    chunk_buf: Vec<u8>,
    /// The header bytes as written at create time; `finish` patches count,
    /// bounds and checksum into this image and rewrites the patched fields.
    header_bytes: Vec<u8>,
    count: u64,
    chunks: u64,
    bounds: BoundingBox,
}

impl ChunkedWriter {
    /// Creates `path` (truncating any existing file) and writes the header.
    ///
    /// # Panics
    /// Panics if `chunk_size` is zero or exceeds `u32::MAX`, or if `name` is
    /// longer than a `u16` length prefix can record.
    pub fn create(
        path: impl AsRef<Path>,
        name: &str,
        kind: DatasetKind,
        chunk_size: usize,
    ) -> io::Result<Self> {
        assert!(
            chunk_size > 0 && chunk_size <= u32::MAX as usize,
            "chunk size must be in 1..=u32::MAX, got {chunk_size}"
        );
        assert!(
            name.len() <= u16::MAX as usize,
            "dataset name too long for the header ({} bytes)",
            name.len()
        );
        let mut header = Vec::with_capacity(HEADER_FIXED_LEN + name.len() + 4);
        header.extend_from_slice(&MAGIC);
        header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        header.extend_from_slice(&[kind_tag(kind), 0, 0, 0]);
        header.extend_from_slice(&(chunk_size as u32).to_le_bytes());
        // Count and bounds are placeholders until `finish` patches them.
        header.extend_from_slice(&0u64.to_le_bytes());
        for v in [
            BoundingBox::EMPTY.min_x,
            BoundingBox::EMPTY.min_y,
            BoundingBox::EMPTY.max_x,
            BoundingBox::EMPTY.max_y,
        ] {
            header.extend_from_slice(&v.to_le_bytes());
        }
        header.extend_from_slice(&(name.len() as u16).to_le_bytes());
        header.extend_from_slice(name.as_bytes());
        // Header checksum placeholder: zeros never match a real CRC patch,
        // so a crash before `finish` leaves a self-evidently unfinished file.
        header.extend_from_slice(&0u32.to_le_bytes());
        let mut file = BufWriter::new(File::create(path)?);
        file.write_all(&header)?;
        Ok(Self {
            file,
            chunk_size,
            xs: Vec::with_capacity(chunk_size),
            ys: Vec::with_capacity(chunk_size),
            vs: Vec::with_capacity(chunk_size),
            chunk_buf: Vec::new(),
            header_bytes: header,
            count: 0,
            chunks: 0,
            bounds: BoundingBox::EMPTY,
        })
    }

    /// Appends one point, flushing the staged chunk to disk when it fills.
    pub fn push(&mut self, p: Point) -> io::Result<()> {
        self.xs.push(p.x);
        self.ys.push(p.y);
        self.vs.push(p.value);
        self.bounds.extend(&p);
        self.count += 1;
        if self.xs.len() == self.chunk_size {
            self.flush_chunk()?;
        }
        Ok(())
    }

    /// Appends a slice of points.
    pub fn write_points(&mut self, points: &[Point]) -> io::Result<()> {
        for p in points {
            self.push(*p)?;
        }
        Ok(())
    }

    /// Points currently staged in memory (bounded by the chunk size).
    pub fn staged_len(&self) -> usize {
        self.xs.len()
    }

    /// Points written so far (staged included).
    pub fn count(&self) -> u64 {
        self.count
    }

    fn flush_chunk(&mut self) -> io::Result<()> {
        if self.xs.is_empty() {
            return Ok(());
        }
        let m_bytes = (self.xs.len() as u32).to_le_bytes();
        self.chunk_buf.clear();
        for column in [&self.xs, &self.ys, &self.vs] {
            for v in column.iter() {
                self.chunk_buf.extend_from_slice(&v.to_le_bytes());
            }
        }
        let mut crc = Crc32::new();
        crc.update(&m_bytes);
        crc.update(&self.chunk_buf);
        self.file.write_all(&m_bytes)?;
        self.file.write_all(&crc.finish().to_le_bytes())?;
        self.file.write_all(&self.chunk_buf)?;
        self.chunks += 1;
        self.xs.clear();
        self.ys.clear();
        self.vs.clear();
        Ok(())
    }

    /// Flushes the final partial chunk and back-patches the header's count,
    /// bounds and checksum fields.
    pub fn finish(mut self) -> io::Result<ChunkedSummary> {
        self.flush_chunk()?;
        self.file.flush()?;
        // Patch the in-memory header image, recompute its checksum, and
        // rewrite the patched tail (count + bounds + trailing CRC).
        let mut patch = Vec::with_capacity(40);
        patch.extend_from_slice(&self.count.to_le_bytes());
        for v in [
            self.bounds.min_x,
            self.bounds.min_y,
            self.bounds.max_x,
            self.bounds.max_y,
        ] {
            patch.extend_from_slice(&v.to_le_bytes());
        }
        let count_off = COUNT_OFFSET as usize;
        self.header_bytes[count_off..count_off + patch.len()].copy_from_slice(&patch);
        let crc_off = self.header_bytes.len() - 4;
        let mut crc = Crc32::new();
        crc.update(&self.header_bytes[..crc_off]);
        let crc = crc.finish();
        self.header_bytes[crc_off..].copy_from_slice(&crc.to_le_bytes());

        let file = self.file.get_mut();
        let bytes = file.seek(SeekFrom::End(0))?;
        file.seek(SeekFrom::Start(COUNT_OFFSET))?;
        file.write_all(&patch)?;
        file.seek(SeekFrom::Start(crc_off as u64))?;
        file.write_all(&crc.to_le_bytes())?;
        file.sync_data()?;
        Ok(ChunkedSummary {
            count: self.count,
            bounds: self.bounds,
            chunks: self.chunks,
            bytes,
        })
    }
}

/// Chunk-iterating reader for the chunked columnar format; also a
/// [`PointSource`], which is how spilled datasets feed the sampler.
///
/// Reads format v1 (no checksums) and v2 (header + per-chunk CRC-32,
/// verified on every read). Resident memory per chunk: the caller's point
/// buffer plus one column of scratch bytes.
#[derive(Debug)]
pub struct ChunkedReader {
    file: BufReader<File>,
    path: PathBuf,
    header: ChunkedHeader,
    data_offset: u64,
    read: u64,
    chunk_index: u64,
    /// Byte position within the data section (for error reports; only
    /// advanced through the sequential chunk reads).
    data_pos: u64,
    policy: CorruptionPolicy,
    /// Per-scan skip tally — data-path state (the end-of-file accounting
    /// needs `read + skipped == promised`), cleared by [`Self::reset`]. The
    /// attached recorder's registry carries the monotonic lifetime totals.
    skipped_points: u64,
    reports: Vec<CorruptChunkReport>,
    col_buf: Vec<u8>,
    recorder: Recorder,
}

impl ChunkedReader {
    /// Opens `path`, parses the header, and (v2) verifies its checksum.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let display = path.display().to_string();
        let mut file = BufReader::new(File::open(&path)?);
        let mut fixed = [0u8; HEADER_FIXED_LEN];
        file.read_exact(&mut fixed).map_err(|_| {
            io::Error::from(VasError::Corrupt {
                path: display.clone(),
                detail: "file too short for a header".into(),
            })
        })?;
        if fixed[0..8] != MAGIC {
            return Err(VasError::Corrupt {
                path: display,
                detail: "not a chunked dataset file (bad magic)".into(),
            }
            .into());
        }
        let version = u32::from_le_bytes(fixed[8..12].try_into().expect("fixed-size slice"));
        if !SUPPORTED_VERSIONS.contains(&version) {
            return Err(VasError::UnsupportedVersion {
                path: display,
                found: version,
                supported: SUPPORTED_VERSIONS,
            }
            .into());
        }
        let kind = tag_kind(fixed[12]).ok_or_else(|| {
            io::Error::from(VasError::Corrupt {
                path: display.clone(),
                detail: format!("unknown dataset kind tag {}", fixed[12]),
            })
        })?;
        let chunk_size =
            u32::from_le_bytes(fixed[16..20].try_into().expect("fixed-size slice")) as usize;
        if chunk_size == 0 {
            return Err(VasError::Corrupt {
                path: display,
                detail: "zero chunk size".into(),
            }
            .into());
        }
        let count = u64::from_le_bytes(fixed[20..28].try_into().expect("fixed-size slice"));
        let mut bb = [0.0f64; 4];
        for (i, v) in bb.iter_mut().enumerate() {
            *v = f64::from_le_bytes(
                fixed[28 + 8 * i..36 + 8 * i]
                    .try_into()
                    .expect("fixed-size slice"),
            );
        }
        let name_len =
            u16::from_le_bytes(fixed[60..62].try_into().expect("fixed-size slice")) as usize;
        let mut name_bytes = vec![0u8; name_len];
        file.read_exact(&mut name_bytes).map_err(|_| {
            io::Error::from(VasError::Corrupt {
                path: display.clone(),
                detail: "truncated header name".into(),
            })
        })?;
        let name = String::from_utf8(name_bytes.clone()).map_err(|_| {
            io::Error::from(VasError::Corrupt {
                path: display.clone(),
                detail: "header name is not UTF-8".into(),
            })
        })?;
        let mut data_offset = (HEADER_FIXED_LEN + name_len) as u64;
        if version >= 2 {
            let mut crc_bytes = [0u8; 4];
            file.read_exact(&mut crc_bytes).map_err(|_| {
                io::Error::from(VasError::Corrupt {
                    path: display.clone(),
                    detail: "truncated header checksum".into(),
                })
            })?;
            let stored = u32::from_le_bytes(crc_bytes);
            let mut crc = Crc32::new();
            crc.update(&fixed);
            crc.update(&name_bytes);
            let computed = crc.finish();
            if stored != computed {
                return Err(VasError::ChecksumMismatch {
                    path: display,
                    region: "header (unfinished spill or corrupt header)".into(),
                    stored,
                    computed,
                }
                .into());
            }
            data_offset += 4;
        }
        Ok(Self {
            file,
            path,
            header: ChunkedHeader {
                version,
                kind,
                chunk_size,
                count,
                bounds: BoundingBox::new(bb[0], bb[1], bb[2], bb[3]),
                name,
            },
            data_offset,
            read: 0,
            chunk_index: 0,
            data_pos: 0,
            policy: CorruptionPolicy::default(),
            skipped_points: 0,
            reports: Vec::new(),
            col_buf: Vec::new(),
            recorder: Recorder::detached(),
        })
    }

    /// Attaches a shared [`Recorder`]: decoded chunks, CRC failures and
    /// corruption skips count into its registry, chunk decode latency feeds
    /// the `chunk_decode` phase when timing is enabled, and skipped chunks
    /// append `corrupt_chunk_skipped` journal events.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// The parsed file header.
    pub fn header(&self) -> &ChunkedHeader {
        &self.header
    }

    /// Points consumed so far in the current scan.
    pub fn points_read(&self) -> u64 {
        self.read
    }

    /// Sets the corruption policy (see [`CorruptionPolicy`]).
    pub fn set_corruption_policy(&mut self, policy: CorruptionPolicy) {
        self.policy = policy;
    }

    /// Builder-style [`Self::set_corruption_policy`].
    pub fn with_corruption_policy(mut self, policy: CorruptionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Corrupt chunks skipped in the current scan (empty under
    /// [`CorruptionPolicy::Strict`]). The attached recorder's registry
    /// additionally counts lifetime totals across scans
    /// (`stream_corrupt_chunks_skipped`, `stream_crc_failures`).
    pub fn corruption_reports(&self) -> &[CorruptChunkReport] {
        &self.reports
    }

    /// Points lost to skipped chunks in the current scan (cleared by
    /// [`Self::reset`]); `stream_points_skipped` in the attached recorder's
    /// registry carries the monotonic lifetime total.
    pub fn points_skipped(&self) -> u64 {
        self.skipped_points
    }

    fn corrupt(&self, detail: impl Into<String>) -> io::Error {
        VasError::Corrupt {
            path: self.path.display().to_string(),
            detail: detail.into(),
        }
        .into()
    }

    fn read_column(&mut self, m: usize) -> io::Result<()> {
        self.col_buf.resize(m * 8, 0);
        let (chunk_index, promised, read) = (self.chunk_index, self.header.count, self.read);
        self.file.read_exact(&mut self.col_buf).map_err(|_| {
            self.corrupt(format!(
                "chunk {chunk_index} torn mid-column: expected {} column bytes \
                 ({read} of {promised} promised points decoded so far)",
                m * 8
            ))
        })?;
        self.data_pos += (m * 8) as u64;
        Ok(())
    }

    /// Reads the next chunk into `buf` (cleared first). `Ok(0)` at end of
    /// data — at which point every promised point must be accounted for
    /// (decoded, or skipped under [`CorruptionPolicy::SkipChunks`]) and no
    /// trailing bytes may remain.
    pub fn next_chunk(&mut self, buf: &mut Vec<Point>) -> io::Result<usize> {
        // Timed manually rather than via a `PhaseGuard`: the guard would
        // borrow `self.recorder` across the `&mut self` inner call. The
        // span guard owns its handles, so it can live across the call —
        // when decoding happens on the read-ahead pipeline thread it
        // parents under the build's root span via the tracer's ambient
        // cell.
        let started = self.recorder.timing_enabled().then(Instant::now);
        let mut span = self.recorder.span("chunk_decode");
        let result = self.next_chunk_inner(buf);
        if let Ok(m) = &result {
            span.attr("points", *m);
        }
        drop(span);
        if let Some(t0) = started {
            self.recorder
                .record_phase_ns(Phase::ChunkDecode, t0.elapsed().as_nanos() as u64);
        }
        if let Ok(m) = &result {
            if *m > 0 {
                self.recorder.inc(Counter::StreamChunksDecoded, 1);
            }
        }
        result
    }

    fn next_chunk_inner(&mut self, buf: &mut Vec<Point>) -> io::Result<usize> {
        loop {
            buf.clear();
            let chunk_offset = self.data_offset + self.data_pos;
            let mut len_bytes = [0u8; 4];
            match self.file.read(&mut len_bytes)? {
                0 => {
                    // Clean end of file: every promised point must have
                    // arrived (or been explicitly skipped).
                    if self.read + self.skipped_points != self.header.count {
                        return Err(VasError::Truncated {
                            path: self.path.display().to_string(),
                            promised: self.header.count,
                            found: self.read + self.skipped_points,
                        }
                        .into());
                    }
                    return Ok(0);
                }
                4 => {}
                n => {
                    let (chunk_index, read, promised) =
                        (self.chunk_index, self.read, self.header.count);
                    self.file.read_exact(&mut len_bytes[n..]).map_err(|_| {
                        self.corrupt(format!(
                            "chunk {chunk_index} torn in its length prefix \
                             ({read} of {promised} promised points decoded so far)"
                        ))
                    })?;
                }
            }
            self.data_pos += 4;
            let m = u32::from_le_bytes(len_bytes) as usize;
            if m == 0 || m > self.header.chunk_size {
                return Err(self.corrupt(format!(
                    "chunk {} has corrupt length {m} (chunk size {}); cannot resync",
                    self.chunk_index, self.header.chunk_size
                )));
            }
            let mut stored_crc = 0u32;
            if self.header.version >= 2 {
                let mut crc_bytes = [0u8; 4];
                let chunk_index = self.chunk_index;
                self.file.read_exact(&mut crc_bytes).map_err(|_| {
                    self.corrupt(format!("chunk {chunk_index} torn in its checksum field"))
                })?;
                self.data_pos += 4;
                stored_crc = u32::from_le_bytes(crc_bytes);
            }
            if self.read + self.skipped_points + m as u64 > self.header.count {
                return Err(self.corrupt(format!(
                    "chunk {} overruns the promised total: {} decoded + {} skipped + {m} \
                     in this chunk > {} promised",
                    self.chunk_index, self.read, self.skipped_points, self.header.count
                )));
            }
            let mut crc = Crc32::new();
            crc.update(&len_bytes);
            self.read_column(m)?;
            crc.update(&self.col_buf);
            buf.extend(self.col_buf.chunks_exact(8).map(|b| {
                Point::new(
                    f64::from_le_bytes(b.try_into().expect("fixed-size slice")),
                    0.0,
                )
            }));
            self.read_column(m)?;
            crc.update(&self.col_buf);
            for (p, b) in buf.iter_mut().zip(self.col_buf.chunks_exact(8)) {
                p.y = f64::from_le_bytes(b.try_into().expect("fixed-size slice"));
            }
            self.read_column(m)?;
            crc.update(&self.col_buf);
            for (p, b) in buf.iter_mut().zip(self.col_buf.chunks_exact(8)) {
                p.value = f64::from_le_bytes(b.try_into().expect("fixed-size slice"));
            }
            if self.header.version >= 2 {
                let computed = crc.finish();
                if computed != stored_crc {
                    self.recorder.inc(Counter::StreamCrcFailures, 1);
                    match self.policy {
                        CorruptionPolicy::Strict => {
                            return Err(VasError::ChecksumMismatch {
                                path: self.path.display().to_string(),
                                region: format!("chunk {}", self.chunk_index),
                                stored: stored_crc,
                                computed,
                            }
                            .into());
                        }
                        CorruptionPolicy::SkipChunks => {
                            self.reports.push(CorruptChunkReport {
                                chunk_index: self.chunk_index,
                                byte_offset: chunk_offset,
                                points_lost: m as u64,
                                stored_crc,
                                computed_crc: computed,
                            });
                            self.skipped_points += m as u64;
                            self.recorder.inc(Counter::StreamCorruptChunksSkipped, 1);
                            self.recorder.inc(Counter::StreamPointsSkipped, m as u64);
                            self.recorder.event(
                                "corrupt_chunk_skipped",
                                &[
                                    ("chunk_index", self.chunk_index.into()),
                                    ("points_lost", (m as u64).into()),
                                ],
                            );
                            self.chunk_index += 1;
                            continue;
                        }
                    }
                }
            }
            self.read += m as u64;
            self.chunk_index += 1;
            return Ok(m);
        }
    }

    /// Rewinds to the first chunk (clearing the current scan's corruption
    /// reports).
    pub fn reset(&mut self) -> io::Result<()> {
        self.file.seek(SeekFrom::Start(self.data_offset))?;
        self.read = 0;
        self.chunk_index = 0;
        self.data_pos = 0;
        self.skipped_points = 0;
        self.reports.clear();
        Ok(())
    }

    /// Materializes the whole file as a [`Dataset`] (tests / small files
    /// only).
    pub fn read_dataset(&mut self) -> io::Result<Dataset> {
        self.reset()?;
        let mut points = Vec::new();
        let mut buf = Vec::new();
        while self.next_chunk(&mut buf)? > 0 {
            points.extend_from_slice(&buf);
        }
        Ok(Dataset::new(
            self.header.name.clone(),
            self.header.kind,
            points,
        ))
    }
}

impl PointSource for ChunkedReader {
    fn name(&self) -> &str {
        &self.header.name
    }

    fn kind(&self) -> DatasetKind {
        self.header.kind
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.header.count)
    }

    fn chunk_capacity(&self) -> usize {
        self.header.chunk_size
    }

    fn next_chunk(&mut self, buf: &mut Vec<Point>) -> io::Result<usize> {
        ChunkedReader::next_chunk(self, buf)
    }

    fn reset(&mut self) -> io::Result<()> {
        ChunkedReader::reset(self)
    }
}

/// Spills every remaining point of `source` into a chunked file at `path`,
/// using the source's own name, kind and chunk size. Resident memory: one
/// source chunk plus one staged writer chunk.
pub fn spill_source<S: PointSource>(
    source: &mut S,
    path: impl AsRef<Path>,
) -> io::Result<ChunkedSummary> {
    let mut writer =
        ChunkedWriter::create(&path, source.name(), source.kind(), source.chunk_capacity())?;
    let mut buf = Vec::new();
    while source.next_chunk(&mut buf)? > 0 {
        writer.write_points(&buf)?;
    }
    writer.finish()
}

/// Spills an in-memory dataset into a chunked file at `path`.
pub fn spill_dataset(
    dataset: &Dataset,
    path: impl AsRef<Path>,
    chunk_size: usize,
) -> io::Result<ChunkedSummary> {
    let mut writer = ChunkedWriter::create(&path, &dataset.name, dataset.kind, chunk_size)?;
    writer.write_points(&dataset.points)?;
    writer.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::DatasetSource;
    use std::path::PathBuf;

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("vas-chunked-{}-{name}", std::process::id()))
    }

    fn assert_bitwise_equal(a: &[Point], b: &[Point]) {
        assert_eq!(a.len(), b.len());
        for (i, (p, q)) in a.iter().zip(b).enumerate() {
            assert!(
                p.x.to_bits() == q.x.to_bits()
                    && p.y.to_bits() == q.y.to_bits()
                    && p.value.to_bits() == q.value.to_bits(),
                "point {i}: {p:?} vs {q:?}"
            );
        }
    }

    /// Writes `dataset` in the legacy v1 layout (no checksums) so the
    /// retained v1 read path stays covered.
    fn write_v1(dataset: &Dataset, path: &Path, chunk_size: usize) {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&[kind_tag(dataset.kind), 0, 0, 0]);
        bytes.extend_from_slice(&(chunk_size as u32).to_le_bytes());
        bytes.extend_from_slice(&(dataset.points.len() as u64).to_le_bytes());
        let bb = dataset.bounds();
        for v in [bb.min_x, bb.min_y, bb.max_x, bb.max_y] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        bytes.extend_from_slice(&(dataset.name.len() as u16).to_le_bytes());
        bytes.extend_from_slice(dataset.name.as_bytes());
        for chunk in dataset.points.chunks(chunk_size) {
            bytes.extend_from_slice(&(chunk.len() as u32).to_le_bytes());
            for get in [(|p: &Point| p.x) as fn(&Point) -> f64, |p| p.y, |p| p.value] {
                for p in chunk {
                    bytes.extend_from_slice(&get(p).to_le_bytes());
                }
            }
        }
        std::fs::write(path, bytes).unwrap();
    }

    #[test]
    fn round_trip_preserves_points_and_provenance() {
        let d = vas_data::GeolifeGenerator::with_size(5_000, 7).generate();
        let path = temp_path("roundtrip.vaschunk");
        let summary = spill_dataset(&d, &path, 777).unwrap();
        assert_eq!(summary.count, 5_000);
        assert_eq!(summary.chunks, 7); // ceil(5000 / 777)
        assert_eq!(summary.bounds, d.bounds());

        let mut reader = ChunkedReader::open(&path).unwrap();
        assert_eq!(reader.header().version, 2);
        assert_eq!(reader.header().name, d.name);
        assert_eq!(reader.header().kind, DatasetKind::GeolifeSim);
        assert_eq!(reader.header().count, 5_000);
        assert_eq!(reader.header().chunk_size, 777);
        assert_eq!(reader.header().bounds, d.bounds());
        let back = reader.read_dataset().unwrap();
        assert_bitwise_equal(&back.points, &d.points);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn v1_files_still_read() {
        let d = vas_data::GeolifeGenerator::with_size(1_234, 3).generate();
        let path = temp_path("legacy-v1.vaschunk");
        write_v1(&d, &path, 200);
        let mut reader = ChunkedReader::open(&path).unwrap();
        assert_eq!(reader.header().version, 1);
        assert_eq!(reader.header().count, 1_234);
        let back = reader.read_dataset().unwrap();
        assert_bitwise_equal(&back.points, &d.points);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn reader_is_a_resettable_point_source() {
        let d = vas_data::GeolifeGenerator::with_size(1_000, 11).generate();
        let path = temp_path("source.vaschunk");
        spill_dataset(&d, &path, 128).unwrap();
        let mut reader = ChunkedReader::open(&path).unwrap();
        assert_eq!(PointSource::len_hint(&reader), Some(1_000));
        assert_eq!(PointSource::chunk_capacity(&reader), 128);
        assert_eq!(PointSource::kind(&reader), DatasetKind::GeolifeSim);
        let first = reader.read_all().unwrap();
        PointSource::reset(&mut reader).unwrap();
        let second = reader.read_all().unwrap();
        assert_bitwise_equal(&first, &second);
        assert_bitwise_equal(&first, &d.points);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn spill_source_matches_spill_dataset() {
        let d = vas_data::GeolifeGenerator::with_size(2_000, 3).generate();
        let via_dataset = temp_path("direct.vaschunk");
        let via_source = temp_path("streamed.vaschunk");
        spill_dataset(&d, &via_dataset, 256).unwrap();
        let mut source = DatasetSource::with_chunk_size(&d, 256);
        spill_source(&mut source, &via_source).unwrap();
        let a = std::fs::read(&via_dataset).unwrap();
        let b = std::fs::read(&via_source).unwrap();
        assert_eq!(a, b, "streamed spill must be byte-identical");
        std::fs::remove_file(via_dataset).ok();
        std::fs::remove_file(via_source).ok();
    }

    #[test]
    fn empty_dataset_round_trips() {
        let d = Dataset::from_points("empty", vec![]);
        let path = temp_path("empty.vaschunk");
        let summary = spill_dataset(&d, &path, 16).unwrap();
        assert_eq!(summary.count, 0);
        assert_eq!(summary.chunks, 0);
        let mut reader = ChunkedReader::open(&path).unwrap();
        assert!(reader.header().bounds.is_empty());
        assert!(reader.read_dataset().unwrap().is_empty());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn truncated_file_is_an_error_with_counts_in_the_message() {
        let d = vas_data::GeolifeGenerator::with_size(500, 5).generate();
        let path = temp_path("truncated.vaschunk");
        spill_dataset(&d, &path, 100).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // Cut the file mid-chunk.
        std::fs::write(&path, &bytes[..bytes.len() - 37]).unwrap();
        let mut reader = ChunkedReader::open(&path).unwrap();
        let err = reader.read_dataset().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");
        let msg = err.to_string();
        assert!(msg.contains("chunk 4") && msg.contains("500"), "{msg}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_whole_tail_chunk_reports_promised_vs_found() {
        let d = vas_data::GeolifeGenerator::with_size(400, 5).generate();
        let path = temp_path("losttail.vaschunk");
        spill_dataset(&d, &path, 100).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // Drop the final chunk entirely: 4 (m) + 4 (crc) + 100 × 24 bytes.
        std::fs::write(&path, &bytes[..bytes.len() - (8 + 2_400)]).unwrap();
        let mut reader = ChunkedReader::open(&path).unwrap();
        let err = reader.read_dataset().unwrap_err();
        let typed = VasError::from_io_chain(&err).expect("typed");
        assert!(
            matches!(
                typed,
                VasError::Truncated {
                    promised: 400,
                    found: 300,
                    ..
                }
            ),
            "{typed}"
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        let d = vas_data::GeolifeGenerator::with_size(50, 5).generate();
        let path = temp_path("trailing.vaschunk");
        spill_dataset(&d, &path, 50).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[1, 2, 3, 4, 5]);
        std::fs::write(&path, &bytes).unwrap();
        let mut reader = ChunkedReader::open(&path).unwrap();
        assert!(reader.read_dataset().is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn unfinished_spill_is_rejected_at_open() {
        // A writer dropped without `finish` leaves a zero header checksum
        // (and count = 0): the reader must refuse the file outright.
        let path = temp_path("unfinished.vaschunk");
        {
            let mut w = ChunkedWriter::create(&path, "crashy", DatasetKind::External, 4).unwrap();
            for i in 0..9 {
                w.push(Point::new(i as f64, 0.0)).unwrap();
            }
            // w dropped here without finish(); two full chunks are on disk.
        }
        let err = ChunkedReader::open(&path).unwrap_err();
        let typed = VasError::from_io_chain(&err).expect("typed");
        assert!(
            matches!(typed, VasError::ChecksumMismatch { .. }),
            "{typed}"
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn bad_magic_and_bad_version_are_rejected() {
        let path = temp_path("badmagic.vaschunk");
        std::fs::write(
            &path,
            b"NOTCHNK\0aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa",
        )
        .unwrap();
        assert!(ChunkedReader::open(&path).is_err());

        let d = Dataset::from_points("v", vec![Point::new(1.0, 2.0)]);
        spill_dataset(&d, &path, 4).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8] = 99; // version
        std::fs::write(&path, &bytes).unwrap();
        let err = ChunkedReader::open(&path).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn chunk_bit_flip_is_a_hard_error_by_default() {
        let d = vas_data::GeolifeGenerator::with_size(300, 5).generate();
        let path = temp_path("bitflip.vaschunk");
        spill_dataset(&d, &path, 100).unwrap();
        let header_len = (HEADER_FIXED_LEN + d.name.len() + 4) as u64;
        // Flip one bit in the middle of the second chunk's payload.
        let second_chunk = header_len + 8 + 2_400;
        crate::fault::flip_bit_in_file(&path, (second_chunk + 8 + 1_000) * 8 + 3).unwrap();
        let mut reader = ChunkedReader::open(&path).unwrap();
        let mut buf = Vec::new();
        assert_eq!(reader.next_chunk(&mut buf).unwrap(), 100, "chunk 0 intact");
        let err = reader.next_chunk(&mut buf).unwrap_err();
        let typed = VasError::from_io_chain(&err).expect("typed");
        assert!(
            matches!(typed, VasError::ChecksumMismatch { .. }),
            "{typed}"
        );
        assert!(err.to_string().contains("chunk 1"), "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn skip_policy_skips_and_reports_without_silent_loss() {
        let d = vas_data::GeolifeGenerator::with_size(300, 5).generate();
        let path = temp_path("skip.vaschunk");
        spill_dataset(&d, &path, 100).unwrap();
        let header_len = (HEADER_FIXED_LEN + d.name.len() + 4) as u64;
        let second_chunk = header_len + 8 + 2_400;
        crate::fault::flip_bit_in_file(&path, (second_chunk + 8 + 1_000) * 8 + 3).unwrap();

        let mut reader = ChunkedReader::open(&path)
            .unwrap()
            .with_corruption_policy(CorruptionPolicy::SkipChunks);
        let back = reader.read_dataset().unwrap();
        assert_eq!(back.points.len(), 200, "one 100-point chunk dropped");
        assert_bitwise_equal(&back.points[..100], &d.points[..100]);
        assert_bitwise_equal(&back.points[100..], &d.points[200..]);
        assert_eq!(reader.points_skipped(), 100);
        let reports = reader.corruption_reports();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].chunk_index, 1);
        assert_eq!(reports[0].points_lost, 100);
        assert_eq!(reports[0].byte_offset, second_chunk);
        assert_ne!(reports[0].stored_crc, reports[0].computed_crc);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn recorder_counts_decodes_and_journals_corruption_skips() {
        use std::sync::Arc;
        let d = vas_data::GeolifeGenerator::with_size(300, 5).generate();
        let path = temp_path("recorder.vaschunk");
        spill_dataset(&d, &path, 100).unwrap();
        let header_len = (HEADER_FIXED_LEN + d.name.len() + 4) as u64;
        let second_chunk = header_len + 8 + 2_400;
        crate::fault::flip_bit_in_file(&path, (second_chunk + 8 + 1_000) * 8 + 3).unwrap();

        let journal = Arc::new(vas_obs::Journal::in_memory());
        let recorder = Recorder::new(Arc::new(vas_obs::MetricsRegistry::new()))
            .with_journal(Arc::clone(&journal))
            .with_timing(true);
        let mut reader = ChunkedReader::open(&path)
            .unwrap()
            .with_corruption_policy(CorruptionPolicy::SkipChunks)
            .with_recorder(recorder.clone());
        reader.read_dataset().unwrap();

        let reg = recorder.registry();
        assert_eq!(reg.get(Counter::StreamChunksDecoded), 2);
        assert_eq!(reg.get(Counter::StreamCrcFailures), 1);
        assert_eq!(reg.get(Counter::StreamCorruptChunksSkipped), 1);
        assert_eq!(reg.get(Counter::StreamPointsSkipped), 100);
        assert!(journal.contains_event("corrupt_chunk_skipped"));
        // Timing was enabled, so every next_chunk call fed the decode phase.
        assert!(reg.snapshot().phase_calls(Phase::ChunkDecode) >= 3);

        // A second scan keeps accumulating lifetime totals while the
        // per-scan view resets.
        reader.reset().unwrap();
        reader.read_dataset().unwrap();
        assert_eq!(reader.points_skipped(), 100, "per-scan view");
        assert_eq!(reg.get(Counter::StreamPointsSkipped), 200, "lifetime");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn special_f64_values_round_trip_bit_exactly() {
        let weird = vec![
            Point::with_value(-0.0, 0.0, f64::MIN_POSITIVE),
            Point::with_value(5e-324, -5e-324, -0.0), // subnormals
            Point::with_value(f64::MAX, f64::MIN, 1e-308),
            Point::with_value(f64::INFINITY, f64::NEG_INFINITY, f64::NAN),
        ];
        let d = Dataset::from_points("weird", weird.clone());
        let path = temp_path("weird.vaschunk");
        spill_dataset(&d, &path, 3).unwrap();
        let back = ChunkedReader::open(&path).unwrap().read_dataset().unwrap();
        assert_bitwise_equal(&back.points, &weird);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn every_single_bit_flip_in_a_v2_file_is_detected() {
        // Exhaustive over a small file: flipping ANY single bit must make
        // open or read fail (magic, version, header CRC, chunk CRC — some
        // detector fires for every position).
        let d = vas_data::GeolifeGenerator::with_size(24, 13).generate();
        let path = temp_path("everybit.vaschunk");
        spill_dataset(&d, &path, 10).unwrap();
        let pristine = std::fs::read(&path).unwrap();
        for bit in 0..(pristine.len() as u64 * 8) {
            std::fs::write(&path, &pristine).unwrap();
            crate::fault::flip_bit_in_file(&path, bit).unwrap();
            let outcome = ChunkedReader::open(&path).and_then(|mut r| r.read_dataset());
            assert!(outcome.is_err(), "bit flip at {bit} went undetected");
        }
        std::fs::remove_file(path).ok();
    }
}
