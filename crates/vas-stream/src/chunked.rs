//! The chunked columnar spill format: `.vaschunk` files.
//!
//! A dataset on disk is a small provenance header followed by fixed-size
//! chunks of column arrays:
//!
//! ```text
//! offset  size  field
//!      0     8  magic  b"VASCHNK\0"
//!      8     4  format version (u32 LE, currently 1)
//!     12     1  dataset kind tag (see DatasetKind mapping below)
//!     13     3  reserved (zero)
//!     16     4  chunk size in points (u32 LE)
//!     20     8  total point count (u64 LE; patched by `finish`)
//!     28    32  bounding box min_x, min_y, max_x, max_y (4 × f64 LE)
//!     60     2  dataset name length (u16 LE)
//!     62     n  dataset name (UTF-8)
//! data:        chunks, each: m (u32 LE, 1 ≤ m ≤ chunk size),
//!              then m × f64 x, m × f64 y, m × f64 value (LE)
//! ```
//!
//! Columns beat row-interleaved triples here for the same reason they do in
//! any scan-heavy store: a consumer that only needs positions (the sampler
//! never reads `value` during the replacement test) walks two dense arrays,
//! and per-column compression/mmap become possible later without a format
//! break. All values are raw IEEE-754 bit patterns, so round-trips are exact
//! for `-0.0`, subnormals and NaN payloads alike.
//!
//! The writer streams: it stages one chunk of columns in memory, flushes it
//! when full, and back-patches the count and bounds into the fixed-offset
//! header fields on [`ChunkedWriter::finish`] — so a spill never knows the
//! total in advance and never holds more than one chunk. A crash before
//! `finish` leaves `count = 0` with data bytes present, which the reader
//! rejects as trailing garbage rather than silently serving a truncated
//! dataset.

use crate::source::PointSource;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;
use vas_data::{BoundingBox, Dataset, DatasetKind, Point};

const MAGIC: [u8; 8] = *b"VASCHNK\0";
const FORMAT_VERSION: u32 = 1;
/// Byte offset of the back-patched `count` field.
const COUNT_OFFSET: u64 = 20;
/// Bytes of header before the variable-length name.
const HEADER_FIXED_LEN: usize = 62;

fn kind_tag(kind: DatasetKind) -> u8 {
    match kind {
        DatasetKind::GeolifeSim => 0,
        DatasetKind::Splom => 1,
        DatasetKind::GaussianMixture => 2,
        DatasetKind::External => 3,
    }
}

fn tag_kind(tag: u8) -> Option<DatasetKind> {
    match tag {
        0 => Some(DatasetKind::GeolifeSim),
        1 => Some(DatasetKind::Splom),
        2 => Some(DatasetKind::GaussianMixture),
        3 => Some(DatasetKind::External),
        _ => None,
    }
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Parsed header of a chunked columnar file.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkedHeader {
    /// Format version (currently always 1).
    pub version: u32,
    /// Provenance of the spilled dataset.
    pub kind: DatasetKind,
    /// Nominal chunk size: every chunk but the last holds exactly this many
    /// points.
    pub chunk_size: usize,
    /// Total points in the file.
    pub count: u64,
    /// Spatial extent of the spilled points, accumulated in stream order
    /// (bit-identical to `BoundingBox::from_points` over the same stream).
    pub bounds: BoundingBox,
    /// Dataset name.
    pub name: String,
}

/// Summary returned by [`ChunkedWriter::finish`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkedSummary {
    /// Points written.
    pub count: u64,
    /// Extent of the written points.
    pub bounds: BoundingBox,
    /// Chunks flushed (including the final partial one).
    pub chunks: u64,
    /// Total file size in bytes.
    pub bytes: u64,
}

/// Streaming writer for the chunked columnar format.
///
/// Stages at most one chunk of columns (`3 × chunk_size` f64s) in memory.
#[derive(Debug)]
pub struct ChunkedWriter {
    file: BufWriter<File>,
    chunk_size: usize,
    xs: Vec<f64>,
    ys: Vec<f64>,
    vs: Vec<f64>,
    /// Reusable byte scratch: one column is encoded here and written with a
    /// single `write_all` (the mirror of the reader's `col_buf`).
    col_buf: Vec<u8>,
    count: u64,
    chunks: u64,
    bounds: BoundingBox,
}

impl ChunkedWriter {
    /// Creates `path` (truncating any existing file) and writes the header.
    ///
    /// # Panics
    /// Panics if `chunk_size` is zero or exceeds `u32::MAX`, or if `name` is
    /// longer than a `u16` length prefix can record.
    pub fn create(
        path: impl AsRef<Path>,
        name: &str,
        kind: DatasetKind,
        chunk_size: usize,
    ) -> io::Result<Self> {
        assert!(
            chunk_size > 0 && chunk_size <= u32::MAX as usize,
            "chunk size must be in 1..=u32::MAX, got {chunk_size}"
        );
        assert!(
            name.len() <= u16::MAX as usize,
            "dataset name too long for the header ({} bytes)",
            name.len()
        );
        let mut file = BufWriter::new(File::create(path)?);
        file.write_all(&MAGIC)?;
        file.write_all(&FORMAT_VERSION.to_le_bytes())?;
        file.write_all(&[kind_tag(kind), 0, 0, 0])?;
        file.write_all(&(chunk_size as u32).to_le_bytes())?;
        // Count and bounds are placeholders until `finish` patches them.
        file.write_all(&0u64.to_le_bytes())?;
        for v in [
            BoundingBox::EMPTY.min_x,
            BoundingBox::EMPTY.min_y,
            BoundingBox::EMPTY.max_x,
            BoundingBox::EMPTY.max_y,
        ] {
            file.write_all(&v.to_le_bytes())?;
        }
        file.write_all(&(name.len() as u16).to_le_bytes())?;
        file.write_all(name.as_bytes())?;
        Ok(Self {
            file,
            chunk_size,
            xs: Vec::with_capacity(chunk_size),
            ys: Vec::with_capacity(chunk_size),
            vs: Vec::with_capacity(chunk_size),
            col_buf: Vec::new(),
            count: 0,
            chunks: 0,
            bounds: BoundingBox::EMPTY,
        })
    }

    /// Appends one point, flushing the staged chunk to disk when it fills.
    pub fn push(&mut self, p: Point) -> io::Result<()> {
        self.xs.push(p.x);
        self.ys.push(p.y);
        self.vs.push(p.value);
        self.bounds.extend(&p);
        self.count += 1;
        if self.xs.len() == self.chunk_size {
            self.flush_chunk()?;
        }
        Ok(())
    }

    /// Appends a slice of points.
    pub fn write_points(&mut self, points: &[Point]) -> io::Result<()> {
        for p in points {
            self.push(*p)?;
        }
        Ok(())
    }

    /// Points currently staged in memory (bounded by the chunk size).
    pub fn staged_len(&self) -> usize {
        self.xs.len()
    }

    /// Points written so far (staged included).
    pub fn count(&self) -> u64 {
        self.count
    }

    fn flush_chunk(&mut self) -> io::Result<()> {
        if self.xs.is_empty() {
            return Ok(());
        }
        self.file.write_all(&(self.xs.len() as u32).to_le_bytes())?;
        let Self {
            file,
            xs,
            ys,
            vs,
            col_buf,
            ..
        } = self;
        for column in [&*xs, &*ys, &*vs] {
            col_buf.clear();
            for v in column {
                col_buf.extend_from_slice(&v.to_le_bytes());
            }
            file.write_all(col_buf)?;
        }
        self.chunks += 1;
        self.xs.clear();
        self.ys.clear();
        self.vs.clear();
        Ok(())
    }

    /// Flushes the final partial chunk and back-patches the header's count
    /// and bounds fields.
    pub fn finish(mut self) -> io::Result<ChunkedSummary> {
        self.flush_chunk()?;
        self.file.flush()?;
        let file = self.file.get_mut();
        let bytes = file.seek(SeekFrom::End(0))?;
        file.seek(SeekFrom::Start(COUNT_OFFSET))?;
        file.write_all(&self.count.to_le_bytes())?;
        for v in [
            self.bounds.min_x,
            self.bounds.min_y,
            self.bounds.max_x,
            self.bounds.max_y,
        ] {
            file.write_all(&v.to_le_bytes())?;
        }
        file.sync_data()?;
        Ok(ChunkedSummary {
            count: self.count,
            bounds: self.bounds,
            chunks: self.chunks,
            bytes,
        })
    }
}

/// Chunk-iterating reader for the chunked columnar format; also a
/// [`PointSource`], which is how spilled datasets feed the sampler.
///
/// Resident memory per chunk: the caller's point buffer plus one column of
/// scratch bytes.
#[derive(Debug)]
pub struct ChunkedReader {
    file: BufReader<File>,
    header: ChunkedHeader,
    data_offset: u64,
    read: u64,
    col_buf: Vec<u8>,
}

impl ChunkedReader {
    /// Opens `path` and parses + validates the header.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref();
        let mut file = BufReader::new(File::open(path)?);
        let mut fixed = [0u8; HEADER_FIXED_LEN];
        file.read_exact(&mut fixed)
            .map_err(|_| invalid(format!("{}: file too short for a header", path.display())))?;
        if fixed[0..8] != MAGIC {
            return Err(invalid(format!(
                "{}: not a chunked dataset file (bad magic)",
                path.display()
            )));
        }
        let version = u32::from_le_bytes(fixed[8..12].try_into().unwrap());
        if version != FORMAT_VERSION {
            return Err(invalid(format!(
                "{}: unsupported chunked format version {version}",
                path.display()
            )));
        }
        let kind = tag_kind(fixed[12]).ok_or_else(|| {
            invalid(format!(
                "{}: unknown dataset kind tag {}",
                path.display(),
                fixed[12]
            ))
        })?;
        let chunk_size = u32::from_le_bytes(fixed[16..20].try_into().unwrap()) as usize;
        if chunk_size == 0 {
            return Err(invalid(format!("{}: zero chunk size", path.display())));
        }
        let count = u64::from_le_bytes(fixed[20..28].try_into().unwrap());
        let mut bb = [0.0f64; 4];
        for (i, v) in bb.iter_mut().enumerate() {
            *v = f64::from_le_bytes(fixed[28 + 8 * i..36 + 8 * i].try_into().unwrap());
        }
        let name_len = u16::from_le_bytes(fixed[60..62].try_into().unwrap()) as usize;
        let mut name_bytes = vec![0u8; name_len];
        file.read_exact(&mut name_bytes)
            .map_err(|_| invalid(format!("{}: truncated header name", path.display())))?;
        let name = String::from_utf8(name_bytes)
            .map_err(|_| invalid(format!("{}: header name is not UTF-8", path.display())))?;
        Ok(Self {
            file,
            header: ChunkedHeader {
                version,
                kind,
                chunk_size,
                count,
                bounds: BoundingBox::new(bb[0], bb[1], bb[2], bb[3]),
                name,
            },
            data_offset: (HEADER_FIXED_LEN + name_len) as u64,
            read: 0,
            col_buf: Vec::new(),
        })
    }

    /// The parsed file header.
    pub fn header(&self) -> &ChunkedHeader {
        &self.header
    }

    /// Points consumed so far in the current scan.
    pub fn points_read(&self) -> u64 {
        self.read
    }

    fn read_column(&mut self, m: usize) -> io::Result<()> {
        self.col_buf.resize(m * 8, 0);
        self.file.read_exact(&mut self.col_buf).map_err(|_| {
            invalid(format!(
                "truncated chunk in {:?}: expected {} column bytes",
                self.header.name,
                m * 8
            ))
        })
    }

    /// Reads the next chunk into `buf` (cleared first). `Ok(0)` at end of
    /// data — at which point the file must hold exactly `count` points and
    /// no trailing bytes.
    pub fn next_chunk(&mut self, buf: &mut Vec<Point>) -> io::Result<usize> {
        buf.clear();
        let mut len_bytes = [0u8; 4];
        match self.file.read(&mut len_bytes)? {
            0 => {
                // Clean end of file: every promised point must have arrived.
                if self.read != self.header.count {
                    return Err(invalid(format!(
                        "truncated chunked file {:?}: header promises {} points, found {}",
                        self.header.name, self.header.count, self.read
                    )));
                }
                return Ok(0);
            }
            4 => {}
            n => {
                self.file
                    .read_exact(&mut len_bytes[n..])
                    .map_err(|_| invalid("truncated chunk length"))?;
            }
        }
        let m = u32::from_le_bytes(len_bytes) as usize;
        if m == 0 || m > self.header.chunk_size {
            return Err(invalid(format!(
                "corrupt chunk length {m} (chunk size {})",
                self.header.chunk_size
            )));
        }
        if self.read + m as u64 > self.header.count {
            return Err(invalid(format!(
                "chunked file {:?} holds more points than its header promises ({})",
                self.header.name, self.header.count
            )));
        }
        self.read_column(m)?;
        buf.extend(
            self.col_buf
                .chunks_exact(8)
                .map(|b| Point::new(f64::from_le_bytes(b.try_into().unwrap()), 0.0)),
        );
        self.read_column(m)?;
        for (p, b) in buf.iter_mut().zip(self.col_buf.chunks_exact(8)) {
            p.y = f64::from_le_bytes(b.try_into().unwrap());
        }
        self.read_column(m)?;
        for (p, b) in buf.iter_mut().zip(self.col_buf.chunks_exact(8)) {
            p.value = f64::from_le_bytes(b.try_into().unwrap());
        }
        self.read += m as u64;
        Ok(m)
    }

    /// Rewinds to the first chunk.
    pub fn reset(&mut self) -> io::Result<()> {
        self.file.seek(SeekFrom::Start(self.data_offset))?;
        self.read = 0;
        Ok(())
    }

    /// Materializes the whole file as a [`Dataset`] (tests / small files
    /// only).
    pub fn read_dataset(&mut self) -> io::Result<Dataset> {
        self.reset()?;
        let mut points = Vec::new();
        let mut buf = Vec::new();
        while self.next_chunk(&mut buf)? > 0 {
            points.extend_from_slice(&buf);
        }
        Ok(Dataset::new(
            self.header.name.clone(),
            self.header.kind,
            points,
        ))
    }
}

impl PointSource for ChunkedReader {
    fn name(&self) -> &str {
        &self.header.name
    }

    fn kind(&self) -> DatasetKind {
        self.header.kind
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.header.count)
    }

    fn chunk_capacity(&self) -> usize {
        self.header.chunk_size
    }

    fn next_chunk(&mut self, buf: &mut Vec<Point>) -> io::Result<usize> {
        ChunkedReader::next_chunk(self, buf)
    }

    fn reset(&mut self) -> io::Result<()> {
        ChunkedReader::reset(self)
    }
}

/// Spills every remaining point of `source` into a chunked file at `path`,
/// using the source's own name, kind and chunk size. Resident memory: one
/// source chunk plus one staged writer chunk.
pub fn spill_source<S: PointSource>(
    source: &mut S,
    path: impl AsRef<Path>,
) -> io::Result<ChunkedSummary> {
    let mut writer =
        ChunkedWriter::create(&path, source.name(), source.kind(), source.chunk_capacity())?;
    let mut buf = Vec::new();
    while source.next_chunk(&mut buf)? > 0 {
        writer.write_points(&buf)?;
    }
    writer.finish()
}

/// Spills an in-memory dataset into a chunked file at `path`.
pub fn spill_dataset(
    dataset: &Dataset,
    path: impl AsRef<Path>,
    chunk_size: usize,
) -> io::Result<ChunkedSummary> {
    let mut writer = ChunkedWriter::create(&path, &dataset.name, dataset.kind, chunk_size)?;
    writer.write_points(&dataset.points)?;
    writer.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::DatasetSource;
    use std::path::PathBuf;

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("vas-chunked-{}-{name}", std::process::id()))
    }

    fn assert_bitwise_equal(a: &[Point], b: &[Point]) {
        assert_eq!(a.len(), b.len());
        for (i, (p, q)) in a.iter().zip(b).enumerate() {
            assert!(
                p.x.to_bits() == q.x.to_bits()
                    && p.y.to_bits() == q.y.to_bits()
                    && p.value.to_bits() == q.value.to_bits(),
                "point {i}: {p:?} vs {q:?}"
            );
        }
    }

    #[test]
    fn round_trip_preserves_points_and_provenance() {
        let d = vas_data::GeolifeGenerator::with_size(5_000, 7).generate();
        let path = temp_path("roundtrip.vaschunk");
        let summary = spill_dataset(&d, &path, 777).unwrap();
        assert_eq!(summary.count, 5_000);
        assert_eq!(summary.chunks, 7); // ceil(5000 / 777)
        assert_eq!(summary.bounds, d.bounds());

        let mut reader = ChunkedReader::open(&path).unwrap();
        assert_eq!(reader.header().name, d.name);
        assert_eq!(reader.header().kind, DatasetKind::GeolifeSim);
        assert_eq!(reader.header().count, 5_000);
        assert_eq!(reader.header().chunk_size, 777);
        assert_eq!(reader.header().bounds, d.bounds());
        let back = reader.read_dataset().unwrap();
        assert_bitwise_equal(&back.points, &d.points);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn reader_is_a_resettable_point_source() {
        let d = vas_data::GeolifeGenerator::with_size(1_000, 11).generate();
        let path = temp_path("source.vaschunk");
        spill_dataset(&d, &path, 128).unwrap();
        let mut reader = ChunkedReader::open(&path).unwrap();
        assert_eq!(PointSource::len_hint(&reader), Some(1_000));
        assert_eq!(PointSource::chunk_capacity(&reader), 128);
        assert_eq!(PointSource::kind(&reader), DatasetKind::GeolifeSim);
        let first = reader.read_all().unwrap();
        PointSource::reset(&mut reader).unwrap();
        let second = reader.read_all().unwrap();
        assert_bitwise_equal(&first, &second);
        assert_bitwise_equal(&first, &d.points);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn spill_source_matches_spill_dataset() {
        let d = vas_data::GeolifeGenerator::with_size(2_000, 3).generate();
        let via_dataset = temp_path("direct.vaschunk");
        let via_source = temp_path("streamed.vaschunk");
        spill_dataset(&d, &via_dataset, 256).unwrap();
        let mut source = DatasetSource::with_chunk_size(&d, 256);
        spill_source(&mut source, &via_source).unwrap();
        let a = std::fs::read(&via_dataset).unwrap();
        let b = std::fs::read(&via_source).unwrap();
        assert_eq!(a, b, "streamed spill must be byte-identical");
        std::fs::remove_file(via_dataset).ok();
        std::fs::remove_file(via_source).ok();
    }

    #[test]
    fn empty_dataset_round_trips() {
        let d = Dataset::from_points("empty", vec![]);
        let path = temp_path("empty.vaschunk");
        let summary = spill_dataset(&d, &path, 16).unwrap();
        assert_eq!(summary.count, 0);
        assert_eq!(summary.chunks, 0);
        let mut reader = ChunkedReader::open(&path).unwrap();
        assert!(reader.header().bounds.is_empty());
        assert!(reader.read_dataset().unwrap().is_empty());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn truncated_file_is_an_error() {
        let d = vas_data::GeolifeGenerator::with_size(500, 5).generate();
        let path = temp_path("truncated.vaschunk");
        spill_dataset(&d, &path, 100).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // Cut the file mid-chunk.
        std::fs::write(&path, &bytes[..bytes.len() - 37]).unwrap();
        let mut reader = ChunkedReader::open(&path).unwrap();
        let err = reader.read_dataset().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        let d = vas_data::GeolifeGenerator::with_size(50, 5).generate();
        let path = temp_path("trailing.vaschunk");
        spill_dataset(&d, &path, 50).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[1, 2, 3, 4, 5]);
        std::fs::write(&path, &bytes).unwrap();
        let mut reader = ChunkedReader::open(&path).unwrap();
        assert!(reader.read_dataset().is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn unfinished_spill_is_rejected() {
        // A writer dropped without `finish` leaves count = 0 in the header
        // but chunk bytes in the file: the reader must refuse it.
        let path = temp_path("unfinished.vaschunk");
        {
            let mut w = ChunkedWriter::create(&path, "crashy", DatasetKind::External, 4).unwrap();
            for i in 0..9 {
                w.push(Point::new(i as f64, 0.0)).unwrap();
            }
            // w dropped here without finish(); two full chunks are on disk.
        }
        let mut reader = ChunkedReader::open(&path).unwrap();
        assert_eq!(reader.header().count, 0);
        assert!(reader.read_dataset().is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn bad_magic_and_bad_version_are_rejected() {
        let path = temp_path("badmagic.vaschunk");
        std::fs::write(
            &path,
            b"NOTCHNK\0aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa",
        )
        .unwrap();
        assert!(ChunkedReader::open(&path).is_err());

        let d = Dataset::from_points("v", vec![Point::new(1.0, 2.0)]);
        spill_dataset(&d, &path, 4).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8] = 99; // version
        std::fs::write(&path, &bytes).unwrap();
        let err = ChunkedReader::open(&path).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn special_f64_values_round_trip_bit_exactly() {
        let weird = vec![
            Point::with_value(-0.0, 0.0, f64::MIN_POSITIVE),
            Point::with_value(5e-324, -5e-324, -0.0), // subnormals
            Point::with_value(f64::MAX, f64::MIN, 1e-308),
            Point::with_value(f64::INFINITY, f64::NEG_INFINITY, f64::NAN),
        ];
        let d = Dataset::from_points("weird", weird.clone());
        let path = temp_path("weird.vaschunk");
        spill_dataset(&d, &path, 3).unwrap();
        let back = ChunkedReader::open(&path).unwrap().read_dataset().unwrap();
        assert_bitwise_equal(&back.points, &weird);
        std::fs::remove_file(path).ok();
    }
}
