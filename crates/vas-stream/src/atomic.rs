//! Crash-safe file replacement: temp file + fsync + rename + directory fsync.
//!
//! Every durable artifact in the workspace — catalog manifests, spilled
//! sample chunks, `.vascheckpt` checkpoints — is replaced through
//! [`write_atomic`] so that a crash at *any* instant leaves either the old
//! complete file or the new complete file, never a torn hybrid:
//!
//! 1. the bytes are written to a sibling temp file (`.tmp.<pid>` suffix, same
//!    directory so the rename cannot cross filesystems),
//! 2. the temp file is `fsync`ed (data + metadata reach the platter before
//!    the rename makes them reachable),
//! 3. `rename` replaces the target — atomic on POSIX filesystems,
//! 4. the parent directory is `fsync`ed so the rename itself survives a
//!    power cut.
//!
//! Step 4 is best-effort: some platforms/filesystems refuse `File::open` on
//! a directory or `fsync` on the handle; the write is still atomic with
//! respect to crashes of *this process*, which is the property the fault
//! matrix exercises.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// The sibling temp path `write_atomic` stages into for `path`.
fn staging_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(format!(".tmp.{}", std::process::id()));
    path.with_file_name(name)
}

/// Atomically replaces `path` with `bytes`: write temp sibling, fsync,
/// rename over the target, fsync the directory.
///
/// On any error the temp file is removed (best-effort) and the target is
/// untouched.
pub fn write_atomic(path: impl AsRef<Path>, bytes: &[u8]) -> io::Result<()> {
    let path = path.as_ref();
    let tmp = staging_path(path);
    let result = (|| {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        fs::rename(&tmp, path)?;
        sync_parent_dir(path);
        Ok(())
    })();
    if result.is_err() {
        fs::remove_file(&tmp).ok();
    }
    result
}

/// Promotes an already-written-and-synced temp file over `path` (the tail of
/// the `write_atomic` protocol, for writers that stream into the temp file
/// themselves — e.g. spilled sample chunks).
///
/// The caller must have `sync_all`'d `tmp` first; this performs the rename
/// and the parent-directory fsync.
pub fn commit_staged(tmp: impl AsRef<Path>, path: impl AsRef<Path>) -> io::Result<()> {
    let path = path.as_ref();
    fs::rename(tmp.as_ref(), path)?;
    sync_parent_dir(path);
    Ok(())
}

/// A sibling staging path for callers that stream into a temp file and then
/// [`commit_staged`] it.
pub fn staging_sibling(path: impl AsRef<Path>) -> PathBuf {
    staging_path(path.as_ref())
}

fn sync_parent_dir(path: &Path) {
    // Best-effort durability for the rename itself; see the module docs.
    if let Some(parent) = path.parent() {
        let parent = if parent.as_os_str().is_empty() {
            Path::new(".")
        } else {
            parent
        };
        if let Ok(dir) = File::open(parent) {
            dir.sync_all().ok();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("vas-atomic-{}-{name}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_and_replaces() {
        let dir = temp_dir("replace");
        let target = dir.join("file.bin");
        write_atomic(&target, b"first").unwrap();
        assert_eq!(fs::read(&target).unwrap(), b"first");
        write_atomic(&target, b"second, longer contents").unwrap();
        assert_eq!(fs::read(&target).unwrap(), b"second, longer contents");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn leaves_no_temp_file_behind() {
        let dir = temp_dir("clean");
        write_atomic(dir.join("a.bin"), b"payload").unwrap();
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "stray staging files: {leftovers:?}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_write_preserves_the_old_file() {
        let dir = temp_dir("preserve");
        let target = dir.join("keep.bin");
        write_atomic(&target, b"precious").unwrap();
        // Writing into a directory that does not exist fails before rename.
        let bad = dir.join("no-such-subdir").join("x.bin");
        assert!(write_atomic(&bad, b"nope").is_err());
        assert_eq!(fs::read(&target).unwrap(), b"precious");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn commit_staged_promotes_a_streamed_temp_file() {
        let dir = temp_dir("staged");
        let target = dir.join("streamed.bin");
        let tmp = staging_sibling(&target);
        fs::write(&tmp, b"streamed bytes").unwrap();
        commit_staged(&tmp, &target).unwrap();
        assert_eq!(fs::read(&target).unwrap(), b"streamed bytes");
        assert!(!tmp.exists());
        fs::remove_dir_all(&dir).ok();
    }
}
