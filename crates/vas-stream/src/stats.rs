//! One-pass streaming statistics over a [`PointSource`].
//!
//! The sampler's kernel bandwidth follows the paper's rule — dataset extent
//! diagonal / 100 — which an in-memory build reads off
//! `BoundingBox::from_points`. Out-of-core builds get the same number from a
//! single streaming scan: [`StreamStats`] folds the bounds in stream order
//! (bit-identical to `from_points` over the same stream) and keeps
//! Welford-style moments of the `value` attribute as a by-product, so a
//! normalization pre-pass never needs a second algorithm.

use crate::source::PointSource;
use std::io;
use vas_data::{BoundingBox, Point};

/// Accumulated single-pass statistics of a point stream.
#[derive(Debug, Clone, Copy)]
pub struct StreamStats {
    /// Points seen.
    pub count: u64,
    /// Spatial extent, folded with `BoundingBox::extend` in stream order —
    /// bit-identical to `BoundingBox::from_points` over the same points.
    pub bounds: BoundingBox,
    /// Smallest `value` attribute seen (`+∞` before any point).
    pub value_min: f64,
    /// Largest `value` attribute seen (`-∞` before any point).
    pub value_max: f64,
    /// Points with a non-finite coordinate or value (still folded into
    /// `bounds`, exactly as `BoundingBox::from_points` would).
    pub non_finite: u64,
    mean: f64,
    m2: f64,
}

impl Default for StreamStats {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            bounds: BoundingBox::EMPTY,
            value_min: f64::INFINITY,
            value_max: f64::NEG_INFINITY,
            non_finite: 0,
            mean: 0.0,
            m2: 0.0,
        }
    }

    /// Folds one point in.
    pub fn push(&mut self, p: &Point) {
        self.count += 1;
        self.bounds.extend(p);
        if !(p.is_finite() && p.value.is_finite()) {
            self.non_finite += 1;
        }
        self.value_min = self.value_min.min(p.value);
        self.value_max = self.value_max.max(p.value);
        // Welford's online update: numerically stable at any stream length.
        let delta = p.value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (p.value - self.mean);
    }

    /// Merges the statistics of a **later** split of the same stream into
    /// this accumulator — the ordered fan-in step of a parallel stats scan:
    /// fold each chunk independently, then merge left-to-right in chunk
    /// order.
    ///
    /// `count`, `bounds`, `value_min`/`value_max` and `non_finite` merge
    /// **bit-identically** to the one-pass fold over the concatenated stream
    /// for any split (min/max and integer addition re-associate exactly) —
    /// these are the fields the kernel-bandwidth rule reads, so a parallel
    /// pre-pass resolves the same ε as a sequential one.
    ///
    /// The `value` moments use Chan et al.'s exact pairwise formula. When
    /// `other` holds a single point the update specializes to the identical
    /// floating-point operations [`push`](Self::push) performs, so a
    /// merge-fold over single-point splits *is* the one-pass fold
    /// bit-for-bit; for coarser splits the pairwise mean/M2 are exact in
    /// real arithmetic and agree with the one-pass fold to rounding (both
    /// properties are property-tested).
    pub fn merge(&mut self, other: &StreamStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.bounds = self.bounds.union(&other.bounds);
        self.value_min = self.value_min.min(other.value_min);
        self.value_max = self.value_max.max(other.value_max);
        self.non_finite += other.non_finite;
        let n1 = self.count as f64;
        let n = (self.count + other.count) as f64;
        let delta = other.mean - self.mean;
        if other.count == 1 {
            // Replay the exact `push` update: mean += delta / n;
            // m2 += delta * (value - new_mean). (`other.m2` is 0 and
            // `other.mean` is the point's value.)
            self.count += 1;
            self.mean += delta / n;
            self.m2 += delta * (other.mean - self.mean);
        } else {
            let n2 = other.count as f64;
            self.count += other.count;
            self.mean += delta * n2 / n;
            self.m2 += other.m2 + delta * delta * (n1 * n2 / n);
        }
    }

    /// Mean of the `value` attribute (0 for an empty stream, matching
    /// `Dataset::mean_value`).
    pub fn value_mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance of the `value` attribute (0 for streams shorter
    /// than two points).
    pub fn value_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation of the `value` attribute.
    pub fn value_std(&self) -> f64 {
        self.value_variance().sqrt()
    }

    /// The paper's bandwidth rule applied to the streamed extent: diagonal /
    /// 100, falling back to 1 for degenerate extents — the exact branch
    /// `GaussianKernel::for_points` takes, so streaming and in-memory builds
    /// resolve the same ε.
    pub fn epsilon_hint(&self) -> f64 {
        let diag = self.bounds.diagonal();
        if diag.is_finite() && diag > 0.0 {
            diag / 100.0
        } else {
            1.0
        }
    }
}

/// Scans every remaining point of `source` into a [`StreamStats`]. The
/// caller decides the scan window (typically `reset` → `scan_stats` →
/// `reset`).
pub fn scan_stats<S: PointSource>(source: &mut S) -> io::Result<StreamStats> {
    let mut stats = StreamStats::new();
    source.for_each_point(|p| stats.push(&p))?;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::DatasetSource;
    use proptest::prelude::*;
    use vas_data::{Dataset, GeolifeGenerator};

    #[test]
    fn bounds_match_from_points_bitwise() {
        let d = GeolifeGenerator::with_size(3_000, 19).generate();
        let mut source = DatasetSource::with_chunk_size(&d, 97);
        let stats = scan_stats(&mut source).unwrap();
        let reference = d.bounds();
        assert_eq!(stats.count, 3_000);
        for (a, b) in [
            (stats.bounds.min_x, reference.min_x),
            (stats.bounds.min_y, reference.min_y),
            (stats.bounds.max_x, reference.max_x),
            (stats.bounds.max_y, reference.max_y),
        ] {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn welford_moments_match_two_pass_reference() {
        let d = GeolifeGenerator::with_size(5_000, 23).generate();
        let mut source = DatasetSource::new(&d);
        let stats = scan_stats(&mut source).unwrap();
        let mean = d.mean_value();
        let var = d
            .points
            .iter()
            .map(|p| (p.value - mean).powi(2))
            .sum::<f64>()
            / d.len() as f64;
        assert!((stats.value_mean() - mean).abs() < 1e-9 * mean.abs().max(1.0));
        assert!((stats.value_variance() - var).abs() < 1e-6 * var.max(1.0));
        assert!(stats.value_min <= mean && mean <= stats.value_max);
        assert_eq!(stats.non_finite, 0);
    }

    #[test]
    fn empty_stream_is_degenerate_but_defined() {
        let d = Dataset::from_points("empty", vec![]);
        let stats = scan_stats(&mut DatasetSource::new(&d)).unwrap();
        assert_eq!(stats.count, 0);
        assert!(stats.bounds.is_empty());
        assert_eq!(stats.value_mean(), 0.0);
        assert_eq!(stats.value_variance(), 0.0);
        assert_eq!(stats.epsilon_hint(), 1.0);
    }

    #[test]
    fn epsilon_hint_matches_the_paper_rule() {
        let d = GeolifeGenerator::with_size(2_000, 29).generate();
        let stats = scan_stats(&mut DatasetSource::new(&d)).unwrap();
        let expected = d.bounds().diagonal() / 100.0;
        assert_eq!(stats.epsilon_hint().to_bits(), expected.to_bits());
        // Degenerate extent (single repeated position) falls back to 1.
        let single = Dataset::from_points("one", vec![Point::new(2.0, 3.0); 5]);
        let s = scan_stats(&mut DatasetSource::new(&single)).unwrap();
        assert_eq!(s.epsilon_hint(), 1.0);
    }

    fn push_all(points: &[Point]) -> StreamStats {
        let mut s = StreamStats::new();
        for p in points {
            s.push(p);
        }
        s
    }

    proptest::proptest! {
        #[test]
        fn pairwise_merge_matches_one_pass_fold_on_arbitrary_splits(
            raw in proptest::collection::vec(
                (-1.0e6f64..1.0e6, -1.0e6f64..1.0e6, -1.0e3f64..1.0e3),
                1..120,
            ),
            split_seed in 0usize..1_000,
        ) {
            let points: Vec<Point> =
                raw.iter().map(|&(x, y, v)| Point::with_value(x, y, v)).collect();
            let reference = push_all(&points);

            // Split into chunks whose sizes are derived from the seed, fold
            // each independently, merge left-to-right in chunk order.
            let mut merged = StreamStats::new();
            let mut start = 0usize;
            let mut step = split_seed;
            while start < points.len() {
                let len = 1 + step % 7;
                step = step.wrapping_mul(31).wrapping_add(17);
                let end = (start + len).min(points.len());
                merged.merge(&push_all(&points[start..end]));
                start = end;
            }

            // The split-invariant fields are pinned bitwise: these feed the
            // kernel-bandwidth rule, where a single flipped bit would change
            // every downstream replacement decision.
            prop_assert_eq!(merged.count, reference.count);
            prop_assert_eq!(merged.non_finite, reference.non_finite);
            prop_assert_eq!(merged.bounds.min_x.to_bits(), reference.bounds.min_x.to_bits());
            prop_assert_eq!(merged.bounds.min_y.to_bits(), reference.bounds.min_y.to_bits());
            prop_assert_eq!(merged.bounds.max_x.to_bits(), reference.bounds.max_x.to_bits());
            prop_assert_eq!(merged.bounds.max_y.to_bits(), reference.bounds.max_y.to_bits());
            prop_assert_eq!(merged.value_min.to_bits(), reference.value_min.to_bits());
            prop_assert_eq!(merged.value_max.to_bits(), reference.value_max.to_bits());
            prop_assert_eq!(
                merged.epsilon_hint().to_bits(),
                reference.epsilon_hint().to_bits()
            );
            // The pairwise moments are exact in real arithmetic; require
            // tight relative agreement with the one-pass fold.
            let mean_scale = reference.value_mean().abs().max(1.0);
            prop_assert!((merged.value_mean() - reference.value_mean()).abs() <= 1e-9 * mean_scale);
            let var_scale = reference.value_variance().max(1e-9);
            prop_assert!(
                (merged.value_variance() - reference.value_variance()).abs() <= 1e-6 * var_scale
            );
        }

        #[test]
        fn single_point_merges_are_the_one_pass_fold_bit_for_bit(
            raw in proptest::collection::vec(
                (-1.0e6f64..1.0e6, -1.0e6f64..1.0e6, -1.0e3f64..1.0e3),
                1..60,
            ),
        ) {
            // Merging a stream one single-point split at a time must replay
            // `push` exactly, moments included — this is what makes `merge` a
            // strict generalization of the sequential fold rather than a
            // second algorithm with its own rounding.
            let points: Vec<Point> =
                raw.iter().map(|&(x, y, v)| Point::with_value(x, y, v)).collect();
            let reference = push_all(&points);
            let mut merged = StreamStats::new();
            for p in &points {
                let mut single = StreamStats::new();
                single.push(p);
                merged.merge(&single);
            }
            prop_assert_eq!(merged.count, reference.count);
            prop_assert_eq!(merged.value_mean().to_bits(), reference.value_mean().to_bits());
            prop_assert_eq!(
                merged.value_variance().to_bits(),
                reference.value_variance().to_bits()
            );
        }
    }

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        let d = GeolifeGenerator::with_size(500, 31).generate();
        let full = push_all(&d.points);
        let mut left = full;
        left.merge(&StreamStats::new());
        assert_eq!(left.count, full.count);
        assert_eq!(left.value_mean().to_bits(), full.value_mean().to_bits());
        let mut right = StreamStats::new();
        right.merge(&full);
        assert_eq!(right.count, full.count);
        assert_eq!(right.value_mean().to_bits(), full.value_mean().to_bits());
        assert_eq!(
            right.value_variance().to_bits(),
            full.value_variance().to_bits()
        );
    }

    #[test]
    fn non_finite_points_are_counted_and_folded() {
        let d = Dataset::from_points(
            "nf",
            vec![
                Point::with_value(0.0, 0.0, 1.0),
                Point::new(f64::NAN, 1.0),
                Point::with_value(2.0, 2.0, f64::INFINITY),
            ],
        );
        let stats = scan_stats(&mut DatasetSource::new(&d)).unwrap();
        assert_eq!(stats.non_finite, 2);
        // Bounds still folded exactly like BoundingBox::from_points.
        let reference = d.bounds();
        assert_eq!(stats.bounds.min_x.to_bits(), reference.min_x.to_bits());
        assert_eq!(stats.bounds.max_x.to_bits(), reference.max_x.to_bits());
    }
}
