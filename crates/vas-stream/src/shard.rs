//! [`ShardSource`]: a bounded-memory shard-filtering view over any
//! [`PointSource`].
//!
//! The sharded build path (`vas-core::shard`) normally scatters chunks to
//! shard workers through in-process queues, but some consumers want a plain
//! `PointSource` that yields *one shard's* sub-stream — replaying a single
//! shard after a quality regression, feeding a shard to an out-of-process
//! worker, or unit-testing a shard in isolation. `ShardSource` is that
//! view: it pulls chunks from the inner source and keeps only the points
//! the [`ShardPartitioner`] assigns to its shard, holding at most one inner
//! chunk in memory.
//!
//! Because the partitioner is a pure per-point function and the inner
//! source guarantees a stable point order across `reset`s, a shard
//! sub-stream is itself a well-behaved `PointSource`: same points, same
//! order, every scan — so the determinism contract composes.

use crate::source::PointSource;
use std::io;
use vas_data::Point;
use vas_spatial::ShardPartitioner;

/// A `PointSource` adapter yielding exactly the points of one shard, in
/// inner-source order, in bounded memory (one inner chunk at a time).
#[derive(Debug)]
pub struct ShardSource<S> {
    inner: S,
    partitioner: ShardPartitioner,
    shard: usize,
    name: String,
    raw: Vec<Point>,
}

impl<S: PointSource> ShardSource<S> {
    /// Wraps `inner`, keeping only points `partitioner` assigns to `shard`.
    ///
    /// # Panics
    /// Panics when `shard` is out of range for the partitioner.
    pub fn new(inner: S, partitioner: ShardPartitioner, shard: usize) -> Self {
        assert!(
            shard < partitioner.shards(),
            "shard {shard} out of range for {} shards",
            partitioner.shards()
        );
        let name = format!("{}[shard {}/{}]", inner.name(), shard, partitioner.shards());
        Self {
            inner,
            partitioner,
            shard,
            name,
            raw: Vec::new(),
        }
    }

    /// The wrapped source.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Which shard this view yields.
    pub fn shard(&self) -> usize {
        self.shard
    }
}

impl<S: PointSource> PointSource for ShardSource<S> {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> vas_data::DatasetKind {
        self.inner.kind()
    }

    fn len_hint(&self) -> Option<u64> {
        // The shard's share is data-dependent; only an upper bound is known,
        // which the contract does not allow as a hint.
        None
    }

    fn chunk_capacity(&self) -> usize {
        self.inner.chunk_capacity()
    }

    fn next_chunk(&mut self, buf: &mut Vec<Point>) -> io::Result<usize> {
        buf.clear();
        // Inner chunks whose points all belong to other shards must not be
        // reported as end-of-stream: keep pulling until this shard receives
        // a point or the inner source is truly exhausted.
        loop {
            if self.inner.next_chunk(&mut self.raw)? == 0 {
                return Ok(0);
            }
            for p in &self.raw {
                if self.partitioner.shard_of(p) == self.shard {
                    buf.push(*p);
                }
            }
            if !buf.is_empty() {
                return Ok(buf.len());
            }
        }
    }

    fn reset(&mut self) -> io::Result<()> {
        self.inner.reset()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::DatasetSource;
    use vas_data::{Dataset, DatasetKind};

    fn dataset() -> Dataset {
        let points = (0..500)
            .map(|i| Point::with_value((i % 37) as f64 * 0.9, (i % 23) as f64 * 1.1, i as f64))
            .collect();
        Dataset::new("grid", DatasetKind::External, points)
    }

    #[test]
    fn shards_partition_the_stream_exactly() {
        let data = dataset();
        let partitioner = ShardPartitioner::new(3, 1.0);
        let mut union: Vec<Vec<Point>> = vec![Vec::new(); 3];
        let mut total = 0usize;
        for (shard, points) in union.iter_mut().enumerate() {
            let inner = DatasetSource::with_chunk_size(&data, 64);
            let mut src = ShardSource::new(inner, partitioner, shard);
            src.for_each_point(|p| points.push(p)).unwrap();
            total += points.len();
        }
        assert_eq!(total, data.len(), "shards must partition, not sample");
        // Every yielded point really belongs to its shard.
        for (shard, points) in union.iter().enumerate() {
            for p in points {
                assert_eq!(partitioner.shard_of(p), shard);
            }
        }
    }

    #[test]
    fn chunking_does_not_change_a_shard_sub_stream() {
        let data = dataset();
        let partitioner = ShardPartitioner::new(4, 0.7);
        let collect = |chunk: usize| -> Vec<Point> {
            let inner = DatasetSource::with_chunk_size(&data, chunk);
            let mut src = ShardSource::new(inner, partitioner, 1);
            let mut out = Vec::new();
            src.for_each_point(|p| out.push(p)).unwrap();
            out
        };
        let reference = collect(500);
        for chunk in [1usize, 7, 64] {
            assert_eq!(collect(chunk), reference, "chunk {chunk}");
        }
    }

    #[test]
    fn reset_replays_the_same_sub_stream() {
        let data = dataset();
        let partitioner = ShardPartitioner::new(2, 1.3);
        let inner = DatasetSource::with_chunk_size(&data, 50);
        let mut src = ShardSource::new(inner, partitioner, 0);
        let mut first = Vec::new();
        src.for_each_point(|p| first.push(p)).unwrap();
        src.reset().unwrap();
        let mut second = Vec::new();
        src.for_each_point(|p| second.push(p)).unwrap();
        assert_eq!(first, second);
        assert!(!first.is_empty());
    }

    #[test]
    fn empty_shard_is_end_of_stream_not_an_error() {
        // One cell → one shard owns everything; some other shard of many is
        // empty and must yield a clean end-of-stream.
        let points = vec![Point::new(0.1, 0.1), Point::new(0.2, 0.2)];
        let data = Dataset::new("one-cell", DatasetKind::External, points);
        let partitioner = ShardPartitioner::new(8, 100.0);
        let owner = partitioner.shard_of(&data.points[0]);
        let empty_shard = (0..8).find(|s| *s != owner).unwrap();
        let inner = DatasetSource::with_chunk_size(&data, 1);
        let mut src = ShardSource::new(inner, partitioner, empty_shard);
        let mut buf = Vec::new();
        assert_eq!(src.next_chunk(&mut buf).unwrap(), 0);
        assert!(buf.is_empty());
    }

    #[test]
    fn out_of_range_shard_is_rejected() {
        let data = dataset();
        let partitioner = ShardPartitioner::new(2, 1.0);
        let result = std::panic::catch_unwind(|| {
            ShardSource::new(DatasetSource::new(&data), partitioner, 2)
        });
        assert!(result.is_err());
    }
}
