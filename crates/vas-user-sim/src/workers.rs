//! A population model of imperfect study participants.
//!
//! The Mechanical-Turk study behind Table I does not report the answer of a
//! single ideal viewer: it aggregates 40 workers of varying diligence and
//! filters out those who fail "trapdoor" questions. This module layers that
//! protocol on top of the deterministic perception-model users: a
//! [`WorkerPopulation`] draws per-worker reliability levels, corrupts a
//! fraction of the ideal answers accordingly, drops workers that fail the
//! trapdoor check, and reports the averaged success ratio. It lets the
//! harness (and downstream users) study how robust the method ranking is to
//! participant noise — the rankings of Table I survive substantial noise
//! because the underlying gaps are large.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the simulated worker population.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Number of workers recruited per question package (the paper uses 40).
    pub workers: usize,
    /// Fraction of workers that are "spammers" answering randomly.
    pub spammer_fraction: f64,
    /// Probability that a diligent worker still slips on any given question.
    pub slip_probability: f64,
    /// Number of answer options a random guess chooses from (the regression
    /// task offers 4: correct, two decoys, "not sure").
    pub options_per_question: usize,
    /// Number of trapdoor questions each worker must answer; spammers are
    /// expected to fail them and be filtered out, as in the paper.
    pub trapdoor_questions: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        Self {
            workers: 40,
            spammer_fraction: 0.15,
            slip_probability: 0.05,
            options_per_question: 4,
            trapdoor_questions: 2,
            seed: 97,
        }
    }
}

/// Aggregated outcome of running one question package through the population.
#[derive(Debug, Clone, Copy)]
pub struct PopulationOutcome {
    /// Success ratio averaged over the retained (non-filtered) workers.
    pub success_ratio: f64,
    /// Number of workers retained after trapdoor filtering.
    pub retained_workers: usize,
    /// Number of workers filtered out.
    pub filtered_workers: usize,
}

/// A population of imperfect workers wrapping an ideal per-question outcome.
#[derive(Debug, Clone)]
pub struct WorkerPopulation {
    config: WorkerConfig,
}

impl WorkerPopulation {
    /// Creates a population with the given configuration.
    ///
    /// # Panics
    /// Panics if the configuration is degenerate (no workers, probabilities
    /// outside `[0, 1]`, fewer than two answer options).
    pub fn new(config: WorkerConfig) -> Self {
        assert!(config.workers > 0, "population needs at least one worker");
        assert!(
            (0.0..=1.0).contains(&config.spammer_fraction),
            "spammer fraction must be a probability"
        );
        assert!(
            (0.0..=1.0).contains(&config.slip_probability),
            "slip probability must be a probability"
        );
        assert!(
            config.options_per_question >= 2,
            "questions need at least two options"
        );
        Self { config }
    }

    /// Default 40-worker population.
    pub fn paper_default(seed: u64) -> Self {
        Self::new(WorkerConfig {
            seed,
            ..WorkerConfig::default()
        })
    }

    /// Runs a package of questions through the population.
    ///
    /// `ideal_answers[q]` is whether a perfectly diligent viewer answers
    /// question `q` correctly (i.e. the output of the perception-model user).
    /// Each simulated worker answers every question: spammers guess uniformly
    /// at random; diligent workers reproduce the ideal answer except for
    /// occasional slips. Workers who fail any trapdoor question are dropped
    /// before averaging, mirroring the paper's quality control.
    pub fn run(&self, ideal_answers: &[bool]) -> PopulationOutcome {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let guess_success = 1.0 / cfg.options_per_question as f64;

        let mut retained = 0usize;
        let mut filtered = 0usize;
        let mut success_sum = 0.0;

        for _ in 0..cfg.workers {
            let is_spammer = rng.gen_bool(cfg.spammer_fraction);

            // Trapdoor questions are easy: a diligent worker passes unless it
            // slips; a spammer passes only by lucky guessing.
            let passes_trapdoors = (0..cfg.trapdoor_questions).all(|_| {
                if is_spammer {
                    rng.gen_bool(guess_success)
                } else {
                    !rng.gen_bool(cfg.slip_probability)
                }
            });
            if !passes_trapdoors {
                filtered += 1;
                continue;
            }

            let mut correct = 0usize;
            for &ideal in ideal_answers {
                let answer = if is_spammer {
                    rng.gen_bool(guess_success)
                } else if rng.gen_bool(cfg.slip_probability) {
                    // A slip turns a correct answer wrong and occasionally
                    // stumbles into the right answer by chance.
                    if ideal {
                        false
                    } else {
                        rng.gen_bool(guess_success)
                    }
                } else {
                    ideal
                };
                if answer {
                    correct += 1;
                }
            }
            retained += 1;
            if !ideal_answers.is_empty() {
                success_sum += correct as f64 / ideal_answers.len() as f64;
            }
        }

        PopulationOutcome {
            success_ratio: if retained == 0 {
                0.0
            } else {
                success_sum / retained as f64
            },
            retained_workers: retained,
            filtered_workers: filtered,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_true(n: usize) -> Vec<bool> {
        vec![true; n]
    }

    #[test]
    fn perfect_ideal_answers_stay_high_after_noise() {
        let pop = WorkerPopulation::paper_default(1);
        let outcome = pop.run(&all_true(20));
        assert!(outcome.success_ratio > 0.85);
        assert!(outcome.retained_workers > 20);
        assert_eq!(outcome.retained_workers + outcome.filtered_workers, 40);
    }

    #[test]
    fn hopeless_questions_stay_low() {
        let pop = WorkerPopulation::paper_default(2);
        let outcome = pop.run(&[false; 20]);
        assert!(outcome.success_ratio < 0.2);
    }

    #[test]
    fn ranking_is_preserved_under_noise() {
        // If the ideal users give method A a big lead over method B, the noisy
        // population must preserve the ordering — the property Table I relies on.
        let pop = WorkerPopulation::paper_default(3);
        let method_a: Vec<bool> = (0..20).map(|i| i % 10 != 0).collect(); // 90%
        let method_b: Vec<bool> = (0..20).map(|i| i % 3 == 0).collect(); // ~33%
        let a = pop.run(&method_a).success_ratio;
        let b = pop.run(&method_b).success_ratio;
        assert!(a > b + 0.2, "ordering lost: {a} vs {b}");
    }

    #[test]
    fn trapdoor_filtering_removes_spammers() {
        let pop = WorkerPopulation::new(WorkerConfig {
            spammer_fraction: 1.0,
            ..WorkerConfig::default()
        });
        let outcome = pop.run(&all_true(10));
        // With 4 options and 2 trapdoors, only ~1/16 of spammers slip through.
        assert!(outcome.filtered_workers >= 30);
    }

    #[test]
    fn deterministic_given_seed() {
        let answers: Vec<bool> = (0..15).map(|i| i % 2 == 0).collect();
        let a = WorkerPopulation::paper_default(9).run(&answers);
        let b = WorkerPopulation::paper_default(9).run(&answers);
        assert_eq!(a.success_ratio, b.success_ratio);
        assert_eq!(a.retained_workers, b.retained_workers);
    }

    #[test]
    fn empty_package_is_harmless() {
        let outcome = WorkerPopulation::paper_default(4).run(&[]);
        assert_eq!(outcome.success_ratio, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn rejects_empty_population() {
        let _ = WorkerPopulation::new(WorkerConfig {
            workers: 0,
            ..WorkerConfig::default()
        });
    }
}
