//! The regression task (Table I(a) of the paper).
//!
//! Study setup: users see a zoomed-in map plot of a sample with a location
//! marked "X" and must pick the altitude of that location from four choices —
//! the correct value, two false values and "I'm not sure".
//!
//! Simulated user: it may only use the dots *visible in the rendered
//! viewport*. It estimates the altitude by inverse-distance-weighting the
//! values of visible sample points near the mark (a viewer reading color off
//! nearby dots); if no dot is close enough to read, it answers "I'm not
//! sure", which counts as incorrect. The estimate is then matched against the
//! multiple-choice options and the closest option is selected.

use crate::perception::visible_points;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vas_data::{BoundingBox, Dataset, Point, ZoomLevel, ZoomWorkload};
use vas_spatial::UniformGrid;

/// One multiple-choice regression question.
#[derive(Debug, Clone)]
pub struct RegressionQuestion {
    /// The zoomed viewport shown to the user.
    pub region: BoundingBox,
    /// The location marked "X".
    pub query: Point,
    /// Ground-truth altitude at the query location (local average of the
    /// original data).
    pub truth: f64,
    /// The two false answers offered alongside the truth.
    pub decoys: [f64; 2],
}

/// The regression task: a fixed set of questions generated from the original
/// dataset, answerable by any sample.
#[derive(Debug, Clone)]
pub struct RegressionTask {
    questions: Vec<RegressionQuestion>,
    /// A dot is "readable" if it lies within this fraction of the viewport
    /// diagonal from the query mark.
    perception_fraction: f64,
}

impl RegressionTask {
    /// Generates `n_questions` questions by zooming into random data-bearing
    /// regions of `dataset` (the paper uses six zoomed regions per
    /// visualization).
    ///
    /// Ground truth is the average altitude of the original data points within
    /// a small neighbourhood of the query location; the decoys are offset by
    /// ±1 and ±2 standard deviations of the dataset's altitude distribution,
    /// mirroring the "plausible but wrong" options of the study.
    pub fn generate(dataset: &Dataset, n_questions: usize, seed: u64) -> Self {
        assert!(!dataset.is_empty(), "regression task requires data");
        let mut rng = StdRng::seed_from_u64(seed);
        let workload = ZoomWorkload::new(seed ^ xreg_u64());
        let regions = workload.regions(dataset, ZoomLevel::Deep, n_questions);

        let values: Vec<f64> = dataset.points.iter().map(|p| p.value).collect();
        let value_std = std_dev(&values).max(1e-9);

        // Every candidate mark probes a small neighbourhood of the dataset;
        // a uniform grid plus one id buffer reused across all probes replaces
        // the full-dataset scan per probe.
        let grid = UniformGrid::build(&dataset.points, 128, 128);
        let mut cell_ids: Vec<usize> = Vec::new();

        let questions = regions
            .into_iter()
            .map(|r| {
                // The query mark "X" is an arbitrary location inside the
                // zoomed viewport, not necessarily a dense spot — the study
                // asks for the altitude *of a place*, and places off the
                // beaten track are exactly where poor samples fail. The mark
                // is accepted only if the original data has points near it
                // (so the ground truth is well defined); after a few misses
                // we fall back to the region anchor, which is a data point.
                let radius = r.viewport.diagonal() * 0.05;
                let mut query = r.anchor;
                for _ in 0..30 {
                    let candidate = Point::new(
                        rng.gen_range(r.viewport.min_x..=r.viewport.max_x),
                        rng.gen_range(r.viewport.min_y..=r.viewport.max_y),
                    );
                    let window = BoundingBox::new(
                        candidate.x - radius,
                        candidate.y - radius,
                        candidate.x + radius,
                        candidate.y + radius,
                    );
                    grid.query_region_cells_into(&window, &mut cell_ids);
                    let has_ground_truth = cell_ids
                        .iter()
                        .any(|&i| dataset.points[i].dist(&candidate) <= radius);
                    if has_ground_truth {
                        query = candidate;
                        break;
                    }
                }
                let truth = local_average_value(dataset, &grid, &mut cell_ids, &query, radius);
                let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                let decoys = [truth + sign * value_std, truth - sign * 2.0 * value_std];
                RegressionQuestion {
                    region: r.viewport,
                    query,
                    truth,
                    decoys,
                }
            })
            .collect();

        Self {
            questions,
            perception_fraction: 0.12,
        }
    }

    /// The generated questions.
    pub fn questions(&self) -> &[RegressionQuestion] {
        &self.questions
    }

    /// Answers one question using only the sample points visible in the
    /// question's viewport. Returns `true` when the simulated user picks the
    /// correct option.
    pub fn answer(&self, question: &RegressionQuestion, sample_points: &[Point]) -> bool {
        let viewport = vas_viz::Viewport::new(question.region, 512, 512);
        let visible = visible_points(sample_points, &viewport);
        let radius = question.region.diagonal() * self.perception_fraction;

        // Inverse-distance-weighted read-off of nearby visible dots.
        let mut weight_sum = 0.0;
        let mut value_sum = 0.0;
        for p in &visible {
            let d = p.dist(&question.query);
            if d <= radius {
                let w = 1.0 / (d + radius * 0.01);
                weight_sum += w;
                value_sum += w * p.value;
            }
        }
        if weight_sum == 0.0 {
            return false; // "I'm not sure"
        }
        let estimate = value_sum / weight_sum;

        // Multiple choice: pick the option closest to the estimate.
        let mut best_is_truth = true;
        let mut best_err = (estimate - question.truth).abs();
        for d in question.decoys {
            let err = (estimate - d).abs();
            if err < best_err {
                best_err = err;
                best_is_truth = false;
            }
        }
        best_is_truth
    }

    /// Fraction of questions a sample lets the simulated user answer
    /// correctly — one cell of Table I(a).
    pub fn success_ratio(&self, sample_points: &[Point]) -> f64 {
        if self.questions.is_empty() {
            return 0.0;
        }
        let correct = self
            .questions
            .iter()
            .filter(|q| self.answer(q, sample_points))
            .count();
        correct as f64 / self.questions.len() as f64
    }
}

/// Average `value` of the dataset points within `radius` of `center`
/// (falls back to the nearest point's value if the neighbourhood is empty).
///
/// Candidate ids come from `grid` through the reusable `cell_ids` buffer and
/// are summed in ascending index order, so the result is bit-identical to
/// the full scan in dataset order this replaced.
fn local_average_value(
    dataset: &Dataset,
    grid: &UniformGrid,
    cell_ids: &mut Vec<usize>,
    center: &Point,
    radius: f64,
) -> f64 {
    let window = BoundingBox::new(
        center.x - radius,
        center.y - radius,
        center.x + radius,
        center.y + radius,
    );
    grid.query_region_cells_into(&window, cell_ids);
    cell_ids.sort_unstable();
    let mut sum = 0.0;
    let mut count = 0usize;
    for &i in cell_ids.iter() {
        let p = &dataset.points[i];
        if p.dist(center) <= radius {
            sum += p.value;
            count += 1;
        }
    }
    if count > 0 {
        sum / count as f64
    } else {
        dataset
            .points
            .iter()
            .min_by(|a, b| a.dist2(center).partial_cmp(&b.dist2(center)).unwrap())
            .map(|p| p.value)
            .unwrap_or(0.0)
    }
}

fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    (values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64).sqrt()
}

/// Obfuscation-free seed tweak so the workload seed differs from the decoy
/// seed without the caller having to supply two seeds.
#[allow(non_snake_case)]
fn xreg_u64() -> u64 {
    0x5245_4752_4553_u64 // "REGRES"
}

#[cfg(test)]
mod tests {
    use super::*;
    use vas_core::{VasConfig, VasSampler};
    use vas_data::GeolifeGenerator;
    use vas_sampling::{Sampler, UniformSampler};

    fn dataset() -> Dataset {
        GeolifeGenerator::with_size(10_000, 41).generate()
    }

    #[test]
    fn generates_requested_questions_with_sane_ground_truth() {
        let d = dataset();
        let task = RegressionTask::generate(&d, 6, 1);
        assert_eq!(task.questions().len(), 6);
        let (lo, hi) = d
            .points
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), p| {
                (lo.min(p.value), hi.max(p.value))
            });
        for q in task.questions() {
            assert!(q.region.contains(&q.query));
            assert!(q.truth >= lo - 1.0 && q.truth <= hi + 1.0);
            assert_ne!(q.decoys[0], q.truth);
            assert_ne!(q.decoys[1], q.truth);
        }
    }

    #[test]
    fn full_dataset_answers_almost_everything() {
        let d = dataset();
        let task = RegressionTask::generate(&d, 8, 2);
        let ratio = task.success_ratio(&d.points);
        assert!(ratio >= 0.75, "full data should ace the task, got {ratio}");
    }

    #[test]
    fn empty_sample_answers_nothing() {
        let d = dataset();
        let task = RegressionTask::generate(&d, 5, 3);
        assert_eq!(task.success_ratio(&[]), 0.0);
    }

    #[test]
    fn vas_beats_uniform_at_small_sample_sizes() {
        // The Table I(a) headline: at equal (small) budgets the VAS sample
        // keeps points near arbitrary zoomed-in locations while uniform
        // sampling leaves them empty.
        let d = dataset();
        let task = RegressionTask::generate(&d, 12, 4);
        let k = 600;
        let vas = VasSampler::from_dataset(&d, VasConfig::new(k)).sample_dataset(&d);
        let uni = UniformSampler::new(k, 9).sample_dataset(&d);
        let vas_score = task.success_ratio(&vas.points);
        let uni_score = task.success_ratio(&uni.points);
        assert!(
            vas_score >= uni_score,
            "VAS {vas_score} should be at least uniform {uni_score}"
        );
        assert!(vas_score > 0.0);
    }

    #[test]
    fn success_improves_with_sample_size() {
        let d = dataset();
        let task = RegressionTask::generate(&d, 12, 5);
        let small = UniformSampler::new(50, 1).sample_dataset(&d);
        let large = UniformSampler::new(5_000, 1).sample_dataset(&d);
        assert!(task.success_ratio(&large.points) >= task.success_ratio(&small.points));
    }

    #[test]
    fn deterministic_questions() {
        let d = dataset();
        let a = RegressionTask::generate(&d, 4, 7);
        let b = RegressionTask::generate(&d, 4, 7);
        for (qa, qb) in a.questions().iter().zip(b.questions()) {
            assert_eq!(qa.query, qb.query);
            assert_eq!(qa.truth, qb.truth);
        }
    }

    #[test]
    #[should_panic(expected = "requires data")]
    fn rejects_empty_dataset() {
        let empty = Dataset::from_points("none", vec![]);
        let _ = RegressionTask::generate(&empty, 3, 0);
    }
}
