//! # vas-user-sim
//!
//! Simulated users for the paper's user study (Section VI-B, Table I and
//! Figure 7).
//!
//! The original study pays 40 Mechanical-Turk workers per task to answer
//! questions about rendered plots. This reproduction replaces the workers
//! with *perception-model users*: deterministic (seeded) agents that answer
//! the same three kinds of questions while only being allowed to consult
//! **what a viewer could actually see** — the points visible in the rendered
//! viewport, the amount of ink in a region of the bitmap, or the connected
//! blobs of the bitmap. Because the agents see the rendering rather than the
//! raw data, their success depends on sample fidelity in the same way human
//! success does, which is the property the study measures.
//!
//! * [`regression`] — "what is the altitude at the location marked ‘X’?"
//!   (four-way multiple choice, Table I(a)).
//! * [`density`] — "which of the four marked areas is densest / sparsest?"
//!   (Table I(b)).
//! * [`clustering`] — "how many clusters does the plot show?" (Table I(c)).
//!
//! Each module exposes a `*Task` type that generates questions from the
//! original dataset and an `answer(...)` routine for a simulated user, plus a
//! `success_ratio` driver used by the Table I harness. The [`workers`] module
//! additionally models a *population* of imperfect participants (spammers,
//! slips, trapdoor filtering) on top of the ideal perception-model answers,
//! reproducing the study's quality-control protocol.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clustering;
pub mod density;
pub mod perception;
pub mod regression;
pub mod workers;

pub use clustering::ClusteringTask;
pub use density::DensityTask;
pub use perception::{count_ink_clusters, visible_points, PerceptionConfig};
pub use regression::RegressionTask;
pub use workers::{PopulationOutcome, WorkerConfig, WorkerPopulation};
