//! The density-estimation task (Table I(b) of the paper).
//!
//! Study setup: users see a zoomed-in plot with four marked locations and
//! must identify both the **densest** and the **sparsest** of the four.
//!
//! Simulated user: it looks only at the rendered bitmap and compares the
//! amount of ink in a small window around each marker, answering with the
//! inkiest window as "densest" and the least inky as "sparsest". This
//! directly reproduces why plain VAS does poorly on this task (its dots are
//! deliberately equalized across space) while "VAS with density embedding"
//! does well (dot sizes restore the density signal), and why uniform sampling
//! struggles with the *sparsest* question (sparse areas have no dots at all).

use crate::perception::ink_around;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vas_data::{BoundingBox, Dataset, Point, ZoomLevel, ZoomWorkload};
use vas_sampling::Sample;
use vas_spatial::UniformGrid;
use vas_viz::{Color, PlotStyle, ScatterRenderer, SizeEncoding, Viewport};

/// One density-estimation question.
#[derive(Debug, Clone)]
pub struct DensityQuestion {
    /// The zoomed viewport shown to the user.
    pub region: BoundingBox,
    /// The four marked locations.
    pub markers: [Point; 4],
    /// Index (0..4) of the marker with the highest true local density.
    pub densest: usize,
    /// Index (0..4) of the marker with the lowest true local density.
    pub sparsest: usize,
}

/// The density-estimation task.
#[derive(Debug, Clone)]
pub struct DensityTask {
    questions: Vec<DensityQuestion>,
    canvas_size: usize,
    marker_window_px: usize,
}

impl DensityTask {
    /// Generates `n_questions` questions from medium-zoom regions of the
    /// dataset (the paper uses five zoomed areas). Marker locations are the
    /// four quadrant centres of the region, jittered, and the ground truth is
    /// the count of *original* data points within a fixed radius of each
    /// marker. Questions whose four counts do not have a unique maximum and
    /// minimum are perturbed until they do.
    pub fn generate(dataset: &Dataset, n_questions: usize, seed: u64) -> Self {
        assert!(!dataset.is_empty(), "density task requires data");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x44454e53);
        let workload = ZoomWorkload::new(seed ^ 0x44454e54);
        let regions = workload.regions(dataset, ZoomLevel::Medium, n_questions);

        // Ground-truth counting indexes the dataset into a uniform grid once;
        // each marker then scans only the cells its radius window touches,
        // through a buffer reused across every marker of every question
        // (the query-per-frame pattern `query_region_cells_into` exists for).
        let grid = UniformGrid::build(&dataset.points, 128, 128);
        let mut cell_ids: Vec<usize> = Vec::new();
        let mut count_near = |m: &Point, radius: f64| {
            let window = BoundingBox::new(m.x - radius, m.y - radius, m.x + radius, m.y + radius);
            grid.query_region_cells_into(&window, &mut cell_ids);
            cell_ids
                .iter()
                .filter(|&&i| dataset.points[i].dist(m) <= radius)
                .count()
        };

        let mut questions = Vec::with_capacity(regions.len());
        for r in regions {
            let region = r.viewport;
            let radius = region.diagonal() * 0.08;
            // Try a few marker placements until the ground truth is unambiguous.
            let mut chosen: Option<DensityQuestion> = None;
            for _attempt in 0..20 {
                let markers = quadrant_markers(&region, &mut rng);
                let counts: Vec<usize> = markers.iter().map(|m| count_near(m, radius)).collect();
                let densest = argmax(&counts);
                let sparsest = argmin(&counts);
                let unique_max = counts.iter().filter(|&&c| c == counts[densest]).count() == 1;
                let unique_min = counts.iter().filter(|&&c| c == counts[sparsest]).count() == 1;
                if densest != sparsest && unique_max && unique_min {
                    chosen = Some(DensityQuestion {
                        region,
                        markers,
                        densest,
                        sparsest,
                    });
                    break;
                }
            }
            if let Some(q) = chosen {
                questions.push(q);
            }
        }

        Self {
            questions,
            canvas_size: 400,
            marker_window_px: 28,
        }
    }

    /// The generated questions (some regions may have been skipped if no
    /// unambiguous marker placement was found).
    pub fn questions(&self) -> &[DensityQuestion] {
        &self.questions
    }

    /// Answers one question from a rendered plot of the sample. Returns a
    /// score in {0, 0.5, 1}: half a point for each of the densest/sparsest
    /// sub-questions answered correctly.
    pub fn answer(&self, question: &DensityQuestion, sample: &Sample) -> f64 {
        let viewport = Viewport::new(question.region, self.canvas_size, self.canvas_size);
        let style = if sample.has_densities() {
            PlotStyle {
                radius: 1,
                size: SizeEncoding::ByDensity { max_radius: 6 },
                ..PlotStyle::default()
            }
        } else {
            PlotStyle::default()
        };
        let canvas = ScatterRenderer::new(style).render_sample(sample, &viewport);

        let inks: Vec<f64> = question
            .markers
            .iter()
            .map(|m| ink_around(&canvas, &viewport, m, self.marker_window_px, Color::WHITE))
            .collect();
        let densest_guess = argmax_f(&inks);
        let sparsest_guess = argmin_f(&inks);
        let mut score = 0.0;
        if densest_guess == question.densest {
            score += 0.5;
        }
        if sparsest_guess == question.sparsest {
            score += 0.5;
        }
        score
    }

    /// Mean score over all questions — one cell of Table I(b).
    pub fn success_ratio(&self, sample: &Sample) -> f64 {
        if self.questions.is_empty() {
            return 0.0;
        }
        self.questions
            .iter()
            .map(|q| self.answer(q, sample))
            .sum::<f64>()
            / self.questions.len() as f64
    }
}

/// Markers at the four quadrant centres of `region`, each jittered by up to
/// 10% of the quadrant size.
fn quadrant_markers(region: &BoundingBox, rng: &mut StdRng) -> [Point; 4] {
    let w = region.width();
    let h = region.height();
    let mut markers = [Point::new(0.0, 0.0); 4];
    for (i, (fx, fy)) in [(0.25, 0.25), (0.75, 0.25), (0.25, 0.75), (0.75, 0.75)]
        .iter()
        .enumerate()
    {
        markers[i] = Point::new(
            region.min_x + fx * w + rng.gen_range(-0.1..0.1) * w * 0.5,
            region.min_y + fy * h + rng.gen_range(-0.1..0.1) * h * 0.5,
        );
    }
    markers
}

fn argmax(values: &[usize]) -> usize {
    values
        .iter()
        .enumerate()
        .max_by_key(|(_, &v)| v)
        .map(|(i, _)| i)
        .unwrap_or(0)
}

fn argmin(values: &[usize]) -> usize {
    values
        .iter()
        .enumerate()
        .min_by_key(|(_, &v)| v)
        .map(|(i, _)| i)
        .unwrap_or(0)
}

fn argmax_f(values: &[f64]) -> usize {
    let mut idx = 0;
    for (i, &v) in values.iter().enumerate() {
        if v > values[idx] {
            idx = i;
        }
    }
    idx
}

fn argmin_f(values: &[f64]) -> usize {
    let mut idx = 0;
    for (i, &v) in values.iter().enumerate() {
        if v < values[idx] {
            idx = i;
        }
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use vas_core::{density::with_embedded_density, VasConfig, VasSampler};
    use vas_data::GeolifeGenerator;
    use vas_sampling::{Sampler, UniformSampler};

    fn dataset() -> Dataset {
        GeolifeGenerator::with_size(12_000, 51).generate()
    }

    #[test]
    fn generates_unambiguous_questions() {
        let d = dataset();
        let task = DensityTask::generate(&d, 5, 1);
        assert!(!task.questions().is_empty());
        for q in task.questions() {
            assert_ne!(q.densest, q.sparsest);
            for m in &q.markers {
                assert!(q.region.padded(q.region.diagonal() * 0.1).contains(m));
            }
        }
    }

    #[test]
    fn full_dataset_as_sample_answers_well() {
        let d = dataset();
        let task = DensityTask::generate(&d, 6, 2);
        let full = Sample::new("full", d.len(), d.points.clone());
        let score = task.success_ratio(&full);
        assert!(score >= 0.7, "full data should score highly, got {score}");
    }

    #[test]
    fn density_embedding_improves_vas_on_this_task() {
        // Table I(b): plain VAS is weak here, VAS + density embedding is strong.
        let d = dataset();
        let task = DensityTask::generate(&d, 8, 3);
        let k = 800;
        let plain = VasSampler::from_dataset(&d, VasConfig::new(k)).sample_dataset(&d);
        let with_density = with_embedded_density(plain.clone(), &d);
        let plain_score = task.success_ratio(&plain);
        let density_score = task.success_ratio(&with_density);
        assert!(
            density_score >= plain_score,
            "density embedding ({density_score}) must not be worse than plain VAS ({plain_score})"
        );
        assert!(
            density_score > 0.4,
            "density-embedded score {density_score}"
        );
    }

    #[test]
    fn empty_sample_scores_poorly() {
        let d = dataset();
        let task = DensityTask::generate(&d, 5, 4);
        let empty = Sample::new("empty", 0, vec![]);
        // With no ink anywhere the argmax/argmin guesses are arbitrary (index
        // 0), so the expected score is low but not necessarily zero.
        assert!(task.success_ratio(&empty) <= 0.5);
    }

    #[test]
    fn uniform_sample_beats_empty_and_loses_to_full() {
        let d = dataset();
        let task = DensityTask::generate(&d, 8, 5);
        let uni = UniformSampler::new(2_000, 1).sample_dataset(&d);
        let full = Sample::new("full", d.len(), d.points.clone());
        let s_uni = task.success_ratio(&uni);
        let s_full = task.success_ratio(&full);
        assert!(s_full >= s_uni);
    }

    #[test]
    fn deterministic_generation() {
        let d = dataset();
        let a = DensityTask::generate(&d, 4, 9);
        let b = DensityTask::generate(&d, 4, 9);
        assert_eq!(a.questions().len(), b.questions().len());
        for (qa, qb) in a.questions().iter().zip(b.questions()) {
            assert_eq!(
                qa.markers.map(|m| (m.x, m.y)),
                qb.markers.map(|m| (m.x, m.y))
            );
            assert_eq!(qa.densest, qb.densest);
        }
    }
}
