//! The perception model: what a viewer can extract from a rendered plot.
//!
//! Simulated users never consult the raw sample directly for density or
//! cluster questions; they look at the bitmap the renderer produced, exactly
//! like a human study participant. This module provides the two perceptual
//! primitives the tasks need:
//!
//! * the set of sample points that are actually **visible** in a viewport
//!   (used by the regression task, where a viewer reads values off visible
//!   dots), and
//! * a **blob analysis** of the rendered bitmap: how much ink a region holds
//!   and how many spatially-separate ink clusters the image shows (used by
//!   the density-estimation and clustering tasks).

use vas_data::Point;
use vas_viz::{Canvas, Color, Viewport};

/// Tunable constants of the perception model.
#[derive(Debug, Clone, Copy)]
pub struct PerceptionConfig {
    /// Background color of the rendered plots.
    pub background: Color,
    /// Side length (in coarse cells) of the grid used for blob analysis; the
    /// canvas is divided into `grid_side × grid_side` cells.
    pub grid_side: usize,
    /// A coarse cell counts as "occupied" when at least this fraction of its
    /// pixels is inked (absolute floor).
    pub occupancy_threshold: f64,
    /// A cell additionally needs at least this fraction of the *inkiest*
    /// cell's ink to count as occupied. This mimics how a viewer dismisses
    /// faint scatter between two salient masses as background rather than as
    /// a bridge connecting them; only regions whose ink is comparable to the
    /// most salient mass register as cluster material.
    pub relative_threshold: f64,
    /// Connected components smaller than this many occupied cells are treated
    /// as noise and not counted as clusters.
    pub min_cluster_cells: usize,
}

impl Default for PerceptionConfig {
    fn default() -> Self {
        Self {
            background: Color::WHITE,
            grid_side: 24,
            occupancy_threshold: 0.005,
            relative_threshold: 0.4,
            min_cluster_cells: 5,
        }
    }
}

/// The sample points a viewer can see in `viewport` (i.e. the rendered dots).
pub fn visible_points(points: &[Point], viewport: &Viewport) -> Vec<Point> {
    points
        .iter()
        .filter(|p| viewport.contains(p))
        .copied()
        .collect()
}

/// Fraction of inked pixels inside the axis-aligned pixel rectangle around a
/// data-space location. `radius_px` is half the side of the square window.
pub fn ink_around(
    canvas: &Canvas,
    viewport: &Viewport,
    location: &Point,
    radius_px: usize,
    background: Color,
) -> f64 {
    let (cx, cy) = viewport.to_pixel(location);
    let x0 = (cx - radius_px as isize).max(0) as usize;
    let y0 = (cy - radius_px as isize).max(0) as usize;
    let x1 = (cx + radius_px as isize).max(0) as usize + 1;
    let y1 = (cy + radius_px as isize).max(0) as usize + 1;
    canvas.ink_fraction_in_rect(background, x0, y0, x1, y1)
}

/// Counts the spatially-separate ink clusters of a rendered plot.
///
/// The canvas is reduced to a coarse occupancy grid; 8-connected components
/// of occupied cells larger than the noise threshold are counted. This is a
/// deliberately crude stand-in for human gestalt grouping, but it reacts to
/// rendered plots the same way the study's questions do: well-separated point
/// masses count as distinct clusters, scattered speckle does not merge into
/// one.
pub fn count_ink_clusters(canvas: &Canvas, config: &PerceptionConfig) -> usize {
    let side = config.grid_side.max(1);
    let mut fractions = vec![0.0f64; side * side];
    for row in 0..side {
        for col in 0..side {
            let x0 = col * canvas.width() / side;
            let x1 = ((col + 1) * canvas.width() / side).max(x0 + 1);
            let y0 = row * canvas.height() / side;
            let y1 = ((row + 1) * canvas.height() / side).max(y0 + 1);
            fractions[row * side + col] =
                canvas.ink_fraction_in_rect(config.background, x0, y0, x1, y1);
        }
    }
    let max_frac = fractions.iter().copied().fold(0.0f64, f64::max);
    let threshold = config
        .occupancy_threshold
        .max(config.relative_threshold * max_frac);
    let occupied: Vec<bool> = fractions
        .iter()
        .map(|&f| f > 0.0 && f >= threshold)
        .collect();

    // 8-connected components over occupied cells.
    let mut visited = vec![false; side * side];
    let mut clusters = 0usize;
    for start in 0..side * side {
        if !occupied[start] || visited[start] {
            continue;
        }
        // Flood fill.
        let mut stack = vec![start];
        visited[start] = true;
        let mut size = 0usize;
        while let Some(cell) = stack.pop() {
            size += 1;
            let (r, c) = (cell / side, cell % side);
            for dr in -1i64..=1 {
                for dc in -1i64..=1 {
                    if dr == 0 && dc == 0 {
                        continue;
                    }
                    let nr = r as i64 + dr;
                    let nc = c as i64 + dc;
                    if nr < 0 || nc < 0 || nr >= side as i64 || nc >= side as i64 {
                        continue;
                    }
                    let idx = nr as usize * side + nc as usize;
                    if occupied[idx] && !visited[idx] {
                        visited[idx] = true;
                        stack.push(idx);
                    }
                }
            }
        }
        if size >= config.min_cluster_cells {
            clusters += 1;
        }
    }
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;
    use vas_data::BoundingBox;
    use vas_viz::{PlotStyle, ScatterRenderer};

    fn viewport() -> Viewport {
        Viewport::new(BoundingBox::new(0.0, 0.0, 10.0, 10.0), 240, 240)
    }

    fn render(points: &[Point]) -> Canvas {
        ScatterRenderer::new(PlotStyle::default()).render_points(points, &viewport())
    }

    #[test]
    fn visible_points_filters_by_viewport() {
        let pts = vec![Point::new(5.0, 5.0), Point::new(50.0, 50.0)];
        let vis = visible_points(&pts, &viewport());
        assert_eq!(vis.len(), 1);
        assert_eq!(vis[0], pts[0]);
    }

    #[test]
    fn ink_around_sees_nearby_dots_only() {
        let canvas = render(&[Point::new(2.0, 2.0)]);
        let v = viewport();
        let near = ink_around(&canvas, &v, &Point::new(2.0, 2.0), 6, Color::WHITE);
        let far = ink_around(&canvas, &v, &Point::new(8.0, 8.0), 6, Color::WHITE);
        assert!(near > 0.0);
        assert_eq!(far, 0.0);
    }

    #[test]
    fn two_separated_blobs_count_as_two_clusters() {
        let mut points = Vec::new();
        for i in 0..200 {
            let a = i as f64 * 0.031;
            points.push(Point::new(2.0 + a.sin() * 0.8, 2.0 + a.cos() * 0.8));
            points.push(Point::new(8.0 + a.cos() * 0.8, 8.0 + a.sin() * 0.8));
        }
        let canvas = render(&points);
        let n = count_ink_clusters(&canvas, &PerceptionConfig::default());
        assert_eq!(n, 2);
    }

    #[test]
    fn one_blob_counts_as_one_cluster() {
        let mut points = Vec::new();
        for i in 0..400 {
            let a = i as f64 * 0.017;
            points.push(Point::new(
                5.0 + a.sin() * 1.5 * (a * 0.37).cos(),
                5.0 + a.cos() * 1.5 * (a * 0.53).sin(),
            ));
        }
        let canvas = render(&points);
        let n = count_ink_clusters(&canvas, &PerceptionConfig::default());
        assert_eq!(n, 1);
    }

    #[test]
    fn empty_canvas_has_no_clusters() {
        let canvas = render(&[]);
        assert_eq!(count_ink_clusters(&canvas, &PerceptionConfig::default()), 0);
    }

    #[test]
    fn speckle_below_noise_threshold_is_ignored() {
        // A single isolated dot occupies at most a handful of cells (it may
        // straddle a cell boundary) and is treated as noise by the default
        // min_cluster_cells threshold.
        let canvas = render(&[Point::new(5.0, 5.0)]);
        assert_eq!(count_ink_clusters(&canvas, &PerceptionConfig::default()), 0);
    }
}
