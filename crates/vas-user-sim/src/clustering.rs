//! The clustering task (Table I(c) of the paper).
//!
//! Study setup: datasets are generated from one or two 2-D Gaussian
//! distributions; users look at a plot of a sample and report how many
//! clusters they see.
//!
//! Simulated user: it renders the sample at overview zoom and counts the
//! spatially-separate ink blobs of the bitmap
//! ([`count_ink_clusters`](crate::perception::count_ink_clusters)), answering
//! with that count. The answer is correct when it matches the number of
//! generating Gaussians.

use crate::perception::{count_ink_clusters, PerceptionConfig};
use vas_data::{BoundingBox, Dataset};
use vas_sampling::Sample;
use vas_viz::{PlotStyle, ScatterRenderer, SizeEncoding, Viewport};

/// The clustering task for one dataset with a known number of clusters.
#[derive(Debug, Clone)]
pub struct ClusteringTask {
    /// Ground-truth number of generating clusters.
    pub true_clusters: usize,
    /// Overview region the plot is rendered at (normally the full dataset
    /// extent — clustering questions are asked at overview zoom).
    pub region: BoundingBox,
    canvas_size: usize,
    perception: PerceptionConfig,
}

impl ClusteringTask {
    /// Creates the task for `dataset`, whose ground truth is `true_clusters`
    /// (the number of Gaussian components it was generated from).
    ///
    /// # Panics
    /// Panics if the dataset is empty or `true_clusters` is zero.
    pub fn new(dataset: &Dataset, true_clusters: usize) -> Self {
        assert!(!dataset.is_empty(), "clustering task requires data");
        assert!(true_clusters > 0, "at least one cluster is required");
        let bounds = dataset.bounds();
        Self {
            true_clusters,
            region: bounds.padded(bounds.diagonal() * 0.03),
            canvas_size: 320,
            perception: PerceptionConfig::default(),
        }
    }

    /// Overrides the perception configuration (exposed for sensitivity
    /// experiments).
    pub fn with_perception(mut self, perception: PerceptionConfig) -> Self {
        self.perception = perception;
        self
    }

    /// The number of clusters the simulated user perceives in a plot of
    /// `sample`.
    pub fn perceived_clusters(&self, sample: &Sample) -> usize {
        let viewport = Viewport::new(self.region, self.canvas_size, self.canvas_size);
        let style = if sample.has_densities() {
            PlotStyle {
                radius: 1,
                size: SizeEncoding::ByDensity { max_radius: 5 },
                ..PlotStyle::default()
            }
        } else {
            PlotStyle {
                radius: 1,
                ..PlotStyle::default()
            }
        };
        let canvas = ScatterRenderer::new(style).render_sample(sample, &viewport);
        count_ink_clusters(&canvas, &self.perception)
    }

    /// Whether the simulated user counts the clusters correctly — one cell of
    /// Table I(c) is the average of this over datasets and sample sizes.
    pub fn answer(&self, sample: &Sample) -> bool {
        self.perceived_clusters(sample) == self.true_clusters
    }

    /// Convenience: 1.0 when correct, 0.0 otherwise.
    pub fn success_ratio(&self, sample: &Sample) -> f64 {
        if self.answer(sample) {
            1.0
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vas_core::{density::with_embedded_density, VasConfig, VasSampler};
    use vas_data::GaussianMixtureGenerator;
    use vas_sampling::{Sampler, UniformSampler};

    fn mixture(variant: usize, n: usize) -> (Dataset, usize) {
        let gen = GaussianMixtureGenerator::paper_clustering_dataset(variant, n, 77);
        let truth = gen.n_clusters();
        (gen.generate(), truth)
    }

    #[test]
    fn full_dataset_reveals_the_true_cluster_count() {
        // Variants 0–2 are unambiguous (single blobs or well-separated pairs).
        for variant in 0..3 {
            let (d, truth) = mixture(variant, 20_000);
            let task = ClusteringTask::new(&d, truth);
            let full = Sample::new("full", d.len(), d.points.clone());
            assert_eq!(
                task.perceived_clusters(&full),
                truth,
                "variant {variant}: full data should show {truth} clusters"
            );
        }
    }

    #[test]
    fn overlapping_clusters_are_genuinely_ambiguous() {
        // Variant 3 draws two partially-overlapping Gaussians; the paper
        // itself notes that viewers do worse when clusters overlap. The
        // perception model may merge them, but it must never see more than
        // the true number of components in the full data.
        let (d, truth) = mixture(3, 20_000);
        let task = ClusteringTask::new(&d, truth);
        let full = Sample::new("full", d.len(), d.points.clone());
        let perceived = task.perceived_clusters(&full);
        assert!(
            perceived >= 1 && perceived <= truth,
            "perceived {perceived} clusters for the overlapping pair"
        );
    }

    #[test]
    fn uniform_sample_of_reasonable_size_is_correct() {
        let (d, truth) = mixture(2, 20_000);
        let task = ClusteringTask::new(&d, truth);
        let sample = UniformSampler::new(2_000, 3).sample_dataset(&d);
        assert!(task.answer(&sample));
    }

    #[test]
    fn vas_with_density_identifies_two_clusters() {
        let (d, truth) = mixture(2, 10_000);
        let task = ClusteringTask::new(&d, truth);
        let vas = VasSampler::from_dataset(&d, VasConfig::new(1_000)).sample_dataset(&d);
        let with_density = with_embedded_density(vas, &d);
        assert!(
            task.answer(&with_density),
            "perceived {} clusters instead of {truth}",
            task.perceived_clusters(&with_density)
        );
    }

    #[test]
    fn single_cluster_dataset_is_not_split() {
        let (d, truth) = mixture(0, 10_000);
        assert_eq!(truth, 1);
        let task = ClusteringTask::new(&d, truth);
        let sample = UniformSampler::new(3_000, 5).sample_dataset(&d);
        assert_eq!(task.perceived_clusters(&sample), 1);
    }

    #[test]
    fn empty_sample_shows_zero_clusters() {
        let (d, truth) = mixture(2, 5_000);
        let task = ClusteringTask::new(&d, truth);
        let empty = Sample::new("empty", 0, vec![]);
        assert_eq!(task.perceived_clusters(&empty), 0);
        assert!(!task.answer(&empty));
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn rejects_zero_truth() {
        let (d, _) = mixture(0, 100);
        let _ = ClusteringTask::new(&d, 0);
    }
}
