//! Causal span tracing: hierarchical, cross-thread spans over the
//! [`crate::Recorder`] handle, exported as Chrome-trace-format JSON.
//!
//! Where the [`crate::MetricsRegistry`] answers *how much* and *how often*,
//! a trace answers *why*: one `build_from_source` produces a tree of
//! [`SpanRecord`]s — the build root, its per-chunk fill/candidate-eval
//! phases, the speculation workers fanned out under each candidate batch,
//! and the chunk decodes running ahead on the `vas-par` read-ahead thread —
//! every span carrying its parent's id, so the timeline reconstructs the
//! causal chain across thread boundaries.
//!
//! ## Parenting rules
//!
//! A new span resolves its parent in three steps, first match wins:
//!
//! 1. **Explicit** — a [`SpanContext`] captured on the consumer thread and
//!    handed across a fan-out boundary (the `vas-par` combinators and the
//!    speculative pre-evaluation front do this), provided it belongs to the
//!    same tracer.
//! 2. **Implicit** — the innermost open span *on the current thread* of the
//!    same tracer (a thread-local stack, so nested guards on one thread
//!    form a chain for free).
//! 3. **Ambient** — the tracer's current *root* span, set by
//!    [`Tracer::root_span`] for the duration of a build. This is what
//!    parents work running on threads that were spawned *before* the build
//!    started (the read-ahead decode worker): their stacks are empty and no
//!    context was handed over, but they are still causally inside the
//!    build.
//!
//! ## Off the data path
//!
//! Same contract as the rest of the crate: a [`crate::Recorder`] without a
//! tracer returns an inert [`SpanGuard`] — no `Instant::now`, no
//! allocation, no lock. The span buffer is bounded ([`Tracer::with_capacity`]);
//! once full, further spans are counted as dropped rather than grown.

use serde::Value;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::flight::FlightRecorder;

/// Default bound on the number of finished spans a [`Tracer`] retains.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

/// Tracer tokens are process-unique so a `SpanContext` can never be
/// resolved against the wrong tracer.
static NEXT_TRACER_TOKEN: AtomicU64 = AtomicU64::new(1);

/// Process-unique small thread ids (1-based, in first-use order) — stable
/// for the lifetime of the thread, unlike `std::thread::ThreadId`, and
/// compact enough for the Chrome-trace `tid` field.
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
    /// The stack of open spans on this thread: `(tracer token, span id)`.
    static SPAN_STACK: RefCell<Vec<(u64, u64)>> = const { RefCell::new(Vec::new()) };
}

fn current_thread_id() -> u64 {
    THREAD_ID.with(|id| *id)
}

/// A reference to an open span that can be sent across threads so work
/// running elsewhere parents under it. Obtained from
/// [`SpanGuard::context`] or [`Tracer::current_context`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanContext {
    token: u64,
    id: u64,
}

impl SpanContext {
    /// The id of the referenced span.
    pub fn span_id(&self) -> u64 {
        self.id
    }
}

/// One finished span: a named, timed interval with a causal parent link.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Monotonic span id, unique within the tracer (1-based).
    pub id: u64,
    /// Id of the parent span, if the span is not a root.
    pub parent: Option<u64>,
    /// Span name (`build_from_source`, `worker_task`, `chunk_decode`, ...).
    pub name: String,
    /// Small process-unique id of the thread the span ran on.
    pub thread: u64,
    /// Start time in microseconds since the tracer was created.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Key/value attributes attached via [`SpanGuard::attr`].
    pub attrs: Vec<(String, String)>,
}

/// Collects [`SpanRecord`]s from every thread of an instrumented run.
///
/// Shared behind an `Arc` by [`crate::Recorder::with_tracer`]; all state is
/// interior-mutable. Span ids are monotonic, the finished-span buffer is
/// bounded, and everything timing-related uses one epoch `Instant` so all
/// spans share a clock.
#[derive(Debug)]
pub struct Tracer {
    token: u64,
    epoch: Instant,
    capacity: usize,
    next_id: AtomicU64,
    spans: Mutex<Vec<SpanRecord>>,
    dropped: AtomicU64,
    /// The current build-root span id — the ambient fallback parent for
    /// threads with no open span and no explicit context (see module docs).
    ambient: Mutex<Option<u64>>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// A tracer with the default span capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// A tracer retaining at most `capacity` finished spans; further spans
    /// are dropped (and counted in [`Tracer::dropped`]) rather than grown.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            token: NEXT_TRACER_TOKEN.fetch_add(1, Ordering::Relaxed),
            epoch: Instant::now(),
            capacity,
            next_id: AtomicU64::new(1),
            spans: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
            ambient: Mutex::new(None),
        }
    }

    /// Number of finished spans retained so far.
    pub fn len(&self) -> usize {
        self.spans.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// True when no span has finished yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spans dropped because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// A copy of every finished span, in finish order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.spans.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// The context a new span on this thread would parent under: the
    /// innermost open span on the current thread, else the ambient root.
    /// `None` outside any build.
    pub fn current_context(self: &Arc<Self>) -> Option<SpanContext> {
        let top = SPAN_STACK.with(|stack| {
            stack
                .borrow()
                .iter()
                .rev()
                .find(|(token, _)| *token == self.token)
                .map(|(_, id)| *id)
        });
        top.or_else(|| *self.ambient.lock().unwrap_or_else(|e| e.into_inner()))
            .map(|id| SpanContext {
                token: self.token,
                id,
            })
    }

    /// Opens a span parented per the resolution rules (implicit stack, then
    /// ambient root).
    pub fn span(self: &Arc<Self>, name: &'static str) -> SpanGuard {
        self.span_inner(name, None, false)
    }

    /// Opens a span with an explicit parent context (cross-thread
    /// propagation). A `None` or foreign-tracer context falls back to the
    /// implicit rules.
    pub fn span_under(
        self: &Arc<Self>,
        name: &'static str,
        parent: Option<SpanContext>,
    ) -> SpanGuard {
        self.span_inner(name, parent, false)
    }

    /// Opens a **root** span: besides the normal rules, the span installs
    /// itself as the tracer's ambient parent for its lifetime, so spans
    /// from pre-existing worker threads (read-ahead decode) parent under
    /// the build. The previous ambient is restored on drop, so nested
    /// roots behave.
    pub fn root_span(self: &Arc<Self>, name: &'static str) -> SpanGuard {
        self.span_inner(name, None, true)
    }

    fn span_inner(
        self: &Arc<Self>,
        name: &'static str,
        explicit: Option<SpanContext>,
        root: bool,
    ) -> SpanGuard {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let parent = explicit
            .filter(|ctx| ctx.token == self.token)
            .map(|ctx| ctx.id)
            .or_else(|| self.current_context().map(|ctx| ctx.id));
        let prev_ambient = if root {
            let mut ambient = self.ambient.lock().unwrap_or_else(|e| e.into_inner());
            let prev = *ambient;
            *ambient = Some(id);
            Some(prev)
        } else {
            None
        };
        SPAN_STACK.with(|stack| stack.borrow_mut().push((self.token, id)));
        let start = Instant::now();
        let start_us = start
            .duration_since(self.epoch)
            .as_micros()
            .min(u64::MAX as u128) as u64;
        SpanGuard {
            inner: Some(GuardInner {
                tracer: Arc::clone(self),
                flight: None,
                id,
                parent,
                name,
                thread: current_thread_id(),
                start,
                start_us,
                attrs: Vec::new(),
                restore_ambient: prev_ambient,
            }),
        }
    }

    fn finish(&self, record: SpanRecord) {
        let mut spans = self.spans.lock().unwrap_or_else(|e| e.into_inner());
        if spans.len() < self.capacity {
            spans.push(record);
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Renders every finished span as Chrome-trace-format JSON (the
    /// `traceEvents` array of complete `"ph": "X"` events), loadable in
    /// `chrome://tracing` or <https://ui.perfetto.dev>. Parent links ride in
    /// `args.parent_id`; [`parse_chrome_trace`] round-trips them.
    pub fn to_chrome_trace(&self) -> String {
        let spans = self.spans.lock().unwrap_or_else(|e| e.into_inner());
        spans_to_chrome_trace(&spans, self.dropped())
    }
}

/// Renders a span list as Chrome-trace-format JSON (see
/// [`Tracer::to_chrome_trace`]).
pub fn spans_to_chrome_trace(spans: &[SpanRecord], dropped: u64) -> String {
    let events: Vec<Value> = spans
        .iter()
        .map(|s| {
            let mut args: Vec<(String, Value)> =
                vec![("span_id".to_string(), Value::Number(s.id as f64))];
            if let Some(parent) = s.parent {
                args.push(("parent_id".to_string(), Value::Number(parent as f64)));
            }
            for (k, v) in &s.attrs {
                args.push((k.clone(), Value::String(v.clone())));
            }
            Value::Object(vec![
                ("name".to_string(), Value::String(s.name.clone())),
                ("cat".to_string(), Value::String("vas".to_string())),
                ("ph".to_string(), Value::String("X".to_string())),
                ("ts".to_string(), Value::Number(s.start_us as f64)),
                ("dur".to_string(), Value::Number(s.dur_us as f64)),
                ("pid".to_string(), Value::Number(1.0)),
                ("tid".to_string(), Value::Number(s.thread as f64)),
                ("args".to_string(), Value::Object(args)),
            ])
        })
        .collect();
    let root = Value::Object(vec![
        ("traceEvents".to_string(), Value::Array(events)),
        (
            "displayTimeUnit".to_string(),
            Value::String("ms".to_string()),
        ),
        ("vasDroppedSpans".to_string(), Value::Number(dropped as f64)),
    ]);
    serde_json::to_string_pretty(&root).expect("trace values are always serializable")
}

fn value_as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::Number(n) if n.fract() == 0.0 && *n >= 0.0 => Some(*n as u64),
        _ => None,
    }
}

/// Parses Chrome-trace-format JSON produced by [`Tracer::to_chrome_trace`]
/// back into [`SpanRecord`]s (non-`"X"` events are ignored). Fails with a
/// description on malformed input — this is the validation path the trace
/// harness runs on every exported trace.
pub fn parse_chrome_trace(text: &str) -> Result<Vec<SpanRecord>, String> {
    let root: Value =
        serde_json::from_str(text).map_err(|e| format!("trace is not valid JSON: {e}"))?;
    let Some(Value::Array(events)) = root.get("traceEvents") else {
        return Err("trace has no traceEvents array".to_string());
    };
    let mut spans = Vec::with_capacity(events.len());
    for (i, event) in events.iter().enumerate() {
        let ph = match event.get("ph") {
            Some(Value::String(s)) => s.as_str(),
            _ => return Err(format!("event {i} has no ph field")),
        };
        if ph != "X" {
            continue;
        }
        let name = match event.get("name") {
            Some(Value::String(s)) => s.clone(),
            _ => return Err(format!("event {i} has no name")),
        };
        let ts = event
            .get("ts")
            .and_then(value_as_u64)
            .ok_or_else(|| format!("event {i} has no integer ts"))?;
        let dur = event
            .get("dur")
            .and_then(value_as_u64)
            .ok_or_else(|| format!("event {i} has no integer dur"))?;
        let tid = event
            .get("tid")
            .and_then(value_as_u64)
            .ok_or_else(|| format!("event {i} has no integer tid"))?;
        let args = event.get("args");
        let id = args
            .and_then(|a| a.get("span_id"))
            .and_then(value_as_u64)
            .ok_or_else(|| format!("event {i} has no args.span_id"))?;
        let parent = args.and_then(|a| a.get("parent_id")).and_then(value_as_u64);
        let mut attrs = Vec::new();
        if let Some(Value::Object(fields)) = args {
            for (k, v) in fields {
                if k == "span_id" || k == "parent_id" {
                    continue;
                }
                if let Value::String(s) = v {
                    attrs.push((k.clone(), s.clone()));
                }
            }
        }
        spans.push(SpanRecord {
            id,
            parent,
            name,
            thread: tid,
            start_us: ts,
            dur_us: dur,
            attrs,
        });
    }
    Ok(spans)
}

#[derive(Debug)]
struct GuardInner {
    tracer: Arc<Tracer>,
    flight: Option<Arc<FlightRecorder>>,
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    thread: u64,
    start: Instant,
    start_us: u64,
    attrs: Vec<(String, String)>,
    /// `Some(previous ambient)` when this is a root span.
    restore_ambient: Option<Option<u64>>,
}

/// RAII guard for an open span; the span is recorded when the guard drops.
///
/// A guard from a tracer-less [`crate::Recorder`] is inert: construction
/// and drop touch no clock, no lock and no allocation.
#[derive(Debug)]
pub struct SpanGuard {
    inner: Option<GuardInner>,
}

impl SpanGuard {
    /// An inert guard (what a detached recorder hands out).
    pub fn noop() -> Self {
        Self { inner: None }
    }

    /// True when the guard records into a live tracer.
    pub fn is_live(&self) -> bool {
        self.inner.is_some()
    }

    /// Also mirrors the finished span into `flight`, if given (used by
    /// [`crate::Recorder`] to feed the flight recorder's ring).
    pub fn with_flight(mut self, flight: Option<Arc<FlightRecorder>>) -> Self {
        if let Some(inner) = &mut self.inner {
            inner.flight = flight;
        }
        self
    }

    /// The context other threads can parent under. `None` on an inert
    /// guard.
    pub fn context(&self) -> Option<SpanContext> {
        self.inner.as_ref().map(|inner| SpanContext {
            token: inner.tracer.token,
            id: inner.id,
        })
    }

    /// Attaches a key/value attribute (no-op on an inert guard).
    pub fn attr(&mut self, key: &str, value: impl std::fmt::Display) {
        if let Some(inner) = &mut self.inner {
            inner.attrs.push((key.to_string(), value.to_string()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let dur_us = inner.start.elapsed().as_micros().min(u64::MAX as u128) as u64;
        // Pop this span from the thread's open-span stack. Guards normally
        // drop in LIFO order, but search from the top so an out-of-order
        // drop cannot corrupt unrelated entries.
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            if let Some(pos) = stack
                .iter()
                .rposition(|&(token, id)| token == inner.tracer.token && id == inner.id)
            {
                stack.remove(pos);
            }
        });
        if let Some(prev) = inner.restore_ambient {
            *inner
                .tracer
                .ambient
                .lock()
                .unwrap_or_else(|e| e.into_inner()) = prev;
        }
        let record = SpanRecord {
            id: inner.id,
            parent: inner.parent,
            name: inner.name.to_string(),
            thread: inner.thread,
            start_us: inner.start_us,
            dur_us,
            attrs: inner.attrs,
        };
        if let Some(flight) = &inner.flight {
            flight.note_span(&record);
        }
        inner.tracer.finish(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_guards_chain_on_one_thread() {
        let tracer = Arc::new(Tracer::new());
        {
            let outer = tracer.span("outer");
            let outer_id = outer.context().unwrap().span_id();
            {
                let inner = tracer.span("inner");
                assert_ne!(inner.context().unwrap().span_id(), outer_id);
            }
            let sibling = tracer.span("sibling");
            drop(sibling);
        }
        let spans = tracer.spans();
        assert_eq!(spans.len(), 3);
        let by_name = |n: &str| spans.iter().find(|s| s.name == n).unwrap();
        let outer = by_name("outer");
        assert_eq!(outer.parent, None);
        assert_eq!(by_name("inner").parent, Some(outer.id));
        assert_eq!(by_name("sibling").parent, Some(outer.id));
    }

    #[test]
    fn explicit_context_parents_across_threads() {
        let tracer = Arc::new(Tracer::new());
        let root = tracer.span("consumer");
        let ctx = root.context();
        let worker_tracer = Arc::clone(&tracer);
        std::thread::spawn(move || {
            let _span = worker_tracer.span_under("worker", ctx);
        })
        .join()
        .unwrap();
        drop(root);
        let spans = tracer.spans();
        let worker = spans.iter().find(|s| s.name == "worker").unwrap();
        let consumer = spans.iter().find(|s| s.name == "consumer").unwrap();
        assert_eq!(worker.parent, Some(consumer.id));
        assert_ne!(worker.thread, consumer.thread, "ran on a worker thread");
    }

    #[test]
    fn ambient_root_parents_pre_existing_threads() {
        let tracer = Arc::new(Tracer::new());
        // A "pipeline worker" spawned before the build starts, with no
        // explicit context handed over: its spans must still land under the
        // root via the ambient cell.
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
        let worker_tracer = Arc::clone(&tracer);
        let handle = std::thread::spawn(move || {
            rx.recv().unwrap();
            let _span = worker_tracer.span("decode");
            drop(_span);
            done_tx.send(()).unwrap();
        });
        {
            let _root = tracer.root_span("build");
            tx.send(()).unwrap();
            done_rx.recv().unwrap();
        }
        handle.join().unwrap();
        let spans = tracer.spans();
        let root = spans.iter().find(|s| s.name == "build").unwrap();
        let decode = spans.iter().find(|s| s.name == "decode").unwrap();
        assert_eq!(decode.parent, Some(root.id));
        assert_eq!(root.parent, None);
        // After the root dropped, the ambient is cleared again.
        assert_eq!(tracer.current_context(), None);
    }

    #[test]
    fn capacity_bounds_the_buffer_and_counts_drops() {
        let tracer = Arc::new(Tracer::with_capacity(2));
        for _ in 0..5 {
            let _span = tracer.span("s");
        }
        assert_eq!(tracer.len(), 2);
        assert_eq!(tracer.dropped(), 3);
    }

    #[test]
    fn chrome_trace_round_trips() {
        let tracer = Arc::new(Tracer::new());
        {
            let mut root = tracer.span("build");
            root.attr("k", 300);
            let _child = tracer.span("fill");
        }
        let json = tracer.to_chrome_trace();
        let parsed = parse_chrome_trace(&json).unwrap();
        assert_eq!(parsed.len(), 2);
        let original = tracer.spans();
        for (a, b) in parsed.iter().zip(&original) {
            assert_eq!(a, b, "parsed span differs from the original");
        }
        let build = parsed.iter().find(|s| s.name == "build").unwrap();
        assert_eq!(build.attrs, vec![("k".to_string(), "300".to_string())]);
    }

    #[test]
    fn parse_rejects_malformed_traces() {
        assert!(parse_chrome_trace("not json").is_err());
        assert!(parse_chrome_trace("{}").is_err());
        assert!(parse_chrome_trace(r#"{"traceEvents":[{"ph":"X"}]}"#).is_err());
        // Non-X events are skipped, not errors.
        let ok = parse_chrome_trace(r#"{"traceEvents":[{"ph":"M","name":"meta"}]}"#).unwrap();
        assert!(ok.is_empty());
    }

    #[test]
    fn noop_guard_is_inert() {
        let mut guard = SpanGuard::noop();
        assert!(!guard.is_live());
        assert_eq!(guard.context(), None);
        guard.attr("k", "v");
        drop(guard);
    }

    #[test]
    fn foreign_context_is_ignored() {
        let a = Arc::new(Tracer::new());
        let b = Arc::new(Tracer::new());
        let root_a = a.span("root-a");
        let span_b = b.span_under("child-b", root_a.context());
        drop(span_b);
        drop(root_a);
        let spans = b.spans();
        assert_eq!(
            spans[0].parent, None,
            "foreign-tracer context must not bind"
        );
    }
}
