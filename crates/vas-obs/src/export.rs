//! Snapshot exporters: structured JSON and Prometheus text exposition.
//!
//! Both exporters render a [`MetricsSnapshot`] and both are paired with a
//! parser so a round trip is testable end to end:
//!
//! * JSON ([`snapshot_to_json`] / [`snapshot_from_json`]) is lossless —
//!   histograms are carried as sparse `[bucket, count]` pairs, and
//!   `parse(render(s)) == s` exactly.
//! * Prometheus text ([`snapshot_to_prometheus`] / [`parse_prometheus`])
//!   follows the exposition format: counters as `vas_<name>_total`,
//!   phases/value series as summaries with `quantile` labels plus `_sum` /
//!   `_count`. Quantiles are lossy by nature, so its round trip is checked
//!   sample-by-sample rather than by snapshot equality.

use crate::histogram::Histogram;
use crate::registry::{Counter, Phase, ValueSeries};
use crate::snapshot::MetricsSnapshot;
use serde::Value;
use std::fmt::Write as _;

const QUANTILES: [(f64, &str); 3] = [(0.50, "0.5"), (0.95, "0.95"), (0.99, "0.99")];

fn histogram_to_value(h: &Histogram) -> Value {
    let buckets: Vec<Value> = h
        .bucket_counts()
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(i, &c)| Value::Array(vec![Value::Number(i as f64), Value::Number(c as f64)]))
        .collect();
    Value::Object(vec![
        ("count".to_string(), Value::Number(h.count() as f64)),
        ("sum".to_string(), Value::Number(h.sum() as f64)),
        ("p50".to_string(), Value::Number(h.percentile(0.50) as f64)),
        ("p95".to_string(), Value::Number(h.percentile(0.95) as f64)),
        ("p99".to_string(), Value::Number(h.percentile(0.99) as f64)),
        ("buckets".to_string(), Value::Array(buckets)),
    ])
}

fn histogram_from_value(v: &Value) -> Result<Histogram, String> {
    let count = number_field(v, "count")? as u64;
    let sum = number_field(v, "sum")? as u64;
    let buckets = match v.get("buckets") {
        Some(Value::Array(items)) => items,
        _ => return Err("histogram missing buckets array".to_string()),
    };
    let mut sparse = Vec::with_capacity(buckets.len());
    for item in buckets {
        match item {
            Value::Array(pair) if pair.len() == 2 => match (&pair[0], &pair[1]) {
                (Value::Number(i), Value::Number(c)) => {
                    sparse.push((*i as usize, *c as u64));
                }
                _ => return Err("histogram bucket pair must be numeric".to_string()),
            },
            _ => return Err("histogram bucket must be a [index, count] pair".to_string()),
        }
    }
    Histogram::from_parts(&sparse, count, sum)
}

fn number_field(v: &Value, key: &str) -> Result<f64, String> {
    match v.get(key) {
        Some(Value::Number(n)) => Ok(*n),
        _ => Err(format!("missing numeric field {key:?}")),
    }
}

/// Renders a snapshot as pretty-printed JSON (lossless; see
/// [`snapshot_from_json`]).
pub fn snapshot_to_json(snapshot: &MetricsSnapshot) -> String {
    let counters: Vec<(String, Value)> = Counter::ALL
        .iter()
        .map(|&c| {
            (
                c.name().to_string(),
                Value::Number(snapshot.counter(c) as f64),
            )
        })
        .collect();
    let phases: Vec<(String, Value)> = Phase::ALL
        .iter()
        .map(|&p| {
            let mut obj = vec![(
                "total_ns".to_string(),
                Value::Number(snapshot.phase_total_ns(p) as f64),
            )];
            if let Value::Object(hist_fields) = histogram_to_value(snapshot.phase_histogram(p)) {
                obj.extend(hist_fields);
            }
            (p.name().to_string(), Value::Object(obj))
        })
        .collect();
    let values: Vec<(String, Value)> = ValueSeries::ALL
        .iter()
        .map(|&s| {
            (
                s.name().to_string(),
                histogram_to_value(snapshot.value_histogram(s)),
            )
        })
        .collect();
    let root = Value::Object(vec![
        ("counters".to_string(), Value::Object(counters)),
        ("phases".to_string(), Value::Object(phases)),
        ("values".to_string(), Value::Object(values)),
    ]);
    serde_json::to_string_pretty(&root).expect("metric values are finite")
}

/// Parses the output of [`snapshot_to_json`] back into a snapshot.
///
/// Metrics absent from the text (e.g. produced by an older build) read as
/// zero; derived fields (`p50`/`p95`/`p99`) are ignored and recomputed from
/// the buckets.
pub fn snapshot_from_json(text: &str) -> Result<MetricsSnapshot, String> {
    let root: Value = serde_json::from_str(text).map_err(|e| e.to_string())?;
    let mut counters = [0u64; Counter::COUNT];
    if let Some(Value::Object(fields)) = root.get("counters") {
        for (name, value) in fields {
            if let (Some(c), Value::Number(n)) =
                (Counter::ALL.iter().find(|c| c.name() == name), value)
            {
                counters[*c as usize] = *n as u64;
            }
        }
    }
    let mut phase_ns = [0u64; Phase::COUNT];
    let mut phase_hist: [Histogram; Phase::COUNT] = std::array::from_fn(|_| Histogram::new());
    if let Some(Value::Object(fields)) = root.get("phases") {
        for (name, value) in fields {
            if let Some(p) = Phase::ALL.iter().find(|p| p.name() == name) {
                phase_ns[*p as usize] = number_field(value, "total_ns")? as u64;
                phase_hist[*p as usize] = histogram_from_value(value)?;
            }
        }
    }
    let mut value_hist: [Histogram; ValueSeries::COUNT] = std::array::from_fn(|_| Histogram::new());
    if let Some(Value::Object(fields)) = root.get("values") {
        for (name, value) in fields {
            if let Some(s) = ValueSeries::ALL.iter().find(|s| s.name() == name) {
                value_hist[*s as usize] = histogram_from_value(value)?;
            }
        }
    }
    Ok(MetricsSnapshot::from_parts(
        counters, phase_ns, phase_hist, value_hist,
    ))
}

fn write_summary(out: &mut String, metric: &str, h: &Histogram, scale: f64) {
    let _ = writeln!(out, "# TYPE {metric} summary");
    for (q, label) in QUANTILES {
        let _ = writeln!(
            out,
            "{metric}{{quantile=\"{label}\"}} {}",
            h.percentile(q) as f64 * scale
        );
    }
    let _ = writeln!(out, "{metric}_sum {}", h.sum() as f64 * scale);
    let _ = writeln!(out, "{metric}_count {}", h.count());
}

/// Renders a snapshot in the Prometheus text exposition format.
///
/// Counters become `vas_<name>_total`; phases become
/// `vas_phase_<name>_seconds` summaries (quantiles + `_sum`/`_count`, in
/// seconds) plus a `vas_phase_<name>_seconds_total` counter; value series
/// become dimensionless `vas_<name>` summaries.
pub fn snapshot_to_prometheus(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for c in Counter::ALL {
        let metric = format!("vas_{}_total", c.name());
        let _ = writeln!(out, "# TYPE {metric} counter");
        let _ = writeln!(out, "{metric} {}", snapshot.counter(c));
    }
    for p in Phase::ALL {
        let metric = format!("vas_phase_{}_seconds", p.name());
        write_summary(&mut out, &metric, snapshot.phase_histogram(p), 1e-9);
        let _ = writeln!(out, "# TYPE {metric}_total counter");
        let _ = writeln!(
            out,
            "{metric}_total {}",
            snapshot.phase_total_ns(p) as f64 * 1e-9
        );
    }
    for s in ValueSeries::ALL {
        let metric = format!("vas_{}", s.name());
        write_summary(&mut out, &metric, snapshot.value_histogram(s), 1.0);
    }
    out
}

/// One parsed Prometheus exposition sample.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Metric name (without labels).
    pub name: String,
    /// Label pairs, in order of appearance.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

/// Parses Prometheus text exposition (the subset
/// [`snapshot_to_prometheus`] emits: `# TYPE`/`# HELP` comments, and
/// `name{labels} value` sample lines).
pub fn parse_prometheus(text: &str) -> Result<Vec<PromSample>, String> {
    let mut samples = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name_part, value_part) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("sample line without value: {line:?}"))?;
        let value: f64 = value_part
            .parse()
            .map_err(|_| format!("bad sample value in {line:?}"))?;
        let (name, labels) = match name_part.split_once('{') {
            None => (name_part.to_string(), Vec::new()),
            Some((name, rest)) => {
                let body = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("unterminated label set in {line:?}"))?;
                let mut labels = Vec::new();
                for pair in body.split(',').filter(|p| !p.is_empty()) {
                    let (k, v) = pair
                        .split_once('=')
                        .ok_or_else(|| format!("bad label pair {pair:?}"))?;
                    let v = v
                        .strip_prefix('"')
                        .and_then(|v| v.strip_suffix('"'))
                        .ok_or_else(|| format!("unquoted label value {pair:?}"))?;
                    if v.contains('"') {
                        // Escaped/embedded quotes are outside the supported
                        // subset; fail loudly instead of mis-splitting.
                        return Err(format!("unsupported escape in label value {pair:?}"));
                    }
                    labels.push((k.to_string(), v.to_string()));
                }
                (name.to_string(), labels)
            }
        };
        samples.push(PromSample {
            name,
            labels,
            value,
        });
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    fn busy_snapshot() -> MetricsSnapshot {
        let r = MetricsRegistry::new();
        r.inc(Counter::CoreAccepts, 12);
        r.inc(Counter::CoreKernelLanes, 4_096);
        r.inc(Counter::StreamRetriesAbsorbed, 3);
        for ns in [900u64, 1_100, 5_000, 90_000] {
            r.record_phase(Phase::ChunkDecode, ns);
        }
        r.record_phase(Phase::Fill, 2_000_000);
        r.record_value(ValueSeries::ReadAheadOccupancy, 0);
        r.record_value(ValueSeries::ReadAheadOccupancy, 2);
        r.snapshot()
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let snap = busy_snapshot();
        let text = snapshot_to_json(&snap);
        let parsed = snapshot_from_json(&text).unwrap();
        assert_eq!(parsed, snap);
        // And an empty snapshot survives too.
        let empty = MetricsRegistry::new().snapshot();
        assert_eq!(
            snapshot_from_json(&snapshot_to_json(&empty)).unwrap(),
            empty
        );
    }

    #[test]
    fn prometheus_round_trip_matches_sample_by_sample() {
        let snap = busy_snapshot();
        let text = snapshot_to_prometheus(&snap);
        let samples = parse_prometheus(&text).unwrap();

        let find = |name: &str, labels: &[(&str, &str)]| -> f64 {
            samples
                .iter()
                .find(|s| {
                    s.name == name
                        && s.labels.len() == labels.len()
                        && s.labels
                            .iter()
                            .zip(labels)
                            .all(|((k, v), (ek, ev))| k == ek && v == ev)
                })
                .unwrap_or_else(|| panic!("missing sample {name} {labels:?}"))
                .value
        };

        assert_eq!(find("vas_core_accepts_total", &[]), 12.0);
        assert_eq!(find("vas_core_kernel_lanes_total", &[]), 4_096.0);
        assert_eq!(find("vas_phase_chunk_decode_seconds_count", &[]), 4.0);
        let h = snap.phase_histogram(Phase::ChunkDecode);
        assert_eq!(
            find("vas_phase_chunk_decode_seconds_sum", &[]),
            h.sum() as f64 * 1e-9
        );
        assert_eq!(
            find("vas_phase_chunk_decode_seconds", &[("quantile", "0.95")]),
            h.percentile(0.95) as f64 * 1e-9
        );
        assert_eq!(find("vas_read_ahead_occupancy_count", &[]), 2.0);
        // Every exported sample parses; counters appear once per variant.
        let counter_lines = samples
            .iter()
            .filter(|s| s.name.ends_with("_total") && s.labels.is_empty())
            .count();
        assert_eq!(counter_lines, Counter::COUNT + Phase::COUNT);
    }

    #[test]
    fn prometheus_parser_rejects_malformed_lines() {
        assert!(parse_prometheus("vas_x_total").is_err());
        assert!(parse_prometheus("vas_x_total abc").is_err());
        assert!(parse_prometheus("vas_x{quantile=\"0.5\" 1").is_err());
        assert!(parse_prometheus("vas_x{quantile=0.5} 1").is_err());
    }

    #[test]
    fn prometheus_parser_handles_nan_and_infinite_values() {
        // Prometheus exposition uses `NaN`, `+Inf` and `-Inf` as sample
        // values; the parser must carry them through as f64 specials
        // instead of erroring on a foreign scrape.
        let samples =
            parse_prometheus("vas_a_total NaN\nvas_b_total +Inf\nvas_c_total -Inf\n").unwrap();
        assert!(samples[0].value.is_nan());
        assert_eq!(samples[1].value, f64::INFINITY);
        assert_eq!(samples[2].value, f64::NEG_INFINITY);
    }

    #[test]
    fn prometheus_comment_lines_need_no_escaping() {
        // HELP/TYPE comments are skipped wholesale, so arbitrary help text
        // (quotes, braces, backslashes) cannot corrupt the sample stream.
        let text = "# HELP vas_x weird \"quotes\" {braces} and \\ backslashes\n\
                    # TYPE vas_x counter\n\
                    vas_x 1\n";
        let samples = parse_prometheus(text).unwrap();
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].name, "vas_x");
        assert_eq!(samples[0].value, 1.0);
    }

    #[test]
    fn prometheus_label_values_reject_unsupported_escapes() {
        // The exporter only emits numeric quantile labels. The parser
        // accepts any plainly quoted value (spaces, equals signs after the
        // first)...
        let ok = parse_prometheus("vas_x{quantile=\"0.5\",job=\"a b\"} 1").unwrap();
        assert_eq!(ok[0].labels[1], ("job".to_string(), "a b".to_string()));
        // ...and label values that would need escape handling (embedded
        // comma, unterminated quote, embedded brace) fail the parse rather
        // than silently mis-splitting.
        assert!(parse_prometheus("vas_x{job=\"a,b\"} 1").is_err());
        assert!(parse_prometheus("vas_x{job=\"a} 1").is_err());
        assert!(parse_prometheus("vas_x{job=\"a\"b\"} 1").is_err());
    }

    #[test]
    fn json_parser_flags_corrupt_histograms() {
        let snap = busy_snapshot();
        let text = snapshot_to_json(&snap).replace("\"count\": 4", "\"count\": 5");
        assert!(snapshot_from_json(&text).is_err());
    }
}
